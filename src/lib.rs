//! # direct-perception-verify
//!
//! Facade crate for the reproduction of *"Towards Safety Verification of
//! Direct Perception Neural Networks"* (Cheng et al., DATE 2020).
//!
//! A *direct perception* network maps camera images to low-dimensional
//! affordances (next waypoint offset and orientation). This workspace
//! provides everything needed to reproduce the paper's verification
//! workflow end to end:
//!
//! * [`tensor`] — dense linear algebra substrate.
//! * [`nn`] — from-scratch neural network library (layers, training,
//!   activation recording).
//! * [`scenegen`] — synthetic road-scene generator standing in for the
//!   paper's proprietary camera data (the operational design domain, ODD):
//!   highway scenes across curvature, lighting, traffic, occlusion, rain
//!   and lane-marking-style dimensions, plus the named out-of-ODD
//!   violation taxonomy (`OddViolation`) for per-class monitor
//!   experiments.
//! * [`lp`] — simplex LP solver and branch-and-bound MILP solver with
//!   big-M ReLU encodings.
//! * [`absint`] — abstract interpretation domains (box, zonotope,
//!   octagon-lite with adjacent-neuron differences).
//! * [`monitor`] — runtime activation-envelope monitor used by the
//!   assume-guarantee argument.
//! * [`shard`] — cluster-partitioned (sharded) envelopes: k-means over
//!   cut-layer activations, one envelope per cluster, and the sharded
//!   runtime monitor (containment = membership in any shard).
//! * [`core`] — the paper's contribution: input property characterizers,
//!   risk conditions, the layer-abstraction / assume-guarantee verification
//!   strategies, and the statistical (Table I) reasoning.
//! * [`serve`] — resident obligation server: a long-lived verification
//!   service with a persistent work-stealing pool, cross-request template
//!   and basis caches, batched admission and verdict deduplication.
//! * [`delta`] — continuous delta-verification across retrains: per-layer
//!   checkpoint fingerprinting and diffing, weight-hull bound-absorption
//!   checks, and re-verification planning (executed by
//!   `serve::ObligationServer::serve_delta`, which emits a
//!   machine-checkable `ProofDeltaReport`).
//! * [`trace`] — zero-overhead-when-off tracing and metrics: hierarchical
//!   spans in lock-free ring buffers, typed counters and log-bucketed
//!   histograms, JSON and Prometheus exporters, threaded through the
//!   solver and serving stack.
//!
//! ## Quickstart
//!
//! ```no_run
//! use direct_perception_verify::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Generate a small ODD dataset, train a perception network and a
//! // characterizer, build an activation envelope and verify a property.
//! let config = WorkflowConfig::small();
//! let outcome = Workflow::new(config).run()?;
//! println!("{}", outcome.report());
//! # Ok(())
//! # }
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use dpv_absint as absint;
pub use dpv_core as core;
pub use dpv_delta as delta;
pub use dpv_lp as lp;
pub use dpv_monitor as monitor;
pub use dpv_nn as nn;
pub use dpv_scenegen as scenegen;
pub use dpv_serve as serve;
pub use dpv_shard as shard;
pub use dpv_tensor as tensor;
pub use dpv_trace as trace;

/// Convenience re-exports of the most commonly used types.
pub mod prelude {
    pub use dpv_absint::{AbstractDomain, BoxDomain, OctagonLite, Zonotope};
    pub use dpv_core::{
        AssumeGuarantee, Characterizer, CharacterizerConfig, InputProperty, RiskCondition,
        StatisticalAnalysis, Verdict, VerificationOutcome, VerificationProblem,
        VerificationStrategy, Workflow, WorkflowConfig,
    };
    pub use dpv_delta::{CheckpointDiff, DeltaPlanner, ModelFingerprint};
    pub use dpv_lp::{LinearProgram, MilpProblem, MilpStatus};
    pub use dpv_monitor::{ActivationEnvelope, MonitorVerdict, RuntimeMonitor};
    pub use dpv_nn::{Activation, Dataset, Layer, Network, NetworkBuilder, TrainConfig};
    pub use dpv_scenegen::{OddSampler, OddViolation, PropertyKind, SceneConfig, SceneParams};
    pub use dpv_serve::{
        ObligationServer, ProofDeltaReport, RegionSpec, ServeConfig, VerificationRequest,
    };
    pub use dpv_shard::{ShardConfig, ShardedEnvelope, ShardedMonitor};
    pub use dpv_tensor::{Matrix, Vector};
}

//! Error type of the runtime-monitoring crate.

use std::error::Error;
use std::fmt;

/// Errors produced while assembling a monitor or replaying logged evidence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MonitorError {
    /// The monitor's cut layer or envelope does not fit the network.
    Mismatch(String),
    /// A persisted activation log could not be decoded.
    MalformedLog(String),
    /// An envelope was requested over zero activation samples; an envelope is
    /// the hull of observed data, so there is nothing to build it from.
    EmptyActivations,
}

impl fmt::Display for MonitorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MonitorError::Mismatch(msg) => write!(f, "monitor mismatch: {msg}"),
            MonitorError::MalformedLog(msg) => write!(f, "malformed activation log: {msg}"),
            MonitorError::EmptyActivations => {
                write!(f, "cannot build an envelope from zero activations")
            }
        }
    }
}

impl Error for MonitorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(MonitorError::Mismatch("dim".into())
            .to_string()
            .contains("dim"));
        assert!(MonitorError::MalformedLog("short".into())
            .to_string()
            .contains("short"));
        assert!(MonitorError::EmptyActivations
            .to_string()
            .contains("zero activations"));
    }
}

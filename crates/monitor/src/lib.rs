//! # dpv-monitor
//!
//! The runtime-monitoring half of the paper's assume-guarantee argument.
//!
//! The verification result obtained with the training-data envelope `S̃` is
//! *conditional*: it only applies to inputs whose layer-`l` activation stays
//! inside `S̃`. The paper therefore requires a runtime monitor that, for
//! every frame processed in operation, checks whether the computed neuron
//! values fall outside the envelope and raises a warning if they do
//! (Section II-B and footnote 2).
//!
//! This crate provides:
//!
//! * [`ActivationEnvelope`] — the envelope itself: per-neuron min/max plus
//!   min/max of adjacent-neuron differences (the paper's `diff(n)` refinement
//!   from Section V), built from recorded activations of the training data,
//!   optionally widened by a safety margin.
//! * [`RuntimeMonitor`] — wraps the perception network's head (layers up to
//!   the cut) together with an envelope, classifies incoming images as
//!   in/out of the monitored region, reports which constraint was violated,
//!   and keeps thread-safe counters of everything it has seen.
//! * [`ActivationLog`] — a compact binary log of activation vectors
//!   (little-endian `f64`s framed per record) so ODD evidence can be
//!   persisted and replayed cheaply.
//!
//! ## Sharded monitoring
//!
//! The `dpv-shard` crate partitions the training activations into k-means
//! clusters and builds one [`ActivationEnvelope`] per cluster (a
//! `ShardedEnvelope`). Its `ShardedMonitor` reuses this crate's verdict
//! vocabulary ([`MonitorVerdict`], [`Violation`], [`MonitorReport`]) with
//! **any-shard semantics**: a frame is in ODD iff its activation lies in at
//! least one shard. Because every shard is a subset of the single envelope
//! over the same data while the shard *union* still contains every training
//! activation, the sharded monitor accepts every training frame, flags
//! everything this crate's [`RuntimeMonitor`] flags, and additionally flags
//! activations that fall *between* the data's modes — strictly tighter
//! out-of-ODD detection at the price of up to `k` containment checks per
//! frame. Out-of-union frames report the violations of the shard whose
//! centroid is nearest.
//!
//! ## Example
//!
//! ```
//! use dpv_monitor::{ActivationEnvelope, RuntimeMonitor};
//! use dpv_nn::{Activation, NetworkBuilder};
//! use dpv_tensor::Vector;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let net = NetworkBuilder::new(4)
//!     .dense(6, &mut rng)
//!     .activation(Activation::ReLU)
//!     .dense(2, &mut rng)
//!     .build();
//! let cut = 1; // monitor the activation after the first ReLU
//! let samples: Vec<Vector> = (0..50)
//!     .map(|i| Vector::filled(4, i as f64 / 50.0))
//!     .collect();
//! let envelope = ActivationEnvelope::from_inputs(&net, cut, &samples, 0.0).unwrap();
//! let monitor = RuntimeMonitor::new(net.clone(), cut, envelope).unwrap();
//! assert!(monitor.check(&samples[0]).is_in_odd());
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod envelope;
mod error;
mod log;
mod monitor;
mod soa;

pub use envelope::ActivationEnvelope;
pub use error::MonitorError;
pub use log::ActivationLog;
pub use monitor::{MonitorReport, MonitorVerdict, RuntimeMonitor, Violation, ViolationKind};
pub use soa::{union_contained_mask, ContainmentMask, EnvelopeSoa};

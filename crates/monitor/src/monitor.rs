//! The runtime monitor guarding the assume-guarantee proof.

use std::sync::atomic::{AtomicUsize, Ordering};

use dpv_nn::Network;
use dpv_tensor::Vector;

use crate::soa::{union_contained_mask, EnvelopeSoa};
use crate::{ActivationEnvelope, MonitorError};

/// Which envelope constraint an activation violated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ViolationKind {
    /// A per-neuron bound was violated.
    NeuronBound,
    /// An adjacent-difference bound was violated.
    AdjacentDifference,
}

/// One violated constraint of the envelope.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Which kind of constraint was violated.
    pub kind: ViolationKind,
    /// Index of the neuron (for bounds) or of the pair `(index, index + 1)`
    /// (for differences).
    pub index: usize,
    /// The offending value.
    pub value: f64,
    /// Lower bound of the violated interval.
    pub lower: f64,
    /// Upper bound of the violated interval.
    pub upper: f64,
}

/// The verdict for one monitored frame.
#[derive(Debug, Clone, PartialEq)]
pub enum MonitorVerdict {
    /// The activation lies inside the envelope: the assume-guarantee proof
    /// applies to this frame.
    InOdd,
    /// The activation escapes the envelope: the proof's assumption is
    /// violated and a warning must be raised (the paper additionally reads
    /// this as a hint of incomplete data collection or ODD exit).
    OutOfOdd {
        /// Every violated constraint.
        violations: Vec<Violation>,
    },
}

impl MonitorVerdict {
    /// Returns `true` for [`MonitorVerdict::InOdd`].
    pub fn is_in_odd(&self) -> bool {
        matches!(self, MonitorVerdict::InOdd)
    }
}

/// Cumulative statistics of a monitor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MonitorReport {
    /// Number of frames checked.
    pub frames: usize,
    /// Number of frames found inside the envelope.
    pub in_odd: usize,
    /// Number of frames that violated the envelope.
    pub out_of_odd: usize,
}

impl MonitorReport {
    /// Fraction of frames inside the envelope (1.0 when nothing was checked).
    pub fn in_odd_fraction(&self) -> f64 {
        if self.frames == 0 {
            1.0
        } else {
            self.in_odd as f64 / self.frames as f64
        }
    }
}

/// The runtime monitor: evaluates the perception network up to the cut
/// layer and checks the resulting activation against the envelope.
///
/// The monitor is `Sync`: the per-frame counters are plain atomics
/// (monotonically increasing, relaxed ordering) so one monitor instance
/// can serve several camera pipelines without any lock contention on the
/// hot path. A [`RuntimeMonitor::report`] taken while checks are in
/// flight may observe a frame whose in/out counter increment has not
/// landed yet; quiescent reports (after joining the checking threads) are
/// exact.
///
/// Containment itself runs on a cached [`EnvelopeSoa`] flattening of the
/// envelope — the same code path the batched [`RuntimeMonitor::check_frames`]
/// sweeps — so scalar and batched verdicts cannot drift.
#[derive(Debug)]
pub struct RuntimeMonitor {
    network: Network,
    cut_layer: usize,
    envelope: ActivationEnvelope,
    soa: EnvelopeSoa,
    tolerance: f64,
    frames: AtomicUsize,
    in_odd: AtomicUsize,
    out_of_odd: AtomicUsize,
}

impl RuntimeMonitor {
    /// Creates a monitor for `network`, monitoring the activation after
    /// `cut_layer` (zero-based) against `envelope`.
    ///
    /// # Errors
    /// Returns [`MonitorError::Mismatch`] when the cut layer is out of range
    /// or the envelope dimension does not match the network's activation
    /// dimension at that layer.
    pub fn new(
        network: Network,
        cut_layer: usize,
        envelope: ActivationEnvelope,
    ) -> Result<Self, MonitorError> {
        if cut_layer >= network.len() {
            return Err(MonitorError::Mismatch(format!(
                "cut layer {cut_layer} out of range for a network with {} layers",
                network.len()
            )));
        }
        let dim = network.layer_output_dim(cut_layer);
        if dim != envelope.dim() {
            return Err(MonitorError::Mismatch(format!(
                "envelope dimension {} does not match layer dimension {dim}",
                envelope.dim()
            )));
        }
        let soa = EnvelopeSoa::from_envelope(&envelope);
        Ok(Self {
            network,
            cut_layer,
            envelope,
            soa,
            tolerance: 1e-9,
            frames: AtomicUsize::new(0),
            in_odd: AtomicUsize::new(0),
            out_of_odd: AtomicUsize::new(0),
        })
    }

    /// The monitored cut layer.
    pub fn cut_layer(&self) -> usize {
        self.cut_layer
    }

    /// The envelope being enforced.
    pub fn envelope(&self) -> &ActivationEnvelope {
        &self.envelope
    }

    /// Sets the numerical tolerance used for containment checks.
    pub fn set_tolerance(&mut self, tolerance: f64) {
        self.tolerance = tolerance.max(0.0);
    }

    /// Computes the monitored activation for an input image.
    pub fn activation(&self, input: &Vector) -> Vector {
        self.network.activation_at(self.cut_layer, input)
    }

    /// Checks one input frame end to end (forward pass to the cut layer plus
    /// envelope containment) and updates the statistics.
    pub fn check(&self, input: &Vector) -> MonitorVerdict {
        let activation = self.activation(input);
        self.check_activation(&activation)
    }

    /// Checks an already-computed activation vector against the envelope and
    /// updates the statistics.
    pub fn check_activation(&self, activation: &Vector) -> MonitorVerdict {
        let verdict = self.classify(activation);
        self.frames.fetch_add(1, Ordering::Relaxed);
        match &verdict {
            MonitorVerdict::InOdd => self.in_odd.fetch_add(1, Ordering::Relaxed),
            MonitorVerdict::OutOfOdd { .. } => self.out_of_odd.fetch_add(1, Ordering::Relaxed),
        };
        verdict
    }

    /// Checks a batch of input frames in one pass: a single batched forward
    /// pass to the cut layer ([`Network::activation_at_batch`]) followed by
    /// one SoA containment sweep over all frames, with the violation lists
    /// materialised only for the frames that escape the envelope.
    ///
    /// Verdicts (including violation lists) are identical to calling
    /// [`RuntimeMonitor::check`] frame by frame in order — the batch path
    /// only amortises per-frame allocation, dispatch and statistics
    /// updates. Statistics are updated once for the whole batch.
    pub fn check_frames(&self, inputs: &[Vector]) -> Vec<MonitorVerdict> {
        let activations = self.network.activation_matrix_at(self.cut_layer, inputs);
        let mask = union_contained_mask(
            std::slice::from_ref(&self.soa),
            &activations,
            self.tolerance,
        );
        let verdicts: Vec<MonitorVerdict> = (0..inputs.len())
            .map(|f| {
                if mask.is_contained(f) {
                    MonitorVerdict::InOdd
                } else {
                    let activation = activations.col_vector(f);
                    MonitorVerdict::OutOfOdd {
                        violations: self.envelope.violations(&activation, self.tolerance),
                    }
                }
            })
            .collect();
        let in_odd = mask.count_contained();
        self.frames.fetch_add(inputs.len(), Ordering::Relaxed);
        self.in_odd.fetch_add(in_odd, Ordering::Relaxed);
        self.out_of_odd
            .fetch_add(inputs.len() - in_odd, Ordering::Relaxed);
        verdicts
    }

    /// Pure classification without statistics side effects.
    ///
    /// Containment runs on the cached SoA flattening (the batch code
    /// path); the violation list — empty exactly when containment holds,
    /// see [`ActivationEnvelope::violations`] — is only materialised for
    /// frames outside the envelope.
    pub fn classify(&self, activation: &Vector) -> MonitorVerdict {
        if self.soa.contains(activation.as_slice(), self.tolerance) {
            MonitorVerdict::InOdd
        } else {
            MonitorVerdict::OutOfOdd {
                violations: self.envelope.violations(activation, self.tolerance),
            }
        }
    }

    /// Snapshot of the cumulative statistics.
    pub fn report(&self) -> MonitorReport {
        MonitorReport {
            frames: self.frames.load(Ordering::Relaxed),
            in_odd: self.in_odd.load(Ordering::Relaxed),
            out_of_odd: self.out_of_odd.load(Ordering::Relaxed),
        }
    }

    /// Resets the cumulative statistics.
    pub fn reset(&self) {
        self.frames.store(0, Ordering::Relaxed);
        self.in_odd.store(0, Ordering::Relaxed);
        self.out_of_odd.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpv_nn::{Activation, NetworkBuilder};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn setup(seed: u64) -> (Network, Vec<Vector>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = NetworkBuilder::new(4)
            .dense(6, &mut rng)
            .activation(Activation::ReLU)
            .dense(3, &mut rng)
            .activation(Activation::ReLU)
            .dense(2, &mut rng)
            .build();
        let inputs: Vec<Vector> = (0..60)
            .map(|_| Vector::from_vec((0..4).map(|_| rng.gen_range(0.0..1.0)).collect()))
            .collect();
        (net, inputs)
    }

    #[test]
    fn training_inputs_stay_in_odd() {
        let (net, inputs) = setup(1);
        let env = ActivationEnvelope::from_inputs(&net, 3, &inputs, 0.0).unwrap();
        let monitor = RuntimeMonitor::new(net, 3, env).unwrap();
        for x in &inputs {
            assert!(monitor.check(x).is_in_odd());
        }
        let report = monitor.report();
        assert_eq!(report.frames, 60);
        assert_eq!(report.out_of_odd, 0);
        assert_eq!(report.in_odd_fraction(), 1.0);
    }

    #[test]
    fn far_out_inputs_are_flagged() {
        let (net, inputs) = setup(2);
        // Monitor the (pre-ReLU) dense output, which scales linearly with the
        // input, so far-out inputs must escape the envelope.
        let env = ActivationEnvelope::from_inputs(&net, 0, &inputs, 0.0).unwrap();
        let monitor = RuntimeMonitor::new(net, 0, env).unwrap();
        // Inputs far outside the [0,1] pixel range the envelope was built from.
        let mut flagged = 0;
        for i in 0..20 {
            let sign = if i % 2 == 0 { 1.0 } else { -1.0 };
            let x = Vector::filled(4, sign * (50.0 + i as f64));
            if !monitor.check(&x).is_in_odd() {
                flagged += 1;
            }
        }
        assert!(
            flagged > 15,
            "only {flagged} of 20 extreme inputs were flagged"
        );
        assert!(monitor.report().out_of_odd >= flagged);
    }

    #[test]
    fn violations_carry_details() {
        let acts = vec![
            Vector::from_slice(&[0.0, 0.0]),
            Vector::from_slice(&[1.0, 1.0]),
        ];
        let env = ActivationEnvelope::from_activations(0, &acts, 0.0).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let net = NetworkBuilder::new(2).dense(2, &mut rng).build();
        let monitor = RuntimeMonitor::new(net, 0, env).unwrap();
        let verdict = monitor.classify(&Vector::from_slice(&[2.0, -1.0]));
        match verdict {
            MonitorVerdict::OutOfOdd { violations } => {
                assert!(violations
                    .iter()
                    .any(|v| v.kind == ViolationKind::NeuronBound));
                assert!(violations
                    .iter()
                    .any(|v| v.kind == ViolationKind::AdjacentDifference));
                assert!(violations.iter().all(|v| v.lower <= v.upper));
            }
            MonitorVerdict::InOdd => panic!("expected a violation"),
        }
    }

    #[test]
    fn constructor_validates_dimensions() {
        let (net, inputs) = setup(4);
        let env = ActivationEnvelope::from_inputs(&net, 1, &inputs, 0.0).unwrap();
        assert!(RuntimeMonitor::new(net.clone(), 99, env.clone()).is_err());
        assert!(RuntimeMonitor::new(net, 3, env).is_err());
    }

    #[test]
    fn reset_clears_statistics() {
        let (net, inputs) = setup(5);
        let env = ActivationEnvelope::from_inputs(&net, 2, &inputs, 0.1).unwrap();
        let monitor = RuntimeMonitor::new(net, 2, env).unwrap();
        let _ = monitor.check(&inputs[0]);
        assert_eq!(monitor.report().frames, 1);
        monitor.reset();
        assert_eq!(monitor.report().frames, 0);
    }

    #[test]
    fn monitor_is_shareable_across_threads() {
        let (net, inputs) = setup(6);
        let env = ActivationEnvelope::from_inputs(&net, 3, &inputs, 0.0).unwrap();
        let monitor = std::sync::Arc::new(RuntimeMonitor::new(net, 3, env).unwrap());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = monitor.clone();
                let xs = inputs.clone();
                std::thread::spawn(move || {
                    for x in &xs {
                        let _ = m.check(x);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(monitor.report().frames, 4 * inputs.len());
    }
}

//! Structure-of-arrays envelope layout for batched containment.
//!
//! [`ActivationEnvelope`] stores its constraints as an array of
//! [`dpv_absint::Interval`] structs — convenient for diagnostics, hostile
//! to vectorisation (the `lo`/`hi` fields interleave in memory). This
//! module flattens one envelope into four contiguous `f64` slices
//! ([`EnvelopeSoa`]) and sweeps a whole *batch* of frames through them at
//! once: frames are the SIMD lanes, constraints are the sweep axis, and a
//! per-chunk `u64` bitmask drops lanes as soon as they fail a constraint
//! (early exit once a chunk has no live lane left).
//!
//! ## Parity invariants
//!
//! The SoA kernels are a *layout* change, not a semantics change:
//!
//! * the per-lane predicate is textually the interval predicate
//!   (`v >= lo - tol && v <= hi + tol`), so NaN activations fail
//!   containment exactly as they do on the scalar path;
//! * adjacent differences are formed as `x[i + 1] - x[i]`, the same
//!   expression [`crate::ActivationEnvelope::violations`] uses;
//! * [`union_contained_mask`] ORs shard verdicts in slice order, so the
//!   union semantics of a sharded envelope (in-ODD iff *any* shard
//!   contains the frame) and the lowest-index-shard-wins convention are
//!   unchanged.
//!
//! Every batch entry point in the workspace routes through this module, so
//! there is exactly one containment code path for the monitors, coverage
//! statistics and detection tables to agree on.

use dpv_tensor::Matrix;

use crate::ActivationEnvelope;

/// Number of frames processed per bitmask word.
const LANES: usize = 64;

/// One envelope flattened to contiguous bound slices (structure of
/// arrays): `lo`/`hi` hold the per-neuron interval bounds, and
/// `diff_lo`/`diff_hi` the adjacent-difference bounds of `x[i+1] - x[i]`.
///
/// The flattening is a pure re-layout of [`ActivationEnvelope`]'s octagon
/// constraints; containment verdicts are bit-identical to the scalar path.
#[derive(Debug, Clone, PartialEq)]
pub struct EnvelopeSoa {
    dim: usize,
    lo: Vec<f64>,
    hi: Vec<f64>,
    diff_lo: Vec<f64>,
    diff_hi: Vec<f64>,
}

impl EnvelopeSoa {
    /// Flattens `envelope` into the SoA layout.
    pub fn from_envelope(envelope: &ActivationEnvelope) -> Self {
        let bounds = envelope.neuron_bounds();
        let diffs = envelope.diff_bounds();
        Self {
            dim: bounds.len(),
            lo: bounds.iter().map(|b| b.lo).collect(),
            hi: bounds.iter().map(|b| b.hi).collect(),
            diff_lo: diffs.iter().map(|d| d.lo).collect(),
            diff_hi: diffs.iter().map(|d| d.hi).collect(),
        }
    }

    /// Activation dimension of the underlying envelope.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Scalar containment of a single activation — the same verdict as
    /// `ActivationEnvelope::contains` at the same tolerance (wrong-length
    /// and NaN points are outside).
    pub fn contains(&self, point: &[f64], tol: f64) -> bool {
        if point.len() != self.dim {
            return false;
        }
        for ((&v, &lo), &hi) in point.iter().zip(&self.lo).zip(&self.hi) {
            if !(v >= lo - tol && v <= hi + tol) {
                return false;
            }
        }
        for (i, (&lo, &hi)) in self.diff_lo.iter().zip(&self.diff_hi).enumerate() {
            let d = point[i + 1] - point[i];
            if !(d >= lo - tol && d <= hi + tol) {
                return false;
            }
        }
        true
    }

    /// Sweeps one chunk of lanes through every constraint: bit `l` of the
    /// result is kept from `candidates` iff frame `base + l` satisfies all
    /// neuron and difference bounds. Exits early once no candidate lane
    /// survives.
    fn sweep_chunk(
        &self,
        frames: &Matrix,
        base: usize,
        lanes: usize,
        tol: f64,
        candidates: u64,
    ) -> u64 {
        if frames.rows() != self.dim {
            return 0;
        }
        let mut live = candidates;
        for d in 0..self.dim {
            if live == 0 {
                return 0;
            }
            let (lo, hi) = (self.lo[d] - tol, self.hi[d] + tol);
            let row = &frames.row(d)[base..base + lanes];
            let mut pass = 0u64;
            for (l, &v) in row.iter().enumerate() {
                pass |= ((v >= lo && v <= hi) as u64) << l;
            }
            live &= pass;
        }
        for d in 0..self.diff_lo.len() {
            if live == 0 {
                return 0;
            }
            let (lo, hi) = (self.diff_lo[d] - tol, self.diff_hi[d] + tol);
            let row_lo = &frames.row(d)[base..base + lanes];
            let row_hi = &frames.row(d + 1)[base..base + lanes];
            let mut pass = 0u64;
            for (l, (&a, &b)) in row_lo.iter().zip(row_hi.iter()).enumerate() {
                let v = b - a;
                pass |= ((v >= lo && v <= hi) as u64) << l;
            }
            live &= pass;
        }
        live
    }
}

/// Per-frame containment verdicts of one batch, packed 64 frames per word.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContainmentMask {
    frames: usize,
    words: Vec<u64>,
}

impl ContainmentMask {
    /// Number of frames in the batch.
    pub fn frames(&self) -> usize {
        self.frames
    }

    /// Whether frame `frame` was contained (in the union, for a sharded
    /// sweep).
    ///
    /// # Panics
    /// Panics when `frame` is out of range.
    pub fn is_contained(&self, frame: usize) -> bool {
        assert!(frame < self.frames, "frame index out of range");
        self.words[frame / LANES] >> (frame % LANES) & 1 == 1
    }

    /// Number of contained frames.
    pub fn count_contained(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }
}

/// Batched union containment: frame `f` is contained iff *any* envelope in
/// `shards` contains column `f` of the feature-major `frames` matrix
/// (rows = activation dimension, columns = frames).
///
/// Verdicts are bit-identical to checking each frame against each shard
/// with the scalar path; shards are swept in slice order and a frame stops
/// being re-tested once some shard accepts it, preserving the
/// lowest-index-shard-wins convention of the sharded monitor.
pub fn union_contained_mask(shards: &[EnvelopeSoa], frames: &Matrix, tol: f64) -> ContainmentMask {
    let n = frames.cols();
    let mut words = vec![0u64; n.div_ceil(LANES)];
    for (chunk, word) in words.iter_mut().enumerate() {
        let base = chunk * LANES;
        let lanes = LANES.min(n - base);
        let full = if lanes == LANES {
            u64::MAX
        } else {
            (1u64 << lanes) - 1
        };
        let mut remaining = full;
        let mut contained = 0u64;
        for shard in shards {
            let accepted = shard.sweep_chunk(frames, base, lanes, tol, remaining);
            contained |= accepted;
            remaining &= !accepted;
            if remaining == 0 {
                break;
            }
        }
        *word = contained;
    }
    ContainmentMask { frames: n, words }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpv_tensor::Vector;

    fn envelope() -> ActivationEnvelope {
        let acts = vec![
            Vector::from_slice(&[0.0, 0.0, 1.0]),
            Vector::from_slice(&[1.0, 2.0, 3.0]),
        ];
        ActivationEnvelope::from_activations(0, &acts, 0.0).unwrap()
    }

    #[test]
    fn scalar_containment_matches_the_envelope() {
        let env = envelope();
        let soa = EnvelopeSoa::from_envelope(&env);
        assert_eq!(soa.dim(), 3);
        let points = [
            vec![0.5, 1.0, 2.0],
            vec![2.0, 0.0, 1.0],
            vec![0.0, 0.0, 1.0],
            vec![1.0, 2.0, 3.0],
            vec![0.0, 2.0, 1.0], // difference violation only
            vec![f64::NAN, 1.0, 2.0],
        ];
        for p in &points {
            assert_eq!(
                soa.contains(p, 1e-9),
                env.contains(&Vector::from_slice(p), 1e-9),
                "scalar SoA containment drifted for {p:?}"
            );
        }
        // Wrong-length points are outside, as on the scalar path.
        assert!(!soa.contains(&[0.5, 1.0], 1e-9));
    }

    #[test]
    fn batched_union_matches_per_frame_checks() {
        let env = envelope();
        let soa = EnvelopeSoa::from_envelope(&env);
        // More than one 64-lane chunk, with a mix of in/out frames.
        let frames: Vec<Vector> = (0..130)
            .map(|i| {
                let t = (i % 13) as f64 / 12.0;
                if i % 3 == 0 {
                    Vector::from_slice(&[t, 2.0 * t, 1.0 + 2.0 * t])
                } else {
                    Vector::from_slice(&[5.0 + t, -3.0, 10.0])
                }
            })
            .collect();
        let matrix = Matrix::from_columns(&frames).unwrap();
        let mask = union_contained_mask(std::slice::from_ref(&soa), &matrix, 1e-9);
        assert_eq!(mask.frames(), frames.len());
        let mut expected = 0usize;
        for (i, frame) in frames.iter().enumerate() {
            let scalar = env.contains(frame, 1e-9);
            assert_eq!(mask.is_contained(i), scalar, "frame {i} drifted");
            expected += scalar as usize;
        }
        assert_eq!(mask.count_contained(), expected);
    }

    #[test]
    fn union_prefers_any_containing_shard() {
        let lo = ActivationEnvelope::from_activations(
            0,
            &[Vector::from_slice(&[0.0]), Vector::from_slice(&[1.0])],
            0.0,
        )
        .unwrap();
        let hi = ActivationEnvelope::from_activations(
            0,
            &[Vector::from_slice(&[10.0]), Vector::from_slice(&[11.0])],
            0.0,
        )
        .unwrap();
        let shards = [
            EnvelopeSoa::from_envelope(&lo),
            EnvelopeSoa::from_envelope(&hi),
        ];
        let frames = [
            Vector::from_slice(&[0.5]),
            Vector::from_slice(&[10.5]),
            Vector::from_slice(&[5.0]),
        ];
        let matrix = Matrix::from_columns(&frames).unwrap();
        let mask = union_contained_mask(&shards, &matrix, 0.0);
        assert!(mask.is_contained(0));
        assert!(mask.is_contained(1));
        assert!(!mask.is_contained(2));
        assert_eq!(mask.count_contained(), 2);
    }
}

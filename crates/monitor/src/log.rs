//! Compact binary logging of activation vectors.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use dpv_tensor::Vector;

use crate::MonitorError;

/// A compact append-only log of activation vectors.
///
/// Each record is framed as a `u32` length followed by that many
/// little-endian `f64` values. The log is the persistence format for ODD
/// evidence: the activations gathered during a data-collection campaign can
/// be stored, shipped and replayed into [`crate::ActivationEnvelope`]
/// construction without keeping the original images.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ActivationLog {
    buffer: BytesMut,
    records: usize,
}

impl ActivationLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of records appended so far.
    pub fn len(&self) -> usize {
        self.records
    }

    /// Returns `true` when the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.records == 0
    }

    /// Number of bytes the encoded log occupies.
    pub fn byte_len(&self) -> usize {
        self.buffer.len()
    }

    /// Appends one activation vector.
    pub fn push(&mut self, activation: &Vector) {
        self.buffer.put_u32_le(activation.len() as u32);
        for v in activation.iter() {
            self.buffer.put_f64_le(*v);
        }
        self.records += 1;
    }

    /// Freezes the log into an immutable byte buffer.
    pub fn to_bytes(&self) -> Bytes {
        self.buffer.clone().freeze()
    }

    /// Decodes a byte buffer produced by [`ActivationLog::to_bytes`].
    ///
    /// # Errors
    /// Returns [`MonitorError::MalformedLog`] when the buffer is truncated
    /// or malformed.
    pub fn decode(mut bytes: Bytes) -> Result<Vec<Vector>, MonitorError> {
        let mut out = Vec::new();
        while bytes.has_remaining() {
            if bytes.remaining() < 4 {
                return Err(MonitorError::MalformedLog(
                    "truncated record header".to_string(),
                ));
            }
            let len = bytes.get_u32_le() as usize;
            if bytes.remaining() < len * 8 {
                return Err(MonitorError::MalformedLog(format!(
                    "truncated record body: need {} bytes, have {}",
                    len * 8,
                    bytes.remaining()
                )));
            }
            let mut values = Vec::with_capacity(len);
            for _ in 0..len {
                values.push(bytes.get_f64_le());
            }
            out.push(Vector::from_vec(values));
        }
        Ok(out)
    }
}

impl Extend<Vector> for ActivationLog {
    fn extend<T: IntoIterator<Item = Vector>>(&mut self, iter: T) {
        for v in iter {
            self.push(&v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_values() {
        let mut log = ActivationLog::new();
        let records = vec![
            Vector::from_slice(&[1.0, -2.5, 3.25]),
            Vector::from_slice(&[0.0]),
            Vector::zeros(5),
        ];
        for r in &records {
            log.push(r);
        }
        assert_eq!(log.len(), 3);
        assert!(!log.is_empty());
        let decoded = ActivationLog::decode(log.to_bytes()).unwrap();
        assert_eq!(decoded, records);
    }

    #[test]
    fn byte_layout_is_compact() {
        let mut log = ActivationLog::new();
        log.push(&Vector::zeros(4));
        assert_eq!(log.byte_len(), 4 + 4 * 8);
    }

    #[test]
    fn truncated_buffers_are_rejected() {
        let mut log = ActivationLog::new();
        log.push(&Vector::from_slice(&[1.0, 2.0]));
        let bytes = log.to_bytes();
        let truncated = bytes.slice(0..bytes.len() - 3);
        assert!(ActivationLog::decode(truncated).is_err());
        let tiny = bytes.slice(0..2);
        assert!(ActivationLog::decode(tiny).is_err());
    }

    #[test]
    fn extend_appends_all_records() {
        let mut log = ActivationLog::new();
        log.extend((0..10).map(|i| Vector::filled(2, i as f64)));
        assert_eq!(log.len(), 10);
        let decoded = ActivationLog::decode(log.to_bytes()).unwrap();
        assert_eq!(decoded.len(), 10);
        assert_eq!(decoded[7][0], 7.0);
    }

    #[test]
    fn empty_log_decodes_to_nothing() {
        let log = ActivationLog::new();
        assert!(log.is_empty());
        assert_eq!(ActivationLog::decode(log.to_bytes()).unwrap().len(), 0);
    }
}

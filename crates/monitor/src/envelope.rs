//! The activation envelope `S̃` built from training-data activations.

use serde::{Deserialize, Serialize};

use dpv_absint::{BoxDomain, Interval, OctagonLite};
use dpv_nn::Network;
use dpv_tensor::{Matrix, Vector};

use crate::{MonitorError, Violation, ViolationKind};

/// An over-approximation of the layer-`l` activations observed on a data
/// set: per-neuron `[min, max]` plus `[min, max]` of every adjacent-neuron
/// difference, optionally widened by a margin.
///
/// This is the set `S̃` of the paper's assume-guarantee verification: it
/// over-approximates the activations of the *training data* (not of every
/// possible input), so any proof relative to it must be accompanied by a
/// runtime monitor checking containment (see [`crate::RuntimeMonitor`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActivationEnvelope {
    layer: usize,
    octagon: OctagonLite,
    samples: usize,
    margin: f64,
}

impl ActivationEnvelope {
    /// Builds an envelope from already-computed activation vectors at the
    /// cut layer.
    ///
    /// # Errors
    /// Returns [`MonitorError::EmptyActivations`] when `activations` is
    /// empty — an envelope is the hull of observed data, so zero samples
    /// leave nothing to build.
    pub fn from_activations(
        layer: usize,
        activations: &[Vector],
        margin: f64,
    ) -> Result<Self, MonitorError> {
        if activations.is_empty() {
            return Err(MonitorError::EmptyActivations);
        }
        let mut octagon = OctagonLite::from_samples(activations);
        if margin > 0.0 {
            octagon.widen(margin);
        }
        Ok(Self {
            layer,
            octagon,
            samples: activations.len(),
            margin,
        })
    }

    /// Runs every input through `network` up to layer `layer` (zero-based)
    /// and builds the envelope of the resulting activations.
    ///
    /// # Errors
    /// Returns [`MonitorError::EmptyActivations`] when `inputs` is empty.
    ///
    /// # Panics
    /// Panics when `layer` is out of range for the network.
    pub fn from_inputs(
        network: &Network,
        layer: usize,
        inputs: &[Vector],
        margin: f64,
    ) -> Result<Self, MonitorError> {
        let activations: Vec<Vector> = inputs
            .iter()
            .map(|x| network.activation_at(layer, x))
            .collect();
        Self::from_activations(layer, &activations, margin)
    }

    /// The cut layer this envelope describes (zero-based layer index).
    pub fn layer(&self) -> usize {
        self.layer
    }

    /// Number of activation samples aggregated into the envelope.
    pub fn sample_count(&self) -> usize {
        self.samples
    }

    /// The widening margin that was applied.
    pub fn margin(&self) -> f64 {
        self.margin
    }

    /// Dimension of the monitored activation vector.
    pub fn dim(&self) -> usize {
        self.octagon.dim()
    }

    /// Per-neuron interval bounds.
    pub fn neuron_bounds(&self) -> &[Interval] {
        self.octagon.bounds()
    }

    /// Adjacent-difference interval bounds.
    pub fn diff_bounds(&self) -> &[Interval] {
        self.octagon.diffs()
    }

    /// The underlying octagon-lite abstraction.
    pub fn octagon(&self) -> &OctagonLite {
        &self.octagon
    }

    /// The box part only (dropping the difference constraints) — the
    /// ablation of experiment E4.
    pub fn box_only(&self) -> BoxDomain {
        self.octagon.to_box_domain()
    }

    /// Returns `true` when the activation vector satisfies every neuron
    /// bound and every adjacent-difference bound.
    pub fn contains(&self, activation: &Vector, tol: f64) -> bool {
        self.octagon.contains(activation.as_slice(), tol)
    }

    /// Returns `true` when the activation satisfies the per-neuron bounds
    /// (ignoring the difference constraints).
    pub fn box_contains(&self, activation: &Vector, tol: f64) -> bool {
        use dpv_absint::AbstractDomain;
        self.box_only().box_contains(activation.as_slice(), tol)
    }

    /// Merges another envelope over the same layer and dimension (e.g. built
    /// from a second data collection campaign).
    ///
    /// # Panics
    /// Panics when layers or dimensions differ.
    pub fn merge(&self, other: &ActivationEnvelope) -> ActivationEnvelope {
        assert_eq!(
            self.layer, other.layer,
            "cannot merge envelopes of different layers"
        );
        assert_eq!(
            self.dim(),
            other.dim(),
            "cannot merge envelopes of different dimensions"
        );
        let bounds: Vec<Interval> = self
            .neuron_bounds()
            .iter()
            .zip(other.neuron_bounds().iter())
            .map(|(a, b)| a.join(b))
            .collect();
        let diffs: Vec<Interval> = self
            .diff_bounds()
            .iter()
            .zip(other.diff_bounds().iter())
            .map(|(a, b)| a.join(b))
            .collect();
        ActivationEnvelope {
            layer: self.layer,
            octagon: OctagonLite::from_parts(bounds, diffs),
            samples: self.samples + other.samples,
            margin: self.margin.max(other.margin),
        }
    }

    /// Every constraint of the envelope the activation violates (empty iff
    /// [`ActivationEnvelope::contains`] holds at the same tolerance). This
    /// is the single source of the violation diagnostics reported by
    /// [`crate::RuntimeMonitor`] and by the sharded monitor in `dpv-shard`.
    pub fn violations(&self, activation: &Vector, tol: f64) -> Vec<Violation> {
        let mut violations = Vec::new();
        for (i, interval) in self.neuron_bounds().iter().enumerate() {
            let v = activation[i];
            if !interval.contains(v, tol) {
                violations.push(Violation {
                    kind: ViolationKind::NeuronBound,
                    index: i,
                    value: v,
                    lower: interval.lo,
                    upper: interval.hi,
                });
            }
        }
        for (i, interval) in self.diff_bounds().iter().enumerate() {
            let d = activation[i + 1] - activation[i];
            if !interval.contains(d, tol) {
                violations.push(Violation {
                    kind: ViolationKind::AdjacentDifference,
                    index: i,
                    value: d,
                    lower: interval.lo,
                    upper: interval.hi,
                });
            }
        }
        violations
    }

    /// Fraction of a set of activations that falls inside the envelope —
    /// the coverage statistic reported in the experiments.
    ///
    /// Routed through the batched SoA containment sweep
    /// ([`crate::union_contained_mask`]) so coverage statistics and the
    /// batched monitors share one containment code path.
    pub fn coverage(&self, activations: &[Vector], tol: f64) -> f64 {
        if activations.is_empty() {
            return 1.0;
        }
        let frames = Matrix::from_columns(activations)
            .expect("coverage activations must share one dimension");
        let soa = crate::EnvelopeSoa::from_envelope(self);
        let mask = crate::union_contained_mask(std::slice::from_ref(&soa), &frames, tol);
        mask.count_contained() as f64 / activations.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpv_nn::{Activation, NetworkBuilder};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn samples(n: usize, dim: usize, seed: u64) -> Vec<Vector> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Vector::from_vec((0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect()))
            .collect()
    }

    #[test]
    fn envelope_contains_every_training_activation() {
        let acts = samples(100, 5, 1);
        let env = ActivationEnvelope::from_activations(3, &acts, 0.0).unwrap();
        assert_eq!(env.layer(), 3);
        assert_eq!(env.sample_count(), 100);
        assert_eq!(env.dim(), 5);
        for a in &acts {
            assert!(env.contains(a, 1e-12));
        }
    }

    #[test]
    fn from_inputs_matches_manual_activations() {
        let mut rng = StdRng::seed_from_u64(2);
        let net = NetworkBuilder::new(3)
            .dense(4, &mut rng)
            .activation(Activation::ReLU)
            .dense(2, &mut rng)
            .build();
        let inputs = samples(30, 3, 3);
        let env = ActivationEnvelope::from_inputs(&net, 1, &inputs, 0.0).unwrap();
        let manual: Vec<Vector> = inputs.iter().map(|x| net.activation_at(1, x)).collect();
        let manual_env = ActivationEnvelope::from_activations(1, &manual, 0.0).unwrap();
        assert_eq!(env.neuron_bounds(), manual_env.neuron_bounds());
        assert_eq!(env.diff_bounds(), manual_env.diff_bounds());
    }

    #[test]
    fn margin_widens_the_envelope() {
        let acts = vec![
            Vector::from_slice(&[0.0, 1.0]),
            Vector::from_slice(&[0.5, 0.5]),
        ];
        let tight = ActivationEnvelope::from_activations(0, &acts, 0.0).unwrap();
        let wide = ActivationEnvelope::from_activations(0, &acts, 0.2).unwrap();
        assert!(!tight.contains(&Vector::from_slice(&[0.6, 0.6]), 0.0));
        assert!(wide.contains(&Vector::from_slice(&[0.6, 0.6]), 0.0));
        assert_eq!(wide.margin(), 0.2);
    }

    #[test]
    fn difference_constraints_restrict_beyond_the_box() {
        // Activations always have a[1] = a[0] + 1.
        let acts: Vec<Vector> = (0..20)
            .map(|i| {
                let base = i as f64 / 10.0;
                Vector::from_slice(&[base, base + 1.0])
            })
            .collect();
        let env = ActivationEnvelope::from_activations(0, &acts, 0.0).unwrap();
        let corner = Vector::from_slice(&[0.0, 2.9]);
        assert!(env.box_contains(&corner, 1e-9));
        assert!(!env.contains(&corner, 1e-9));
    }

    #[test]
    fn merge_unions_the_ranges() {
        let a = ActivationEnvelope::from_activations(2, &samples(20, 3, 5), 0.0).unwrap();
        let b = ActivationEnvelope::from_activations(2, &samples(20, 3, 6), 0.0).unwrap();
        let merged = a.merge(&b);
        assert_eq!(merged.sample_count(), 40);
        for s in samples(20, 3, 5).iter().chain(samples(20, 3, 6).iter()) {
            assert!(merged.contains(s, 1e-12));
        }
    }

    #[test]
    fn coverage_statistics() {
        let acts = samples(50, 4, 7);
        let env = ActivationEnvelope::from_activations(0, &acts, 0.0).unwrap();
        assert_eq!(env.coverage(&acts, 1e-12), 1.0);
        let far: Vec<Vector> = (0..10).map(|_| Vector::filled(4, 100.0)).collect();
        assert_eq!(env.coverage(&far, 1e-12), 0.0);
        assert_eq!(env.coverage(&[], 0.0), 1.0);
    }

    #[test]
    fn empty_activation_list_is_an_error_not_a_panic() {
        assert_eq!(
            ActivationEnvelope::from_activations(0, &[], 0.0),
            Err(MonitorError::EmptyActivations)
        );
        let mut rng = StdRng::seed_from_u64(8);
        let net = NetworkBuilder::new(2).dense(2, &mut rng).build();
        assert_eq!(
            ActivationEnvelope::from_inputs(&net, 0, &[], 0.0),
            Err(MonitorError::EmptyActivations)
        );
    }
}

//! Property-based parity of the batched monitor path: for any envelope and
//! any frame mix, `check_frames` must produce verdicts — including the full
//! violation lists — identical to calling `check` frame by frame, with the
//! same cumulative statistics; and `coverage`, which routes through the same
//! SoA sweep, must equal the per-frame containment fraction.

use dpv_monitor::{ActivationEnvelope, RuntimeMonitor};
use dpv_nn::{Activation, Network, NetworkBuilder};
use dpv_tensor::Vector;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn fixture(seed: u64) -> (Network, ActivationEnvelope, Vec<Vector>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let input_dim = rng.gen_range(2usize..5);
    let net = NetworkBuilder::new(input_dim)
        .dense(rng.gen_range(2usize..7), &mut rng)
        .activation(Activation::ReLU)
        .dense(rng.gen_range(2usize..5), &mut rng)
        .build();
    let cut_layer = 1;
    let training: Vec<Vector> = (0..rng.gen_range(5usize..40))
        .map(|_| Vector::from_vec((0..input_dim).map(|_| rng.gen_range(-1.0..1.0)).collect()))
        .collect();
    let margin = if rng.gen_bool(0.5) { 0.0 } else { 0.05 };
    let envelope = ActivationEnvelope::from_inputs(&net, cut_layer, &training, margin).unwrap();
    // Frames mixing in-distribution inputs with far-out ones, so both
    // verdict variants (and non-empty violation lists) are exercised.
    let frames: Vec<Vector> = (0..rng.gen_range(0usize..90))
        .map(|_| {
            let scale = if rng.gen_bool(0.6) { 1.0 } else { 50.0 };
            Vector::from_vec(
                (0..input_dim)
                    .map(|_| scale * rng.gen_range(-1.0..1.0))
                    .collect(),
            )
        })
        .collect();
    (net, envelope, frames)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `check_frames` verdicts and statistics are identical to per-frame
    /// `check` in order.
    #[test]
    fn check_frames_matches_per_frame_check(seed in 0u64..500) {
        let (net, envelope, frames) = fixture(seed);
        let batched_monitor =
            RuntimeMonitor::new(net.clone(), 1, envelope.clone()).unwrap();
        let scalar_monitor = RuntimeMonitor::new(net, 1, envelope).unwrap();
        let batched = batched_monitor.check_frames(&frames);
        let scalar: Vec<_> = frames.iter().map(|f| scalar_monitor.check(f)).collect();
        prop_assert_eq!(&batched, &scalar);
        prop_assert_eq!(batched_monitor.report(), scalar_monitor.report());
    }

    /// `coverage` (routed through the batched SoA sweep) equals the
    /// per-frame containment fraction — the regression guard that keeps the
    /// statistic on the batch code path without drifting from `contains`.
    #[test]
    fn coverage_equals_per_frame_containment_fraction(seed in 0u64..500) {
        let (net, envelope, frames) = fixture(seed);
        if frames.is_empty() {
            prop_assert_eq!(envelope.coverage(&[], 1e-9), 1.0);
            return;
        }
        let activations: Vec<Vector> =
            frames.iter().map(|f| net.activation_at(1, f)).collect();
        let expected = activations
            .iter()
            .filter(|a| envelope.contains(a, 1e-9))
            .count() as f64
            / activations.len() as f64;
        prop_assert_eq!(envelope.coverage(&activations, 1e-9), expected);
    }
}

//! Point-in-time trace snapshots and the two exporters.
//!
//! [`TraceSnapshot`] is the machine-readable view of everything a tracer
//! recorded: every counter/gauge/histogram plus the surviving events of
//! every ring buffer. It exports to JSON ([`TraceSnapshot::to_json`]) and
//! imports back ([`TraceSnapshot::from_json`]) with a self-contained
//! parser (the workspace's serde shim is a deliberate no-op), and dumps
//! Prometheus-style text ([`TraceSnapshot::to_prometheus`]) for scrape
//! endpoints.

use crate::event::{EventKind, TraceEvent};
use crate::metrics::bucket_upper_bound;

/// One gauge's exported state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GaugeSnapshot {
    /// Stable metric name.
    pub name: String,
    /// Value at snapshot time.
    pub value: u64,
    /// High-water mark since the tracer was created.
    pub high_water: u64,
}

/// One histogram's exported state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Stable metric name.
    pub name: String,
    /// Observations recorded.
    pub count: u64,
    /// Sum of observed values (wrapping at `u64::MAX`).
    pub sum: u64,
    /// Non-empty `(bucket index, count)` pairs; bucket `b ≥ 1` spans
    /// `[2^(b-1), 2^b)`, bucket 0 holds exact zeros.
    pub buckets: Vec<(usize, u64)>,
}

/// One ring buffer's exported events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerEvents {
    /// Ring buffer (worker) id.
    pub worker: u16,
    /// Events overwritten before this snapshot could read them.
    pub dropped: u64,
    /// Surviving events, oldest first.
    pub events: Vec<TraceEvent>,
}

/// A machine-readable point-in-time view of a tracer.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceSnapshot {
    /// Whether the tracer was enabled (a disabled tracer snapshots to
    /// the empty default).
    pub enabled: bool,
    /// Total recording operations performed (counter adds, gauge sets,
    /// histogram observations and events) — the basis of the disabled-
    /// overhead bound in `benches/e14_observability.rs`.
    pub record_ops: u64,
    /// Every counter as `(name, value)`, in fixed export order.
    pub counters: Vec<(String, u64)>,
    /// Every gauge, in fixed export order.
    pub gauges: Vec<GaugeSnapshot>,
    /// Every histogram, in fixed export order.
    pub histograms: Vec<HistogramSnapshot>,
    /// Per-worker surviving events.
    pub workers: Vec<WorkerEvents>,
}

impl TraceSnapshot {
    /// A named counter's value (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |&(_, v)| v)
    }

    /// Total events overwritten across every ring buffer.
    pub fn dropped_events(&self) -> u64 {
        self.workers.iter().map(|w| w.dropped).sum()
    }

    /// Every surviving event of every worker, flattened.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.workers.iter().flat_map(|w| w.events.iter())
    }

    /// Serialises the snapshot to JSON. The output is deterministic
    /// (fixed key order) and round-trips through
    /// [`TraceSnapshot::from_json`].
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\"enabled\":");
        out.push_str(if self.enabled { "true" } else { "false" });
        out.push_str(",\"record_ops\":");
        push_u64(&mut out, self.record_ops);
        out.push_str(",\"counters\":{");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_key(&mut out, name);
            push_u64(&mut out, *value);
        }
        out.push_str("},\"gauges\":{");
        for (i, gauge) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_key(&mut out, &gauge.name);
            out.push_str("{\"value\":");
            push_u64(&mut out, gauge.value);
            out.push_str(",\"high_water\":");
            push_u64(&mut out, gauge.high_water);
            out.push('}');
        }
        out.push_str("},\"histograms\":{");
        for (i, histogram) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_key(&mut out, &histogram.name);
            out.push_str("{\"count\":");
            push_u64(&mut out, histogram.count);
            out.push_str(",\"sum\":");
            push_u64(&mut out, histogram.sum);
            out.push_str(",\"buckets\":{");
            for (j, (bucket, count)) in histogram.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                push_key(&mut out, &bucket.to_string());
                push_u64(&mut out, *count);
            }
            out.push_str("}}");
        }
        out.push_str("},\"workers\":[");
        for (i, worker) in self.workers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"worker\":");
            push_u64(&mut out, u64::from(worker.worker));
            out.push_str(",\"dropped\":");
            push_u64(&mut out, worker.dropped);
            out.push_str(",\"events\":[");
            for (j, event) in worker.events.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str("{\"kind\":\"");
                out.push_str(event.kind.name());
                out.push_str("\",\"at_ns\":");
                push_u64(&mut out, event.at_ns);
                out.push_str(",\"dur_ns\":");
                push_u64(&mut out, event.dur_ns);
                out.push_str(",\"request\":");
                push_u64(&mut out, event.request);
                out.push_str(",\"obligation\":");
                push_u64(&mut out, event.obligation);
                out.push_str(",\"detail\":");
                push_u64(&mut out, event.detail);
                out.push('}');
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }

    /// Parses a snapshot previously produced by
    /// [`TraceSnapshot::to_json`].
    ///
    /// # Errors
    /// A human-readable message when `input` is not valid snapshot JSON.
    pub fn from_json(input: &str) -> Result<TraceSnapshot, String> {
        let value = json::parse(input)?;
        let root = value.as_object("snapshot root")?;

        let mut snapshot = TraceSnapshot {
            enabled: json::get(root, "enabled")?.as_bool("enabled")?,
            record_ops: json::get(root, "record_ops")?.as_u64("record_ops")?,
            ..TraceSnapshot::default()
        };
        for (name, value) in json::get(root, "counters")?.as_object("counters")? {
            snapshot
                .counters
                .push((name.clone(), value.as_u64("counter value")?));
        }
        for (name, value) in json::get(root, "gauges")?.as_object("gauges")? {
            let body = value.as_object("gauge body")?;
            snapshot.gauges.push(GaugeSnapshot {
                name: name.clone(),
                value: json::get(body, "value")?.as_u64("gauge value")?,
                high_water: json::get(body, "high_water")?.as_u64("gauge high_water")?,
            });
        }
        for (name, value) in json::get(root, "histograms")?.as_object("histograms")? {
            let body = value.as_object("histogram body")?;
            let mut buckets = Vec::new();
            for (bucket, count) in json::get(body, "buckets")?.as_object("buckets")? {
                let index = bucket
                    .parse::<usize>()
                    .map_err(|e| format!("bucket index {bucket:?}: {e}"))?;
                buckets.push((index, count.as_u64("bucket count")?));
            }
            snapshot.histograms.push(HistogramSnapshot {
                name: name.clone(),
                count: json::get(body, "count")?.as_u64("histogram count")?,
                sum: json::get(body, "sum")?.as_u64("histogram sum")?,
                buckets,
            });
        }
        for worker in json::get(root, "workers")?.as_array("workers")? {
            let body = worker.as_object("worker body")?;
            let mut events = Vec::new();
            for event in json::get(body, "events")?.as_array("events")? {
                let fields = event.as_object("event body")?;
                let kind_name = json::get(fields, "kind")?.as_str("event kind")?;
                let kind = EventKind::from_name(kind_name)
                    .ok_or_else(|| format!("unknown event kind {kind_name:?}"))?;
                events.push(TraceEvent {
                    kind,
                    worker: u16::try_from(json::get(body, "worker")?.as_u64("worker id")?)
                        .map_err(|e| format!("worker id: {e}"))?,
                    at_ns: json::get(fields, "at_ns")?.as_u64("at_ns")?,
                    dur_ns: json::get(fields, "dur_ns")?.as_u64("dur_ns")?,
                    request: json::get(fields, "request")?.as_u64("request")?,
                    obligation: json::get(fields, "obligation")?.as_u64("obligation")?,
                    detail: json::get(fields, "detail")?.as_u64("detail")?,
                });
            }
            snapshot.workers.push(WorkerEvents {
                worker: u16::try_from(json::get(body, "worker")?.as_u64("worker id")?)
                    .map_err(|e| format!("worker id: {e}"))?,
                dropped: json::get(body, "dropped")?.as_u64("dropped")?,
                events,
            });
        }
        Ok(snapshot)
    }

    /// Renders the metric half of the snapshot as Prometheus exposition
    /// text (`dpv_trace_*` families; events are JSON-only).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::with_capacity(1024);
        for (name, value) in &self.counters {
            let metric = prom_name(name);
            out.push_str(&format!(
                "# TYPE dpv_trace_{metric} counter\ndpv_trace_{metric} {value}\n"
            ));
        }
        for gauge in &self.gauges {
            let metric = prom_name(&gauge.name);
            out.push_str(&format!(
                "# TYPE dpv_trace_{metric} gauge\ndpv_trace_{metric} {}\n\
                 # TYPE dpv_trace_{metric}_high_water gauge\ndpv_trace_{metric}_high_water {}\n",
                gauge.value, gauge.high_water
            ));
        }
        for histogram in &self.histograms {
            let metric = prom_name(&histogram.name);
            out.push_str(&format!("# TYPE dpv_trace_{metric} histogram\n"));
            let mut cumulative = 0u64;
            for &(bucket, count) in &histogram.buckets {
                cumulative += count;
                out.push_str(&format!(
                    "dpv_trace_{metric}_bucket{{le=\"{}\"}} {cumulative}\n",
                    bucket_upper_bound(bucket)
                ));
            }
            out.push_str(&format!(
                "dpv_trace_{metric}_bucket{{le=\"+Inf\"}} {}\n\
                 dpv_trace_{metric}_sum {}\ndpv_trace_{metric}_count {}\n",
                histogram.count, histogram.sum, histogram.count
            ));
        }
        let dropped = self.dropped_events();
        out.push_str(&format!(
            "# TYPE dpv_trace_dropped_events counter\ndpv_trace_dropped_events {dropped}\n\
             # TYPE dpv_trace_record_ops counter\ndpv_trace_record_ops {}\n",
            self.record_ops
        ));
        out
    }
}

fn push_u64(out: &mut String, value: u64) {
    out.push_str(&value.to_string());
}

/// Writes `"name":` — metric/bucket keys are plain kebab-case or digits,
/// never needing escapes.
fn push_key(out: &mut String, name: &str) {
    out.push('"');
    out.push_str(name);
    out.push_str("\":");
}

fn prom_name(name: &str) -> String {
    name.replace('-', "_")
}

/// A minimal JSON reader covering exactly the subset
/// [`TraceSnapshot::to_json`] emits: objects, arrays, strings without
/// exotic escapes, booleans and unsigned integers.
mod json {
    pub(super) enum Value {
        Bool(bool),
        Num(u64),
        Str(String),
        Arr(Vec<Value>),
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        pub(super) fn as_bool(&self, what: &str) -> Result<bool, String> {
            match self {
                Value::Bool(b) => Ok(*b),
                _ => Err(format!("{what}: expected a boolean")),
            }
        }

        pub(super) fn as_u64(&self, what: &str) -> Result<u64, String> {
            match self {
                Value::Num(n) => Ok(*n),
                _ => Err(format!("{what}: expected an unsigned integer")),
            }
        }

        pub(super) fn as_str(&self, what: &str) -> Result<&str, String> {
            match self {
                Value::Str(s) => Ok(s),
                _ => Err(format!("{what}: expected a string")),
            }
        }

        pub(super) fn as_array(&self, what: &str) -> Result<&[Value], String> {
            match self {
                Value::Arr(items) => Ok(items),
                _ => Err(format!("{what}: expected an array")),
            }
        }

        pub(super) fn as_object(&self, what: &str) -> Result<&[(String, Value)], String> {
            match self {
                Value::Obj(fields) => Ok(fields),
                _ => Err(format!("{what}: expected an object")),
            }
        }
    }

    pub(super) fn get<'v>(fields: &'v [(String, Value)], key: &str) -> Result<&'v Value, String> {
        fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("missing key {key:?}"))
    }

    pub(super) fn parse(input: &str) -> Result<Value, String> {
        let bytes = input.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }

    fn skip_ws(bytes: &[u8], pos: &mut usize) {
        while bytes
            .get(*pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            *pos += 1;
        }
    }

    fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), String> {
        if bytes.get(*pos) == Some(&byte) {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", char::from(byte), *pos))
        }
    }

    fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b'{') => parse_object(bytes, pos),
            Some(b'[') => parse_array(bytes, pos),
            Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
            Some(b't') if bytes[*pos..].starts_with(b"true") => {
                *pos += 4;
                Ok(Value::Bool(true))
            }
            Some(b'f') if bytes[*pos..].starts_with(b"false") => {
                *pos += 5;
                Ok(Value::Bool(false))
            }
            Some(b'0'..=b'9') => parse_number(bytes, pos),
            _ => Err(format!("unexpected input at byte {}", *pos)),
        }
    }

    fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(bytes, pos, b'{')?;
        let mut fields = Vec::new();
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            skip_ws(bytes, pos);
            let key = parse_string(bytes, pos)?;
            skip_ws(bytes, pos);
            expect(bytes, pos, b':')?;
            fields.push((key, parse_value(bytes, pos)?));
            skip_ws(bytes, pos);
            match bytes.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
            }
        }
    }

    fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(bytes, pos, b'[')?;
        let mut items = Vec::new();
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(parse_value(bytes, pos)?);
            skip_ws(bytes, pos);
            match bytes.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
            }
        }
    }

    fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
        expect(bytes, pos, b'"')?;
        let start = *pos;
        while let Some(&b) = bytes.get(*pos) {
            if b == b'"' {
                let text = std::str::from_utf8(&bytes[start..*pos])
                    .map_err(|e| format!("invalid utf-8 in string: {e}"))?;
                *pos += 1;
                return Ok(text.to_string());
            }
            if b == b'\\' {
                return Err(format!("escape sequences unsupported at byte {}", *pos));
            }
            *pos += 1;
        }
        Err("unterminated string".to_string())
    }

    fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        while bytes.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
        std::str::from_utf8(&bytes[start..*pos])
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .map(Value::Num)
            .ok_or_else(|| format!("invalid integer at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TraceSnapshot {
        TraceSnapshot {
            enabled: true,
            record_ops: 42,
            counters: vec![("requests".to_string(), 3), ("retries".to_string(), 0)],
            gauges: vec![GaugeSnapshot {
                name: "queue-depth".to_string(),
                value: 1,
                high_water: 8,
            }],
            histograms: vec![HistogramSnapshot {
                name: "solve-ns".to_string(),
                count: 3,
                sum: 700,
                buckets: vec![(0, 1), (9, 2)],
            }],
            workers: vec![WorkerEvents {
                worker: 2,
                dropped: 5,
                events: vec![TraceEvent {
                    kind: EventKind::Verdict,
                    worker: 2,
                    at_ns: 10,
                    dur_ns: 0,
                    request: 1,
                    obligation: 4,
                    detail: 1,
                }],
            }],
        }
    }

    #[test]
    fn json_round_trips_bit_identically() {
        let snapshot = sample();
        let json = snapshot.to_json();
        let parsed = TraceSnapshot::from_json(&json).expect("parses");
        assert_eq!(parsed, snapshot);
        // And the re-serialisation is byte-identical (deterministic order).
        assert_eq!(parsed.to_json(), json);
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let snapshot = TraceSnapshot::default();
        let parsed = TraceSnapshot::from_json(&snapshot.to_json()).expect("parses");
        assert_eq!(parsed, snapshot);
    }

    #[test]
    fn malformed_json_is_rejected_with_context() {
        assert!(TraceSnapshot::from_json("").is_err());
        assert!(TraceSnapshot::from_json("{}").is_err());
        assert!(TraceSnapshot::from_json("{\"enabled\":true").is_err());
        let json = sample().to_json();
        assert!(TraceSnapshot::from_json(&json[..json.len() - 1]).is_err());
        assert!(TraceSnapshot::from_json(&format!("{json}x")).is_err());
    }

    #[test]
    fn prometheus_dump_has_families_and_cumulative_buckets() {
        let text = sample().to_prometheus();
        assert!(text.contains("# TYPE dpv_trace_requests counter"));
        assert!(text.contains("dpv_trace_requests 3"));
        assert!(text.contains("dpv_trace_queue_depth_high_water 8"));
        assert!(text.contains("dpv_trace_solve_ns_bucket{le=\"0\"} 1"));
        // Bucket 9 (le=511) is cumulative: 1 zero + 2 in-bucket = 3.
        assert!(text.contains("dpv_trace_solve_ns_bucket{le=\"511\"} 3"));
        assert!(text.contains("dpv_trace_solve_ns_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("dpv_trace_solve_ns_sum 700"));
        assert!(text.contains("dpv_trace_dropped_events 5"));
    }

    #[test]
    fn counter_lookup_and_dropped_totals() {
        let snapshot = sample();
        assert_eq!(snapshot.counter("requests"), 3);
        assert_eq!(snapshot.counter("absent"), 0);
        assert_eq!(snapshot.dropped_events(), 5);
        assert_eq!(snapshot.events().count(), 1);
    }
}

//! The event model: spans and instants encoded as fixed-width words.
//!
//! Every recorded event is six `u64` words — kind + worker, timestamp,
//! duration, request, obligation, detail — so a ring-buffer slot has a
//! fixed shape and recording never allocates. Span hierarchy is implicit
//! in the tags: a request event carries only a request sequence number,
//! an obligation-scoped event carries both the request and the global
//! obligation index, and solver-internal events inherit whatever tags
//! the [`crate::TraceHandle`] they were recorded through carries.

/// Number of `u64` words one encoded event occupies.
pub(crate) const EVENT_WORDS: usize = 6;

/// Request tag meaning "not attached to any request".
pub const NO_REQUEST: u64 = 0;

/// Obligation tag meaning "not attached to any obligation".
pub const NO_OBLIGATION: u64 = u64::MAX;

/// What one recorded event describes. The hierarchy, outermost first:
/// request → obligation → solve attempt → {instantiate, warm LP, cold
/// LP, B&B progress, escalated retry}.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum EventKind {
    /// A request entered the server (`detail` = obligations decomposed).
    RequestBegin = 0,
    /// A request completed (`dur_ns` = end-to-end wall clock, `detail` =
    /// obligations decomposed).
    RequestEnd = 1,
    /// An obligation was pushed into the work queue.
    Enqueue = 2,
    /// A worker picked the obligation up (`detail` = queue-wait ns).
    Dequeue = 3,
    /// The obligation was answered from the verdict cache, no solve.
    DedupHit = 4,
    /// A template instantiation (bound re-tightening) span.
    Instantiate = 5,
    /// The primary solve attempt span (`detail` = 1 when warm-seeded).
    SolveAttempt = 6,
    /// The escalated cold retry span after budget exhaustion.
    EscalatedRetry = 7,
    /// The unseeded canonicalisation re-solve span for a seeded
    /// counterexample.
    CanonicalResolve = 8,
    /// A sampled warm (dual-simplex repair) LP node solve (`detail` =
    /// simplex iterations of the sampled solve).
    WarmLp = 9,
    /// A sampled cold (two-phase) LP node solve (`detail` = simplex
    /// iterations of the sampled solve).
    ColdLp = 10,
    /// Sampled branch-and-bound progress (`detail` = nodes explored so
    /// far in the current search tree).
    BnbProgress = 11,
    /// An obligation's final verdict (`detail` = a
    /// [`VerdictClass`] discriminant).
    Verdict = 12,
}

impl EventKind {
    /// Every kind, in discriminant order.
    pub const ALL: [EventKind; 13] = [
        EventKind::RequestBegin,
        EventKind::RequestEnd,
        EventKind::Enqueue,
        EventKind::Dequeue,
        EventKind::DedupHit,
        EventKind::Instantiate,
        EventKind::SolveAttempt,
        EventKind::EscalatedRetry,
        EventKind::CanonicalResolve,
        EventKind::WarmLp,
        EventKind::ColdLp,
        EventKind::BnbProgress,
        EventKind::Verdict,
    ];

    /// Decodes a discriminant; `None` for unknown (e.g. torn) values.
    pub fn from_u8(value: u8) -> Option<EventKind> {
        EventKind::ALL.get(value as usize).copied()
    }

    /// Stable kebab-case name, used by both exporters.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::RequestBegin => "request-begin",
            EventKind::RequestEnd => "request-end",
            EventKind::Enqueue => "enqueue",
            EventKind::Dequeue => "dequeue",
            EventKind::DedupHit => "dedup-hit",
            EventKind::Instantiate => "instantiate",
            EventKind::SolveAttempt => "solve-attempt",
            EventKind::EscalatedRetry => "escalated-retry",
            EventKind::CanonicalResolve => "canonical-resolve",
            EventKind::WarmLp => "warm-lp",
            EventKind::ColdLp => "cold-lp",
            EventKind::BnbProgress => "bnb-progress",
            EventKind::Verdict => "verdict",
        }
    }

    /// Parses a stable name back into a kind (the JSON importer).
    pub fn from_name(name: &str) -> Option<EventKind> {
        EventKind::ALL.into_iter().find(|k| k.name() == name)
    }
}

/// Classification carried in the `detail` word of a
/// [`EventKind::Verdict`] event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum VerdictClass {
    /// The obligation is safe.
    Safe = 0,
    /// A counterexample was found.
    Unsafe = 1,
    /// Unknown / degraded (see the per-failure-reason counters for why).
    Unknown = 2,
}

impl VerdictClass {
    /// Decodes a `detail` word; unknown values fold into
    /// [`VerdictClass::Unknown`].
    pub fn from_u64(value: u64) -> VerdictClass {
        match value {
            0 => VerdictClass::Safe,
            1 => VerdictClass::Unsafe,
            _ => VerdictClass::Unknown,
        }
    }
}

/// One recorded event, decoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// What happened.
    pub kind: EventKind,
    /// Ring buffer (worker) the event was recorded on.
    pub worker: u16,
    /// Nanoseconds since the tracer's epoch (monotonic clock).
    pub at_ns: u64,
    /// Span duration in nanoseconds; 0 for instants.
    pub dur_ns: u64,
    /// Request sequence number, or [`NO_REQUEST`].
    pub request: u64,
    /// Global obligation index, or [`NO_OBLIGATION`].
    pub obligation: u64,
    /// Kind-specific payload (see [`EventKind`]).
    pub detail: u64,
}

impl TraceEvent {
    /// An instantaneous event with no duration, untagged (the recording
    /// [`crate::TraceHandle`] fills in worker/request/obligation tags).
    pub fn instant(kind: EventKind, at_ns: u64, detail: u64) -> TraceEvent {
        TraceEvent {
            kind,
            worker: 0,
            at_ns,
            dur_ns: 0,
            request: NO_REQUEST,
            obligation: NO_OBLIGATION,
            detail,
        }
    }

    /// A span starting at `at_ns` lasting `dur_ns`, untagged.
    pub fn span(kind: EventKind, at_ns: u64, dur_ns: u64, detail: u64) -> TraceEvent {
        TraceEvent {
            dur_ns,
            ..TraceEvent::instant(kind, at_ns, detail)
        }
    }

    pub(crate) fn encode(&self) -> [u64; EVENT_WORDS] {
        [
            u64::from(self.kind as u8) | (u64::from(self.worker) << 8),
            self.at_ns,
            self.dur_ns,
            self.request,
            self.obligation,
            self.detail,
        ]
    }

    /// Decodes a slot; `None` when the kind word is invalid (a torn or
    /// never-written slot).
    pub(crate) fn decode(words: &[u64; EVENT_WORDS]) -> Option<TraceEvent> {
        let kind = EventKind::from_u8((words[0] & 0xFF) as u8)?;
        Some(TraceEvent {
            kind,
            worker: ((words[0] >> 8) & 0xFFFF) as u16,
            at_ns: words[1],
            dur_ns: words[2],
            request: words[3],
            obligation: words[4],
            detail: words[5],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_round_trip_through_discriminants_and_names() {
        for kind in EventKind::ALL {
            assert_eq!(EventKind::from_u8(kind as u8), Some(kind));
            assert_eq!(EventKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(EventKind::from_u8(200), None);
        assert_eq!(EventKind::from_name("no-such-kind"), None);
    }

    #[test]
    fn events_round_trip_through_words() {
        let mut event = TraceEvent::span(EventKind::SolveAttempt, 123, 456, 1);
        event.worker = 7;
        event.request = 9;
        event.obligation = 31;
        assert_eq!(TraceEvent::decode(&event.encode()), Some(event));
        assert_eq!(TraceEvent::decode(&[0xFF, 0, 0, 0, 0, 0]), None);
    }

    #[test]
    fn verdict_classes_fold_unknown_values() {
        assert_eq!(VerdictClass::from_u64(0), VerdictClass::Safe);
        assert_eq!(VerdictClass::from_u64(1), VerdictClass::Unsafe);
        assert_eq!(VerdictClass::from_u64(2), VerdictClass::Unknown);
        assert_eq!(VerdictClass::from_u64(99), VerdictClass::Unknown);
    }
}

//! `dpv-trace` — zero-overhead-when-off tracing, metrics and
//! per-obligation timelines for the solver/serve stack.
//!
//! # Event model
//!
//! A [`Tracer`] owns one shared [`MetricsStore`-shaped] set of typed
//! counters/gauges/histograms ([`CounterId`], [`GaugeId`],
//! [`HistogramId`]) plus one event ring buffer per registered handle.
//! Events ([`TraceEvent`]) are fixed-width six-word records forming an
//! implicit span hierarchy through their tags: request → obligation →
//! solve attempt → {instantiate, warm LP, cold LP, branch-and-bound
//! progress, escalated retry, canonicalisation}. Timestamps are
//! nanoseconds on the monotonic clock since the tracer's creation.
//!
//! # Ring-buffer semantics
//!
//! Each [`TraceHandle`] returned by [`Tracer::register`] records into
//! its own bounded ring (default 4096 events, [`TraceConfig`]), so the
//! hot path takes **no locks**: recording is one `fetch_add` to claim a
//! slot plus seven relaxed/release stores. Memory is bounded; once a
//! ring is full the oldest event is overwritten and a dropped-events
//! counter ticks (surfaced as [`WorkerEvents::dropped`]). Snapshots are
//! optimistic seqlock-style readers: a slot caught mid-write is
//! discarded, never torn. Recording never panics and never allocates.
//!
//! # Sampling
//!
//! Per-LP-node instrumentation would dominate the ring, so
//! [`TraceHandle::lp_node`] always bumps the counters (`bnb-nodes`,
//! `warm-lp-solves`/`cold-lp-solves`, `simplex-iterations`) but emits
//! [`EventKind::WarmLp`]/[`EventKind::ColdLp`] events only every
//! [`TraceConfig::lp_sample_every`]-th solve and
//! [`EventKind::BnbProgress`] every
//! [`TraceConfig::bnb_sample_every`]-th node (the first of each is
//! always sampled). Counters are exact; events are a sampled timeline.
//!
//! # Determinism contract: traced ≡ untraced
//!
//! Tracing is **observational only**. A disabled tracer
//! ([`Tracer::disabled`], the default everywhere) reduces every
//! recording call to a single branch on an `Option` — no clock read, no
//! atomic, no allocation — and enabling tracing must not change any
//! verdict, fold order or cached byte anywhere in the stack: the solver
//! and serve layers only ever *report* through these APIs, never ask
//! them for decisions. `crates/serve/tests/trace_parity.rs` pins the
//! contract by running identical requests traced and untraced and
//! asserting bit-identical reports, and `benches/e14_observability.rs`
//! bounds the disabled-recorder overhead at ≤ 20‰ of request time.
//!
//! # Exporters
//!
//! [`Tracer::snapshot`] produces a [`TraceSnapshot`]: a machine-readable
//! value that serialises to JSON ([`TraceSnapshot::to_json`] /
//! [`TraceSnapshot::from_json`], round-trip exact) and to
//! Prometheus-style exposition text ([`TraceSnapshot::to_prometheus`]).
//!
//! [`MetricsStore`-shaped]: CounterId

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]

mod event;
mod metrics;
mod ring;
mod snapshot;

pub use event::{EventKind, TraceEvent, VerdictClass, NO_OBLIGATION, NO_REQUEST};
pub use metrics::{
    bucket_index, bucket_upper_bound, CounterId, GaugeId, HistogramId, HISTOGRAM_BUCKETS,
};
pub use snapshot::{GaugeSnapshot, HistogramSnapshot, TraceSnapshot, WorkerEvents};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use metrics::MetricsStore;
use ring::RingBuffer;

/// Tuning knobs for an enabled tracer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Ring-buffer capacity (events) of each registered handle; values
    /// below 1 are clamped to 1.
    pub events_per_buffer: usize,
    /// Emit a [`EventKind::BnbProgress`] event every this-many
    /// branch-and-bound nodes (counters stay exact); clamped to ≥ 1.
    pub bnb_sample_every: u64,
    /// Emit a [`EventKind::WarmLp`]/[`EventKind::ColdLp`] event every
    /// this-many LP node solves of that temperature; clamped to ≥ 1.
    pub lp_sample_every: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            events_per_buffer: 4096,
            bnb_sample_every: 64,
            lp_sample_every: 32,
        }
    }
}

#[derive(Debug)]
struct Shared {
    config: TraceConfig,
    epoch: Instant,
    metrics: MetricsStore,
    buffers: Mutex<Vec<Arc<RingBuffer>>>,
    /// Recording *calls* performed (not atomics touched) — the unit of
    /// the disabled-overhead model in `benches/e14_observability.rs`.
    record_ops: AtomicU64,
}

impl Shared {
    fn tick(&self) {
        self.record_ops.fetch_add(1, Ordering::Relaxed);
    }

    fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// The tracer owning all recorded state. Cheap to clone (an `Arc`);
/// the default is disabled and recording through a disabled tracer is a
/// single branch.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    shared: Option<Arc<Shared>>,
}

impl Tracer {
    /// A tracer that records nothing at (provably near-zero) cost.
    pub fn disabled() -> Tracer {
        Tracer { shared: None }
    }

    /// An enabled tracer with default [`TraceConfig`].
    pub fn enabled() -> Tracer {
        Tracer::with_config(TraceConfig::default())
    }

    /// An enabled tracer with explicit tuning.
    pub fn with_config(config: TraceConfig) -> Tracer {
        Tracer {
            shared: Some(Arc::new(Shared {
                config,
                epoch: Instant::now(),
                metrics: MetricsStore::new(),
                buffers: Mutex::new(Vec::new()),
                record_ops: AtomicU64::new(0),
            })),
        }
    }

    /// Whether this tracer records anything.
    pub fn is_enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// Recording calls performed so far (0 when disabled).
    pub fn record_ops(&self) -> u64 {
        self.shared
            .as_ref()
            .map_or(0, |s| s.record_ops.load(Ordering::Relaxed))
    }

    /// Registers a recording handle with its own event ring buffer
    /// (worker id = registration order). On a disabled tracer this is
    /// free and returns a disabled handle.
    pub fn register(&self) -> TraceHandle {
        let Some(shared) = &self.shared else {
            return TraceHandle::disabled();
        };
        let buffer = {
            let mut buffers = match shared.buffers.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            let worker = u16::try_from(buffers.len()).unwrap_or(u16::MAX);
            let buffer = Arc::new(RingBuffer::new(worker, shared.config.events_per_buffer));
            buffers.push(Arc::clone(&buffer));
            buffer
        };
        TraceHandle {
            shared: Some(Arc::clone(shared)),
            buffer: Some(buffer),
            request: NO_REQUEST,
            obligation: NO_OBLIGATION,
        }
    }

    /// A bufferless handle for metric-only recorders (the cache layer):
    /// counters/gauges/histograms work, events are dropped.
    pub fn metrics_handle(&self) -> TraceHandle {
        TraceHandle {
            shared: self.shared.clone(),
            buffer: None,
            request: NO_REQUEST,
            obligation: NO_OBLIGATION,
        }
    }

    /// A point-in-time snapshot of every metric and every surviving
    /// event. A disabled tracer snapshots to the empty default.
    pub fn snapshot(&self) -> TraceSnapshot {
        let Some(shared) = &self.shared else {
            return TraceSnapshot::default();
        };
        let buffers: Vec<Arc<RingBuffer>> = {
            match shared.buffers.lock() {
                Ok(guard) => guard.clone(),
                Err(poisoned) => poisoned.into_inner().clone(),
            }
        };
        TraceSnapshot {
            enabled: true,
            record_ops: shared.record_ops.load(Ordering::Relaxed),
            counters: CounterId::ALL
                .iter()
                .map(|&id| (id.name().to_string(), shared.metrics.counter(id)))
                .collect(),
            gauges: GaugeId::ALL
                .iter()
                .map(|&id| {
                    let (value, high_water) = shared.metrics.gauge(id);
                    GaugeSnapshot {
                        name: id.name().to_string(),
                        value,
                        high_water,
                    }
                })
                .collect(),
            histograms: HistogramId::ALL
                .iter()
                .map(|&id| {
                    let (count, sum, buckets) = shared.metrics.histogram(id);
                    HistogramSnapshot {
                        name: id.name().to_string(),
                        count,
                        sum,
                        buckets,
                    }
                })
                .collect(),
            workers: buffers
                .iter()
                .map(|buffer| {
                    let (dropped, events) = buffer.snapshot();
                    WorkerEvents {
                        worker: buffer.worker(),
                        dropped,
                        events,
                    }
                })
                .collect(),
        }
    }
}

/// A recording handle: the thing threaded through the solver and serve
/// hot paths. Disabled handles ([`TraceHandle::disabled`]) make every
/// method a single `Option` branch — no clock read, no atomic.
#[derive(Debug, Clone)]
pub struct TraceHandle {
    shared: Option<Arc<Shared>>,
    buffer: Option<Arc<RingBuffer>>,
    request: u64,
    obligation: u64,
}

impl Default for TraceHandle {
    fn default() -> Self {
        TraceHandle::disabled()
    }
}

impl TraceHandle {
    /// A handle that records nothing.
    pub fn disabled() -> TraceHandle {
        TraceHandle {
            shared: None,
            buffer: None,
            request: NO_REQUEST,
            obligation: NO_OBLIGATION,
        }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// A clone of this handle whose untagged events inherit the given
    /// request/obligation tags (pass [`NO_REQUEST`]/[`NO_OBLIGATION`]
    /// to leave a tag unset).
    pub fn tagged(&self, request: u64, obligation: u64) -> TraceHandle {
        TraceHandle {
            shared: self.shared.clone(),
            buffer: self.buffer.clone(),
            request,
            obligation,
        }
    }

    /// Nanoseconds since the tracer's epoch; **0 when disabled** (no
    /// clock read, so span timing code must be gated on
    /// [`TraceHandle::is_enabled`]).
    pub fn now_ns(&self) -> u64 {
        self.shared.as_ref().map_or(0, |s| s.now_ns())
    }

    /// Adds to a counter.
    pub fn add(&self, id: CounterId, n: u64) {
        let Some(shared) = &self.shared else {
            return;
        };
        shared.tick();
        shared.metrics.add(id, n);
    }

    /// Sets a gauge (and raises its high-water mark).
    pub fn gauge(&self, id: GaugeId, value: u64) {
        let Some(shared) = &self.shared else {
            return;
        };
        shared.tick();
        shared.metrics.set_gauge(id, value);
    }

    /// Records a histogram observation.
    pub fn observe(&self, id: HistogramId, value: u64) {
        let Some(shared) = &self.shared else {
            return;
        };
        shared.tick();
        shared.metrics.observe(id, value);
    }

    /// Records an event into this handle's ring buffer, filling in the
    /// worker tag and any unset request/obligation tags. Dropped (with
    /// the op still counted) on a bufferless metrics handle.
    pub fn event(&self, mut event: TraceEvent) {
        let Some(shared) = &self.shared else {
            return;
        };
        shared.tick();
        let Some(buffer) = &self.buffer else {
            return;
        };
        event.worker = buffer.worker();
        if event.request == NO_REQUEST {
            event.request = self.request;
        }
        if event.obligation == NO_OBLIGATION {
            event.obligation = self.obligation;
        }
        buffer.record(event.encode());
    }

    /// The per-LP-node fast path: **one call, one disabled branch** per
    /// branch-and-bound node. Bumps `bnb-nodes`, the warm/cold solve
    /// counter and `simplex-iterations` exactly, and emits sampled
    /// [`EventKind::WarmLp`]/[`EventKind::ColdLp`] and
    /// [`EventKind::BnbProgress`] events per [`TraceConfig`].
    pub fn lp_node(&self, warm: bool, iterations: u64) {
        let Some(shared) = &self.shared else {
            return;
        };
        shared.tick();
        let nodes = shared.metrics.add(CounterId::BnbNodes, 1);
        let temperature = if warm {
            CounterId::WarmLpSolves
        } else {
            CounterId::ColdLpSolves
        };
        let solves = shared.metrics.add(temperature, 1);
        shared.metrics.add(CounterId::SimplexIterations, iterations);
        let Some(buffer) = &self.buffer else {
            return;
        };
        let lp_every = shared.config.lp_sample_every.max(1);
        if (solves.wrapping_sub(1)) % lp_every == 0 {
            let kind = if warm {
                EventKind::WarmLp
            } else {
                EventKind::ColdLp
            };
            let mut event = TraceEvent::instant(kind, shared.now_ns(), iterations);
            event.worker = buffer.worker();
            event.request = self.request;
            event.obligation = self.obligation;
            buffer.record(event.encode());
        }
        let bnb_every = shared.config.bnb_sample_every.max(1);
        if (nodes.wrapping_sub(1)) % bnb_every == 0 {
            let mut event = TraceEvent::instant(EventKind::BnbProgress, shared.now_ns(), nodes);
            event.worker = buffer.worker();
            event.request = self.request;
            event.obligation = self.obligation;
            buffer.record(event.encode());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn tracer_and_handle_are_send_sync() {
        assert_send_sync::<Tracer>();
        assert_send_sync::<TraceHandle>();
        assert_send_sync::<TraceSnapshot>();
    }

    #[test]
    fn disabled_everything_records_nothing() {
        let tracer = Tracer::disabled();
        assert!(!tracer.is_enabled());
        let handle = tracer.register();
        assert!(!handle.is_enabled());
        assert_eq!(handle.now_ns(), 0);
        handle.add(CounterId::Requests, 1);
        handle.gauge(GaugeId::QueueDepth, 9);
        handle.observe(HistogramId::SolveNs, 100);
        handle.event(TraceEvent::instant(EventKind::Enqueue, 1, 0));
        handle.lp_node(true, 10);
        assert_eq!(tracer.record_ops(), 0);
        assert_eq!(tracer.snapshot(), TraceSnapshot::default());
        assert_eq!(Tracer::default().snapshot(), TraceSnapshot::default());
    }

    #[test]
    fn register_snapshot_flow_and_tag_inheritance() {
        let tracer = Tracer::enabled();
        let w0 = tracer.register();
        let w1 = tracer.register().tagged(7, 3);
        w0.add(CounterId::Requests, 2);
        w1.event(TraceEvent::instant(EventKind::Dequeue, 5, 0));
        let mut explicit = TraceEvent::instant(EventKind::Verdict, 6, 1);
        explicit.request = 8;
        explicit.obligation = 4;
        w1.event(explicit);

        let snapshot = tracer.snapshot();
        assert!(snapshot.enabled);
        assert_eq!(snapshot.counter("requests"), 2);
        assert_eq!(snapshot.workers.len(), 2);
        assert_eq!(snapshot.workers[1].worker, 1);
        let events = &snapshot.workers[1].events;
        assert_eq!(events.len(), 2);
        // Untagged event inherited the handle's tags…
        assert_eq!((events[0].request, events[0].obligation), (7, 3));
        assert_eq!(events[0].worker, 1);
        // …explicit tags win.
        assert_eq!((events[1].request, events[1].obligation), (8, 4));
    }

    #[test]
    fn record_ops_counts_calls_not_atomics() {
        let tracer = Tracer::enabled();
        let handle = tracer.register();
        handle.add(CounterId::Retries, 1);
        handle.gauge(GaugeId::QueueDepth, 1);
        handle.observe(HistogramId::SolveNs, 1);
        handle.event(TraceEvent::instant(EventKind::Enqueue, 1, 0));
        handle.lp_node(false, 25); // one call = one op despite 3 counters
        assert_eq!(tracer.record_ops(), 5);
        assert_eq!(tracer.snapshot().record_ops, 5);
    }

    #[test]
    fn lp_node_counts_exactly_and_samples_events() {
        let tracer = Tracer::with_config(TraceConfig {
            events_per_buffer: 128,
            bnb_sample_every: 4,
            lp_sample_every: 3,
        });
        let handle = tracer.register();
        for i in 0..10 {
            handle.lp_node(i % 2 == 0, 5);
        }
        let snapshot = tracer.snapshot();
        assert_eq!(snapshot.counter("bnb-nodes"), 10);
        assert_eq!(snapshot.counter("warm-lp-solves"), 5);
        assert_eq!(snapshot.counter("cold-lp-solves"), 5);
        assert_eq!(snapshot.counter("simplex-iterations"), 50);
        // Warm solves 1 and 4 sampled, cold solves 1 and 4 sampled,
        // nodes 1, 5 and 9 sampled.
        let count = |kind: EventKind| snapshot.events().filter(|e| e.kind == kind).count();
        assert_eq!(count(EventKind::WarmLp), 2);
        assert_eq!(count(EventKind::ColdLp), 2);
        assert_eq!(count(EventKind::BnbProgress), 3);
    }

    #[test]
    fn metrics_handle_counts_but_drops_events() {
        let tracer = Tracer::enabled();
        let handle = tracer.metrics_handle();
        assert!(handle.is_enabled());
        handle.add(CounterId::TemplateHits, 3);
        handle.event(TraceEvent::instant(EventKind::Enqueue, 1, 0));
        handle.lp_node(true, 1);
        let snapshot = tracer.snapshot();
        assert_eq!(snapshot.counter("template-hits"), 3);
        assert_eq!(snapshot.counter("bnb-nodes"), 1);
        assert!(snapshot.workers.is_empty());
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let tracer = Tracer::enabled();
        let handle = tracer.register();
        handle.add(CounterId::Requests, 1);
        handle.observe(HistogramId::QueueWaitNs, 900);
        handle.gauge(GaugeId::QueueDepth, 4);
        handle.event(TraceEvent::span(EventKind::SolveAttempt, 10, 20, 1));
        let snapshot = tracer.snapshot();
        let parsed = TraceSnapshot::from_json(&snapshot.to_json()).expect("round trip");
        assert_eq!(parsed, snapshot);
        assert!(snapshot.to_prometheus().contains("dpv_trace_requests 1"));
    }

    #[test]
    fn now_ns_is_monotone_when_enabled() {
        let tracer = Tracer::enabled();
        let handle = tracer.register();
        let a = handle.now_ns();
        let b = handle.now_ns();
        assert!(b >= a);
    }
}

//! Per-worker bounded event ring buffers.
//!
//! Each [`RingBuffer`] is a fixed array of six-word slots guarded by a
//! per-slot sequence counter (a seqlock in spirit, built entirely from
//! safe `AtomicU64` operations — no locks, no `unsafe`). The designated
//! writer claims a slot with one `fetch_add` on the head counter and
//! overwrites the oldest event once the ring is full, bumping a
//! dropped-events counter; readers copy slots optimistically and discard
//! any slot whose sequence changed mid-copy. A torn read can therefore
//! lose an event but can never produce undefined behaviour, block the
//! writer, or corrupt the ring.

use std::sync::atomic::{fence, AtomicU64, Ordering};

use crate::event::{TraceEvent, EVENT_WORDS};

#[derive(Debug)]
struct Slot {
    /// `0` = never written; odd = write in progress; `2*n + 2` = event
    /// number `n` committed.
    seq: AtomicU64,
    words: [AtomicU64; EVENT_WORDS],
}

impl Slot {
    fn new() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            words: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// One worker's bounded, drop-oldest event buffer.
#[derive(Debug)]
pub(crate) struct RingBuffer {
    worker: u16,
    /// Events ever recorded on this buffer (monotonic).
    head: AtomicU64,
    /// Events overwritten before any snapshot could read them.
    dropped: AtomicU64,
    slots: Box<[Slot]>,
}

impl RingBuffer {
    pub(crate) fn new(worker: u16, capacity: usize) -> RingBuffer {
        let capacity = capacity.max(1);
        RingBuffer {
            worker,
            head: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            slots: (0..capacity).map(|_| Slot::new()).collect(),
        }
    }

    pub(crate) fn worker(&self) -> u16 {
        self.worker
    }

    /// Records one encoded event. Never blocks, never panics, never
    /// allocates; once the ring is full the oldest event is overwritten
    /// and the dropped counter ticks.
    pub(crate) fn record(&self, words: [u64; EVENT_WORDS]) {
        let head = self.head.fetch_add(1, Ordering::Relaxed);
        let capacity = self.slots.len() as u64;
        if head >= capacity {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        // `slots` is non-empty by construction, so the index is in range.
        let Some(slot) = self.slots.get((head % capacity) as usize) else {
            return;
        };
        slot.seq
            .store(head.wrapping_mul(2).wrapping_add(1), Ordering::Relaxed);
        for (word, value) in slot.words.iter().zip(words) {
            word.store(value, Ordering::Relaxed);
        }
        // The Release store publishes the words above to any reader that
        // Acquire-loads this (even) sequence value.
        slot.seq
            .store(head.wrapping_mul(2).wrapping_add(2), Ordering::Release);
    }

    /// Copies out every committed event, oldest first, discarding slots
    /// caught mid-write. Returns `(dropped, events)`.
    pub(crate) fn snapshot(&self) -> (u64, Vec<TraceEvent>) {
        let mut tagged: Vec<(u64, TraceEvent)> = Vec::with_capacity(self.slots.len());
        for slot in self.slots.iter() {
            let before = slot.seq.load(Ordering::Acquire);
            if before == 0 || before % 2 == 1 {
                continue;
            }
            let words: [u64; EVENT_WORDS] =
                std::array::from_fn(|i| slot.words[i].load(Ordering::Relaxed));
            fence(Ordering::Acquire);
            let after = slot.seq.load(Ordering::Relaxed);
            if before != after {
                continue;
            }
            if let Some(event) = TraceEvent::decode(&words) {
                // Event number n committed with seq 2n + 2.
                tagged.push(((before - 2) / 2, event));
            }
        }
        tagged.sort_by_key(|&(n, _)| n);
        (
            self.dropped.load(Ordering::Relaxed),
            tagged.into_iter().map(|(_, e)| e).collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn event(at_ns: u64) -> [u64; EVENT_WORDS] {
        TraceEvent::instant(EventKind::Enqueue, at_ns, 0).encode()
    }

    #[test]
    fn records_and_reads_back_in_order() {
        let ring = RingBuffer::new(3, 8);
        for i in 0..5 {
            ring.record(event(i));
        }
        let (dropped, events) = ring.snapshot();
        assert_eq!(dropped, 0);
        assert_eq!(events.len(), 5);
        let stamps: Vec<u64> = events.iter().map(|e| e.at_ns).collect();
        assert_eq!(stamps, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn overflow_drops_oldest_and_counts() {
        let ring = RingBuffer::new(0, 4);
        for i in 0..10 {
            ring.record(event(i));
        }
        let (dropped, events) = ring.snapshot();
        assert_eq!(dropped, 6);
        let stamps: Vec<u64> = events.iter().map(|e| e.at_ns).collect();
        assert_eq!(stamps, vec![6, 7, 8, 9], "oldest-first, newest survive");
    }

    #[test]
    fn zero_capacity_is_clamped_not_panicking() {
        let ring = RingBuffer::new(0, 0);
        ring.record(event(1));
        ring.record(event(2));
        let (dropped, events) = ring.snapshot();
        assert_eq!(events.len(), 1);
        assert_eq!(dropped, 1);
    }

    #[test]
    fn concurrent_writes_and_snapshots_are_safe() {
        use std::sync::Arc;
        let ring = Arc::new(RingBuffer::new(1, 64));
        let writer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                for i in 0..10_000 {
                    ring.record(event(i));
                }
            })
        };
        // Snapshots taken concurrently must never see garbage kinds or
        // out-of-order event numbers (torn slots are silently skipped).
        for _ in 0..50 {
            let (_, events) = ring.snapshot();
            let stamps: Vec<u64> = events.iter().map(|e| e.at_ns).collect();
            let mut sorted = stamps.clone();
            sorted.sort_unstable();
            assert_eq!(stamps, sorted);
        }
        writer.join().expect("writer thread");
        let (dropped, events) = ring.snapshot();
        assert_eq!(events.len(), 64);
        assert_eq!(dropped, 10_000 - 64);
    }
}

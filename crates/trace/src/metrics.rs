//! Typed counters, gauges and log-bucketed histograms.
//!
//! All metrics live in one fixed-shape [`MetricsStore`] of `AtomicU64`s,
//! so recording is a relaxed atomic add with no allocation, no locking
//! and no possibility of panic — the properties the recording-path
//! contract demands. Identifiers are closed enums: the exporters can
//! enumerate every metric without a registry lock, and the per-failure
//! degradation counters key off the serve layer's *stable code strings*
//! (`"deadline-exceeded"`, …) so this crate stays dependency-free.

use std::sync::atomic::{AtomicU64, Ordering};

/// Histogram bucket count: bucket 0 holds exact zeros, bucket `b ≥ 1`
/// holds values `v` with `2^(b-1) <= v < 2^b`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Monotonic counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CounterId {
    /// Requests served to completion.
    Requests,
    /// Obligations decomposed across all requests.
    Obligations,
    /// Obligations answered from the verdict cache without solving.
    DedupHits,
    /// Seeded counterexamples re-solved unseeded for canonical reports.
    CanonicalResolves,
    /// Template-cache lookups answered from the cache.
    TemplateHits,
    /// Template-cache lookups that had to build.
    TemplateMisses,
    /// Template-cache LRU evictions.
    TemplateEvictions,
    /// Snapshot-pool check-outs that returned a pooled basis.
    SnapshotHits,
    /// Snapshot-pool check-outs that found the pool empty.
    SnapshotMisses,
    /// Snapshot-pool check-ins dropped because the pool was full.
    SnapshotDiscards,
    /// LP node relaxations re-solved warm (dual-simplex repair).
    WarmLpSolves,
    /// LP node relaxations solved cold (two full phases).
    ColdLpSolves,
    /// Total simplex pivots across every LP solve.
    SimplexIterations,
    /// Forced periodic basis refactorisations in the warm-solve chain.
    Refactorisations,
    /// Branch-and-bound nodes explored.
    BnbNodes,
    /// Budget-exhausted solves retried once with escalated budgets.
    Retries,
    /// Escalated retries that produced a definitive verdict.
    RetrySuccesses,
    /// Worker panics caught and contained.
    WorkerPanics,
    /// Obligations quarantined after panicking on both attempts.
    Quarantined,
    /// Obligations skipped because their request deadline had expired.
    DeadlineSkipped,
    /// Obligations degraded with code `deadline-exceeded`.
    DegradedDeadlineExceeded,
    /// Obligations degraded with code `worker-panic`.
    DegradedWorkerPanic,
    /// Obligations degraded with code `iteration-limit`.
    DegradedIterationLimit,
    /// Obligations degraded with code `node-limit`.
    DegradedNodeLimit,
    /// Obligations degraded with code `slot-lost`.
    DegradedSlotLost,
    /// Obligations degraded with a code outside the known taxonomy.
    DegradedOther,
}

impl CounterId {
    /// Every counter, in export order.
    pub const ALL: [CounterId; 26] = [
        CounterId::Requests,
        CounterId::Obligations,
        CounterId::DedupHits,
        CounterId::CanonicalResolves,
        CounterId::TemplateHits,
        CounterId::TemplateMisses,
        CounterId::TemplateEvictions,
        CounterId::SnapshotHits,
        CounterId::SnapshotMisses,
        CounterId::SnapshotDiscards,
        CounterId::WarmLpSolves,
        CounterId::ColdLpSolves,
        CounterId::SimplexIterations,
        CounterId::Refactorisations,
        CounterId::BnbNodes,
        CounterId::Retries,
        CounterId::RetrySuccesses,
        CounterId::WorkerPanics,
        CounterId::Quarantined,
        CounterId::DeadlineSkipped,
        CounterId::DegradedDeadlineExceeded,
        CounterId::DegradedWorkerPanic,
        CounterId::DegradedIterationLimit,
        CounterId::DegradedNodeLimit,
        CounterId::DegradedSlotLost,
        CounterId::DegradedOther,
    ];

    /// Stable kebab-case name, used by both exporters.
    pub fn name(self) -> &'static str {
        match self {
            CounterId::Requests => "requests",
            CounterId::Obligations => "obligations",
            CounterId::DedupHits => "dedup-hits",
            CounterId::CanonicalResolves => "canonical-resolves",
            CounterId::TemplateHits => "template-hits",
            CounterId::TemplateMisses => "template-misses",
            CounterId::TemplateEvictions => "template-evictions",
            CounterId::SnapshotHits => "snapshot-hits",
            CounterId::SnapshotMisses => "snapshot-misses",
            CounterId::SnapshotDiscards => "snapshot-discards",
            CounterId::WarmLpSolves => "warm-lp-solves",
            CounterId::ColdLpSolves => "cold-lp-solves",
            CounterId::SimplexIterations => "simplex-iterations",
            CounterId::Refactorisations => "refactorisations",
            CounterId::BnbNodes => "bnb-nodes",
            CounterId::Retries => "retries",
            CounterId::RetrySuccesses => "retry-successes",
            CounterId::WorkerPanics => "worker-panics",
            CounterId::Quarantined => "quarantined",
            CounterId::DeadlineSkipped => "deadline-skipped",
            CounterId::DegradedDeadlineExceeded => "degraded-deadline-exceeded",
            CounterId::DegradedWorkerPanic => "degraded-worker-panic",
            CounterId::DegradedIterationLimit => "degraded-iteration-limit",
            CounterId::DegradedNodeLimit => "degraded-node-limit",
            CounterId::DegradedSlotLost => "degraded-slot-lost",
            CounterId::DegradedOther => "degraded-other",
        }
    }

    /// The per-failure degradation counter for a serve-layer
    /// `FailureReason::code()` string; unknown codes fold into
    /// [`CounterId::DegradedOther`].
    pub fn for_failure_code(code: &str) -> CounterId {
        match code {
            "deadline-exceeded" => CounterId::DegradedDeadlineExceeded,
            "worker-panic" => CounterId::DegradedWorkerPanic,
            "iteration-limit" => CounterId::DegradedIterationLimit,
            "node-limit" => CounterId::DegradedNodeLimit,
            "slot-lost" => CounterId::DegradedSlotLost,
            _ => CounterId::DegradedOther,
        }
    }
}

/// Point-in-time gauges with a high-water mark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GaugeId {
    /// Obligations in flight in the server's queue.
    QueueDepth,
}

impl GaugeId {
    /// Every gauge, in export order.
    pub const ALL: [GaugeId; 1] = [GaugeId::QueueDepth];

    /// Stable kebab-case name.
    pub fn name(self) -> &'static str {
        match self {
            GaugeId::QueueDepth => "queue-depth",
        }
    }
}

/// Log-bucketed (power-of-two) histograms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistogramId {
    /// Wall-clock nanoseconds per solved obligation.
    SolveNs,
    /// Nanoseconds between enqueue and dequeue per obligation.
    QueueWaitNs,
    /// Nanoseconds of deadline budget left when an obligation completed.
    DeadlineMarginNs,
}

impl HistogramId {
    /// Every histogram, in export order.
    pub const ALL: [HistogramId; 3] = [
        HistogramId::SolveNs,
        HistogramId::QueueWaitNs,
        HistogramId::DeadlineMarginNs,
    ];

    /// Stable kebab-case name.
    pub fn name(self) -> &'static str {
        match self {
            HistogramId::SolveNs => "solve-ns",
            HistogramId::QueueWaitNs => "queue-wait-ns",
            HistogramId::DeadlineMarginNs => "deadline-margin-ns",
        }
    }
}

/// The bucket index a value falls into: 0 for 0, else the value's bit
/// length (so bucket `b` spans `[2^(b-1), 2^b)`).
pub fn bucket_index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// Inclusive upper bound of a bucket, as displayed by the Prometheus
/// exporter (`le` label). Bucket 0 is `0`; the last bucket saturates.
pub fn bucket_upper_bound(bucket: usize) -> u64 {
    if bucket == 0 {
        0
    } else {
        (1u128 << bucket)
            .saturating_sub(1)
            .try_into()
            .unwrap_or(u64::MAX)
    }
}

#[derive(Debug)]
struct AtomicHistogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl AtomicHistogram {
    fn new() -> AtomicHistogram {
        AtomicHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    fn observe(&self, value: u64) {
        if let Some(bucket) = self.buckets.get(bucket_index(value)) {
            bucket.fetch_add(1, Ordering::Relaxed);
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }
}

#[derive(Debug)]
struct AtomicGauge {
    value: AtomicU64,
    high_water: AtomicU64,
}

/// The fixed metric store shared by every handle of one tracer.
#[derive(Debug)]
pub(crate) struct MetricsStore {
    counters: [AtomicU64; CounterId::ALL.len()],
    gauges: [AtomicGauge; GaugeId::ALL.len()],
    histograms: [AtomicHistogram; HistogramId::ALL.len()],
}

impl MetricsStore {
    pub(crate) fn new() -> MetricsStore {
        MetricsStore {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            gauges: std::array::from_fn(|_| AtomicGauge {
                value: AtomicU64::new(0),
                high_water: AtomicU64::new(0),
            }),
            histograms: std::array::from_fn(|_| AtomicHistogram::new()),
        }
    }

    pub(crate) fn add(&self, id: CounterId, n: u64) -> u64 {
        match self.counters.get(id as usize) {
            Some(counter) => counter.fetch_add(n, Ordering::Relaxed) + n,
            None => 0,
        }
    }

    pub(crate) fn counter(&self, id: CounterId) -> u64 {
        self.counters
            .get(id as usize)
            .map_or(0, |c| c.load(Ordering::Relaxed))
    }

    pub(crate) fn set_gauge(&self, id: GaugeId, value: u64) {
        if let Some(gauge) = self.gauges.get(id as usize) {
            gauge.value.store(value, Ordering::Relaxed);
            gauge.high_water.fetch_max(value, Ordering::Relaxed);
        }
    }

    pub(crate) fn gauge(&self, id: GaugeId) -> (u64, u64) {
        self.gauges.get(id as usize).map_or((0, 0), |g| {
            (
                g.value.load(Ordering::Relaxed),
                g.high_water.load(Ordering::Relaxed),
            )
        })
    }

    pub(crate) fn observe(&self, id: HistogramId, value: u64) {
        if let Some(histogram) = self.histograms.get(id as usize) {
            histogram.observe(value);
        }
    }

    /// `(count, sum, non-empty (bucket, count) pairs in bucket order)`.
    pub(crate) fn histogram(&self, id: HistogramId) -> (u64, u64, Vec<(usize, u64)>) {
        let Some(histogram) = self.histograms.get(id as usize) else {
            return (0, 0, Vec::new());
        };
        let buckets = histogram
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(b, c)| {
                let count = c.load(Ordering::Relaxed);
                (count > 0).then_some((b, count))
            })
            .collect();
        (
            histogram.count.load(Ordering::Relaxed),
            histogram.sum.load(Ordering::Relaxed),
            buckets,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_indices_are_power_of_two_ranges() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(10), 1023);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
    }

    #[test]
    fn counters_accumulate_and_report() {
        let store = MetricsStore::new();
        assert_eq!(store.add(CounterId::Retries, 2), 2);
        assert_eq!(store.add(CounterId::Retries, 3), 5);
        assert_eq!(store.counter(CounterId::Retries), 5);
        assert_eq!(store.counter(CounterId::Requests), 0);
    }

    #[test]
    fn gauges_track_high_water() {
        let store = MetricsStore::new();
        store.set_gauge(GaugeId::QueueDepth, 4);
        store.set_gauge(GaugeId::QueueDepth, 9);
        store.set_gauge(GaugeId::QueueDepth, 1);
        assert_eq!(store.gauge(GaugeId::QueueDepth), (1, 9));
    }

    #[test]
    fn histograms_log_bucket_and_sum() {
        let store = MetricsStore::new();
        for v in [0, 1, 3, 3, 100] {
            store.observe(HistogramId::SolveNs, v);
        }
        let (count, sum, buckets) = store.histogram(HistogramId::SolveNs);
        assert_eq!(count, 5);
        assert_eq!(sum, 107);
        assert_eq!(buckets, vec![(0, 1), (1, 1), (2, 2), (7, 1)]);
        assert_eq!(store.histogram(HistogramId::QueueWaitNs).0, 0);
    }

    #[test]
    fn failure_codes_map_to_degradation_counters() {
        assert_eq!(
            CounterId::for_failure_code("deadline-exceeded"),
            CounterId::DegradedDeadlineExceeded
        );
        assert_eq!(
            CounterId::for_failure_code("worker-panic"),
            CounterId::DegradedWorkerPanic
        );
        assert_eq!(
            CounterId::for_failure_code("iteration-limit"),
            CounterId::DegradedIterationLimit
        );
        assert_eq!(
            CounterId::for_failure_code("node-limit"),
            CounterId::DegradedNodeLimit
        );
        assert_eq!(
            CounterId::for_failure_code("slot-lost"),
            CounterId::DegradedSlotLost
        );
        assert_eq!(
            CounterId::for_failure_code("anything"),
            CounterId::DegradedOther
        );
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = CounterId::ALL.iter().map(|c| c.name()).collect();
        names.extend(GaugeId::ALL.iter().map(|g| g.name()));
        names.extend(HistogramId::ALL.iter().map(|h| h.name()));
        let total = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), total);
    }
}

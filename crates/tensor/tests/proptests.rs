//! Property-based tests for the tensor substrate.

use dpv_tensor::{Matrix, RunningMinMax, Vector};
use proptest::prelude::*;

fn finite_vec(len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-100.0f64..100.0, len)
}

proptest! {
    #[test]
    fn dot_is_commutative(a in finite_vec(8), b in finite_vec(8)) {
        let va = Vector::from_vec(a);
        let vb = Vector::from_vec(b);
        prop_assert!((va.dot(&vb) - vb.dot(&va)).abs() < 1e-9);
    }

    #[test]
    fn norm_is_non_negative_and_triangle(a in finite_vec(6), b in finite_vec(6)) {
        let va = Vector::from_vec(a);
        let vb = Vector::from_vec(b);
        prop_assert!(va.norm() >= 0.0);
        let sum = &va + &vb;
        prop_assert!(sum.norm() <= va.norm() + vb.norm() + 1e-9);
    }

    #[test]
    fn addition_is_commutative(a in finite_vec(5), b in finite_vec(5)) {
        let va = Vector::from_vec(a);
        let vb = Vector::from_vec(b);
        let lhs = &va + &vb;
        let rhs = &vb + &va;
        prop_assert!(dpv_tensor::approx_eq_slice(lhs.as_slice(), rhs.as_slice(), 1e-12));
    }

    #[test]
    fn adjacent_differences_sum_telescopes(a in finite_vec(10)) {
        let v = Vector::from_vec(a.clone());
        let d = v.adjacent_differences();
        let telescoped: f64 = d.as_slice().iter().sum();
        prop_assert!((telescoped - (a[a.len() - 1] - a[0])).abs() < 1e-9);
    }

    #[test]
    fn matvec_is_linear(rows in 1usize..5, cols in 1usize..5, seed in 0u64..1000) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let m = dpv_tensor::uniform_init(rows, cols, 1.0, &mut rng);
        let x = Vector::from_vec((0..cols).map(|_| rng.gen_range(-1.0..1.0)).collect());
        let y = Vector::from_vec((0..cols).map(|_| rng.gen_range(-1.0..1.0)).collect());
        let lhs = m.matvec(&(&x + &y));
        let rhs = &m.matvec(&x) + &m.matvec(&y);
        prop_assert!(dpv_tensor::approx_eq_slice(lhs.as_slice(), rhs.as_slice(), 1e-9));
    }

    #[test]
    fn transpose_is_involutive(rows in 1usize..6, cols in 1usize..6, seed in 0u64..1000) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let m = dpv_tensor::uniform_init(rows, cols, 2.0, &mut rng);
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_associative_with_identity(rows in 1usize..5, cols in 1usize..5, seed in 0u64..500) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let m = dpv_tensor::uniform_init(rows, cols, 1.0, &mut rng);
        let id = Matrix::identity(cols);
        let prod = m.matmul(&id).unwrap();
        prop_assert!(dpv_tensor::approx_eq_slice(prod.as_slice(), m.as_slice(), 1e-12));
    }

    #[test]
    fn solve_roundtrips(seed in 0u64..500) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n = 4usize;
        // Diagonally dominant matrices are always solvable.
        let mut m = dpv_tensor::uniform_init(n, n, 1.0, &mut rng);
        for i in 0..n {
            m[(i, i)] += 10.0;
        }
        let x_true = Vector::from_vec((0..n).map(|_| rng.gen_range(-5.0..5.0)).collect());
        let b = m.matvec(&x_true);
        let x = m.solve(&b).unwrap();
        prop_assert!(x.distance(&x_true) < 1e-6);
    }

    #[test]
    fn running_minmax_contains_every_observation(samples in prop::collection::vec(finite_vec(3), 1..30)) {
        let mut mm = RunningMinMax::new(3);
        for s in &samples {
            mm.observe(s);
        }
        for s in &samples {
            prop_assert!(mm.contains(s));
        }
    }

    #[test]
    fn running_minmax_merge_equals_sequential(xs in prop::collection::vec(finite_vec(2), 1..20), ys in prop::collection::vec(finite_vec(2), 1..20)) {
        let mut all = RunningMinMax::new(2);
        for s in xs.iter().chain(ys.iter()) {
            all.observe(s);
        }
        let mut a = RunningMinMax::new(2);
        for s in &xs { a.observe(s); }
        let mut b = RunningMinMax::new(2);
        for s in &ys { b.observe(s); }
        a.merge(&b);
        prop_assert_eq!(a.mins(), all.mins());
        prop_assert_eq!(a.maxs(), all.maxs());
    }
}

//! A dense, row-major matrix of `f64` values.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

use crate::{ShapeError, Vector};

/// A dense row-major matrix of `f64` values.
///
/// `Matrix` is used for layer weight matrices, batches of activation
/// vectors, convolution kernels flattened to 2-D, and LP tableaux.
///
/// ```
/// use dpv_tensor::{Matrix, Vector};
/// let m = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 2.0]]).unwrap();
/// let v = Vector::from_slice(&[3.0, 4.0]);
/// assert_eq!(m.matvec(&v).as_slice(), &[3.0, 8.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows` × `cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows` × `cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n` × `n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row vectors. All rows must have equal length.
    ///
    /// # Errors
    /// Returns a [`ShapeError`] when the rows have differing lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self, ShapeError> {
        if rows.is_empty() {
            return Ok(Self::zeros(0, 0));
        }
        let cols = rows[0].len();
        for (i, r) in rows.iter().enumerate() {
            if r.len() != cols {
                return Err(ShapeError::new("from_rows", (i, r.len()), (0, cols)));
            }
        }
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            data.extend_from_slice(r);
        }
        Ok(Self {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Errors
    /// Returns a [`ShapeError`] when `data.len() != rows * cols`.
    pub fn from_flat(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, ShapeError> {
        if data.len() != rows * cols {
            return Err(ShapeError::new("from_flat", (rows, cols), (data.len(), 1)));
        }
        Ok(Self { rows, cols, data })
    }

    /// Builds a matrix whose columns are the given vectors — the
    /// feature-major layout of a frame batch (`rows` = vector dimension,
    /// `cols` = number of vectors), where each *feature* ends up contiguous
    /// across frames so batch kernels can sweep it as one SIMD-friendly
    /// slice. All vectors must have equal length.
    ///
    /// # Errors
    /// Returns a [`ShapeError`] when the vectors have differing lengths.
    pub fn from_columns(columns: &[Vector]) -> Result<Self, ShapeError> {
        if columns.is_empty() {
            return Ok(Self::zeros(0, 0));
        }
        let rows = columns[0].len();
        for (i, v) in columns.iter().enumerate() {
            if v.len() != rows {
                return Err(ShapeError::new("from_columns", (i, v.len()), (rows, 1)));
            }
        }
        let cols = columns.len();
        let mut data = vec![0.0; rows * cols];
        for (c, v) in columns.iter().enumerate() {
            for (r, &value) in v.as_slice().iter().enumerate() {
                data[r * cols + c] = value;
            }
        }
        Ok(Self { rows, cols, data })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrow the flat row-major storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Borrow the flat row-major storage mutably.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrow row `r` as a slice.
    ///
    /// # Panics
    /// Panics when `r` is out of bounds.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row index {r} out of bounds ({})", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Borrow row `r` mutably as a slice.
    ///
    /// # Panics
    /// Panics when `r` is out of bounds.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row index {r} out of bounds ({})", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies row `r` into a [`Vector`].
    pub fn row_vector(&self, r: usize) -> Vector {
        Vector::from_slice(self.row(r))
    }

    /// Copies column `c` into a [`Vector`].
    ///
    /// # Panics
    /// Panics when `c` is out of bounds.
    pub fn col_vector(&self, c: usize) -> Vector {
        assert!(c < self.cols, "col index {c} out of bounds ({})", self.cols);
        Vector::from_vec((0..self.rows).map(|r| self[(r, c)]).collect())
    }

    /// Matrix–vector product `self * x`.
    ///
    /// # Panics
    /// Panics when `x.len() != self.cols()`.
    pub fn matvec(&self, x: &Vector) -> Vector {
        assert_eq!(
            x.len(),
            self.cols,
            "matvec dimension mismatch: {}x{} * {}",
            self.rows,
            self.cols,
            x.len()
        );
        let xs = x.as_slice();
        let mut out = Vec::with_capacity(self.rows);
        for r in 0..self.rows {
            let row = self.row(r);
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(xs.iter()) {
                acc += a * b;
            }
            out.push(acc);
        }
        Vector::from_vec(out)
    }

    /// Transposed matrix–vector product `selfᵀ * x` (without materialising the transpose).
    ///
    /// # Panics
    /// Panics when `x.len() != self.rows()`.
    pub fn matvec_transposed(&self, x: &Vector) -> Vector {
        assert_eq!(
            x.len(),
            self.rows,
            "matvec_transposed dimension mismatch: ({}x{})^T * {}",
            self.rows,
            self.cols,
            x.len()
        );
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            let row = self.row(r);
            let factor = x[r];
            if factor == 0.0 {
                continue;
            }
            for (o, a) in out.iter_mut().zip(row.iter()) {
                *o += factor * a;
            }
        }
        Vector::from_vec(out)
    }

    /// Matrix–matrix product `self * other`.
    ///
    /// # Errors
    /// Returns a [`ShapeError`] when `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix, ShapeError> {
        if self.cols != other.rows {
            return Err(ShapeError::new("matmul", self.shape(), other.shape()));
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += a * other[(k, j)];
                }
            }
        }
        Ok(out)
    }

    /// Returns the transpose of the matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(c, r)] = self[(r, c)];
            }
        }
        out
    }

    /// Outer product of two vectors: `a * bᵀ`.
    pub fn outer(a: &Vector, b: &Vector) -> Matrix {
        let mut out = Matrix::zeros(a.len(), b.len());
        for i in 0..a.len() {
            for j in 0..b.len() {
                out[(i, j)] = a[i] * b[j];
            }
        }
        out
    }

    /// Element-wise application of `f`, producing a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|v| f(*v)).collect(),
        }
    }

    /// Scales all elements by `factor`.
    pub fn scale(&self, factor: f64) -> Matrix {
        self.map(|v| v * factor)
    }

    /// In-place fused update `self += factor * other`, used by the optimisers.
    ///
    /// # Panics
    /// Panics when shapes differ.
    pub fn add_scaled(&mut self, factor: f64, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "add_scaled shape mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += factor * b;
        }
    }

    /// Frobenius norm (square root of the sum of squared entries).
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Returns `true` when any entry is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|v| !v.is_finite())
    }

    /// Appends `other` below `self`.
    ///
    /// # Errors
    /// Returns a [`ShapeError`] when the column counts differ.
    pub fn vstack(&self, other: &Matrix) -> Result<Matrix, ShapeError> {
        if self.cols != other.cols {
            return Err(ShapeError::new("vstack", self.shape(), other.shape()));
        }
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        Ok(Matrix {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        })
    }

    /// Solves the linear system `self * x = b` via Gaussian elimination with
    /// partial pivoting.
    ///
    /// # Errors
    /// Returns an error string when the matrix is not square, the dimensions
    /// mismatch, or the matrix is (numerically) singular.
    pub fn solve(&self, b: &Vector) -> Result<Vector, String> {
        if self.rows != self.cols {
            return Err(format!(
                "solve requires a square matrix, got {}x{}",
                self.rows, self.cols
            ));
        }
        if b.len() != self.rows {
            return Err(format!(
                "solve dimension mismatch: matrix {}x{}, rhs {}",
                self.rows,
                self.cols,
                b.len()
            ));
        }
        let n = self.rows;
        let mut a = self.clone();
        let mut x = b.clone();
        for col in 0..n {
            // Partial pivoting.
            let mut pivot = col;
            for r in (col + 1)..n {
                if a[(r, col)].abs() > a[(pivot, col)].abs() {
                    pivot = r;
                }
            }
            if a[(pivot, col)].abs() < 1e-12 {
                return Err("matrix is singular".to_string());
            }
            if pivot != col {
                for c in 0..n {
                    let tmp = a[(col, c)];
                    a[(col, c)] = a[(pivot, c)];
                    a[(pivot, c)] = tmp;
                }
                let tmp = x[col];
                x[col] = x[pivot];
                x[pivot] = tmp;
            }
            for r in (col + 1)..n {
                let factor = a[(r, col)] / a[(col, col)];
                if factor == 0.0 {
                    continue;
                }
                for c in col..n {
                    let v = a[(col, c)];
                    a[(r, c)] -= factor * v;
                }
                let v = x[col];
                x[r] -= factor * v;
            }
        }
        // Back substitution.
        let mut out = Vector::zeros(n);
        for r in (0..n).rev() {
            let mut acc = x[r];
            for c in (r + 1)..n {
                acc -= a[(r, c)] * out[c];
            }
            out[r] = acc / a[(r, r)];
        }
        Ok(out)
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            write!(f, "  ")?;
            for c in 0..self.cols {
                write!(f, "{:8.4} ", self[(r, c)])?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (r, c): (usize, usize)) -> &Self::Output {
        debug_assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut Self::Output {
        debug_assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &mut self.data[r * self.cols + c]
    }
}

impl Add<&Matrix> for &Matrix {
    type Output = Matrix;
    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "matrix addition shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(a, b)| a + b)
                .collect(),
        }
    }
}

impl Sub<&Matrix> for &Matrix {
    type Output = Matrix;
    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.shape(),
            rhs.shape(),
            "matrix subtraction shape mismatch"
        );
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(a, b)| a - b)
                .collect(),
        }
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;
    fn mul(self, rhs: f64) -> Matrix {
        self.scale(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{approx_eq, approx_eq_slice};

    #[test]
    fn construction_and_shape() {
        let m = Matrix::zeros(2, 3);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(Matrix::identity(3)[(1, 1)], 1.0);
        assert_eq!(Matrix::identity(3)[(0, 1)], 0.0);
        assert_eq!(Matrix::filled(2, 2, 7.0)[(1, 0)], 7.0);
    }

    #[test]
    fn from_rows_validates_lengths() {
        assert!(Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0]]).is_err());
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m[(1, 0)], 3.0);
    }

    #[test]
    fn from_flat_validates_size() {
        assert!(Matrix::from_flat(2, 2, vec![1.0, 2.0, 3.0]).is_err());
        let m = Matrix::from_flat(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(m[(0, 1)], 2.0);
    }

    #[test]
    fn from_columns_packs_feature_major() {
        let a = Vector::from_slice(&[1.0, 2.0, 3.0]);
        let b = Vector::from_slice(&[4.0, 5.0, 6.0]);
        let m = Matrix::from_columns(&[a.clone(), b.clone()]).unwrap();
        assert_eq!(m.shape(), (3, 2));
        // Each feature row is contiguous over the frames.
        assert_eq!(m.row(0), &[1.0, 4.0]);
        assert_eq!(m.row(2), &[3.0, 6.0]);
        // Columns round-trip to the original vectors.
        assert_eq!(m.col_vector(0), a);
        assert_eq!(m.col_vector(1), b);
        assert!(Matrix::from_columns(&[Vector::zeros(2), Vector::zeros(3)]).is_err());
        assert_eq!(Matrix::from_columns(&[]).unwrap().shape(), (0, 0));
    }

    #[test]
    fn matvec_and_transposed() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        let x = Vector::from_slice(&[1.0, 0.0, -1.0]);
        assert!(approx_eq_slice(
            m.matvec(&x).as_slice(),
            &[-2.0, -2.0],
            1e-12
        ));
        let y = Vector::from_slice(&[1.0, 1.0]);
        assert!(approx_eq_slice(
            m.matvec_transposed(&y).as_slice(),
            &[5.0, 7.0, 9.0],
            1e-12
        ));
    }

    #[test]
    fn matmul_and_transpose() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(
            c,
            Matrix::from_rows(&[vec![2.0, 1.0], vec![4.0, 3.0]]).unwrap()
        );
        assert_eq!(a.transpose()[(0, 1)], 3.0);
        assert!(a.matmul(&Matrix::zeros(3, 3)).is_err());
    }

    #[test]
    fn matmul_agrees_with_matvec() {
        let a = Matrix::from_rows(&[vec![1.0, -2.0, 0.5], vec![0.0, 3.0, 1.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![2.0], vec![1.0], vec![-1.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        let v = a.matvec(&Vector::from_slice(&[2.0, 1.0, -1.0]));
        assert!(approx_eq(c[(0, 0)], v[0], 1e-12));
        assert!(approx_eq(c[(1, 0)], v[1], 1e-12));
    }

    #[test]
    fn outer_product() {
        let a = Vector::from_slice(&[1.0, 2.0]);
        let b = Vector::from_slice(&[3.0, 4.0, 5.0]);
        let m = Matrix::outer(&a, &b);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m[(1, 2)], 10.0);
    }

    #[test]
    fn row_and_col_access() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.row_vector(0).as_slice(), &[1.0, 2.0]);
        assert_eq!(m.col_vector(1).as_slice(), &[2.0, 4.0]);
    }

    #[test]
    fn add_sub_scale_norm() {
        let a = Matrix::identity(2);
        let b = Matrix::filled(2, 2, 1.0);
        assert_eq!((&a + &b)[(0, 0)], 2.0);
        assert_eq!((&a - &b)[(0, 1)], -1.0);
        assert_eq!((&a * 3.0)[(1, 1)], 3.0);
        assert!(approx_eq(b.frobenius_norm(), 2.0, 1e-12));
        assert!(approx_eq(b.sum(), 4.0, 1e-12));
    }

    #[test]
    fn add_scaled_updates_in_place() {
        let mut a = Matrix::zeros(2, 2);
        let g = Matrix::filled(2, 2, 2.0);
        a.add_scaled(-0.5, &g);
        assert_eq!(a[(0, 0)], -1.0);
    }

    #[test]
    fn vstack_checks_columns() {
        let a = Matrix::identity(2);
        let b = Matrix::filled(1, 2, 5.0);
        let s = a.vstack(&b).unwrap();
        assert_eq!(s.shape(), (3, 2));
        assert_eq!(s[(2, 0)], 5.0);
        assert!(a.vstack(&Matrix::zeros(1, 3)).is_err());
    }

    #[test]
    fn solve_linear_system() {
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]).unwrap();
        let b = Vector::from_slice(&[3.0, 5.0]);
        let x = a.solve(&b).unwrap();
        let back = a.matvec(&x);
        assert!(approx_eq_slice(back.as_slice(), b.as_slice(), 1e-9));
    }

    #[test]
    fn solve_detects_singular() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]).unwrap();
        assert!(a.solve(&Vector::from_slice(&[1.0, 2.0])).is_err());
        assert!(Matrix::zeros(2, 3).solve(&Vector::zeros(2)).is_err());
    }

    #[test]
    fn non_finite_detection() {
        let mut m = Matrix::zeros(1, 2);
        assert!(!m.has_non_finite());
        m[(0, 1)] = f64::INFINITY;
        assert!(m.has_non_finite());
    }
}

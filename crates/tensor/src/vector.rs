//! A dense, heap-allocated vector of `f64` values.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub, SubAssign};

use crate::ShapeError;

/// A dense vector of `f64` values.
///
/// `Vector` is the element type flowing between network layers, the value
/// type recorded by the runtime monitor, and the assignment type returned by
/// the LP/MILP solvers, so it implements the usual arithmetic operators plus
/// a set of reductions (`dot`, `norm`, `min`, `max`, `argmax`, ...).
///
/// ```
/// use dpv_tensor::Vector;
/// let v = Vector::from_slice(&[3.0, -1.0, 2.0]);
/// assert_eq!(v.len(), 3);
/// assert_eq!(v.max(), 3.0);
/// assert_eq!(v.argmax(), 0);
/// assert!((v.dot(&v) - 14.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Vector {
    data: Vec<f64>,
}

impl Vector {
    /// Creates a vector of `len` zeros.
    pub fn zeros(len: usize) -> Self {
        Self {
            data: vec![0.0; len],
        }
    }

    /// Creates a vector of `len` ones.
    pub fn ones(len: usize) -> Self {
        Self {
            data: vec![1.0; len],
        }
    }

    /// Creates a vector filled with `value`.
    pub fn filled(len: usize, value: f64) -> Self {
        Self {
            data: vec![value; len],
        }
    }

    /// Creates a vector from a slice of values.
    pub fn from_slice(values: &[f64]) -> Self {
        Self {
            data: values.to_vec(),
        }
    }

    /// Creates a vector from an owned `Vec<f64>` without copying.
    pub fn from_vec(values: Vec<f64>) -> Self {
        Self { data: values }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the vector has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow the underlying storage as a slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Borrow the underlying storage mutably.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the vector, returning the underlying `Vec<f64>`.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Returns an iterator over the elements.
    pub fn iter(&self) -> std::slice::Iter<'_, f64> {
        self.data.iter()
    }

    /// Returns a mutable iterator over the elements.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, f64> {
        self.data.iter_mut()
    }

    /// Returns the element at `index`, or `None` when out of bounds.
    pub fn get(&self, index: usize) -> Option<f64> {
        self.data.get(index).copied()
    }

    /// Dot product with another vector.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn dot(&self, other: &Vector) -> f64 {
        assert_eq!(
            self.len(),
            other.len(),
            "dot product requires equal lengths ({} vs {})",
            self.len(),
            other.len()
        );
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a * b)
            .sum()
    }

    /// Checked dot product returning a [`ShapeError`] on length mismatch.
    pub fn try_dot(&self, other: &Vector) -> Result<f64, ShapeError> {
        if self.len() != other.len() {
            return Err(ShapeError::new("dot", (self.len(), 1), (other.len(), 1)));
        }
        Ok(self.dot(other))
    }

    /// Euclidean (L2) norm.
    pub fn norm(&self) -> f64 {
        self.dot(self).sqrt()
    }

    /// L1 norm (sum of absolute values).
    pub fn norm_l1(&self) -> f64 {
        self.data.iter().map(|v| v.abs()).sum()
    }

    /// L∞ norm (maximum absolute value); zero for an empty vector.
    pub fn norm_linf(&self) -> f64 {
        self.data.iter().fold(0.0, |acc, v| acc.max(v.abs()))
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Arithmetic mean; zero for an empty vector.
    pub fn mean(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.sum() / self.len() as f64
        }
    }

    /// Population variance; zero for an empty vector.
    pub fn variance(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let mean = self.mean();
        self.data
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f64>()
            / self.len() as f64
    }

    /// Smallest element.
    ///
    /// # Panics
    /// Panics when the vector is empty.
    pub fn min(&self) -> f64 {
        assert!(!self.is_empty(), "min of an empty vector");
        self.data.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Largest element.
    ///
    /// # Panics
    /// Panics when the vector is empty.
    pub fn max(&self) -> f64 {
        assert!(!self.is_empty(), "max of an empty vector");
        self.data.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Index of the largest element (first occurrence).
    ///
    /// # Panics
    /// Panics when the vector is empty.
    pub fn argmax(&self) -> usize {
        assert!(!self.is_empty(), "argmax of an empty vector");
        let mut best = 0;
        for i in 1..self.len() {
            if self.data[i] > self.data[best] {
                best = i;
            }
        }
        best
    }

    /// Index of the smallest element (first occurrence).
    ///
    /// # Panics
    /// Panics when the vector is empty.
    pub fn argmin(&self) -> usize {
        assert!(!self.is_empty(), "argmin of an empty vector");
        let mut best = 0;
        for i in 1..self.len() {
            if self.data[i] < self.data[best] {
                best = i;
            }
        }
        best
    }

    /// Element-wise application of `f`, producing a new vector.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Vector {
        Vector::from_vec(self.data.iter().map(|v| f(*v)).collect())
    }

    /// In-place element-wise application of `f`.
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn hadamard(&self, other: &Vector) -> Vector {
        assert_eq!(self.len(), other.len(), "hadamard requires equal lengths");
        Vector::from_vec(
            self.data
                .iter()
                .zip(other.data.iter())
                .map(|(a, b)| a * b)
                .collect(),
        )
    }

    /// Scales every element by `factor`, producing a new vector.
    pub fn scale(&self, factor: f64) -> Vector {
        self.map(|v| v * factor)
    }

    /// `self + factor * other`, the fused update used by the optimisers.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn axpy(&self, factor: f64, other: &Vector) -> Vector {
        assert_eq!(self.len(), other.len(), "axpy requires equal lengths");
        Vector::from_vec(
            self.data
                .iter()
                .zip(other.data.iter())
                .map(|(a, b)| a + factor * b)
                .collect(),
        )
    }

    /// Concatenates two vectors.
    pub fn concat(&self, other: &Vector) -> Vector {
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        Vector::from_vec(data)
    }

    /// Returns the sub-vector `[start, end)`.
    ///
    /// # Panics
    /// Panics if the range is out of bounds or reversed.
    pub fn slice(&self, start: usize, end: usize) -> Vector {
        assert!(start <= end && end <= self.len(), "slice out of bounds");
        Vector::from_slice(&self.data[start..end])
    }

    /// Vector of differences between adjacent elements: `out[i] = self[i+1] - self[i]`.
    ///
    /// This is the `diff(n)` operation the paper relies on to monitor the
    /// minimum/maximum difference between adjacent neurons in a layer
    /// (Section V, footnote 8). Returns an empty vector when `len() < 2`.
    pub fn adjacent_differences(&self) -> Vector {
        if self.len() < 2 {
            return Vector::zeros(0);
        }
        Vector::from_vec(self.data.windows(2).map(|w| w[1] - w[0]).collect())
    }

    /// Returns `true` if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|v| !v.is_finite())
    }

    /// Euclidean distance to another vector.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn distance(&self, other: &Vector) -> f64 {
        assert_eq!(self.len(), other.len(), "distance requires equal lengths");
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }
}

impl fmt::Display for Vector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.data.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:.4}")?;
        }
        write!(f, "]")
    }
}

impl Index<usize> for Vector {
    type Output = f64;
    fn index(&self, index: usize) -> &Self::Output {
        &self.data[index]
    }
}

impl IndexMut<usize> for Vector {
    fn index_mut(&mut self, index: usize) -> &mut Self::Output {
        &mut self.data[index]
    }
}

impl From<Vec<f64>> for Vector {
    fn from(value: Vec<f64>) -> Self {
        Vector::from_vec(value)
    }
}

impl From<Vector> for Vec<f64> {
    fn from(value: Vector) -> Self {
        value.into_vec()
    }
}

impl FromIterator<f64> for Vector {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        Vector::from_vec(iter.into_iter().collect())
    }
}

impl IntoIterator for Vector {
    type Item = f64;
    type IntoIter = std::vec::IntoIter<f64>;
    fn into_iter(self) -> Self::IntoIter {
        self.data.into_iter()
    }
}

impl<'a> IntoIterator for &'a Vector {
    type Item = &'a f64;
    type IntoIter = std::slice::Iter<'a, f64>;
    fn into_iter(self) -> Self::IntoIter {
        self.data.iter()
    }
}

impl Add<&Vector> for &Vector {
    type Output = Vector;
    fn add(self, rhs: &Vector) -> Vector {
        assert_eq!(self.len(), rhs.len(), "vector addition length mismatch");
        Vector::from_vec(
            self.data
                .iter()
                .zip(rhs.data.iter())
                .map(|(a, b)| a + b)
                .collect(),
        )
    }
}

impl Add for Vector {
    type Output = Vector;
    fn add(self, rhs: Vector) -> Vector {
        &self + &rhs
    }
}

impl AddAssign<&Vector> for Vector {
    fn add_assign(&mut self, rhs: &Vector) {
        assert_eq!(self.len(), rhs.len(), "vector addition length mismatch");
        for (a, b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += b;
        }
    }
}

impl Sub<&Vector> for &Vector {
    type Output = Vector;
    fn sub(self, rhs: &Vector) -> Vector {
        assert_eq!(self.len(), rhs.len(), "vector subtraction length mismatch");
        Vector::from_vec(
            self.data
                .iter()
                .zip(rhs.data.iter())
                .map(|(a, b)| a - b)
                .collect(),
        )
    }
}

impl Sub for Vector {
    type Output = Vector;
    fn sub(self, rhs: Vector) -> Vector {
        &self - &rhs
    }
}

impl SubAssign<&Vector> for Vector {
    fn sub_assign(&mut self, rhs: &Vector) {
        assert_eq!(self.len(), rhs.len(), "vector subtraction length mismatch");
        for (a, b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a -= b;
        }
    }
}

impl Mul<f64> for &Vector {
    type Output = Vector;
    fn mul(self, rhs: f64) -> Vector {
        self.scale(rhs)
    }
}

impl Mul<f64> for Vector {
    type Output = Vector;
    fn mul(self, rhs: f64) -> Vector {
        self.scale(rhs)
    }
}

impl Neg for &Vector {
    type Output = Vector;
    fn neg(self) -> Vector {
        self.scale(-1.0)
    }
}

impl Neg for Vector {
    type Output = Vector;
    fn neg(self) -> Vector {
        self.scale(-1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn construction_and_len() {
        assert_eq!(Vector::zeros(3).len(), 3);
        assert_eq!(Vector::ones(2).as_slice(), &[1.0, 1.0]);
        assert_eq!(Vector::filled(2, 4.5).as_slice(), &[4.5, 4.5]);
        assert!(Vector::zeros(0).is_empty());
    }

    #[test]
    fn dot_and_norms() {
        let a = Vector::from_slice(&[1.0, 2.0, 2.0]);
        let b = Vector::from_slice(&[2.0, 0.0, 1.0]);
        assert!(approx_eq(a.dot(&b), 4.0, 1e-12));
        assert!(approx_eq(a.norm(), 3.0, 1e-12));
        assert!(approx_eq(a.norm_l1(), 5.0, 1e-12));
        assert!(approx_eq(a.norm_linf(), 2.0, 1e-12));
    }

    #[test]
    fn try_dot_length_mismatch() {
        let a = Vector::zeros(2);
        let b = Vector::zeros(3);
        assert!(a.try_dot(&b).is_err());
    }

    #[test]
    fn reductions() {
        let v = Vector::from_slice(&[-1.0, 4.0, 2.0, 4.0]);
        assert_eq!(v.min(), -1.0);
        assert_eq!(v.max(), 4.0);
        assert_eq!(v.argmax(), 1);
        assert_eq!(v.argmin(), 0);
        assert!(approx_eq(v.sum(), 9.0, 1e-12));
        assert!(approx_eq(v.mean(), 2.25, 1e-12));
    }

    #[test]
    fn variance_of_constant_is_zero() {
        let v = Vector::filled(5, 3.0);
        assert!(approx_eq(v.variance(), 0.0, 1e-12));
    }

    #[test]
    fn arithmetic_operators() {
        let a = Vector::from_slice(&[1.0, 2.0]);
        let b = Vector::from_slice(&[3.0, -1.0]);
        assert_eq!((&a + &b).as_slice(), &[4.0, 1.0]);
        assert_eq!((&a - &b).as_slice(), &[-2.0, 3.0]);
        assert_eq!((&a * 2.0).as_slice(), &[2.0, 4.0]);
        assert_eq!((-&a).as_slice(), &[-1.0, -2.0]);
        let mut c = a.clone();
        c += &b;
        assert_eq!(c.as_slice(), &[4.0, 1.0]);
        c -= &b;
        assert_eq!(c.as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn hadamard_and_axpy() {
        let a = Vector::from_slice(&[1.0, 2.0]);
        let b = Vector::from_slice(&[3.0, -1.0]);
        assert_eq!(a.hadamard(&b).as_slice(), &[3.0, -2.0]);
        assert_eq!(a.axpy(2.0, &b).as_slice(), &[7.0, 0.0]);
    }

    #[test]
    fn adjacent_differences_matches_paper_diff() {
        let v = Vector::from_slice(&[0.0, 0.1, -0.1, 0.6]);
        let d = v.adjacent_differences();
        assert!(crate::approx_eq_slice(
            d.as_slice(),
            &[0.1, -0.2, 0.7],
            1e-12
        ));
        assert_eq!(Vector::from_slice(&[1.0]).adjacent_differences().len(), 0);
    }

    #[test]
    fn concat_slice_distance() {
        let a = Vector::from_slice(&[1.0, 2.0]);
        let b = Vector::from_slice(&[3.0]);
        let c = a.concat(&b);
        assert_eq!(c.as_slice(), &[1.0, 2.0, 3.0]);
        assert_eq!(c.slice(1, 3).as_slice(), &[2.0, 3.0]);
        assert!(approx_eq(
            Vector::from_slice(&[0.0, 0.0]).distance(&Vector::from_slice(&[3.0, 4.0])),
            5.0,
            1e-12
        ));
    }

    #[test]
    fn map_and_non_finite_detection() {
        let v = Vector::from_slice(&[1.0, -2.0]);
        assert_eq!(v.map(f64::abs).as_slice(), &[1.0, 2.0]);
        assert!(!v.has_non_finite());
        let mut w = v.clone();
        w[0] = f64::NAN;
        assert!(w.has_non_finite());
    }

    #[test]
    fn display_formats_elements() {
        let v = Vector::from_slice(&[1.0, 2.5]);
        assert_eq!(format!("{v}"), "[1.0000, 2.5000]");
    }

    #[test]
    #[should_panic(expected = "dot product requires equal lengths")]
    fn dot_panics_on_length_mismatch() {
        let _ = Vector::zeros(2).dot(&Vector::zeros(3));
    }
}

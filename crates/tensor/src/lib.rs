//! # dpv-tensor
//!
//! Dense linear-algebra substrate for the direct-perception verification
//! workspace. The crate intentionally stays small and dependency-free
//! (besides `rand` for initialisation and `serde` for persistence): the
//! networks verified in the paper are modest in size once the verification
//! is restricted to close-to-output layers, so a straightforward dense
//! [`Matrix`]/[`Vector`] pair with `f64` elements is sufficient and keeps
//! the numerical behaviour easy to reason about.
//!
//! ## Example
//!
//! ```
//! use dpv_tensor::{Matrix, Vector};
//!
//! let w = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
//! let x = Vector::from_slice(&[1.0, -1.0]);
//! let y = w.matvec(&x);
//! assert_eq!(y.as_slice(), &[-1.0, -1.0]);
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod init;
mod matrix;
mod stats;
mod vector;

pub use error::{ShapeError, TensorError};
pub use init::{he_normal, uniform_init, xavier_uniform, Initializer};
pub use matrix::Matrix;
pub use stats::{OnlineStats, RunningMinMax};
pub use vector::Vector;

/// Absolute tolerance used by the approximate comparison helpers.
pub const DEFAULT_TOLERANCE: f64 = 1e-9;

/// Returns `true` if two floating point numbers are within `tol` of each
/// other (absolute difference).
///
/// ```
/// assert!(dpv_tensor::approx_eq(1.0, 1.0 + 1e-12, 1e-9));
/// assert!(!dpv_tensor::approx_eq(1.0, 1.1, 1e-9));
/// ```
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol
}

/// Returns `true` if two slices have equal length and are element-wise
/// within `tol` of each other.
pub fn approx_eq_slice(a: &[f64], b: &[f64], tol: f64) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| approx_eq(*x, *y, tol))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_within_tolerance() {
        assert!(approx_eq(0.0, 0.0, 0.0));
        assert!(approx_eq(1.0, 1.0 + 5e-10, 1e-9));
        assert!(!approx_eq(1.0, 1.0 + 5e-9, 1e-9));
    }

    #[test]
    fn approx_eq_slice_checks_length() {
        assert!(!approx_eq_slice(&[1.0], &[1.0, 2.0], 1e-9));
        assert!(approx_eq_slice(&[1.0, 2.0], &[1.0, 2.0], 1e-9));
    }
}

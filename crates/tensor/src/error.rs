//! Error types for tensor operations.

use std::error::Error;
use std::fmt;

/// A dimension mismatch between two tensors participating in an operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    /// Human-readable description of the operation that failed.
    pub operation: String,
    /// Shape of the left-hand operand, `(rows, cols)`; vectors use `(len, 1)`.
    pub lhs: (usize, usize),
    /// Shape of the right-hand operand.
    pub rhs: (usize, usize),
}

impl ShapeError {
    /// Creates a new shape error for `operation` with the offending shapes.
    pub fn new(operation: impl Into<String>, lhs: (usize, usize), rhs: (usize, usize)) -> Self {
        Self {
            operation: operation.into(),
            lhs,
            rhs,
        }
    }
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "shape mismatch in {}: {}x{} vs {}x{}",
            self.operation, self.lhs.0, self.lhs.1, self.rhs.0, self.rhs.1
        )
    }
}

impl Error for ShapeError {}

/// Errors produced by the tensor crate.
#[derive(Debug, Clone, PartialEq)]
pub enum TensorError {
    /// Two tensors had incompatible shapes.
    Shape(ShapeError),
    /// A matrix that was required to be square (or otherwise structured) was not.
    InvalidArgument(String),
    /// A numerical operation failed (singular matrix, NaN, ...).
    Numerical(String),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::Shape(e) => write!(f, "{e}"),
            TensorError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            TensorError::Numerical(msg) => write!(f, "numerical error: {msg}"),
        }
    }
}

impl Error for TensorError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TensorError::Shape(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ShapeError> for TensorError {
    fn from(value: ShapeError) -> Self {
        TensorError::Shape(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = ShapeError::new("matmul", (2, 3), (4, 5));
        let msg = err.to_string();
        assert!(msg.contains("matmul"));
        assert!(msg.contains("2x3"));
        assert!(msg.contains("4x5"));
    }

    #[test]
    fn tensor_error_wraps_shape_error() {
        let err: TensorError = ShapeError::new("add", (1, 1), (2, 2)).into();
        assert!(matches!(err, TensorError::Shape(_)));
        assert!(err.to_string().contains("add"));
    }
}

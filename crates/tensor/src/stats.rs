//! Streaming statistics used to build activation envelopes and batch-norm
//! statistics without storing every sample.

use serde::{Deserialize, Serialize};

/// Per-dimension running minimum and maximum over a stream of vectors.
///
/// This is exactly the "abstraction by aggregating visited neuron values"
/// from the paper's Figure 1: feeding every observed activation vector of a
/// layer produces the `[min, max]` interval per neuron.
///
/// ```
/// use dpv_tensor::RunningMinMax;
/// let mut mm = RunningMinMax::new(2);
/// mm.observe(&[0.0, 1.0]);
/// mm.observe(&[-0.1, 0.6]);
/// assert_eq!(mm.min(0), Some(-0.1));
/// assert_eq!(mm.max(1), Some(1.0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunningMinMax {
    mins: Vec<f64>,
    maxs: Vec<f64>,
    count: usize,
}

impl RunningMinMax {
    /// Creates a tracker for vectors of dimension `dim`.
    pub fn new(dim: usize) -> Self {
        Self {
            mins: vec![f64::INFINITY; dim],
            maxs: vec![f64::NEG_INFINITY; dim],
            count: 0,
        }
    }

    /// Dimension being tracked.
    pub fn dim(&self) -> usize {
        self.mins.len()
    }

    /// Number of observations so far.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Returns `true` when no observation has been made yet.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Records one observation.
    ///
    /// # Panics
    /// Panics when `values.len() != self.dim()`.
    pub fn observe(&mut self, values: &[f64]) {
        assert_eq!(values.len(), self.dim(), "observation dimension mismatch");
        for (i, v) in values.iter().enumerate() {
            if *v < self.mins[i] {
                self.mins[i] = *v;
            }
            if *v > self.maxs[i] {
                self.maxs[i] = *v;
            }
        }
        self.count += 1;
    }

    /// Minimum observed value of dimension `i`, or `None` before any observation.
    pub fn min(&self, i: usize) -> Option<f64> {
        (self.count > 0).then(|| self.mins[i])
    }

    /// Maximum observed value of dimension `i`, or `None` before any observation.
    pub fn max(&self, i: usize) -> Option<f64> {
        (self.count > 0).then(|| self.maxs[i])
    }

    /// All minima (empty-slice semantics are up to the caller before any observation).
    pub fn mins(&self) -> &[f64] {
        &self.mins
    }

    /// All maxima.
    pub fn maxs(&self) -> &[f64] {
        &self.maxs
    }

    /// Merges another tracker of the same dimension into this one.
    ///
    /// # Panics
    /// Panics when the dimensions differ.
    pub fn merge(&mut self, other: &RunningMinMax) {
        assert_eq!(self.dim(), other.dim(), "merge dimension mismatch");
        for i in 0..self.dim() {
            self.mins[i] = self.mins[i].min(other.mins[i]);
            self.maxs[i] = self.maxs[i].max(other.maxs[i]);
        }
        self.count += other.count;
    }

    /// Widens every interval by `margin` on both sides (used to add slack to
    /// assume-guarantee envelopes).
    pub fn widen(&mut self, margin: f64) {
        for i in 0..self.dim() {
            self.mins[i] -= margin;
            self.maxs[i] += margin;
        }
    }

    /// Returns `true` when `values` lies inside all per-dimension intervals.
    ///
    /// # Panics
    /// Panics when `values.len() != self.dim()`.
    pub fn contains(&self, values: &[f64]) -> bool {
        assert_eq!(values.len(), self.dim(), "containment dimension mismatch");
        if self.count == 0 {
            return false;
        }
        values
            .iter()
            .enumerate()
            .all(|(i, v)| *v >= self.mins[i] && *v <= self.maxs[i])
    }
}

/// Welford online mean/variance accumulator for a single scalar stream.
///
/// ```
/// use dpv_tensor::OnlineStats;
/// let mut s = OnlineStats::new();
/// for v in [1.0, 2.0, 3.0] { s.push(v); }
/// assert!((s.mean() - 2.0).abs() < 1e-12);
/// assert!((s.variance() - 2.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, value: f64) {
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance of the observations (0 when empty).
    pub fn variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_max_tracks_paper_example() {
        // Figure 1: visited values {0, 0.1, -0.1, 0.6} abstract to [-0.1, 0.6].
        let mut mm = RunningMinMax::new(1);
        for v in [0.0, 0.1, -0.1, 0.6] {
            mm.observe(&[v]);
        }
        assert_eq!(mm.min(0), Some(-0.1));
        assert_eq!(mm.max(0), Some(0.6));
        assert!(mm.contains(&[0.3]));
        assert!(!mm.contains(&[0.7]));
        assert_eq!(mm.count(), 4);
    }

    #[test]
    fn empty_tracker_contains_nothing() {
        let mm = RunningMinMax::new(2);
        assert!(mm.is_empty());
        assert!(!mm.contains(&[0.0, 0.0]));
        assert_eq!(mm.min(0), None);
    }

    #[test]
    fn merge_combines_ranges() {
        let mut a = RunningMinMax::new(1);
        a.observe(&[1.0]);
        let mut b = RunningMinMax::new(1);
        b.observe(&[-2.0]);
        a.merge(&b);
        assert_eq!(a.min(0), Some(-2.0));
        assert_eq!(a.max(0), Some(1.0));
        assert_eq!(a.count(), 2);
    }

    #[test]
    fn widen_adds_margin() {
        let mut mm = RunningMinMax::new(1);
        mm.observe(&[0.0]);
        mm.widen(0.5);
        assert!(mm.contains(&[0.4]));
        assert!(!mm.contains(&[0.6]));
    }

    #[test]
    fn online_stats_mean_variance() {
        let mut s = OnlineStats::new();
        for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(v);
        }
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
        assert_eq!(s.count(), 8);
    }

    #[test]
    fn online_stats_empty_defaults() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
    }
}

//! Weight-initialisation helpers used by the neural-network crate.

use rand::Rng;

use crate::{Matrix, Vector};

/// Initialisation schemes for layer weights.
///
/// ```
/// use dpv_tensor::Initializer;
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let w = Initializer::HeNormal.matrix(8, 4, &mut rng);
/// assert_eq!(w.shape(), (8, 4));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Initializer {
    /// All entries zero.
    Zeros,
    /// All entries set to the given constant.
    Constant(f64),
    /// Uniform in `[-limit, limit]`.
    Uniform(f64),
    /// Xavier/Glorot uniform: `limit = sqrt(6 / (fan_in + fan_out))`.
    XavierUniform,
    /// He/Kaiming normal: `std = sqrt(2 / fan_in)`, suited to ReLU layers.
    HeNormal,
}

impl Initializer {
    /// Samples a `rows` × `cols` weight matrix. `cols` is treated as the
    /// fan-in and `rows` as the fan-out (row-major `W * x` convention).
    pub fn matrix<R: Rng + ?Sized>(self, rows: usize, cols: usize, rng: &mut R) -> Matrix {
        let fan_in = cols.max(1) as f64;
        let fan_out = rows.max(1) as f64;
        match self {
            Initializer::Zeros => Matrix::zeros(rows, cols),
            Initializer::Constant(c) => Matrix::filled(rows, cols, c),
            Initializer::Uniform(limit) => {
                sample_matrix(rows, cols, rng, |rng| rng.gen_range(-limit..=limit))
            }
            Initializer::XavierUniform => {
                let limit = (6.0 / (fan_in + fan_out)).sqrt();
                sample_matrix(rows, cols, rng, |rng| rng.gen_range(-limit..=limit))
            }
            Initializer::HeNormal => {
                let std = (2.0 / fan_in).sqrt();
                sample_matrix(rows, cols, rng, |rng| standard_normal(rng) * std)
            }
        }
    }

    /// Samples a bias vector of length `len`. Bias vectors are initialised to
    /// zero for every scheme except [`Initializer::Constant`] and
    /// [`Initializer::Uniform`].
    pub fn bias<R: Rng + ?Sized>(self, len: usize, rng: &mut R) -> Vector {
        match self {
            Initializer::Constant(c) => Vector::filled(len, c),
            Initializer::Uniform(limit) => {
                Vector::from_vec((0..len).map(|_| rng.gen_range(-limit..=limit)).collect())
            }
            _ => Vector::zeros(len),
        }
    }
}

fn sample_matrix<R: Rng + ?Sized>(
    rows: usize,
    cols: usize,
    rng: &mut R,
    mut sample: impl FnMut(&mut R) -> f64,
) -> Matrix {
    let data: Vec<f64> = (0..rows * cols).map(|_| sample(rng)).collect();
    Matrix::from_flat(rows, cols, data).expect("sample_matrix constructs a consistent shape")
}

/// Samples from the standard normal distribution via the Box–Muller transform.
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        if z.is_finite() {
            return z;
        }
    }
}

/// Convenience wrapper for [`Initializer::HeNormal`].
pub fn he_normal<R: Rng + ?Sized>(rows: usize, cols: usize, rng: &mut R) -> Matrix {
    Initializer::HeNormal.matrix(rows, cols, rng)
}

/// Convenience wrapper for [`Initializer::XavierUniform`].
pub fn xavier_uniform<R: Rng + ?Sized>(rows: usize, cols: usize, rng: &mut R) -> Matrix {
    Initializer::XavierUniform.matrix(rows, cols, rng)
}

/// Convenience wrapper for [`Initializer::Uniform`].
pub fn uniform_init<R: Rng + ?Sized>(rows: usize, cols: usize, limit: f64, rng: &mut R) -> Matrix {
    Initializer::Uniform(limit).matrix(rows, cols, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zeros_and_constant() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(Initializer::Zeros.matrix(2, 2, &mut rng).sum(), 0.0);
        assert_eq!(
            Initializer::Constant(3.0).matrix(2, 2, &mut rng).sum(),
            12.0
        );
        assert_eq!(Initializer::Constant(0.5).bias(4, &mut rng).sum(), 2.0);
    }

    #[test]
    fn uniform_respects_limit() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = uniform_init(10, 10, 0.25, &mut rng);
        assert!(m.as_slice().iter().all(|v| v.abs() <= 0.25));
    }

    #[test]
    fn xavier_respects_limit() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = xavier_uniform(6, 6, &mut rng);
        let limit = (6.0 / 12.0_f64).sqrt();
        assert!(m.as_slice().iter().all(|v| v.abs() <= limit + 1e-12));
    }

    #[test]
    fn he_normal_has_reasonable_spread() {
        let mut rng = StdRng::seed_from_u64(4);
        let m = he_normal(50, 50, &mut rng);
        let mean = m.sum() / 2500.0;
        assert!(mean.abs() < 0.05, "mean too far from zero: {mean}");
        let expected_std = (2.0 / 50.0_f64).sqrt();
        let var = m
            .as_slice()
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f64>()
            / 2500.0;
        assert!((var.sqrt() - expected_std).abs() < 0.05);
    }

    #[test]
    fn deterministic_with_same_seed() {
        let a = he_normal(4, 4, &mut StdRng::seed_from_u64(9));
        let b = he_normal(4, 4, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn bias_defaults_to_zero() {
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(Initializer::HeNormal.bias(3, &mut rng).sum(), 0.0);
        assert_eq!(Initializer::XavierUniform.bias(3, &mut rng).sum(), 0.0);
    }
}

//! Cross-domain soundness properties: every abstract domain must contain the
//! image of every concrete point contained in the input region.

use dpv_absint::{AbstractDomain, BoxDomain, Interval, OctagonLite, Zonotope};
use dpv_nn::{Activation, NetworkBuilder, TensorShape};
use dpv_tensor::Vector;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_dense_network(seed: u64, input: usize, output: usize) -> dpv_nn::Network {
    let mut rng = StdRng::seed_from_u64(seed);
    NetworkBuilder::new(input)
        .dense(input * 2, &mut rng)
        .activation(Activation::ReLU)
        .batch_norm()
        .dense(input, &mut rng)
        .activation(Activation::ReLU)
        .dense(output, &mut rng)
        .build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn box_and_zonotope_are_sound_on_dense_networks(
        seed in 0u64..400,
        sample_seed in 0u64..400,
    ) {
        let net = random_dense_network(seed, 4, 2);
        let start = vec![Interval::new(-1.0, 1.0); 4];
        let box_out = BoxDomain::from_intervals(start.clone()).propagate(net.layers());
        let zono_out = Zonotope::from_intervals(start).propagate(net.layers());
        let mut rng = StdRng::seed_from_u64(sample_seed);
        for _ in 0..100 {
            let x = Vector::from_vec((0..4).map(|_| rng.gen_range(-1.0..1.0)).collect());
            let y = net.forward(&x);
            prop_assert!(box_out.box_contains(y.as_slice(), 1e-7));
            prop_assert!(zono_out.box_contains(y.as_slice(), 1e-7));
        }
    }

    /// On purely affine networks the zonotope transformer is exact, so its
    /// box enclosure can never be looser than plain interval arithmetic.
    /// (With unstable ReLUs the minimal-area relaxation may extend below
    /// zero where the box clips, so dominance holds only for affine layers.)
    #[test]
    fn zonotope_is_exact_on_affine_networks(seed in 0u64..400) {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = NetworkBuilder::new(3)
            .dense(6, &mut rng)
            .batch_norm()
            .dense(2, &mut rng)
            .build();
        let start = vec![Interval::new(-0.5, 0.5); 3];
        let box_out = BoxDomain::from_intervals(start.clone()).propagate(net.layers());
        let zono_out = Zonotope::from_intervals(start).propagate(net.layers());
        let bw: f64 = box_out.to_box().iter().map(Interval::width).sum();
        let zw: f64 = zono_out.to_box().iter().map(Interval::width).sum();
        prop_assert!(zw <= bw + 1e-7, "zonotope {zw} looser than box {bw} on an affine network");
    }

    #[test]
    fn octagon_hull_contains_every_sample(
        raw in prop::collection::vec(prop::collection::vec(-2.0f64..2.0, 5), 2..20)
    ) {
        let samples: Vec<Vector> = raw.iter().map(|v| Vector::from_slice(v)).collect();
        let oct = OctagonLite::from_samples(&samples);
        for s in &samples {
            prop_assert!(oct.contains(s.as_slice(), 1e-9));
        }
        // The octagon is always at least as restrictive as its box part.
        let box_part = oct.to_box_domain();
        for s in &samples {
            prop_assert!(box_part.box_contains(s.as_slice(), 1e-9));
        }
    }

    #[test]
    fn octagon_tighten_preserves_samples(
        raw in prop::collection::vec(prop::collection::vec(-2.0f64..2.0, 4), 2..15)
    ) {
        let samples: Vec<Vector> = raw.iter().map(|v| Vector::from_slice(v)).collect();
        let mut oct = OctagonLite::from_samples(&samples);
        oct.tighten();
        for s in &samples {
            prop_assert!(oct.contains(s.as_slice(), 1e-9), "tighten broke containment");
        }
    }
}

#[test]
fn convolutional_network_soundness_both_domains() {
    let mut rng = StdRng::seed_from_u64(123);
    let net = NetworkBuilder::with_image_input(TensorShape::new(1, 8, 8))
        .conv2d(3, 3, 1, &mut rng)
        .activation(Activation::ReLU)
        .max_pool(2)
        .flatten()
        .dense(6, &mut rng)
        .activation(Activation::ReLU)
        .dense(2, &mut rng)
        .build();
    let start = vec![Interval::new(0.0, 1.0); 64];
    let box_out = BoxDomain::from_intervals(start.clone()).propagate(net.layers());
    let zono_out = Zonotope::from_intervals(start).propagate(net.layers());
    for _ in 0..50 {
        let x = Vector::from_vec((0..64).map(|_| rng.gen_range(0.0..1.0)).collect());
        let y = net.forward(&x);
        assert!(box_out.box_contains(y.as_slice(), 1e-6));
        assert!(zono_out.box_contains(y.as_slice(), 1e-6));
    }
}

#[test]
fn lemma2_style_input_box_propagation_to_cut_layer() {
    // Propagating the [0,1] pixel box of a perception front-end to the cut
    // layer — the Lemma-2 set S — must contain the activation of every
    // rendered in-ODD image.
    let mut rng = StdRng::seed_from_u64(9);
    let net = NetworkBuilder::new(32)
        .dense(16, &mut rng)
        .activation(Activation::ReLU)
        .dense(8, &mut rng)
        .activation(Activation::ReLU)
        .dense(2, &mut rng)
        .build();
    let cut = 3; // after the second ReLU's dense layer
    let (head, _tail) = net.split_at(cut).unwrap();
    let input_box = BoxDomain::uniform(32, 0.0, 1.0);
    let cut_set = input_box.propagate(head.layers());
    for _ in 0..100 {
        let x = Vector::from_vec((0..32).map(|_| rng.gen_range(0.0..1.0)).collect());
        let activation = net.activation_at(cut, &x);
        assert!(cut_set.box_contains(activation.as_slice(), 1e-7));
    }
}

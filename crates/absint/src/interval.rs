//! Closed intervals of `f64` with outward-directed arithmetic.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A closed interval `[lo, hi]`.
///
/// ```
/// use dpv_absint::Interval;
/// let a = Interval::new(-1.0, 2.0);
/// let b = a.relu();
/// assert_eq!(b, Interval::new(0.0, 2.0));
/// assert!(a.contains(0.5, 0.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Interval {
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
}

impl Interval {
    /// Creates the interval `[lo, hi]`.
    ///
    /// # Panics
    /// Panics when `lo > hi` or either bound is NaN.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(
            !lo.is_nan() && !hi.is_nan(),
            "interval bounds must not be NaN"
        );
        assert!(lo <= hi, "interval is empty: [{lo}, {hi}]");
        Self { lo, hi }
    }

    /// The degenerate interval `[v, v]`.
    pub fn point(v: f64) -> Self {
        Self::new(v, v)
    }

    /// The interval `[0, 0]`.
    pub fn zero() -> Self {
        Self::point(0.0)
    }

    /// Width `hi - lo`.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Midpoint `(hi + lo) / 2`.
    pub fn midpoint(&self) -> f64 {
        0.5 * (self.hi + self.lo)
    }

    /// Returns `true` when `v` lies in the interval, enlarged by `tol` on
    /// both sides.
    pub fn contains(&self, v: f64, tol: f64) -> bool {
        v >= self.lo - tol && v <= self.hi + tol
    }

    /// Returns `true` when `other` is entirely inside `self` (within `tol`).
    pub fn encloses(&self, other: &Interval, tol: f64) -> bool {
        other.lo >= self.lo - tol && other.hi <= self.hi + tol
    }

    /// Interval sum.
    pub fn add(&self, other: &Interval) -> Interval {
        Interval::new(self.lo + other.lo, self.hi + other.hi)
    }

    /// Adds a scalar.
    pub fn add_scalar(&self, v: f64) -> Interval {
        Interval::new(self.lo + v, self.hi + v)
    }

    /// Multiplies by a scalar (flipping the bounds for negative scalars).
    pub fn scale(&self, factor: f64) -> Interval {
        if factor >= 0.0 {
            Interval::new(self.lo * factor, self.hi * factor)
        } else {
            Interval::new(self.hi * factor, self.lo * factor)
        }
    }

    /// Image under the ReLU function.
    pub fn relu(&self) -> Interval {
        Interval::new(self.lo.max(0.0), self.hi.max(0.0))
    }

    /// Image under the leaky-ReLU function with the given negative slope
    /// (assumed in `[0, 1]`).
    pub fn leaky_relu(&self, slope: f64) -> Interval {
        let f = |x: f64| if x >= 0.0 { x } else { slope * x };
        Interval::new(f(self.lo), f(self.hi))
    }

    /// Interval product: the tightest interval containing `a · b` for every
    /// `a ∈ self`, `b ∈ other` — the min/max over the four endpoint
    /// products. Needed when *both* factors are uncertain (e.g. an
    /// interval-valued weight applied to an interval-valued activation in
    /// the delta-verification absorption check); for a known scalar factor
    /// [`Interval::scale`] is the cheaper special case.
    pub fn mul(&self, other: &Interval) -> Interval {
        let products = [
            self.lo * other.lo,
            self.lo * other.hi,
            self.hi * other.lo,
            self.hi * other.hi,
        ];
        let mut lo = products[0];
        let mut hi = products[0];
        for &p in &products[1..] {
            lo = lo.min(p);
            hi = hi.max(p);
        }
        Interval::new(lo, hi)
    }

    /// Smallest interval containing both operands (join / convex hull).
    pub fn join(&self, other: &Interval) -> Interval {
        Interval::new(self.lo.min(other.lo), self.hi.max(other.hi))
    }

    /// Intersection, or `None` when the operands are disjoint.
    pub fn meet(&self, other: &Interval) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        (lo <= hi).then(|| Interval::new(lo, hi))
    }

    /// Interval maximum (used by the max-pool transformer).
    pub fn max(&self, other: &Interval) -> Interval {
        Interval::new(self.lo.max(other.lo), self.hi.max(other.hi))
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:.4}, {:.4}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let i = Interval::new(-1.0, 3.0);
        assert_eq!(i.width(), 4.0);
        assert_eq!(i.midpoint(), 1.0);
        assert_eq!(Interval::point(2.0).width(), 0.0);
        assert_eq!(Interval::zero(), Interval::point(0.0));
    }

    #[test]
    fn containment_and_enclosure() {
        let i = Interval::new(0.0, 1.0);
        assert!(i.contains(0.5, 0.0));
        assert!(!i.contains(1.1, 0.0));
        assert!(i.contains(1.05, 0.1));
        assert!(i.encloses(&Interval::new(0.2, 0.8), 0.0));
        assert!(!i.encloses(&Interval::new(-0.2, 0.8), 0.0));
    }

    #[test]
    fn arithmetic() {
        let a = Interval::new(-1.0, 2.0);
        let b = Interval::new(0.5, 1.0);
        assert_eq!(a.add(&b), Interval::new(-0.5, 3.0));
        assert_eq!(a.add_scalar(1.0), Interval::new(0.0, 3.0));
        assert_eq!(a.scale(2.0), Interval::new(-2.0, 4.0));
        assert_eq!(a.scale(-1.0), Interval::new(-2.0, 1.0));
    }

    #[test]
    fn activation_transformers() {
        let a = Interval::new(-2.0, 3.0);
        assert_eq!(a.relu(), Interval::new(0.0, 3.0));
        assert_eq!(Interval::new(-3.0, -1.0).relu(), Interval::new(0.0, 0.0));
        assert_eq!(a.leaky_relu(0.1), Interval::new(-0.2, 3.0));
    }

    #[test]
    fn interval_product_covers_all_sign_combinations() {
        let cases = [
            (Interval::new(1.0, 2.0), Interval::new(3.0, 4.0)),
            (Interval::new(-2.0, -1.0), Interval::new(3.0, 4.0)),
            (Interval::new(-2.0, 3.0), Interval::new(-1.0, 4.0)),
            (Interval::new(-2.0, 3.0), Interval::new(-4.0, -1.0)),
            (Interval::new(0.0, 0.0), Interval::new(-5.0, 7.0)),
        ];
        for (a, b) in cases {
            let prod = a.mul(&b);
            // Sample the operands densely; every concrete product must land
            // inside, and the endpoints must be achieved at corners.
            for i in 0..=10 {
                for j in 0..=10 {
                    let x = a.lo + a.width() * (i as f64) / 10.0;
                    let y = b.lo + b.width() * (j as f64) / 10.0;
                    assert!(prod.contains(x * y, 1e-12), "{x}*{y} escapes {prod}");
                }
            }
            let corners = [a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi];
            let min = corners.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = corners.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            assert_eq!(prod, Interval::new(min, max));
        }
    }

    #[test]
    fn interval_product_degenerates_to_scale() {
        let a = Interval::new(-1.0, 2.0);
        for factor in [-3.0, 0.0, 2.5] {
            assert_eq!(a.mul(&Interval::point(factor)), a.scale(factor));
        }
    }

    #[test]
    fn lattice_operations() {
        let a = Interval::new(0.0, 2.0);
        let b = Interval::new(1.0, 3.0);
        assert_eq!(a.join(&b), Interval::new(0.0, 3.0));
        assert_eq!(a.meet(&b), Some(Interval::new(1.0, 2.0)));
        assert_eq!(a.meet(&Interval::new(5.0, 6.0)), None);
        assert_eq!(a.max(&b), Interval::new(1.0, 3.0));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_interval_panics() {
        let _ = Interval::new(1.0, 0.0);
    }

    #[test]
    fn display_formats_bounds() {
        assert_eq!(Interval::new(0.0, 1.0).to_string(), "[0.0000, 1.0000]");
    }
}

//! The zonotope abstract domain (affine forms with shared noise symbols).

use serde::{Deserialize, Serialize};

use dpv_nn::{Activation, Layer};
use dpv_tensor::Vector;

use crate::{AbstractDomain, BoxDomain, Interval};

/// A zonotope `{ c + Σ_k ε_k g_k  |  ε_k ∈ [-1, 1] }` with centre `c` and
/// generator vectors `g_k`.
///
/// Affine layers (dense, batch-norm, convolution, flatten) are handled
/// *exactly*; unstable ReLUs use the standard minimal-area relaxation that
/// introduces one fresh noise symbol per unstable neuron; max-pool falls back
/// to the box abstraction of the affected window (sound, coarser).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Zonotope {
    centre: Vector,
    generators: Vec<Vector>,
}

impl Zonotope {
    /// Builds a zonotope from an explicit centre and generator set.
    ///
    /// # Panics
    /// Panics when any generator's length differs from the centre's.
    pub fn from_parts(centre: Vector, generators: Vec<Vector>) -> Self {
        for g in &generators {
            assert_eq!(g.len(), centre.len(), "generator dimension mismatch");
        }
        Self { centre, generators }
    }

    /// The centre point.
    pub fn centre(&self) -> &Vector {
        &self.centre
    }

    /// The generators.
    pub fn generators(&self) -> &[Vector] {
        &self.generators
    }

    /// Number of noise symbols.
    pub fn num_generators(&self) -> usize {
        self.generators.len()
    }

    /// Radius (sum of absolute generator coefficients) of dimension `i`.
    pub fn radius(&self, i: usize) -> f64 {
        self.generators.iter().map(|g| g[i].abs()).sum()
    }

    /// Applies an affine map given as a closure over concrete vectors. The
    /// closure must be affine (`f(x) = A x + b`): the generators are mapped
    /// through the linear part by evaluating `f(c + g) − f(c)`.
    fn affine_map(&self, f: impl Fn(&Vector) -> Vector) -> Zonotope {
        let new_centre = f(&self.centre);
        let generators = self
            .generators
            .iter()
            .map(|g| &f(&(&self.centre + g)) - &new_centre)
            .collect();
        Zonotope {
            centre: new_centre,
            generators,
        }
    }

    fn relu(&self) -> Zonotope {
        let dim = self.centre.len();
        let box_bounds = self.to_box();
        let mut centre = self.centre.clone();
        let mut generators = self.generators.clone();
        let mut fresh: Vec<(usize, f64)> = Vec::new();

        for i in 0..dim {
            let Interval { lo, hi } = box_bounds[i];
            if lo >= 0.0 {
                // Stable active: identity.
                continue;
            }
            if hi <= 0.0 {
                // Stable inactive: output is exactly zero.
                centre[i] = 0.0;
                for g in &mut generators {
                    g[i] = 0.0;
                }
                continue;
            }
            // Unstable: y = λ·x + μ ± μ with λ = hi/(hi−lo), μ = −λ·lo/2.
            let lambda = hi / (hi - lo);
            let mu = -lambda * lo / 2.0;
            centre[i] = lambda * centre[i] + mu;
            for g in &mut generators {
                g[i] *= lambda;
            }
            fresh.push((i, mu));
        }

        for (i, mu) in fresh {
            let mut g = Vector::zeros(dim);
            g[i] = mu;
            generators.push(g);
        }
        Zonotope { centre, generators }
    }

    fn leaky_relu(&self, slope: f64) -> Zonotope {
        // Sound fallback: treat as ReLU on the positive part plus the scaled
        // negative part via the box abstraction when unstable. For simplicity
        // (leaky ReLU is rare in the verified tails) use the box fallback.
        let bounds = self
            .to_box()
            .into_iter()
            .map(|i| i.leaky_relu(slope))
            .collect();
        Zonotope::from_intervals(bounds)
    }

    fn monotone_box_fallback(&self, f: impl Fn(f64) -> f64) -> Zonotope {
        let bounds = self
            .to_box()
            .into_iter()
            .map(|i| Interval::new(f(i.lo), f(i.hi)))
            .collect();
        Zonotope::from_intervals(bounds)
    }
}

impl AbstractDomain for Zonotope {
    fn from_intervals(bounds: Vec<Interval>) -> Self {
        let dim = bounds.len();
        let centre: Vector = bounds.iter().map(Interval::midpoint).collect();
        let mut generators = Vec::new();
        for (i, b) in bounds.iter().enumerate() {
            let radius = 0.5 * b.width();
            if radius > 0.0 {
                let mut g = Vector::zeros(dim);
                g[i] = radius;
                generators.push(g);
            }
        }
        Self { centre, generators }
    }

    fn to_box(&self) -> Vec<Interval> {
        (0..self.centre.len())
            .map(|i| {
                let r = self.radius(i);
                Interval::new(self.centre[i] - r, self.centre[i] + r)
            })
            .collect()
    }

    fn dim(&self) -> usize {
        self.centre.len()
    }

    fn apply_layer(&self, layer: &Layer) -> Self {
        match layer {
            Layer::Dense(d) => self.affine_map(|x| d.forward(x)),
            Layer::BatchNorm(bn) => self.affine_map(|x| bn.forward(x)),
            Layer::Conv2d(c) => self.affine_map(|x| c.forward(x)),
            Layer::Flatten(_) => self.clone(),
            Layer::Activation(a) => match a {
                Activation::Identity => self.clone(),
                Activation::ReLU => self.relu(),
                Activation::LeakyReLU(slope) => self.leaky_relu(*slope),
                Activation::Sigmoid | Activation::Tanh => {
                    self.monotone_box_fallback(|x| a.apply(x))
                }
            },
            Layer::MaxPool2d(p) => {
                // Box fallback: pool the box enclosure.
                let box_domain = BoxDomain::from_intervals(self.to_box());
                let pooled = box_domain.apply_layer(&Layer::MaxPool2d(p.clone()));
                Zonotope::from_intervals(pooled.to_box())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpv_nn::{Dense, NetworkBuilder};
    use dpv_tensor::Matrix;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn box_roundtrip() {
        let z = Zonotope::from_intervals(vec![Interval::new(-1.0, 1.0), Interval::new(0.0, 2.0)]);
        let b = z.to_box();
        assert_eq!(b[0], Interval::new(-1.0, 1.0));
        assert_eq!(b[1], Interval::new(0.0, 2.0));
        assert_eq!(z.dim(), 2);
        assert_eq!(z.num_generators(), 2);
    }

    #[test]
    fn affine_layers_are_exact() {
        // A rotation-ish dense layer: the zonotope box must match the exact
        // interval arithmetic result for a single affine layer.
        let w = Matrix::from_rows(&[vec![1.0, 1.0], vec![1.0, -1.0]]).unwrap();
        let layer = Layer::Dense(Dense::from_parts(w, Vector::zeros(2)));
        let z = Zonotope::from_intervals(vec![Interval::new(-1.0, 1.0); 2]).apply_layer(&layer);
        let b = z.to_box();
        assert_eq!(b[0], Interval::new(-2.0, 2.0));
        assert_eq!(b[1], Interval::new(-2.0, 2.0));
    }

    #[test]
    fn zonotope_tracks_correlations_better_than_box() {
        // y = x - x is exactly 0; the box domain cannot see that, the
        // zonotope can.
        let w1 = Matrix::from_rows(&[vec![1.0], vec![1.0]]).unwrap();
        let w2 = Matrix::from_rows(&[vec![1.0, -1.0]]).unwrap();
        let layers = vec![
            Layer::Dense(Dense::from_parts(w1, Vector::zeros(2))),
            Layer::Dense(Dense::from_parts(w2, Vector::zeros(1))),
        ];
        let start = vec![Interval::new(-1.0, 1.0)];
        let z = Zonotope::from_intervals(start.clone()).propagate(&layers);
        let b = BoxDomain::from_intervals(start).propagate(&layers);
        assert!(z.to_box()[0].width() < 1e-12, "zonotope should be exact");
        assert!(b.to_box()[0].width() > 3.9, "box loses the correlation");
    }

    #[test]
    fn relu_transformer_is_sound() {
        let mut rng = StdRng::seed_from_u64(5);
        let net = NetworkBuilder::new(3)
            .dense(8, &mut rng)
            .activation(Activation::ReLU)
            .dense(4, &mut rng)
            .activation(Activation::ReLU)
            .dense(2, &mut rng)
            .build();
        let start = vec![Interval::new(-1.0, 1.0); 3];
        let z = Zonotope::from_intervals(start).propagate(net.layers());
        for _ in 0..300 {
            let x = Vector::from_vec((0..3).map(|_| rng.gen_range(-1.0..1.0)).collect());
            let y = net.forward(&x);
            assert!(z.box_contains(y.as_slice(), 1e-7), "{y} escapes zonotope");
        }
    }

    #[test]
    fn zonotope_is_tighter_than_box_on_deep_networks() {
        let mut rng = StdRng::seed_from_u64(11);
        let net = NetworkBuilder::new(4)
            .dense(10, &mut rng)
            .activation(Activation::ReLU)
            .dense(10, &mut rng)
            .activation(Activation::ReLU)
            .dense(2, &mut rng)
            .build();
        let start = vec![Interval::new(-0.5, 0.5); 4];
        let z = Zonotope::from_intervals(start.clone()).propagate(net.layers());
        let b = BoxDomain::from_intervals(start).propagate(net.layers());
        let z_width: f64 = z.to_box().iter().map(Interval::width).sum();
        let b_width: f64 = b.to_box().iter().map(Interval::width).sum();
        assert!(
            z_width <= b_width + 1e-9,
            "zonotope ({z_width}) should not be looser than box ({b_width})"
        );
    }

    #[test]
    fn stable_relu_neurons_stay_exact() {
        let z = Zonotope::from_intervals(vec![Interval::new(0.5, 1.5), Interval::new(-2.0, -1.0)]);
        let out = z.apply_layer(&Layer::Activation(Activation::ReLU));
        let b = out.to_box();
        assert_eq!(b[0], Interval::new(0.5, 1.5));
        assert_eq!(b[1], Interval::new(0.0, 0.0));
        // No fresh generator is needed for stable neurons.
        assert_eq!(out.num_generators(), z.num_generators());
    }

    #[test]
    fn smooth_activation_falls_back_to_box() {
        let z = Zonotope::from_intervals(vec![Interval::new(-1.0, 1.0)]);
        let out = z.apply_layer(&Layer::Activation(Activation::Tanh));
        let b = out.to_box();
        assert!((b[0].lo - (-1.0f64).tanh()).abs() < 1e-12);
        assert!((b[0].hi - 1.0f64.tanh()).abs() < 1e-12);
    }
}

//! # dpv-absint
//!
//! Abstract-interpretation domains for feed-forward neural networks,
//! providing the sound over-approximations the paper's verification workflow
//! needs in two places:
//!
//! 1. **Lemma 2** — a set `S ⊆ R^{d_l}` guaranteed to contain `f^(l)(in)`
//!    for *every* network input, obtained by propagating the input domain
//!    (e.g. the `[0, 1]` pixel box) layer by layer to the cut layer.
//! 2. **Pre-activation bounds for the MILP encoding** — each ReLU in the
//!    verified tail needs finite bounds on its pre-activation to build the
//!    big-M constraints; those bounds come from propagating the starting
//!    region (envelope or Lemma-2 set) through the tail.
//!
//! Three domains are provided, mirroring the paper's discussion of box,
//! octagon and zonotope abstractions (Section IV):
//!
//! * [`BoxDomain`] — independent per-neuron intervals; cheapest, coarsest.
//! * [`Zonotope`] — affine forms sharing noise symbols; exact for affine
//!   layers, with the standard minimal-area relaxation for unstable ReLUs.
//! * [`OctagonLite`] — a box plus bounds on the differences of *adjacent*
//!   neurons, exactly the `n_{i+1} − n_i` constraints the paper records for
//!   monitoring (Section V); it does not propagate through layers but
//!   tightens boxes and translates directly into linear constraints for the
//!   MILP.
//!
//! ## Example
//!
//! ```
//! use dpv_absint::{AbstractDomain, BoxDomain, Interval};
//! use dpv_nn::{Activation, NetworkBuilder};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let net = NetworkBuilder::new(2)
//!     .dense(4, &mut rng)
//!     .activation(Activation::ReLU)
//!     .dense(1, &mut rng)
//!     .build();
//! let input = BoxDomain::from_intervals(vec![Interval::new(0.0, 1.0); 2]);
//! let output = input.propagate(net.layers());
//! // The output box must contain the image of every concrete input.
//! let y = net.forward(&dpv_tensor::Vector::from_slice(&[0.5, 0.5]));
//! assert!(output.to_box()[0].contains(y[0], 1e-9));
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod box_batch;
mod box_domain;
mod interval;
mod octagon;
mod zonotope;

pub use box_batch::BoxBatch;
pub use box_domain::BoxDomain;
pub use interval::Interval;
pub use octagon::{BoundRows, OctagonLite};
pub use zonotope::Zonotope;

use dpv_nn::Layer;

/// A sound abstract domain over layer activations.
///
/// Implementations must guarantee *soundness*: if a concrete vector is
/// contained in the abstract value, its image under `apply_layer` /
/// `propagate` is contained in the resulting abstract value.
pub trait AbstractDomain: Sized + Clone {
    /// Builds the abstract value representing exactly the given box.
    fn from_intervals(bounds: Vec<Interval>) -> Self;

    /// The tightest box enclosing the abstract value.
    fn to_box(&self) -> Vec<Interval>;

    /// Dimension of the represented vectors.
    fn dim(&self) -> usize;

    /// Sound abstract transformer for one layer.
    fn apply_layer(&self, layer: &Layer) -> Self;

    /// Sound abstract transformer for a sequence of layers.
    fn propagate(&self, layers: &[Layer]) -> Self {
        layers
            .iter()
            .fold(self.clone(), |value, layer| value.apply_layer(layer))
    }

    /// Returns `true` when the concrete vector lies inside the box enclosure
    /// of the abstract value (a necessary condition for membership, used by
    /// the soundness tests).
    fn box_contains(&self, point: &[f64], tol: f64) -> bool {
        let bounds = self.to_box();
        bounds.len() == point.len()
            && bounds
                .iter()
                .zip(point.iter())
                .all(|(interval, v)| interval.contains(*v, tol))
    }
}

//! The box (interval vector) abstract domain.

use serde::{Deserialize, Serialize};

use dpv_nn::{Activation, Layer};
use dpv_tensor::Vector;

use crate::{AbstractDomain, Interval};

/// A vector of independent per-neuron intervals.
///
/// The cheapest sound abstraction — and, as the paper observes in Section V,
/// often too coarse on its own, which is why the monitored envelope also
/// records adjacent-neuron differences ([`crate::OctagonLite`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoxDomain {
    bounds: Vec<Interval>,
}

impl BoxDomain {
    /// The box `[lo, hi]^dim`.
    pub fn uniform(dim: usize, lo: f64, hi: f64) -> Self {
        Self {
            bounds: vec![Interval::new(lo, hi); dim],
        }
    }

    /// The degenerate box containing exactly one point.
    pub fn from_point(point: &Vector) -> Self {
        Self {
            bounds: point.iter().map(|v| Interval::point(*v)).collect(),
        }
    }

    /// Builds the smallest box containing every sample.
    ///
    /// # Panics
    /// Panics when `samples` is empty or the samples have differing lengths.
    pub fn from_samples(samples: &[Vector]) -> Self {
        assert!(!samples.is_empty(), "cannot build a box from zero samples");
        let dim = samples[0].len();
        let mut bounds = vec![Interval::point(samples[0][0]); dim];
        for (i, bound) in bounds.iter_mut().enumerate() {
            *bound = Interval::point(samples[0][i]);
        }
        for sample in &samples[1..] {
            assert_eq!(sample.len(), dim, "sample dimension mismatch");
            for i in 0..dim {
                *bounds.get_mut(i).expect("index in range") =
                    bounds[i].join(&Interval::point(sample[i]));
            }
        }
        Self { bounds }
    }

    /// The per-neuron intervals.
    pub fn bounds(&self) -> &[Interval] {
        &self.bounds
    }

    /// Lower bounds as a vector.
    pub fn lower(&self) -> Vector {
        self.bounds.iter().map(|i| i.lo).collect()
    }

    /// Upper bounds as a vector.
    pub fn upper(&self) -> Vector {
        self.bounds.iter().map(|i| i.hi).collect()
    }

    /// Widens every interval by `margin` on both sides.
    pub fn widen(&mut self, margin: f64) {
        for b in &mut self.bounds {
            *b = Interval::new(b.lo - margin, b.hi + margin);
        }
    }

    /// Total width (sum of interval widths), a scalar coarseness measure.
    pub fn total_width(&self) -> f64 {
        self.bounds.iter().map(Interval::width).sum()
    }

    /// Intersects with another box of the same dimension; `None` when the
    /// intersection is empty in any coordinate.
    ///
    /// # Panics
    /// Panics when the dimensions differ.
    pub fn meet(&self, other: &BoxDomain) -> Option<BoxDomain> {
        assert_eq!(self.dim(), other.dim(), "box meet dimension mismatch");
        let bounds: Option<Vec<Interval>> = self
            .bounds
            .iter()
            .zip(other.bounds.iter())
            .map(|(a, b)| a.meet(b))
            .collect();
        bounds.map(|bounds| BoxDomain { bounds })
    }

    fn affine_dense(&self, weights: &dpv_tensor::Matrix, bias: &Vector) -> BoxDomain {
        let mut out = Vec::with_capacity(weights.rows());
        for r in 0..weights.rows() {
            let row = weights.row(r);
            let mut acc = Interval::point(bias[r]);
            for (c, w) in row.iter().enumerate() {
                acc = acc.add(&self.bounds[c].scale(*w));
            }
            out.push(acc);
        }
        BoxDomain { bounds: out }
    }

    fn activation_interval(interval: &Interval, activation: Activation) -> Interval {
        match activation {
            Activation::Identity => *interval,
            Activation::ReLU => interval.relu(),
            Activation::LeakyReLU(slope) => interval.leaky_relu(slope),
            // Sigmoid and tanh are monotone, so the endpoint images bound the interval.
            Activation::Sigmoid | Activation::Tanh => {
                Interval::new(activation.apply(interval.lo), activation.apply(interval.hi))
            }
        }
    }

    fn activation(&self, activation: Activation) -> BoxDomain {
        let bounds = self
            .bounds
            .iter()
            .map(|i| Self::activation_interval(i, activation))
            .collect();
        BoxDomain { bounds }
    }

    /// [`AbstractDomain::apply_layer`] into a caller-provided output box,
    /// reusing its interval buffer instead of allocating a fresh `BoxDomain`
    /// per layer. Hot encoders (the MILP layer-skeleton template in
    /// `dpv-core`) ping-pong two boxes through a whole network with this.
    ///
    /// Dense, batch-norm, activation and flatten layers — the shapes the MILP
    /// encoder accepts — are written in place; the remaining layer kinds fall
    /// back to [`AbstractDomain::apply_layer`].
    ///
    /// # Panics
    /// Panics on dimension mismatches, exactly like
    /// [`AbstractDomain::apply_layer`].
    pub fn apply_layer_into(&self, layer: &Layer, out: &mut BoxDomain) {
        match layer {
            Layer::Dense(d) => {
                assert_eq!(self.dim(), d.input_dim(), "box/dense dimension mismatch");
                out.bounds.clear();
                let weights = d.weights();
                for r in 0..weights.rows() {
                    let row = weights.row(r);
                    let mut acc = Interval::point(d.bias()[r]);
                    for (c, w) in row.iter().enumerate() {
                        acc = acc.add(&self.bounds[c].scale(*w));
                    }
                    out.bounds.push(acc);
                }
            }
            Layer::BatchNorm(bn) => {
                assert_eq!(self.dim(), bn.dim(), "box/batch-norm dimension mismatch");
                let (a, b) = bn.affine_form();
                out.bounds.clear();
                out.bounds.extend(
                    self.bounds
                        .iter()
                        .enumerate()
                        .map(|(i, interval)| interval.scale(a[i]).add_scalar(b[i])),
                );
            }
            Layer::Activation(a) => {
                out.bounds.clear();
                out.bounds
                    .extend(self.bounds.iter().map(|i| Self::activation_interval(i, *a)));
            }
            Layer::Flatten(_) => {
                out.bounds.clear();
                out.bounds.extend_from_slice(&self.bounds);
            }
            other => *out = self.apply_layer(other),
        }
    }
}

impl AbstractDomain for BoxDomain {
    fn from_intervals(bounds: Vec<Interval>) -> Self {
        Self { bounds }
    }

    fn to_box(&self) -> Vec<Interval> {
        self.bounds.clone()
    }

    fn dim(&self) -> usize {
        self.bounds.len()
    }

    fn apply_layer(&self, layer: &Layer) -> Self {
        match layer {
            Layer::Dense(d) => {
                assert_eq!(self.dim(), d.input_dim(), "box/dense dimension mismatch");
                self.affine_dense(d.weights(), d.bias())
            }
            Layer::Activation(a) => self.activation(*a),
            Layer::BatchNorm(bn) => {
                assert_eq!(self.dim(), bn.dim(), "box/batch-norm dimension mismatch");
                let (a, b) = bn.affine_form();
                let bounds = self
                    .bounds
                    .iter()
                    .enumerate()
                    .map(|(i, interval)| interval.scale(a[i]).add_scalar(b[i]))
                    .collect();
                BoxDomain { bounds }
            }
            Layer::Conv2d(c) => {
                assert_eq!(self.dim(), c.input_dim(), "box/conv dimension mismatch");
                // Exact interval propagation through the (linear) convolution:
                // walk every output cell's receptive field and accumulate the
                // per-pixel intervals scaled by the kernel weights, exactly as
                // the dense transformer does for its rows.
                let in_shape = c.input_shape();
                let out_shape = c.output_shape();
                let (h, w) = (in_shape.height, in_shape.width);
                let kernel = c.kernel();
                let stride = c.stride();
                let mut out = Vec::with_capacity(c.output_dim());
                for oc in 0..out_shape.channels {
                    for oy in 0..out_shape.height {
                        for ox in 0..out_shape.width {
                            let mut acc = Interval::point(c.bias()[oc]);
                            let mut col = 0usize;
                            for ch in 0..in_shape.channels {
                                for ky in 0..kernel {
                                    for kx in 0..kernel {
                                        let y = oy * stride + ky;
                                        let x = ox * stride + kx;
                                        let in_idx = ch * h * w + y * w + x;
                                        let weight = c.weights()[(oc, col)];
                                        acc = acc.add(&self.bounds[in_idx].scale(weight));
                                        col += 1;
                                    }
                                }
                            }
                            out.push(acc);
                        }
                    }
                }
                BoxDomain { bounds: out }
            }
            Layer::MaxPool2d(p) => {
                assert_eq!(self.dim(), p.input_dim(), "box/max-pool dimension mismatch");
                // Pool the lower bounds and the upper bounds independently;
                // the max of intervals is the interval of the max.
                let lo = p.forward(&self.lower());
                let hi = p.forward(&self.upper());
                let bounds = lo
                    .iter()
                    .zip(hi.iter())
                    .map(|(l, h)| Interval::new(*l, *h))
                    .collect();
                BoxDomain { bounds }
            }
            Layer::Flatten(_) => self.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpv_nn::{Dense, NetworkBuilder};
    use dpv_tensor::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn from_samples_covers_all_samples() {
        let samples = vec![
            Vector::from_slice(&[0.0, 1.0]),
            Vector::from_slice(&[-1.0, 0.5]),
            Vector::from_slice(&[0.3, 2.0]),
        ];
        let b = BoxDomain::from_samples(&samples);
        assert_eq!(b.bounds()[0], Interval::new(-1.0, 0.3));
        assert_eq!(b.bounds()[1], Interval::new(0.5, 2.0));
        for s in &samples {
            assert!(b.box_contains(s.as_slice(), 0.0));
        }
    }

    #[test]
    fn dense_transformer_is_exact_for_points() {
        let w = Matrix::from_rows(&[vec![1.0, -2.0], vec![0.5, 0.5]]).unwrap();
        let layer = Layer::Dense(Dense::from_parts(w, Vector::from_slice(&[1.0, 0.0])));
        let point = Vector::from_slice(&[0.3, -0.7]);
        let image = layer.forward(&point);
        let b = BoxDomain::from_point(&point).apply_layer(&layer);
        for (i, interval) in b.bounds().iter().enumerate() {
            assert!(interval.width() < 1e-12);
            assert!(interval.contains(image[i], 1e-12));
        }
    }

    #[test]
    fn relu_transformer_clamps_lower_bounds() {
        let b =
            BoxDomain::from_intervals(vec![Interval::new(-1.0, 2.0), Interval::new(-3.0, -1.0)]);
        let out = b.apply_layer(&Layer::Activation(Activation::ReLU));
        assert_eq!(out.bounds()[0], Interval::new(0.0, 2.0));
        assert_eq!(out.bounds()[1], Interval::new(0.0, 0.0));
    }

    #[test]
    fn propagation_is_sound_on_random_networks() {
        let mut rng = StdRng::seed_from_u64(3);
        let net = NetworkBuilder::new(3)
            .dense(6, &mut rng)
            .activation(Activation::ReLU)
            .batch_norm()
            .dense(2, &mut rng)
            .build();
        let input_box = BoxDomain::uniform(3, -1.0, 1.0);
        let out = input_box.propagate(net.layers());
        use rand::Rng;
        for _ in 0..200 {
            let x = Vector::from_vec((0..3).map(|_| rng.gen_range(-1.0..1.0)).collect());
            let y = net.forward(&x);
            assert!(
                out.box_contains(y.as_slice(), 1e-9),
                "output {y} escapes {:?}",
                out.to_box()
            );
        }
    }

    #[test]
    fn conv_and_pool_propagation_is_sound() {
        use dpv_nn::TensorShape;
        let mut rng = StdRng::seed_from_u64(9);
        let net = NetworkBuilder::with_image_input(TensorShape::new(1, 6, 6))
            .conv2d(2, 3, 1, &mut rng)
            .activation(Activation::ReLU)
            .max_pool(2)
            .flatten()
            .dense(2, &mut rng)
            .build();
        let input_box = BoxDomain::uniform(36, 0.0, 1.0);
        let out = input_box.propagate(net.layers());
        use rand::Rng;
        for _ in 0..100 {
            let x = Vector::from_vec((0..36).map(|_| rng.gen_range(0.0..1.0)).collect());
            let y = net.forward(&x);
            assert!(out.box_contains(y.as_slice(), 1e-6));
        }
    }

    #[test]
    fn apply_layer_into_matches_apply_layer() {
        let mut rng = StdRng::seed_from_u64(21);
        let net = NetworkBuilder::new(3)
            .dense(5, &mut rng)
            .activation(Activation::ReLU)
            .batch_norm()
            .dense(2, &mut rng)
            .build();
        let mut cur = BoxDomain::uniform(3, -1.0, 1.0);
        let mut next = BoxDomain::uniform(0, 0.0, 0.0);
        for layer in net.layers() {
            let fresh = cur.apply_layer(layer);
            cur.apply_layer_into(layer, &mut next);
            assert_eq!(fresh, next, "in-place image differs for {layer:?}");
            std::mem::swap(&mut cur, &mut next);
        }
    }

    #[test]
    fn meet_and_widen() {
        let a = BoxDomain::uniform(2, 0.0, 1.0);
        let b = BoxDomain::uniform(2, 0.5, 2.0);
        let m = a.meet(&b).unwrap();
        assert_eq!(m.bounds()[0], Interval::new(0.5, 1.0));
        assert!(a.meet(&BoxDomain::uniform(2, 3.0, 4.0)).is_none());
        let mut w = a.clone();
        w.widen(0.25);
        assert_eq!(w.bounds()[0], Interval::new(-0.25, 1.25));
        assert!(w.total_width() > a.total_width());
    }

    #[test]
    fn smooth_activations_use_monotonicity() {
        let b = BoxDomain::from_intervals(vec![Interval::new(-1.0, 1.0)]);
        let out = b.apply_layer(&Layer::Activation(Activation::Sigmoid));
        let lo = 1.0 / (1.0 + 1.0_f64.exp());
        let hi = 1.0 / (1.0 + (-1.0_f64).exp());
        assert!((out.bounds()[0].lo - lo).abs() < 1e-12);
        assert!((out.bounds()[0].hi - hi).abs() < 1e-12);
    }
}

//! Structure-of-arrays batch of box domains for sibling propagation.
//!
//! Refinement explores *generations* of sibling sub-boxes that all flow
//! through the same cached layer chain. Propagating them one
//! [`BoxDomain`] at a time re-reads every weight row per sub-box;
//! [`BoxBatch`] instead keeps the sub-boxes as SIMD lanes (`lo`/`hi`
//! stored dimension-major, lanes contiguous) so one sweep over the
//! weights propagates the whole generation, and the inner loops run over
//! contiguous `f64` slices the compiler can vectorise.
//!
//! ## Parity invariant
//!
//! Lane `s` of [`BoxBatch::apply_layer_into`] is **bit-identical** to
//! [`BoxDomain::apply_layer_into`] of box `s`: every kernel replicates
//! the scalar [`Interval`] operation sequence (dense rows start at the
//! bias point-interval and accumulate inputs in ascending index order
//! with sign-dependent bound selection, batch-norm applies the affine
//! form as one multiply and one add per bound, activations transform the
//! endpoints) and only widens the loop across lanes. The bound
//! propagation that instantiates refinement MILPs can therefore run
//! batched without perturbing a single verdict.

use dpv_nn::{Activation, Layer};

use crate::{AbstractDomain, BoxDomain, Interval};

/// A batch of same-dimension boxes in structure-of-arrays layout:
/// `lo[d * lanes + s]` / `hi[d * lanes + s]` hold bound `d` of lane
/// (sub-box) `s`, so each dimension's bounds are contiguous across the
/// batch.
#[derive(Debug, Clone, PartialEq)]
pub struct BoxBatch {
    dim: usize,
    lanes: usize,
    lo: Vec<f64>,
    hi: Vec<f64>,
}

impl BoxBatch {
    /// Packs a slice of equal-dimension boxes into one batch.
    ///
    /// # Panics
    /// Panics when the boxes have differing dimensions.
    pub fn from_boxes(boxes: &[&BoxDomain]) -> Self {
        let lanes = boxes.len();
        let dim = boxes.first().map_or(0, |b| b.dim());
        let mut lo = vec![0.0; dim * lanes];
        let mut hi = vec![0.0; dim * lanes];
        for (s, b) in boxes.iter().enumerate() {
            assert_eq!(b.dim(), dim, "box batch dimension mismatch");
            for (d, interval) in b.bounds().iter().enumerate() {
                lo[d * lanes + s] = interval.lo;
                hi[d * lanes + s] = interval.hi;
            }
        }
        Self { dim, lanes, lo, hi }
    }

    /// An uninitialised batch used as the ping-pong partner of
    /// [`BoxBatch::apply_layer_into`]; its contents are overwritten by
    /// the first application.
    pub fn empty() -> Self {
        Self {
            dim: 0,
            lanes: 0,
            lo: Vec::new(),
            hi: Vec::new(),
        }
    }

    /// Number of lanes (sub-boxes) in the batch.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Dimension shared by every lane.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Bound `d` of lane `s`.
    ///
    /// # Panics
    /// Panics when `s` or `d` is out of range.
    pub fn interval(&self, s: usize, d: usize) -> Interval {
        assert!(
            s < self.lanes && d < self.dim,
            "box batch index out of range"
        );
        Interval::new(self.lo[d * self.lanes + s], self.hi[d * self.lanes + s])
    }

    /// Extracts lane `s` as a standalone box.
    ///
    /// # Panics
    /// Panics when `s` is out of range.
    pub fn lane(&self, s: usize) -> BoxDomain {
        assert!(s < self.lanes, "box batch lane out of range");
        BoxDomain::from_intervals((0..self.dim).map(|d| self.interval(s, d)).collect())
    }

    /// Resizes this batch to `dim` bounds per lane across `lanes` lanes
    /// (contents unspecified until written).
    fn reset(&mut self, dim: usize, lanes: usize) {
        self.dim = dim;
        self.lanes = lanes;
        self.lo.clear();
        self.lo.resize(dim * lanes, 0.0);
        self.hi.clear();
        self.hi.resize(dim * lanes, 0.0);
    }

    /// Batched [`BoxDomain::apply_layer_into`]: propagates every lane
    /// through `layer` into `out`, reusing `out`'s buffers. Lane `s` of
    /// the result is bit-identical to propagating box `s` alone (see the
    /// module docs for the parity argument). Spatial layers fall back to
    /// the scalar transformer per lane.
    ///
    /// # Panics
    /// Panics on layer/batch dimension mismatches, exactly like the
    /// scalar path.
    pub fn apply_layer_into(&self, layer: &Layer, out: &mut BoxBatch) {
        let lanes = self.lanes;
        match layer {
            Layer::Dense(d) => {
                assert_eq!(self.dim, d.input_dim(), "box/dense dimension mismatch");
                let weights = d.weights();
                out.reset(weights.rows(), lanes);
                for r in 0..weights.rows() {
                    let row = weights.row(r);
                    let bias = d.bias()[r];
                    let olo = &mut out.lo[r * lanes..(r + 1) * lanes];
                    let ohi = &mut out.hi[r * lanes..(r + 1) * lanes];
                    olo.fill(bias);
                    ohi.fill(bias);
                    for (c, &w) in row.iter().enumerate() {
                        let slo = &self.lo[c * lanes..(c + 1) * lanes];
                        let shi = &self.hi[c * lanes..(c + 1) * lanes];
                        if w >= 0.0 {
                            for s in 0..lanes {
                                olo[s] += slo[s] * w;
                                ohi[s] += shi[s] * w;
                            }
                        } else {
                            for s in 0..lanes {
                                olo[s] += shi[s] * w;
                                ohi[s] += slo[s] * w;
                            }
                        }
                    }
                }
            }
            Layer::BatchNorm(bn) => {
                assert_eq!(self.dim, bn.dim(), "box/batch-norm dimension mismatch");
                let (a, b) = bn.affine_form();
                out.reset(self.dim, lanes);
                for d in 0..self.dim {
                    let (ad, bd) = (a[d], b[d]);
                    let slo = &self.lo[d * lanes..(d + 1) * lanes];
                    let shi = &self.hi[d * lanes..(d + 1) * lanes];
                    let olo = &mut out.lo[d * lanes..(d + 1) * lanes];
                    let ohi = &mut out.hi[d * lanes..(d + 1) * lanes];
                    if ad >= 0.0 {
                        for s in 0..lanes {
                            olo[s] = slo[s] * ad + bd;
                            ohi[s] = shi[s] * ad + bd;
                        }
                    } else {
                        for s in 0..lanes {
                            olo[s] = shi[s] * ad + bd;
                            ohi[s] = slo[s] * ad + bd;
                        }
                    }
                }
            }
            Layer::Activation(act) => {
                out.reset(self.dim, lanes);
                let f = |x: f64| Self::endpoint(*act, x);
                for (o, &v) in out.lo.iter_mut().zip(self.lo.iter()) {
                    *o = f(v);
                }
                for (o, &v) in out.hi.iter_mut().zip(self.hi.iter()) {
                    *o = f(v);
                }
            }
            Layer::Flatten(_) => {
                out.reset(self.dim, lanes);
                out.lo.copy_from_slice(&self.lo);
                out.hi.copy_from_slice(&self.hi);
            }
            other => {
                // Spatial layers: scalar transformer per lane.
                let images: Vec<BoxDomain> = (0..lanes)
                    .map(|s| self.lane(s).apply_layer(other))
                    .collect();
                let refs: Vec<&BoxDomain> = images.iter().collect();
                *out = BoxBatch::from_boxes(&refs);
            }
        }
    }

    /// Endpoint image of the monotone activation transformers —
    /// textually the per-endpoint expressions of the scalar
    /// `activation_interval` (ReLU clamps at zero, leaky-ReLU scales the
    /// negative part, sigmoid/tanh map endpoints by monotonicity).
    fn endpoint(activation: Activation, x: f64) -> f64 {
        match activation {
            Activation::Identity => x,
            Activation::ReLU => x.max(0.0),
            Activation::LeakyReLU(slope) => {
                if x >= 0.0 {
                    x
                } else {
                    slope * x
                }
            }
            Activation::Sigmoid | Activation::Tanh => activation.apply(x),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpv_nn::NetworkBuilder;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_boxes(seed: u64, n: usize, dim: usize) -> Vec<BoxDomain> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                BoxDomain::from_intervals(
                    (0..dim)
                        .map(|_| {
                            let lo = rng.gen_range(-2.0..1.0);
                            Interval::new(lo, lo + rng.gen_range(0.0..2.0))
                        })
                        .collect(),
                )
            })
            .collect()
    }

    #[test]
    fn lanes_round_trip() {
        let boxes = random_boxes(7, 5, 3);
        let refs: Vec<&BoxDomain> = boxes.iter().collect();
        let batch = BoxBatch::from_boxes(&refs);
        assert_eq!(batch.lanes(), 5);
        assert_eq!(batch.dim(), 3);
        for (s, b) in boxes.iter().enumerate() {
            assert_eq!(&batch.lane(s), b);
        }
    }

    #[test]
    fn batched_propagation_matches_the_scalar_path_exactly() {
        let mut rng = StdRng::seed_from_u64(11);
        let net = NetworkBuilder::new(4)
            .dense(6, &mut rng)
            .activation(Activation::ReLU)
            .batch_norm()
            .dense(3, &mut rng)
            .activation(Activation::LeakyReLU(0.1))
            .dense(2, &mut rng)
            .build();
        let boxes = random_boxes(13, 9, 4);
        let refs: Vec<&BoxDomain> = boxes.iter().collect();

        let mut batch = BoxBatch::from_boxes(&refs);
        let mut batch_next = BoxBatch::empty();
        let mut scalars = boxes.clone();
        let mut scratch = BoxDomain::from_intervals(Vec::new());
        for layer in net.layers() {
            batch.apply_layer_into(layer, &mut batch_next);
            std::mem::swap(&mut batch, &mut batch_next);
            for cur in scalars.iter_mut() {
                cur.apply_layer_into(layer, &mut scratch);
                std::mem::swap(cur, &mut scratch);
            }
            for (s, expected) in scalars.iter().enumerate() {
                // Bit-exact equality, not approximate: the batched kernel
                // replicates the scalar operation order.
                assert_eq!(&batch.lane(s), expected, "lane {s} drifted after {layer:?}");
            }
        }
    }

    #[test]
    fn empty_batch_is_well_formed() {
        let batch = BoxBatch::from_boxes(&[]);
        assert_eq!(batch.lanes(), 0);
        assert_eq!(batch.dim(), 0);
    }
}

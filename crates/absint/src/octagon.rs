//! The "octagon-lite" domain: a box plus bounds on adjacent-neuron
//! differences.

use serde::{Deserialize, Serialize};

use dpv_tensor::Vector;

use crate::{AbstractDomain, BoxDomain, Interval};

/// Linear-constraint rows `(index, lo, hi)` as consumed by the MILP encoder:
/// per-neuron bounds are `lo ≤ x[i] ≤ hi`, difference rows bound
/// `x[i+1] − x[i]`.
pub type BoundRows = Vec<(usize, f64, f64)>;

/// A box refined with interval bounds on the differences of *adjacent*
/// neurons: for every `i`, `diff[i]` bounds `x[i+1] − x[i]`.
///
/// This is exactly the refinement the paper reports as necessary in
/// Section V: "it is commonly not sufficient to only record the minimum and
/// maximum value for each neuron … we also record the minimum and maximum
/// difference between two adjacent neurons in a layer", and footnote 8 notes
/// the `diff(n)` operation that computes it. Unlike a full octagon domain it
/// only tracks the `d−1` adjacent pairs, which keeps both the runtime
/// monitor and the MILP encoding linear in the layer width.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OctagonLite {
    bounds: Vec<Interval>,
    diffs: Vec<Interval>,
}

impl OctagonLite {
    /// Builds the octagon-lite hull of a set of sample vectors: per-neuron
    /// min/max plus per-adjacent-pair difference min/max.
    ///
    /// # Panics
    /// Panics when `samples` is empty or dimensions are inconsistent.
    pub fn from_samples(samples: &[Vector]) -> Self {
        assert!(
            !samples.is_empty(),
            "cannot build an octagon from zero samples"
        );
        let box_part = BoxDomain::from_samples(samples);
        let dim = samples[0].len();
        let diffs = if dim < 2 {
            Vec::new()
        } else {
            let diff_samples: Vec<Vector> =
                samples.iter().map(Vector::adjacent_differences).collect();
            BoxDomain::from_samples(&diff_samples).bounds().to_vec()
        };
        Self {
            bounds: box_part.bounds().to_vec(),
            diffs,
        }
    }

    /// Builds an octagon-lite from explicit per-neuron and per-difference
    /// intervals.
    ///
    /// # Panics
    /// Panics when `diffs.len() + 1 != bounds.len()` (unless both describe a
    /// 0/1-dimensional space).
    pub fn from_parts(bounds: Vec<Interval>, diffs: Vec<Interval>) -> Self {
        if bounds.len() >= 2 {
            assert_eq!(
                diffs.len(),
                bounds.len() - 1,
                "need one difference per adjacent pair"
            );
        }
        Self { bounds, diffs }
    }

    /// A pure box (no difference constraints).
    pub fn from_box(box_domain: &BoxDomain) -> Self {
        let dim = box_domain.dim();
        let diffs = if dim < 2 {
            Vec::new()
        } else {
            (0..dim - 1)
                .map(|i| {
                    let a = box_domain.bounds()[i];
                    let b = box_domain.bounds()[i + 1];
                    Interval::new(b.lo - a.hi, b.hi - a.lo)
                })
                .collect()
        };
        Self {
            bounds: box_domain.bounds().to_vec(),
            diffs,
        }
    }

    /// Dimension of the described vectors.
    pub fn dim(&self) -> usize {
        self.bounds.len()
    }

    /// Per-neuron interval bounds.
    pub fn bounds(&self) -> &[Interval] {
        &self.bounds
    }

    /// Adjacent-difference interval bounds (`diffs()[i]` bounds `x[i+1] − x[i]`).
    pub fn diffs(&self) -> &[Interval] {
        &self.diffs
    }

    /// The box part of the domain.
    pub fn to_box_domain(&self) -> BoxDomain {
        BoxDomain::from_intervals(self.bounds.clone())
    }

    /// Widens all intervals (neurons and differences) by `margin`.
    pub fn widen(&mut self, margin: f64) {
        for b in self.bounds.iter_mut().chain(self.diffs.iter_mut()) {
            *b = Interval::new(b.lo - margin, b.hi + margin);
        }
    }

    /// Returns `true` when `point` satisfies every neuron bound and every
    /// adjacent-difference bound (within `tol`).
    pub fn contains(&self, point: &[f64], tol: f64) -> bool {
        if point.len() != self.dim() {
            return false;
        }
        let box_ok = self
            .bounds
            .iter()
            .zip(point.iter())
            .all(|(interval, v)| interval.contains(*v, tol));
        if !box_ok {
            return false;
        }
        self.diffs
            .iter()
            .enumerate()
            .all(|(i, interval)| interval.contains(point[i + 1] - point[i], tol))
    }

    /// Propagates the domain through the tightening closure: difference
    /// bounds can shrink neuron bounds and vice versa. One pass of the
    /// closure is applied (sufficient for the chain structure of adjacent
    /// differences to converge after `dim` calls; callers may iterate).
    pub fn tighten(&mut self) {
        let n = self.dim();
        if n < 2 {
            return;
        }
        // Forward pass: x[i+1] ∈ x[i] + d[i].
        for i in 0..n - 1 {
            let implied = self.bounds[i].add(&self.diffs[i]);
            if let Some(meet) = self.bounds[i + 1].meet(&implied) {
                self.bounds[i + 1] = meet;
            }
        }
        // Backward pass: x[i] ∈ x[i+1] − d[i].
        for i in (0..n - 1).rev() {
            let implied = self.bounds[i + 1].add(&self.diffs[i].scale(-1.0));
            if let Some(meet) = self.bounds[i].meet(&implied) {
                self.bounds[i] = meet;
            }
        }
        // Difference tightening from the boxes.
        for i in 0..n - 1 {
            let implied = Interval::new(
                self.bounds[i + 1].lo - self.bounds[i].hi,
                self.bounds[i + 1].hi - self.bounds[i].lo,
            );
            if let Some(meet) = self.diffs[i].meet(&implied) {
                self.diffs[i] = meet;
            }
        }
    }

    /// Emits the domain as linear constraints over variables `vars[i]`
    /// (per-neuron bounds are returned as `(i, lo, hi)` and difference
    /// constraints as `(i, lo, hi)` over `x[i+1] − x[i]`) — the shape
    /// consumed by the MILP encoder in `dpv-core`.
    pub fn constraint_data(&self) -> (BoundRows, BoundRows) {
        let neuron = self
            .bounds
            .iter()
            .enumerate()
            .map(|(i, b)| (i, b.lo, b.hi))
            .collect();
        let diff = self
            .diffs
            .iter()
            .enumerate()
            .map(|(i, d)| (i, d.lo, d.hi))
            .collect();
        (neuron, diff)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Vector> {
        vec![
            Vector::from_slice(&[0.0, 0.1, 0.2]),
            Vector::from_slice(&[0.5, 0.4, 0.6]),
            Vector::from_slice(&[-0.1, 0.0, 0.3]),
        ]
    }

    #[test]
    fn from_samples_contains_all_samples() {
        let oct = OctagonLite::from_samples(&samples());
        for s in samples() {
            assert!(oct.contains(s.as_slice(), 1e-12));
        }
        assert_eq!(oct.dim(), 3);
        assert_eq!(oct.diffs().len(), 2);
    }

    #[test]
    fn difference_bounds_reject_points_the_box_accepts() {
        // Samples where x1 - x0 is always 0.1, but the box alone allows 0.6.
        let samples = vec![
            Vector::from_slice(&[0.0, 0.1]),
            Vector::from_slice(&[0.5, 0.6]),
        ];
        let oct = OctagonLite::from_samples(&samples);
        // In the box but violating the difference constraint:
        let candidate = [0.0, 0.6];
        assert!(oct.to_box_domain().bounds()[0].contains(candidate[0], 0.0));
        assert!(oct.to_box_domain().bounds()[1].contains(candidate[1], 0.0));
        assert!(
            !oct.contains(&candidate, 1e-9),
            "octagon must exclude the corner"
        );
    }

    #[test]
    fn from_box_imposes_no_extra_restriction() {
        use crate::AbstractDomain;
        let b = BoxDomain::from_intervals(vec![Interval::new(0.0, 1.0), Interval::new(2.0, 3.0)]);
        let oct = OctagonLite::from_box(&b);
        // Every corner of the box satisfies the derived difference bounds.
        for x0 in [0.0, 1.0] {
            for x1 in [2.0, 3.0] {
                assert!(oct.contains(&[x0, x1], 1e-12));
            }
        }
    }

    #[test]
    fn tighten_propagates_difference_information() {
        // x0 in [0, 10], x1 in [0, 10], but x1 - x0 in [5, 6] forces x1 >= 5.
        let mut oct = OctagonLite::from_parts(
            vec![Interval::new(0.0, 10.0), Interval::new(0.0, 10.0)],
            vec![Interval::new(5.0, 6.0)],
        );
        oct.tighten();
        assert!(oct.bounds()[1].lo >= 5.0 - 1e-12);
        assert!(oct.bounds()[0].hi <= 5.0 + 1e-12);
    }

    #[test]
    fn widen_relaxes_everything() {
        let mut oct = OctagonLite::from_samples(&samples());
        let before = oct.clone();
        oct.widen(0.1);
        assert!(oct.bounds()[0].width() > before.bounds()[0].width());
        assert!(oct.diffs()[0].width() > before.diffs()[0].width());
    }

    #[test]
    fn constraint_data_matches_intervals() {
        let oct = OctagonLite::from_samples(&samples());
        let (neuron, diff) = oct.constraint_data();
        assert_eq!(neuron.len(), 3);
        assert_eq!(diff.len(), 2);
        assert_eq!(neuron[0].1, oct.bounds()[0].lo);
        assert_eq!(diff[1].2, oct.diffs()[1].hi);
    }

    #[test]
    fn one_dimensional_case_has_no_diffs() {
        let oct =
            OctagonLite::from_samples(&[Vector::from_slice(&[1.0]), Vector::from_slice(&[2.0])]);
        assert!(oct.diffs().is_empty());
        assert!(oct.contains(&[1.5], 0.0));
        assert!(!oct.contains(&[2.5], 0.0));
    }

    #[test]
    #[should_panic(expected = "one difference per adjacent pair")]
    fn from_parts_validates_lengths() {
        let _ = OctagonLite::from_parts(vec![Interval::new(0.0, 1.0); 3], vec![]);
    }
}

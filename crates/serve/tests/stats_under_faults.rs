//! Exact accounting under injected faults: for each [`FaultKind`], the
//! server's [`ServeStats`] counters and the tracer's typed counters must
//! match the injected fault count exactly — no double counting, no
//! missed events, and agreement between the two accounting paths.

use std::sync::OnceLock;

use dpv_absint::BoxDomain;
use dpv_core::{Characterizer, InputProperty, RiskCondition, StartRegion, Verdict};
use dpv_nn::{Activation, Network, NetworkBuilder};
use dpv_serve::{
    FailureReason, FaultKind, FaultPlan, ObligationServer, RegionSpec, RequestReport, ServeConfig,
    ServeStats, VerificationRequest,
};
use dpv_trace::{TraceConfig, TraceSnapshot, Tracer};
use rand::rngs::StdRng;
use rand::SeedableRng;

const CUT: usize = 2;
const CUT_WIDTH: usize = 4;
/// 2 families × 1 shard × 2^2 sub-boxes.
const OBLIGATIONS: usize = 8;

fn perception() -> Network {
    let mut rng = StdRng::seed_from_u64(11);
    NetworkBuilder::new(3)
        .dense(6, &mut rng)
        .activation(Activation::ReLU)
        .dense(CUT_WIDTH, &mut rng)
        .activation(Activation::ReLU)
        .dense(2, &mut rng)
        .build()
}

fn characterizer() -> Characterizer {
    let mut rng = StdRng::seed_from_u64(11 ^ 0xc4a2);
    let head = NetworkBuilder::new(CUT_WIDTH)
        .dense(3, &mut rng)
        .activation(Activation::ReLU)
        .dense(1, &mut rng)
        .build();
    Characterizer::from_network(
        InputProperty::new("p", "synthetic property"),
        CUT,
        head,
        0.9,
    )
    .unwrap()
}

fn base_request() -> VerificationRequest {
    VerificationRequest {
        perception: perception(),
        cut_layer: CUT,
        characterizer: characterizer(),
        risks: vec![
            RiskCondition::new("unreachable").output_ge(0, 500.0),
            RiskCondition::new("reachable").output_ge(0, -500.0),
        ],
        region: RegionSpec::Single(StartRegion::Box(BoxDomain::uniform(CUT_WIDTH, -1.0, 1.0))),
        subdivision: 2,
        deadline: None,
    }
}

/// The canonical fault-free verdicts, solved once on a pristine server.
fn reference_verdicts() -> &'static [Verdict] {
    static REFERENCE: OnceLock<Vec<Verdict>> = OnceLock::new();
    REFERENCE.get_or_init(|| {
        let server = ObligationServer::builder()
            .config(ServeConfig::with_workers(2))
            .build();
        let report = server.serve(&base_request()).unwrap();
        assert_eq!(report.obligations.len(), OBLIGATIONS);
        report
            .obligations
            .iter()
            .map(|o| o.verdict.clone())
            .collect()
    })
}

/// Serves the base request once on a fresh traced single-worker server
/// (single worker keeps the accounting deterministic: no sibling can
/// race ahead and, say, turn a would-be solve into a dedup hit).
fn serve_traced(plan: FaultPlan) -> (RequestReport, ServeStats, TraceSnapshot) {
    let tracer = Tracer::with_config(TraceConfig::default());
    let server = ObligationServer::builder()
        .config(ServeConfig::with_workers(1))
        .tracer(tracer)
        .build();
    server.set_fault_plan(plan);
    let report = server.serve(&base_request()).unwrap();
    let stats = server.stats();
    let snapshot = server.trace_snapshot();
    (report, stats, snapshot)
}

#[test]
fn clean_run_counts_every_obligation_once() {
    let (report, stats, snapshot) = serve_traced(FaultPlan::new());
    assert_eq!(report.obligations.len(), OBLIGATIONS);
    assert_eq!(stats.requests, 1);
    assert_eq!(stats.obligations, OBLIGATIONS as u64);
    assert_eq!(stats.solved, OBLIGATIONS as u64);
    assert_eq!(stats.worker_panics, 0);
    assert_eq!(stats.quarantined, 0);
    assert_eq!(stats.deadline_skipped, 0);
    assert_eq!(snapshot.counter("requests"), 1);
    assert_eq!(snapshot.counter("obligations"), OBLIGATIONS as u64);
    assert_eq!(snapshot.counter("worker-panics"), 0);
    assert_eq!(snapshot.counter("quarantined"), 0);
    assert_eq!(snapshot.counter("deadline-skipped"), 0);
    // One Verdict event per solved obligation reached the ring buffers.
    let verdicts = snapshot
        .events()
        .filter(|e| e.kind == dpv_trace::EventKind::Verdict)
        .count();
    assert_eq!(verdicts, OBLIGATIONS);
}

#[test]
fn one_panic_counts_two_attempts_and_one_quarantine() {
    let mut plan = FaultPlan::new();
    plan.inject(3, FaultKind::Panic);
    let (report, stats, snapshot) = serve_traced(plan);

    assert_eq!(
        FailureReason::of(&report.obligations[3].verdict),
        Some(FailureReason::WorkerPanic)
    );
    assert_eq!(stats.worker_panics, 2, "original attempt plus one retry");
    assert_eq!(stats.quarantined, 1);
    assert_eq!(stats.retries, 0, "a panic is not a budget exhaustion");
    assert_eq!(snapshot.counter("worker-panics"), 2);
    assert_eq!(snapshot.counter("quarantined"), 1);
    assert_eq!(snapshot.counter("degraded-worker-panic"), 1);
    assert_eq!(snapshot.counter("retries"), 0);
}

#[test]
fn persistent_exhaustion_counts_one_unrescued_retry() {
    let mut plan = FaultPlan::new();
    plan.inject(2, FaultKind::ExhaustIterations);
    let (report, stats, snapshot) = serve_traced(plan);

    assert_eq!(
        FailureReason::of(&report.obligations[2].verdict),
        Some(FailureReason::IterationLimit)
    );
    assert_eq!(stats.retries, 1);
    assert_eq!(stats.retry_successes, 0);
    assert_eq!(stats.worker_panics, 0);
    assert_eq!(snapshot.counter("retries"), 1);
    assert_eq!(snapshot.counter("retry-successes"), 0);
    assert_eq!(snapshot.counter("degraded-iteration-limit"), 1);
    assert_eq!(snapshot.counter("degraded-worker-panic"), 0);
}

#[test]
fn transient_exhaustion_counts_one_rescued_retry() {
    let mut plan = FaultPlan::new();
    plan.inject(5, FaultKind::TransientExhaust);
    let (report, stats, snapshot) = serve_traced(plan);

    assert_eq!(
        report.obligations[5].verdict,
        reference_verdicts()[5],
        "a rescued retry reproduces the canonical verdict"
    );
    assert_eq!(stats.retries, 1);
    assert_eq!(stats.retry_successes, 1);
    assert_eq!(snapshot.counter("retries"), 1);
    assert_eq!(snapshot.counter("retry-successes"), 1);
    assert_eq!(snapshot.counter("degraded-iteration-limit"), 0);
    // Exactly one escalated-retry span was recorded.
    let retries = snapshot
        .events()
        .filter(|e| e.kind == dpv_trace::EventKind::EscalatedRetry)
        .count();
    assert_eq!(retries, 1);
}

#[test]
fn poisoned_snapshot_degrades_silently_to_cold() {
    let mut plan = FaultPlan::new();
    for index in 0..OBLIGATIONS {
        plan.inject(index, FaultKind::PoisonSnapshot);
    }
    let (report, stats, snapshot) = serve_traced(plan);

    let reference = reference_verdicts();
    for outcome in &report.obligations {
        assert_eq!(outcome.verdict, reference[outcome.index]);
    }
    assert_eq!(stats.retries, 0, "the structural guard rescues the solve");
    assert_eq!(stats.worker_panics, 0);
    assert_eq!(snapshot.counter("retries"), 0);
    assert_eq!(snapshot.counter("worker-panics"), 0);
}

#[test]
fn expired_deadline_counts_every_obligation_as_skipped() {
    let tracer = Tracer::with_config(TraceConfig::default());
    let server = ObligationServer::builder()
        .config(ServeConfig::with_workers(1))
        .tracer(tracer)
        .build();
    let mut request = base_request();
    request.deadline = Some(std::time::Duration::ZERO);
    let report = server.serve(&request).unwrap();
    assert_eq!(report.obligations.len(), OBLIGATIONS);
    assert!(
        report.timeline.is_none(),
        "the fast path records no timeline"
    );

    let stats = server.stats();
    assert_eq!(stats.deadline_skipped, OBLIGATIONS as u64);
    assert_eq!(stats.solved, 0);
    let snapshot = server.trace_snapshot();
    assert_eq!(snapshot.counter("deadline-skipped"), OBLIGATIONS as u64);
    assert_eq!(
        snapshot.counter("degraded-deadline-exceeded"),
        OBLIGATIONS as u64
    );
    assert_eq!(snapshot.counter("requests"), 1);
}

/// The two accounting paths (merge-based `ServeStats` and trace
/// counters) agree on every counter they both carry, across a mixed
/// fault plan.
#[test]
fn serve_stats_and_trace_counters_agree() {
    let mut plan = FaultPlan::new();
    plan.inject(1, FaultKind::TransientExhaust);
    plan.inject(4, FaultKind::ExhaustIterations);
    plan.inject(6, FaultKind::Panic);
    let (_, stats, snapshot) = serve_traced(plan);

    assert_eq!(snapshot.counter("requests"), stats.requests);
    assert_eq!(snapshot.counter("obligations"), stats.obligations);
    assert_eq!(snapshot.counter("dedup-hits"), stats.dedup_hits);
    assert_eq!(
        snapshot.counter("canonical-resolves"),
        stats.canonical_resolves
    );
    assert_eq!(snapshot.counter("retries"), stats.retries);
    assert_eq!(snapshot.counter("retry-successes"), stats.retry_successes);
    assert_eq!(snapshot.counter("worker-panics"), stats.worker_panics);
    assert_eq!(snapshot.counter("quarantined"), stats.quarantined);
    assert_eq!(snapshot.counter("deadline-skipped"), stats.deadline_skipped);
    assert_eq!(snapshot.counter("template-hits"), stats.templates.hits);
    assert_eq!(snapshot.counter("template-misses"), stats.templates.misses);
    assert_eq!(snapshot.counter("snapshot-hits"), stats.snapshots.hits);
    assert_eq!(snapshot.counter("snapshot-misses"), stats.snapshots.misses);
}

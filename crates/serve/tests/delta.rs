//! The delta-verification soundness contract: `serve_delta`'s verdicts
//! are **bit-for-bit equal** to a from-scratch serve of the same request
//! on a cold server, across perturbation kinds, seeds and worker counts —
//! reuse and absorption never change an answer, only skip work.

use dpv_absint::BoxDomain;
use dpv_core::{Characterizer, InputProperty, RiskCondition, StartRegion, Verdict};
use dpv_delta::{Disposition, ModelFingerprint};
use dpv_nn::{network_from_text, network_to_text, Activation, Layer, Network, NetworkBuilder};
use dpv_serve::{
    ObligationServer, ProofDeltaReport, RegionSpec, RequestReport, ServeConfig, VerificationRequest,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const CUT: usize = 2;
const CUT_WIDTH: usize = 4;
/// 2 families × 1 shard × 2^2 sub-boxes.
const OBLIGATIONS: usize = 8;

fn perception(seed: u64) -> Network {
    let mut rng = StdRng::seed_from_u64(seed);
    NetworkBuilder::new(3)
        .dense(6, &mut rng)
        .activation(Activation::ReLU)
        .dense(CUT_WIDTH, &mut rng)
        .activation(Activation::ReLU)
        .dense(2, &mut rng)
        .build()
}

fn characterizer() -> Characterizer {
    let mut rng = StdRng::seed_from_u64(23 ^ 0xc4a2);
    let head = NetworkBuilder::new(CUT_WIDTH)
        .dense(3, &mut rng)
        .activation(Activation::ReLU)
        .dense(1, &mut rng)
        .build();
    Characterizer::from_network(
        InputProperty::new("p", "synthetic property"),
        CUT,
        head,
        0.9,
    )
    .unwrap()
}

fn request_for(perception: Network) -> VerificationRequest {
    VerificationRequest {
        perception,
        cut_layer: CUT,
        characterizer: characterizer(),
        risks: vec![
            RiskCondition::new("unreachable").output_ge(0, 500.0),
            RiskCondition::new("reachable").output_ge(0, -500.0),
        ],
        region: RegionSpec::Single(StartRegion::Box(BoxDomain::uniform(CUT_WIDTH, -1.0, 1.0))),
        subdivision: 2,
        deadline: None,
    }
}

/// How a retrain perturbs the prior checkpoint.
#[derive(Debug, Clone, Copy)]
enum Retrain {
    /// Head-only update: every tail digest is unchanged.
    Head,
    /// Tiny tail update, absorbable for the unreachable family.
    TailSmall,
    /// Huge tail update, nothing absorbs.
    TailLarge,
}

fn retrain(prior: &Network, kind: Retrain) -> Network {
    let mut next = prior.clone();
    let (layer, eps) = match kind {
        Retrain::Head => (0, 0.05),
        Retrain::TailSmall => (4, 1e-7),
        Retrain::TailLarge => (4, 1000.0),
    };
    let Layer::Dense(d) = &mut next.layers_mut()[layer] else {
        panic!("layer {layer} is dense by construction");
    };
    for r in 0..d.output_dim() {
        for c in 0..d.input_dim() {
            d.weights_mut()[(r, c)] += eps * (1.0 + (r + c) as f64 * 0.1);
        }
    }
    next
}

/// The deterministic surface of a report: per-obligation coordinates and
/// verdicts plus the folded family verdicts. `deduped`, timings and stats
/// are cost telemetry and legitimately differ between a warm delta serve
/// and a cold scratch serve.
#[allow(clippy::type_complexity)]
fn view(
    report: &RequestReport,
) -> (
    Vec<(usize, usize, usize, usize, Verdict)>,
    Vec<(usize, String, Verdict)>,
) {
    (
        report
            .obligations
            .iter()
            .map(|o| (o.index, o.family, o.shard, o.sub_box, o.verdict.clone()))
            .collect(),
        report
            .verdicts
            .iter()
            .map(|f| (f.family, f.risk.clone(), f.verdict.clone()))
            .collect(),
    )
}

fn delta_run(workers: usize, seed: u64, kind: Retrain) -> (ProofDeltaReport, RequestReport) {
    let old_net = perception(seed);
    let new_net = retrain(&old_net, kind);
    let prior_request = request_for(old_net);
    let new_request = request_for(new_net.clone());

    let resident = ObligationServer::builder()
        .config(ServeConfig::with_workers(workers))
        .build();
    let prior = resident.serve(&prior_request).expect("prior serve");
    let delta = resident
        .serve_delta(&prior_request, &prior, &new_request)
        .expect("delta serve");

    let cold = ObligationServer::builder()
        .config(ServeConfig::with_workers(workers))
        .build();
    let scratch = cold.serve(&new_request).expect("scratch serve");
    (delta, scratch)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The tentpole soundness property: for every perturbation kind, seed
    /// and worker count, the delta report's deterministic surface equals a
    /// cold from-scratch serve's bit-for-bit.
    #[test]
    fn delta_verdicts_equal_scratch_verdicts_bit_for_bit(
        workers in 1usize..3,
        seed in 0u64..200,
        kind_draw in 0u8..3,
    ) {
        let kind = match kind_draw {
            0 => Retrain::Head,
            1 => Retrain::TailSmall,
            _ => Retrain::TailLarge,
        };
        let (delta, scratch) = delta_run(workers, seed, kind);
        prop_assert_eq!(view(&delta.report), view(&scratch));
        prop_assert_eq!(delta.dispositions.len(), OBLIGATIONS);
    }
}

#[test]
fn head_only_retrain_reuses_every_obligation() {
    let (delta, scratch) = delta_run(2, 23, Retrain::Head);
    assert_eq!(view(&delta.report), view(&scratch));
    let old_fp = ModelFingerprint::of(&perception(23));
    assert_eq!(delta.prior_fingerprint, old_fp);
    assert_ne!(delta.fingerprint, old_fp);
    let counts = delta.counts();
    assert_eq!(counts.reused, OBLIGATIONS, "tail untouched: all reuse");
    assert_eq!(delta.reuse_rate_permille(), 1000);
    for d in &delta.dispositions {
        assert_eq!(
            *d,
            Disposition::Reused {
                prior_fingerprint: old_fp
            }
        );
    }
    // Reused verdicts never touched the solver: no obligation of the
    // delta run was re-solved.
    assert!(delta.report.obligations.iter().all(|o| o.solve_ns == 0));
}

#[test]
fn small_tail_retrain_absorbs_the_safe_family_and_reproves_the_rest() {
    let (delta, scratch) = delta_run(2, 23, Retrain::TailSmall);
    assert_eq!(view(&delta.report), view(&scratch));
    let counts = delta.counts();
    // Family 0 ("unreachable", prior Safe) absorbs under the weight hull;
    // family 1 ("reachable") re-proves its counterexamples.
    assert_eq!(counts.absorbed, OBLIGATIONS / 2);
    assert_eq!(counts.re_proved, OBLIGATIONS / 2);
    assert_eq!(counts.newly_degraded, 0);
    assert_eq!(delta.reuse_rate_permille(), 500);
    for (o, d) in delta.report.obligations.iter().zip(&delta.dispositions) {
        match o.family {
            0 => assert_eq!(*d, Disposition::Absorbed),
            _ => assert_eq!(*d, Disposition::ReProved),
        }
    }
}

#[test]
fn large_tail_retrain_reproves_everything() {
    let (delta, scratch) = delta_run(1, 23, Retrain::TailLarge);
    assert_eq!(view(&delta.report), view(&scratch));
    let counts = delta.counts();
    assert_eq!(counts.reused, 0);
    assert_eq!(counts.absorbed, 0);
    assert_eq!(counts.re_proved, OBLIGATIONS);
    assert_eq!(delta.reuse_rate_permille(), 0);
}

#[test]
fn specification_changes_are_rejected() {
    let server = ObligationServer::builder().build();
    let prior_request = request_for(perception(23));
    let prior = server.serve(&prior_request).expect("prior serve");

    let mut cut_changed = request_for(perception(23));
    cut_changed.cut_layer = 0;
    assert!(server
        .serve_delta(&prior_request, &prior, &cut_changed)
        .is_err());

    let mut risks_changed = request_for(perception(23));
    risks_changed.risks.pop();
    assert!(server
        .serve_delta(&prior_request, &prior, &risks_changed)
        .is_err());

    let mut shape_changed = request_for(perception(23));
    shape_changed.subdivision = 1;
    assert!(server
        .serve_delta(&prior_request, &prior, &shape_changed)
        .is_err());
}

/// Satellite: fingerprints are a function of the network's *content*, so
/// a serde round trip through the plain-text model format — the way a
/// checkpoint actually travels between trainer and verifier — preserves
/// them exactly, layer by layer.
#[test]
fn fingerprints_survive_text_serde_round_trips() {
    for kind in [Retrain::Head, Retrain::TailSmall, Retrain::TailLarge] {
        let net = retrain(&perception(23), kind);
        let restored = network_from_text(&network_to_text(&net)).expect("round trip");
        assert_eq!(
            ModelFingerprint::of(&net),
            ModelFingerprint::of(&restored),
            "fingerprint drifted across text serde ({kind:?})"
        );
        assert_eq!(
            dpv_delta::layer_digests(&net),
            dpv_delta::layer_digests(&restored)
        );
    }
}

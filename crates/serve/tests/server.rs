//! End-to-end behaviour of the resident obligation server: decomposition
//! order, verdict parity with the direct dpv-core paths, deduplication,
//! backpressure, and determinism across worker counts and cache states.

use dpv_absint::BoxDomain;
use dpv_core::{
    Characterizer, InputProperty, RiskCondition, SolveOptions, StartRegion, Verdict,
    VerificationProblem,
};
use dpv_lp::BranchAndBoundBackend;
use dpv_nn::{Activation, Network, NetworkBuilder};
use dpv_serve::{ObligationServer, RegionSpec, RequestReport, ServeConfig, VerificationRequest};
use dpv_shard::{ShardConfig, ShardedEnvelope};
use dpv_tensor::Vector;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CUT: usize = 2;
const CUT_WIDTH: usize = 4;

fn perception(seed: u64) -> Network {
    let mut rng = StdRng::seed_from_u64(seed);
    NetworkBuilder::new(3)
        .dense(6, &mut rng)
        .activation(Activation::ReLU)
        .dense(CUT_WIDTH, &mut rng)
        .activation(Activation::ReLU)
        .dense(2, &mut rng)
        .build()
}

fn characterizer(seed: u64) -> Characterizer {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xc4a2);
    let head = NetworkBuilder::new(CUT_WIDTH)
        .dense(3, &mut rng)
        .activation(Activation::ReLU)
        .dense(1, &mut rng)
        .build();
    Characterizer::from_network(
        InputProperty::new("p", "synthetic property"),
        CUT,
        head,
        0.9,
    )
    .unwrap()
}

/// One provably-safe and one trivially-reachable risk condition: the
/// family exercises both the Infeasible→Safe and Optimal→Unsafe paths.
fn risk_family() -> Vec<RiskCondition> {
    vec![
        RiskCondition::new("unreachable").output_ge(0, 500.0),
        RiskCondition::new("reachable").output_ge(0, -500.0),
    ]
}

fn box_request(seed: u64, subdivision: u32) -> VerificationRequest {
    VerificationRequest {
        perception: perception(seed),
        cut_layer: CUT,
        characterizer: characterizer(seed),
        risks: risk_family(),
        region: RegionSpec::Single(StartRegion::Box(BoxDomain::uniform(CUT_WIDTH, -1.0, 1.0))),
        subdivision,
        deadline: None,
    }
}

/// The deterministic surface of a report: everything except timings and
/// solver statistics.
fn deterministic_view(report: &RequestReport) -> Vec<(usize, usize, usize, usize, Verdict)> {
    report
        .obligations
        .iter()
        .map(|o| (o.index, o.family, o.shard, o.sub_box, o.verdict.clone()))
        .collect()
}

#[test]
fn decomposition_order_is_family_major_and_indices_are_dense() {
    let server = ObligationServer::builder()
        .config(ServeConfig::default())
        .build();
    let report = server.serve(&box_request(1, 2)).unwrap();
    // 2 families × 1 shard × 2^2 sub-boxes.
    assert_eq!(report.obligations.len(), 8);
    for (position, outcome) in report.obligations.iter().enumerate() {
        assert_eq!(outcome.index, position);
        assert_eq!(outcome.family, position / 4);
        assert_eq!(outcome.shard, 0);
        assert_eq!(outcome.sub_box, position % 4);
    }
    assert_eq!(report.verdicts.len(), 2);
    assert_eq!(report.verdicts[0].risk, "unreachable");
    assert!(report.verdicts[0].verdict.is_safe());
    assert!(report.verdicts[1].verdict.is_unsafe());
}

#[test]
fn served_verdicts_match_the_direct_core_path() {
    let request = box_request(2, 1);
    let server = ObligationServer::builder()
        .config(ServeConfig::default())
        .build();
    let report = server.serve(&request).unwrap();

    // Reference: solve each obligation directly through dpv-core with a
    // fresh template and no reuse state — the canonical verdict.
    let backend = BranchAndBoundBackend;
    for outcome in &report.obligations {
        let problem = VerificationProblem::new(
            request.perception.clone(),
            request.cut_layer,
            request.characterizer.clone(),
            request.risks[outcome.family].clone(),
        )
        .unwrap();
        let root = StartRegion::Box(BoxDomain::uniform(CUT_WIDTH, -1.0, 1.0));
        let template = problem.encoding_template(&root).unwrap();
        let (left, right) = dpv_core::split_box(&BoxDomain::uniform(CUT_WIDTH, -1.0, 1.0));
        let sub = StartRegion::Box(if outcome.sub_box == 0 { left } else { right });
        let (reference, _) = problem
            .solve_with_template(&template, &sub, &mut SolveOptions::new().backend(&backend))
            .unwrap();
        assert_eq!(
            outcome.verdict, reference,
            "obligation {} diverged from the direct path",
            outcome.index
        );
    }
}

#[test]
fn identical_request_is_fully_deduplicated_with_identical_verdicts() {
    let request = box_request(3, 2);
    let server = ObligationServer::builder()
        .config(ServeConfig::default())
        .build();
    let cold = server.serve(&request).unwrap();
    let warm = server.serve(&request).unwrap();

    assert!(cold.obligations.iter().all(|o| !o.deduped));
    assert!(warm.obligations.iter().all(|o| o.deduped));
    assert_eq!(deterministic_view(&cold), deterministic_view(&warm));
    assert_eq!(cold.verdicts, warm.verdicts);

    let stats = server.stats();
    assert_eq!(stats.requests, 2);
    assert_eq!(stats.obligations, 16);
    assert_eq!(stats.solved, 8);
    assert_eq!(stats.dedup_hits, 8);
    assert_eq!(stats.dedup_rate_permille(), 500);
    // The second request also hit the template cache once per group.
    assert!(stats.templates.hits >= 2);
}

#[test]
fn sharded_requests_agree_with_verify_sharded() {
    let perception = perception(4);
    let mut rng = StdRng::seed_from_u64(40);
    let inputs: Vec<Vector> = (0..60)
        .map(|_| Vector::from_vec((0..3).map(|_| rng.gen_range(0.0..1.0)).collect()))
        .collect();
    let envelope =
        ShardedEnvelope::from_inputs(&perception, CUT, &inputs, 0.05, &ShardConfig::fixed(3))
            .unwrap();

    let request = VerificationRequest {
        perception: perception.clone(),
        cut_layer: CUT,
        characterizer: characterizer(4),
        risks: risk_family(),
        region: RegionSpec::Sharded {
            envelope: envelope.clone(),
            use_difference_constraints: true,
        },
        subdivision: 0,
        deadline: None,
    };
    let server = ObligationServer::builder()
        .config(ServeConfig::default())
        .build();
    let report = server.serve(&request).unwrap();
    assert_eq!(report.obligations.len(), 2 * envelope.shard_count());

    for (family, risk) in request.risks.iter().enumerate() {
        let problem = VerificationProblem::new(
            perception.clone(),
            CUT,
            request.characterizer.clone(),
            risk.clone(),
        )
        .unwrap();
        let direct = problem
            .verify_sharded_with(
                &envelope,
                &dpv_core::ShardedVerificationConfig::default(),
                &BranchAndBoundBackend,
            )
            .unwrap();
        assert_eq!(
            report.verdicts[family].verdict, direct.verdict,
            "family {family} diverged from verify_sharded"
        );
        for (shard, obligation) in report
            .obligations
            .iter()
            .filter(|o| o.family == family)
            .enumerate()
        {
            assert_eq!(obligation.verdict, direct.shards[shard].verdict);
        }
    }
}

#[test]
fn backpressure_bounds_the_obligations_in_flight() {
    let config = ServeConfig {
        workers: 1,
        queue_capacity: 1,
        ..ServeConfig::default()
    };
    let server = ObligationServer::builder().config(config).build();
    let report = server.serve(&box_request(5, 3)).unwrap();
    assert_eq!(report.obligations.len(), 16);
    let stats = server.stats();
    assert_eq!(stats.max_queue_depth, 1, "admission exceeded the bound");
    assert_eq!(stats.queue_depth, 0, "the pool drained");
}

#[test]
fn reports_are_deterministic_across_workers_and_cache_state() {
    let request = box_request(6, 2);

    // A deliberately cache-hostile server: no basis pooling, no dedup,
    // one worker.
    let bare = ObligationServer::builder()
        .config(ServeConfig {
            workers: 1,
            snapshot_per_key: 0,
            verdict_capacity: 0,
            ..ServeConfig::default()
        })
        .build();
    // A cache-rich server with a racing pool.
    let rich = ObligationServer::builder()
        .config(ServeConfig {
            workers: 3,
            snapshot_per_key: 4,
            ..ServeConfig::default()
        })
        .build();

    let reference = bare.serve(&request).unwrap();
    for round in 0..3 {
        let report = rich.serve(&request).unwrap();
        assert_eq!(
            deterministic_view(&reference),
            deterministic_view(&report),
            "round {round} diverged"
        );
        assert_eq!(reference.verdicts, report.verdicts);
    }
    // The bare server saw no dedup; the rich one answered rounds 1-2 from
    // the verdict cache — with verdicts still identical.
    assert_eq!(bare.stats().dedup_hits, 0);
    assert_eq!(rich.stats().dedup_hits, 16);
}

#[test]
fn empty_risk_family_is_rejected() {
    let mut request = box_request(7, 0);
    request.risks.clear();
    let server = ObligationServer::builder()
        .config(ServeConfig::default())
        .build();
    assert!(server.serve(&request).is_err());
}

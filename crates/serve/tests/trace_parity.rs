//! The determinism contract of the trace layer: enabling tracing must
//! not change a single verdict, fold order or cached byte. A traced
//! server and an untraced server given identical `(request, plan)`
//! inputs produce bit-identical deterministic report surfaces.

use dpv_absint::BoxDomain;
use dpv_core::{Characterizer, InputProperty, RiskCondition, StartRegion, Verdict};
use dpv_nn::{Activation, Network, NetworkBuilder};
use dpv_serve::{
    FaultKind, FaultPlan, ObligationServer, RegionSpec, RequestReport, ServeConfig,
    VerificationRequest,
};
use dpv_trace::{TraceConfig, TraceSnapshot, Tracer};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const CUT: usize = 2;
const CUT_WIDTH: usize = 4;
/// 2 families × 1 shard × 2^2 sub-boxes.
const OBLIGATIONS: usize = 8;

fn perception() -> Network {
    let mut rng = StdRng::seed_from_u64(23);
    NetworkBuilder::new(3)
        .dense(6, &mut rng)
        .activation(Activation::ReLU)
        .dense(CUT_WIDTH, &mut rng)
        .activation(Activation::ReLU)
        .dense(2, &mut rng)
        .build()
}

fn characterizer() -> Characterizer {
    let mut rng = StdRng::seed_from_u64(23 ^ 0xc4a2);
    let head = NetworkBuilder::new(CUT_WIDTH)
        .dense(3, &mut rng)
        .activation(Activation::ReLU)
        .dense(1, &mut rng)
        .build();
    Characterizer::from_network(
        InputProperty::new("p", "synthetic property"),
        CUT,
        head,
        0.9,
    )
    .unwrap()
}

fn base_request() -> VerificationRequest {
    VerificationRequest {
        perception: perception(),
        cut_layer: CUT,
        characterizer: characterizer(),
        risks: vec![
            RiskCondition::new("unreachable").output_ge(0, 500.0),
            RiskCondition::new("reachable").output_ge(0, -500.0),
        ],
        region: RegionSpec::Single(StartRegion::Box(BoxDomain::uniform(CUT_WIDTH, -1.0, 1.0))),
        subdivision: 2,
        deadline: None,
    }
}

/// The deterministic surface of a report: per-obligation coordinates
/// and verdicts plus the folded family verdicts. Everything else
/// (timings, stats, timeline) is cost telemetry by contract.
#[allow(clippy::type_complexity)]
fn view(
    report: &RequestReport,
) -> (
    Vec<(usize, usize, usize, usize, Verdict, bool)>,
    Vec<(usize, String, Verdict)>,
) {
    (
        report
            .obligations
            .iter()
            .map(|o| {
                (
                    o.index,
                    o.family,
                    o.shard,
                    o.sub_box,
                    o.verdict.clone(),
                    o.deduped,
                )
            })
            .collect(),
        report
            .verdicts
            .iter()
            .map(|f| (f.family, f.risk.clone(), f.verdict.clone()))
            .collect(),
    )
}

fn serve_on(server: &ObligationServer, plan: &FaultPlan) -> RequestReport {
    server.set_fault_plan(plan.clone());
    server.serve(&base_request()).unwrap()
}

fn kind_of(draw: u8) -> FaultKind {
    match draw {
        0 => FaultKind::ExhaustIterations,
        1 => FaultKind::TransientExhaust,
        2 => FaultKind::PoisonSnapshot,
        _ => FaultKind::Delay { millis: 1 },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Bit-identical deterministic surfaces, traced vs untraced, across
    /// worker counts and fault plans — including the second (warm,
    /// deduped) serve of the same request.
    #[test]
    fn traced_and_untraced_reports_are_bit_identical(
        workers in 1usize..3,
        a in 0usize..OBLIGATIONS,
        ka in 0u8..4,
    ) {
        let mut plan = FaultPlan::new();
        plan.inject(a, kind_of(ka));

        let untraced = ObligationServer::builder().config(ServeConfig::with_workers(workers)).build();
        let traced = ObligationServer::builder()
            .config(ServeConfig::with_workers(workers))
            .tracer(Tracer::with_config(TraceConfig::default()))
            .build();

        let cold_untraced = serve_on(&untraced, &plan);
        let cold_traced = serve_on(&traced, &plan);
        prop_assert_eq!(view(&cold_untraced), view(&cold_traced));
        prop_assert!(cold_untraced.timeline.is_none());
        prop_assert!(cold_traced.timeline.is_some());

        // Second serve: dedup and warm caches now in play on both sides.
        let warm_untraced = serve_on(&untraced, &plan);
        let warm_traced = serve_on(&traced, &plan);
        prop_assert_eq!(view(&warm_untraced), view(&warm_traced));
    }
}

/// A fresh snapshot taken mid-service round-trips through its own JSON
/// exporter byte-identically.
#[test]
fn trace_snapshot_round_trips_through_json() {
    let tracer = Tracer::with_config(TraceConfig::default());
    let server = ObligationServer::builder()
        .config(ServeConfig::with_workers(2))
        .tracer(tracer)
        .build();
    server.serve(&base_request()).unwrap();

    let snapshot = server.trace_snapshot();
    assert!(snapshot.enabled);
    assert!(snapshot.record_ops > 0);
    let json = snapshot.to_json();
    let parsed = TraceSnapshot::from_json(&json).expect("own JSON must parse");
    assert_eq!(parsed, snapshot);
    assert_eq!(parsed.to_json(), json, "byte-identical re-export");
}

/// The report timeline covers every obligation with a verdict, and the
/// second serve of the same request marks every obligation deduped.
#[test]
fn timelines_cover_the_request() {
    let tracer = Tracer::with_config(TraceConfig::default());
    let server = ObligationServer::builder()
        .config(ServeConfig::with_workers(2))
        .tracer(tracer)
        .build();

    let first = server.serve(&base_request()).unwrap();
    let timeline = first.timeline.expect("traced server attaches a timeline");
    assert_eq!(timeline.request, 1, "request tags start at 1");
    assert_eq!(timeline.obligations.len(), OBLIGATIONS);
    assert!(timeline.began_at_ns.is_some());
    assert!(timeline.duration_ns.is_some());
    for obligation in &timeline.obligations {
        assert!(obligation.verdict.is_some(), "every obligation concluded");
        assert!(!obligation.deduped, "cold serve has no dedup hits");
        assert!(obligation.enqueued_at_ns.is_some());
        assert!(obligation.dequeued_at_ns.is_some());
        assert!(
            !obligation.attempts.is_empty(),
            "a solved obligation records at least one attempt span"
        );
    }

    let second = server.serve(&base_request()).unwrap();
    let warm = second.timeline.expect("traced server attaches a timeline");
    assert_eq!(warm.request, 2);
    assert_eq!(warm.obligations.len(), OBLIGATIONS);
    for obligation in &warm.obligations {
        assert!(obligation.deduped, "identical request fully deduped");
        assert!(obligation.attempts.is_empty(), "no solver touched");
    }
}

/// Tracing still holds the determinism contract when the ring buffers
/// are tiny enough to drop events: counters stay exact, timelines stay
/// tolerant, verdicts stay identical.
#[test]
fn overflowing_ring_buffers_degrade_gracefully() {
    let tracer = Tracer::with_config(TraceConfig {
        events_per_buffer: 4,
        ..TraceConfig::default()
    });
    let server = ObligationServer::builder()
        .config(ServeConfig::with_workers(2))
        .tracer(tracer)
        .build();
    let untraced = ObligationServer::builder()
        .config(ServeConfig::with_workers(2))
        .build();

    let traced_report = server.serve(&base_request()).unwrap();
    let untraced_report = untraced.serve(&base_request()).unwrap();
    assert_eq!(view(&traced_report), view(&untraced_report));

    let snapshot = server.trace_snapshot();
    assert!(
        snapshot.dropped_events() > 0,
        "4-slot buffers must overflow on {OBLIGATIONS} obligations"
    );
    assert_eq!(
        snapshot.counter("obligations"),
        OBLIGATIONS as u64,
        "counters never drop, only events do"
    );
}

//! Fault-tolerance behaviour of the resident obligation server: deadline
//! semantics, panic isolation and quarantine, escalated retries, snapshot
//! poisoning, and the deterministic fault-injection contract — reports
//! are pure functions of `(request, plan)`, and obligations a plan does
//! not touch are bit-identical to the fault-free run.

use std::sync::OnceLock;
use std::time::Duration;

use dpv_absint::BoxDomain;
use dpv_core::{Characterizer, InputProperty, RiskCondition, StartRegion, Verdict};
use dpv_nn::{Activation, Network, NetworkBuilder};
use dpv_serve::{
    FailureReason, FaultKind, FaultPlan, ObligationServer, RegionSpec, RequestReport, ServeConfig,
    VerificationRequest,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const CUT: usize = 2;
const CUT_WIDTH: usize = 4;
/// 2 families × 1 shard × 2^2 sub-boxes.
const OBLIGATIONS: usize = 8;

fn perception() -> Network {
    let mut rng = StdRng::seed_from_u64(11);
    NetworkBuilder::new(3)
        .dense(6, &mut rng)
        .activation(Activation::ReLU)
        .dense(CUT_WIDTH, &mut rng)
        .activation(Activation::ReLU)
        .dense(2, &mut rng)
        .build()
}

fn characterizer() -> Characterizer {
    let mut rng = StdRng::seed_from_u64(11 ^ 0xc4a2);
    let head = NetworkBuilder::new(CUT_WIDTH)
        .dense(3, &mut rng)
        .activation(Activation::ReLU)
        .dense(1, &mut rng)
        .build();
    Characterizer::from_network(
        InputProperty::new("p", "synthetic property"),
        CUT,
        head,
        0.9,
    )
    .unwrap()
}

/// One provably-safe and one trivially-reachable risk condition, so the
/// fixture exercises both the Safe and Unsafe (counterexample) paths.
fn base_request() -> VerificationRequest {
    VerificationRequest {
        perception: perception(),
        cut_layer: CUT,
        characterizer: characterizer(),
        risks: vec![
            RiskCondition::new("unreachable").output_ge(0, 500.0),
            RiskCondition::new("reachable").output_ge(0, -500.0),
        ],
        region: RegionSpec::Single(StartRegion::Box(BoxDomain::uniform(CUT_WIDTH, -1.0, 1.0))),
        subdivision: 2,
        deadline: None,
    }
}

/// The canonical fault-free verdicts, solved once on a pristine server.
fn reference_verdicts() -> &'static [Verdict] {
    static REFERENCE: OnceLock<Vec<Verdict>> = OnceLock::new();
    REFERENCE.get_or_init(|| {
        let server = ObligationServer::builder()
            .config(ServeConfig::with_workers(2))
            .build();
        let report = server.serve(&base_request()).unwrap();
        assert_eq!(report.obligations.len(), OBLIGATIONS);
        report
            .obligations
            .iter()
            .map(|o| o.verdict.clone())
            .collect()
    })
}

/// Serves the base request on a fresh server carrying `plan`.
fn serve_with_plan(plan: &FaultPlan) -> RequestReport {
    let server = ObligationServer::builder()
        .config(ServeConfig::with_workers(2))
        .build();
    server.set_fault_plan(plan.clone());
    server.serve(&base_request()).unwrap()
}

/// The deterministic surface of a report.
fn view(report: &RequestReport) -> Vec<(usize, usize, usize, usize, Verdict)> {
    report
        .obligations
        .iter()
        .map(|o| (o.index, o.family, o.shard, o.sub_box, o.verdict.clone()))
        .collect()
}

fn kind_of(draw: u8) -> FaultKind {
    match draw {
        0 => FaultKind::ExhaustIterations,
        1 => FaultKind::TransientExhaust,
        2 => FaultKind::PoisonSnapshot,
        _ => FaultKind::Delay { millis: 1 },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The fault-isolation contract: a report is a pure function of
    /// `(request, plan)`; healthy obligations are bit-identical to the
    /// fault-free run; each faulted obligation carries exactly its
    /// fault's expected outcome (recovered faults reproduce the
    /// reference verdict, persistent exhaustion its stable code).
    #[test]
    fn faults_are_isolated_and_reports_are_deterministic(
        a in 0usize..OBLIGATIONS,
        b in 0usize..OBLIGATIONS,
        ka in 0u8..4,
        kb in 0u8..4,
    ) {
        let mut plan = FaultPlan::new();
        plan.inject(a, kind_of(ka));
        plan.inject(b, kind_of(kb));

        let first = serve_with_plan(&plan);
        let second = serve_with_plan(&plan);
        prop_assert_eq!(view(&first), view(&second));

        let reference = reference_verdicts();
        for outcome in &first.obligations {
            match plan.fault_at(outcome.index) {
                None
                | Some(
                    FaultKind::TransientExhaust
                    | FaultKind::PoisonSnapshot
                    | FaultKind::Delay { .. },
                ) => {
                    prop_assert_eq!(&outcome.verdict, &reference[outcome.index]);
                }
                Some(FaultKind::ExhaustIterations) => {
                    prop_assert_eq!(
                        FailureReason::of(&outcome.verdict),
                        Some(FailureReason::IterationLimit)
                    );
                }
                Some(FaultKind::Panic) => unreachable!("not drawn by this property"),
            }
        }
    }
}

#[test]
fn expired_deadline_degrades_the_whole_request_without_solving() {
    let server = ObligationServer::builder()
        .config(ServeConfig::with_workers(2))
        .build();
    let mut request = base_request();
    request.deadline = Some(Duration::ZERO);
    let report = server.serve(&request).unwrap();

    assert_eq!(report.obligations.len(), OBLIGATIONS);
    for (position, outcome) in report.obligations.iter().enumerate() {
        assert_eq!(outcome.index, position, "report is complete and dense");
        assert_eq!(
            FailureReason::of(&outcome.verdict),
            Some(FailureReason::DeadlineExceeded)
        );
        assert!(!outcome.deduped);
        assert_eq!(outcome.solve_ns, 0);
    }
    assert!(report
        .verdicts
        .iter()
        .all(|family| matches!(family.verdict, Verdict::Unknown(_))));

    let stats = server.stats();
    assert_eq!(stats.requests, 1);
    assert_eq!(stats.obligations, OBLIGATIONS as u64);
    assert_eq!(stats.solved, 0, "zero solver invocations");
    assert_eq!(stats.deadline_skipped, OBLIGATIONS as u64);
}

#[test]
fn mid_flight_expiry_completes_the_report_without_losing_verdicts() {
    let server = ObligationServer::builder()
        .config(ServeConfig::with_workers(1))
        .build();
    let mut plan = FaultPlan::new();
    plan.inject(0, FaultKind::Delay { millis: 40 });
    server.set_fault_plan(plan);
    let mut request = base_request();
    request.deadline = Some(Duration::from_millis(10));
    let report = server.serve(&request).unwrap();

    let reference = reference_verdicts();
    assert_eq!(report.obligations.len(), OBLIGATIONS);
    let mut expired = 0usize;
    for outcome in &report.obligations {
        if FailureReason::of(&outcome.verdict) == Some(FailureReason::DeadlineExceeded) {
            expired += 1;
        } else {
            // Anything the pool managed to solve before expiry keeps its
            // canonical verdict — computed results are never discarded.
            assert_eq!(outcome.verdict, reference[outcome.index]);
        }
    }
    assert!(
        expired >= 1,
        "the delayed obligation must blow the deadline"
    );
    assert!(server.stats().deadline_skipped >= 1);
}

#[test]
fn panicking_obligation_is_quarantined_and_siblings_complete() {
    let server = ObligationServer::builder()
        .config(ServeConfig::with_workers(2))
        .build();
    let mut plan = FaultPlan::new();
    plan.inject(3, FaultKind::Panic);
    server.set_fault_plan(plan);
    let request = base_request();
    let report = server.serve(&request).unwrap();

    let reference = reference_verdicts();
    for outcome in &report.obligations {
        if outcome.index == 3 {
            assert_eq!(
                FailureReason::of(&outcome.verdict),
                Some(FailureReason::WorkerPanic)
            );
        } else {
            assert_eq!(outcome.verdict, reference[outcome.index]);
        }
    }
    let stats = server.stats();
    assert_eq!(stats.worker_panics, 2, "original attempt plus one retry");
    assert_eq!(stats.quarantined, 1);

    // The worker thread survived: the same server answers a follow-up
    // request, and the quarantined obligation — never cached — now
    // solves cleanly.
    server.set_fault_plan(FaultPlan::new());
    let healthy = server.serve(&request).unwrap();
    for outcome in &healthy.obligations {
        assert_eq!(outcome.verdict, reference[outcome.index]);
    }
    assert!(
        !healthy.obligations[3].deduped,
        "degraded outcomes must never enter the dedup cache"
    );
    assert!(
        healthy.obligations[0].deduped,
        "healthy siblings were cached"
    );
}

#[test]
fn transient_exhaustion_is_rescued_by_the_escalated_retry() {
    let server = ObligationServer::builder()
        .config(ServeConfig::with_workers(2))
        .build();
    let mut plan = FaultPlan::new();
    plan.inject(5, FaultKind::TransientExhaust);
    server.set_fault_plan(plan);
    let report = server.serve(&base_request()).unwrap();

    let reference = reference_verdicts();
    for outcome in &report.obligations {
        assert_eq!(
            outcome.verdict, reference[outcome.index],
            "a rescued retry is bit-identical to the fault-free verdict"
        );
    }
    let stats = server.stats();
    assert!(stats.retries >= 1);
    assert!(stats.retry_successes >= 1);
}

#[test]
fn persistent_exhaustion_degrades_and_is_never_cached() {
    let server = ObligationServer::builder()
        .config(ServeConfig::with_workers(2))
        .build();
    let mut plan = FaultPlan::new();
    plan.inject(2, FaultKind::ExhaustIterations);
    server.set_fault_plan(plan);
    let request = base_request();
    let report = server.serve(&request).unwrap();

    let reference = reference_verdicts();
    for outcome in &report.obligations {
        if outcome.index == 2 {
            assert_eq!(
                FailureReason::of(&outcome.verdict),
                Some(FailureReason::IterationLimit)
            );
        } else {
            assert_eq!(outcome.verdict, reference[outcome.index]);
        }
    }
    let stats = server.stats();
    assert!(
        stats.retries >= 1,
        "exhaustion triggers the escalated retry"
    );
    assert_eq!(
        stats.retry_successes, 0,
        "a persistent fault is not rescued"
    );

    server.set_fault_plan(FaultPlan::new());
    let healthy = server.serve(&request).unwrap();
    assert_eq!(healthy.obligations[2].verdict, reference[2]);
    assert!(
        !healthy.obligations[2].deduped,
        "the degraded verdict must not have been cached"
    );
}

#[test]
fn poisoned_snapshots_are_rejected_by_the_structural_guard() {
    let server = ObligationServer::builder()
        .config(ServeConfig::with_workers(2))
        .build();
    let mut plan = FaultPlan::new();
    for index in 0..OBLIGATIONS {
        plan.inject(index, FaultKind::PoisonSnapshot);
    }
    server.set_fault_plan(plan);
    let report = server.serve(&base_request()).unwrap();

    let reference = reference_verdicts();
    for outcome in &report.obligations {
        assert_eq!(
            outcome.verdict, reference[outcome.index],
            "a poisoned basis degrades to a cold solve, never a wrong verdict"
        );
    }
}

#[test]
fn seeded_fault_plans_give_reproducible_reports() {
    let plan = FaultPlan::from_seed(0xfa01, OBLIGATIONS, 2);
    // from_seed may draw Panic faults; both runs see the identical plan,
    // so the reports must still agree verbatim.
    let first = serve_with_plan(&plan);
    let second = serve_with_plan(&plan);
    assert_eq!(view(&first), view(&second));

    let reference = reference_verdicts();
    for outcome in &first.obligations {
        if plan.fault_at(outcome.index).is_none() {
            assert_eq!(outcome.verdict, reference[outcome.index]);
        }
    }
}

//! Request description and its decomposition into proof obligations.

use std::sync::Arc;
use std::time::Duration;

use dpv_absint::{AbstractDomain, BoxDomain};
use dpv_core::{
    split_box, Characterizer, CoreError, RiskCondition, StartRegion, VerificationProblem,
};
use dpv_nn::Network;
use dpv_shard::ShardedEnvelope;

/// Where a request's proof obligations live at the cut layer.
#[derive(Debug, Clone)]
pub enum RegionSpec {
    /// One start region — the monolithic assume-guarantee shape (or a
    /// Lemma-2 abstraction box). Box regions may be subdivided; an
    /// octagon is solved as a single root obligation.
    Single(StartRegion),
    /// A cluster-partitioned envelope: one obligation root per shard.
    Sharded {
        /// The sharded activation envelope (built at the request's cut
        /// layer, with the cut layer's dimension).
        envelope: ShardedEnvelope,
        /// Encode each shard's adjacent-difference constraints (`true`,
        /// octagon regions) or only its box part (`false`).
        use_difference_constraints: bool,
    },
}

/// A verification request: the things a client would ship to a resident
/// verifier — perception network, cut layer, characterizer, a *family* of
/// risk conditions to check under the same region, and the region itself.
///
/// The server decomposes a request into
/// `families × shards × sub-boxes` proof obligations. `subdivision`
/// bisects every **box** obligation root `subdivision` times along its
/// widest dimension (via [`dpv_core::split_box`], the same deterministic
/// rule the refinement work-list uses), yielding `2^subdivision` sub-box
/// obligations per root; octagon roots are never subdivided.
#[derive(Debug, Clone)]
pub struct VerificationRequest {
    /// The full perception network (split at `cut_layer` server-side).
    pub perception: Network,
    /// The cut layer (zero-based) the characterizer and regions live at.
    pub cut_layer: usize,
    /// The input-property characterizer `h_φ`.
    pub characterizer: Characterizer,
    /// The risk-property family: every condition is verified over the
    /// same region set. Must be non-empty.
    pub risks: Vec<RiskCondition>,
    /// The start region(s) at the cut layer.
    pub region: RegionSpec,
    /// Bisection levels applied to each box obligation root.
    pub subdivision: u32,
    /// Optional wall-clock budget for the whole request, measured on the
    /// monotonic clock from the moment [`crate::ObligationServer::serve`]
    /// is entered. When it expires, in-flight solves are cancelled
    /// cooperatively and unsolved obligations are skipped; every affected
    /// obligation reports `Unknown("deadline-exceeded")` (see
    /// [`crate::FailureReason`]) and already-computed verdicts are never
    /// lost. `None` means no deadline.
    pub deadline: Option<Duration>,
}

/// One proof obligation: a `(problem, template root, sub-region)` triple
/// plus its deterministic coordinates in the request.
#[derive(Debug, Clone)]
pub(crate) struct Obligation {
    /// Position in the request's global obligation order (family-major,
    /// then shard, then sub-box) — the fold order.
    pub index: usize,
    /// Index into [`VerificationRequest::risks`].
    pub family: usize,
    /// Shard index (0 for [`RegionSpec::Single`]).
    pub shard: usize,
    /// Sub-box index within the shard (0 for unsubdivided roots).
    pub sub_box: usize,
    /// The verification problem for this family member.
    pub problem: Arc<VerificationProblem>,
    /// The region to solve.
    pub region: StartRegion,
}

/// All obligations of one `(family, shard)` pair — they share one
/// encoding template rooted at `root`, which is what makes admission
/// batchable.
#[derive(Debug, Clone)]
pub(crate) struct ObligationGroup {
    pub problem: Arc<VerificationProblem>,
    pub root: StartRegion,
    pub obligations: Vec<Obligation>,
}

/// Deterministically enumerates the sub-boxes of `root` after `levels`
/// widest-dimension bisections, left child before right child.
fn bisect(root: &BoxDomain, levels: u32, out: &mut Vec<BoxDomain>) {
    if levels == 0 {
        out.push(root.clone());
        return;
    }
    let (left, right) = split_box(root);
    bisect(&left, levels - 1, out);
    bisect(&right, levels - 1, out);
}

impl VerificationRequest {
    /// The shard roots of the request, in shard-index order.
    fn shard_roots(&self, problem: &VerificationProblem) -> Result<Vec<StartRegion>, CoreError> {
        match &self.region {
            RegionSpec::Single(region) => {
                if region.box_domain().dim()
                    != problem.perception().layer_output_dim(problem.cut_layer())
                {
                    return Err(CoreError::Inconsistent(
                        "request region dimension does not match the cut-layer width".into(),
                    ));
                }
                Ok(vec![region.clone()])
            }
            RegionSpec::Sharded {
                envelope,
                use_difference_constraints,
            } => problem.shard_regions(envelope, *use_difference_constraints),
        }
    }

    /// Decomposes the request into obligation groups in deterministic
    /// order: family-major, then shard, then sub-box. Obligation indices
    /// are assigned in exactly this order, which is also the fold order.
    pub(crate) fn decompose(&self) -> Result<Vec<ObligationGroup>, CoreError> {
        if self.risks.is_empty() {
            return Err(CoreError::Inconsistent(
                "a verification request needs at least one risk condition".into(),
            ));
        }
        let mut groups = Vec::new();
        let mut index = 0usize;
        for (family, risk) in self.risks.iter().enumerate() {
            let problem = Arc::new(VerificationProblem::new(
                self.perception.clone(),
                self.cut_layer,
                self.characterizer.clone(),
                risk.clone(),
            )?);
            let roots = self.shard_roots(&problem)?;
            for (shard, root) in roots.into_iter().enumerate() {
                let sub_regions: Vec<StartRegion> = match &root {
                    StartRegion::Box(b) => {
                        let mut leaves = Vec::new();
                        bisect(b, self.subdivision, &mut leaves);
                        leaves.into_iter().map(StartRegion::Box).collect()
                    }
                    octagon => vec![octagon.clone()],
                };
                let obligations = sub_regions
                    .into_iter()
                    .enumerate()
                    .map(|(sub_box, region)| {
                        let obligation = Obligation {
                            index,
                            family,
                            shard,
                            sub_box,
                            problem: Arc::clone(&problem),
                            region,
                        };
                        index += 1;
                        obligation
                    })
                    .collect();
                groups.push(ObligationGroup {
                    problem: Arc::clone(&problem),
                    root,
                    obligations,
                });
            }
        }
        Ok(groups)
    }
}

//! Aggregate statistics of a resident obligation server.

use dpv_core::{CacheStats, SnapshotPoolStats};
use serde::{Deserialize, Serialize};

/// A point-in-time snapshot of everything a resident server has done:
/// cache effectiveness, dedup rate, queue pressure and per-obligation
/// latency. Returned by [`crate::ObligationServer::stats`] and attached
/// to every [`crate::RequestReport`].
///
/// Counters are cumulative since the server was created. Latency and
/// queue-depth figures are *cost* telemetry and deliberately not part of
/// the deterministic report surface (verdicts are; see the crate docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ServeStats {
    /// Requests served to completion.
    pub requests: u64,
    /// Obligations decomposed across all requests (solved + deduplicated).
    pub obligations: u64,
    /// Obligations actually handed to the solver pool.
    pub solved: u64,
    /// Obligations answered from the verdict cache without solving.
    pub dedup_hits: u64,
    /// Seeded solves that found a counterexample and were re-solved
    /// unseeded so the reported point is independent of pool state.
    pub canonical_resolves: u64,
    /// Budget-exhausted solves (node or iteration limit) retried once on
    /// a cold solver with escalated budgets before degrading.
    pub retries: u64,
    /// Escalated retries that produced a definitive verdict, rescuing an
    /// obligation that would otherwise have degraded.
    pub retry_successes: u64,
    /// Worker panics caught and contained (an obligation may contribute
    /// two: the original attempt and the single in-place retry).
    pub worker_panics: u64,
    /// Obligations quarantined after panicking on both attempts; they
    /// report `Unknown("worker-panic")` and are never cached.
    pub quarantined: u64,
    /// Obligations skipped without touching the solver because their
    /// request's deadline had already expired.
    pub deadline_skipped: u64,
    /// Obligations in flight when the snapshot was taken.
    pub queue_depth: usize,
    /// High-water mark of obligations in flight.
    pub max_queue_depth: usize,
    /// Wall-clock nanoseconds spent solving obligations (sum over the
    /// pool's workers, so it can exceed elapsed time).
    pub total_solve_ns: u128,
    /// Template-cache effectiveness (hits, misses, evictions, entries).
    pub templates: CacheStats,
    /// Snapshot-pool effectiveness (hits, misses, discards, pooled).
    pub snapshots: SnapshotPoolStats,
}

impl ServeStats {
    /// Accumulates `other` into `self`: cumulative counters (requests,
    /// obligations, retries, panics, cache hits/misses/evictions,
    /// solve-time) **sum**; the point-in-time readings (`queue_depth`,
    /// `templates.entries`) **take `other`'s value** as the more recent
    /// observation; `max_queue_depth` keeps the **max**.
    ///
    /// This is the server's single accumulation path: request and worker
    /// deltas are built as sparse `ServeStats` values and merged, so a
    /// counter can't be forgotten in one call site and double-counted in
    /// another.
    pub fn merge(&mut self, other: &ServeStats) {
        self.requests += other.requests;
        self.obligations += other.obligations;
        self.solved += other.solved;
        self.dedup_hits += other.dedup_hits;
        self.canonical_resolves += other.canonical_resolves;
        self.retries += other.retries;
        self.retry_successes += other.retry_successes;
        self.worker_panics += other.worker_panics;
        self.quarantined += other.quarantined;
        self.deadline_skipped += other.deadline_skipped;
        self.queue_depth = other.queue_depth;
        self.max_queue_depth = self.max_queue_depth.max(other.max_queue_depth);
        self.total_solve_ns += other.total_solve_ns;
        self.templates.hits += other.templates.hits;
        self.templates.misses += other.templates.misses;
        self.templates.evictions += other.templates.evictions;
        self.templates.entries = other.templates.entries;
        self.snapshots.hits += other.snapshots.hits;
        self.snapshots.misses += other.snapshots.misses;
        self.snapshots.discarded += other.snapshots.discarded;
    }

    /// Deduplicated obligations per thousand decomposed, in `0..=1000`.
    pub fn dedup_rate_permille(&self) -> u64 {
        (self.dedup_hits * 1000)
            .checked_div(self.obligations)
            .unwrap_or(0)
    }

    /// Template-cache hits per thousand lookups, in `0..=1000`.
    pub fn template_hit_rate_permille(&self) -> u64 {
        self.templates.hit_rate_permille()
    }

    /// Mean wall-clock nanoseconds per solved obligation.
    pub fn mean_obligation_latency_ns(&self) -> u128 {
        self.total_solve_ns
            .checked_div(u128::from(self.solved))
            .unwrap_or(0)
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{} requests | {} obligations ({} solved, {} deduped, {}‰ dedup) | \
             templates {}/{} hit/miss | bases {}/{} hit/miss | queue {} (max {}) | \
             {} ns/obligation | {} retries ({} rescued) | {} panics ({} quarantined) | \
             {} deadline-skipped",
            self.requests,
            self.obligations,
            self.solved,
            self.dedup_hits,
            self.dedup_rate_permille(),
            self.templates.hits,
            self.templates.misses,
            self.snapshots.hits,
            self.snapshots.misses,
            self.queue_depth,
            self.max_queue_depth,
            self.mean_obligation_latency_ns(),
            self.retries,
            self.retry_successes,
            self.worker_panics,
            self.quarantined,
            self.deadline_skipped
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_helpers_return_zero_on_zero_denominators() {
        let stats = ServeStats::default();
        assert_eq!(stats.dedup_rate_permille(), 0);
        assert_eq!(stats.template_hit_rate_permille(), 0);
        assert_eq!(stats.mean_obligation_latency_ns(), 0);
        assert_eq!(CacheStats::default().hit_rate_permille(), 0);
        assert_eq!(SnapshotPoolStats::default().hit_rate_permille(), 0);
    }

    #[test]
    fn rate_helpers_compute_permille() {
        let stats = ServeStats {
            obligations: 4,
            dedup_hits: 1,
            solved: 3,
            total_solve_ns: 900,
            templates: CacheStats {
                hits: 3,
                misses: 1,
                ..CacheStats::default()
            },
            ..ServeStats::default()
        };
        assert_eq!(stats.dedup_rate_permille(), 250);
        assert_eq!(stats.template_hit_rate_permille(), 750);
        assert_eq!(stats.mean_obligation_latency_ns(), 300);
    }

    #[test]
    fn merge_sums_counters_and_keeps_point_in_time_semantics() {
        let mut total = ServeStats {
            requests: 1,
            obligations: 8,
            solved: 6,
            dedup_hits: 2,
            retries: 1,
            queue_depth: 5,
            max_queue_depth: 7,
            total_solve_ns: 100,
            templates: CacheStats {
                hits: 4,
                misses: 2,
                evictions: 1,
                entries: 2,
            },
            snapshots: SnapshotPoolStats {
                hits: 3,
                misses: 3,
                discarded: 1,
            },
            ..ServeStats::default()
        };
        let delta = ServeStats {
            requests: 1,
            obligations: 4,
            solved: 4,
            canonical_resolves: 1,
            retry_successes: 1,
            worker_panics: 2,
            quarantined: 1,
            deadline_skipped: 3,
            queue_depth: 2,
            max_queue_depth: 3,
            total_solve_ns: 50,
            templates: CacheStats {
                hits: 1,
                misses: 0,
                evictions: 0,
                entries: 3,
            },
            snapshots: SnapshotPoolStats {
                hits: 1,
                misses: 0,
                discarded: 0,
            },
            ..ServeStats::default()
        };
        total.merge(&delta);
        assert_eq!(total.requests, 2);
        assert_eq!(total.obligations, 12);
        assert_eq!(total.solved, 10);
        assert_eq!(total.dedup_hits, 2);
        assert_eq!(total.canonical_resolves, 1);
        assert_eq!(total.retries, 1);
        assert_eq!(total.retry_successes, 1);
        assert_eq!(total.worker_panics, 2);
        assert_eq!(total.quarantined, 1);
        assert_eq!(total.deadline_skipped, 3);
        assert_eq!(total.queue_depth, 2, "point-in-time: takes other's");
        assert_eq!(total.max_queue_depth, 7, "high-water: keeps the max");
        assert_eq!(total.total_solve_ns, 150);
        assert_eq!(total.templates.hits, 5);
        assert_eq!(total.templates.entries, 3, "point-in-time: takes other's");
        assert_eq!(total.snapshots.hits, 4);
    }

    #[test]
    fn merging_a_default_only_resets_point_in_time_readings() {
        let mut total = ServeStats {
            requests: 3,
            queue_depth: 4,
            max_queue_depth: 9,
            ..ServeStats::default()
        };
        total.merge(&ServeStats::default());
        assert_eq!(total.requests, 3);
        assert_eq!(total.queue_depth, 0);
        assert_eq!(total.max_queue_depth, 9);
    }
}

//! Aggregate statistics of a resident obligation server.

use dpv_core::{CacheStats, SnapshotPoolStats};

/// A point-in-time snapshot of everything a resident server has done:
/// cache effectiveness, dedup rate, queue pressure and per-obligation
/// latency. Returned by [`crate::ObligationServer::stats`] and attached
/// to every [`crate::RequestReport`].
///
/// Counters are cumulative since the server was created. Latency and
/// queue-depth figures are *cost* telemetry and deliberately not part of
/// the deterministic report surface (verdicts are; see the crate docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeStats {
    /// Requests served to completion.
    pub requests: u64,
    /// Obligations decomposed across all requests (solved + deduplicated).
    pub obligations: u64,
    /// Obligations actually handed to the solver pool.
    pub solved: u64,
    /// Obligations answered from the verdict cache without solving.
    pub dedup_hits: u64,
    /// Seeded solves that found a counterexample and were re-solved
    /// unseeded so the reported point is independent of pool state.
    pub canonical_resolves: u64,
    /// Budget-exhausted solves (node or iteration limit) retried once on
    /// a cold solver with escalated budgets before degrading.
    pub retries: u64,
    /// Escalated retries that produced a definitive verdict, rescuing an
    /// obligation that would otherwise have degraded.
    pub retry_successes: u64,
    /// Worker panics caught and contained (an obligation may contribute
    /// two: the original attempt and the single in-place retry).
    pub worker_panics: u64,
    /// Obligations quarantined after panicking on both attempts; they
    /// report `Unknown("worker-panic")` and are never cached.
    pub quarantined: u64,
    /// Obligations skipped without touching the solver because their
    /// request's deadline had already expired.
    pub deadline_skipped: u64,
    /// Obligations in flight when the snapshot was taken.
    pub queue_depth: usize,
    /// High-water mark of obligations in flight.
    pub max_queue_depth: usize,
    /// Wall-clock nanoseconds spent solving obligations (sum over the
    /// pool's workers, so it can exceed elapsed time).
    pub total_solve_ns: u128,
    /// Template-cache effectiveness (hits, misses, evictions, entries).
    pub templates: CacheStats,
    /// Snapshot-pool effectiveness (hits, misses, discards, pooled).
    pub snapshots: SnapshotPoolStats,
}

impl ServeStats {
    /// Deduplicated obligations per thousand decomposed, in `0..=1000`.
    pub fn dedup_rate_permille(&self) -> u64 {
        (self.dedup_hits * 1000)
            .checked_div(self.obligations)
            .unwrap_or(0)
    }

    /// Template-cache hits per thousand lookups, in `0..=1000`.
    pub fn template_hit_rate_permille(&self) -> u64 {
        self.templates.hit_rate_permille()
    }

    /// Mean wall-clock nanoseconds per solved obligation.
    pub fn mean_obligation_latency_ns(&self) -> u128 {
        self.total_solve_ns
            .checked_div(u128::from(self.solved))
            .unwrap_or(0)
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{} requests | {} obligations ({} solved, {} deduped, {}‰ dedup) | \
             templates {}/{} hit/miss | bases {}/{} hit/miss | queue {} (max {}) | \
             {} ns/obligation | {} retries ({} rescued) | {} panics ({} quarantined) | \
             {} deadline-skipped",
            self.requests,
            self.obligations,
            self.solved,
            self.dedup_hits,
            self.dedup_rate_permille(),
            self.templates.hits,
            self.templates.misses,
            self.snapshots.hits,
            self.snapshots.misses,
            self.queue_depth,
            self.max_queue_depth,
            self.mean_obligation_latency_ns(),
            self.retries,
            self.retry_successes,
            self.worker_panics,
            self.quarantined,
            self.deadline_skipped
        )
    }
}

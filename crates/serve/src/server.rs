//! The resident obligation server: a persistent work-stealing pool
//! draining proof obligations through shared template/basis caches.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Instant;

use crossbeam::deque::{Injector, Stealer, Worker};
use dpv_absint::BoxDomain;
use dpv_core::{
    CoreError, EncodedProblem, Fingerprint, ProblemTemplate, RegionBounds, SnapshotPool,
    SolveOptions, StartRegion, TemplateCache, Verdict, VerificationProblem,
};
use dpv_lp::{
    BranchAndBoundBackend, CancelToken, ConstraintOp, LinearProgram, MilpSolution, MilpStatus,
    SolveStats,
};
use dpv_trace::{
    CounterId, EventKind, GaugeId, HistogramId, TraceEvent, TraceHandle, TraceSnapshot, Tracer,
    NO_OBLIGATION,
};

use crate::fault::{FailureReason, FaultKind, FaultPlan};
use crate::request::{Obligation, ObligationGroup, VerificationRequest};
use crate::stats::ServeStats;
use crate::timeline::RequestTimeline;

/// Budget multiplier applied to the single escalated retry of a
/// node-limit / iteration-limit solve (cold, unseeded, limits restored
/// afterwards — see [`dpv_core::SolveOptions::escalation`]).
const ESCALATION_SCALE: usize = 4;

/// Sizing of a resident [`ObligationServer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Persistent worker threads (clamped to at least 1). Workers solve
    /// with the serial warm-started branch-and-bound backend, so the
    /// server's parallelism is exactly this count — never multiply it by
    /// a parallel backend underneath.
    pub workers: usize,
    /// Bound on obligations in flight; [`ObligationServer::serve`] blocks
    /// once this many are admitted and unfinished (clamped to at least 1).
    pub queue_capacity: usize,
    /// LRU capacity of the shared template cache.
    pub template_capacity: usize,
    /// Pooled bases kept per template fingerprint (0 disables basis
    /// reuse — the cheapest fully-cold configuration).
    pub snapshot_per_key: usize,
    /// FIFO capacity of the verdict (dedup) cache (0 disables dedup).
    pub verdict_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 1,
            queue_capacity: 64,
            template_capacity: 32,
            snapshot_per_key: 2,
            verdict_capacity: 4096,
        }
    }
}

impl ServeConfig {
    /// Default sizing with `workers` worker threads.
    pub fn with_workers(workers: usize) -> Self {
        Self {
            workers,
            ..Self::default()
        }
    }
}

/// Errors surfaced by [`ObligationServer::serve`].
#[derive(Debug)]
pub enum ServeError {
    /// Request decomposition or encoding failed.
    Core(CoreError),
    /// The request decomposed into zero obligations.
    EmptyRequest,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Core(e) => write!(f, "core error: {e}"),
            ServeError::EmptyRequest => write!(f, "request decomposed into zero obligations"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<CoreError> for ServeError {
    fn from(e: CoreError) -> Self {
        ServeError::Core(e)
    }
}

/// Per-family aggregate verdict of a request, folded in obligation-index
/// order: `Safe` iff every obligation of the family is safe, otherwise
/// the lowest-index counterexample, otherwise the lowest-index give-up.
#[derive(Debug, Clone, PartialEq)]
pub struct FamilyVerdict {
    /// Index into [`VerificationRequest::risks`].
    pub family: usize,
    /// The risk condition's name.
    pub risk: String,
    /// The folded verdict.
    pub verdict: Verdict,
}

/// The outcome of one proof obligation.
#[derive(Debug, Clone, PartialEq)]
pub struct ObligationOutcome {
    /// Global obligation index (the fold order).
    pub index: usize,
    /// Family (risk) index.
    pub family: usize,
    /// Shard index.
    pub shard: usize,
    /// Sub-box index within the shard.
    pub sub_box: usize,
    /// The verdict (canonical: independent of cache and pool state).
    pub verdict: Verdict,
    /// Whether the verdict came from the dedup cache without solving.
    pub deduped: bool,
    /// Wall-clock nanoseconds spent solving (0 when deduped). Cost
    /// telemetry only — scheduling-dependent.
    pub solve_ns: u128,
    /// Solver statistics (zeroed when deduped). Cost telemetry only.
    pub stats: SolveStats,
}

/// The result of one served request.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestReport {
    /// One folded verdict per risk condition, in family order. This (and
    /// the per-obligation verdicts) is the deterministic surface: equal
    /// run-to-run regardless of worker scheduling or cache state.
    pub verdicts: Vec<FamilyVerdict>,
    /// Per-obligation outcomes, in obligation-index order.
    pub obligations: Vec<ObligationOutcome>,
    /// End-to-end wall-clock seconds for the request.
    pub seconds: f64,
    /// Server statistics snapshot taken after the request completed.
    pub stats: ServeStats,
    /// The trace-derived per-obligation timeline. Present only when the
    /// server was built with [`ServerBuilder::tracer`] over an enabled
    /// tracer; like `seconds` and `stats`, cost telemetry — not part of
    /// the deterministic report surface.
    pub timeline: Option<RequestTimeline>,
}

impl RequestReport {
    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        let safe = self.verdicts.iter().filter(|v| v.verdict.is_safe()).count();
        let deduped = self.obligations.iter().filter(|o| o.deduped).count();
        format!(
            "{}/{} families safe | {} obligations ({} deduped) | {:.3}s",
            safe,
            self.verdicts.len(),
            self.obligations.len(),
            deduped,
            self.seconds
        )
    }
}

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

fn wait<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

/// FIFO-bounded verdict cache: `(template, sub-region)` fingerprints →
/// canonical verdict.
#[derive(Debug, Default)]
struct VerdictCache {
    map: HashMap<(Fingerprint, Fingerprint), Verdict>,
    order: VecDeque<(Fingerprint, Fingerprint)>,
}

impl VerdictCache {
    fn get(&self, key: &(Fingerprint, Fingerprint)) -> Option<Verdict> {
        self.map.get(key).cloned()
    }

    fn insert(&mut self, capacity: usize, key: (Fingerprint, Fingerprint), verdict: Verdict) {
        if capacity == 0 {
            return;
        }
        if self.map.insert(key, verdict).is_none() {
            self.order.push_back(key);
        }
        while self.map.len() > capacity {
            let Some(oldest) = self.order.pop_front() else {
                break;
            };
            self.map.remove(&oldest);
        }
    }
}

/// Obligation-pool state guarded by one mutex: the in-flight count (the
/// backpressure bound) and the shutdown flag. Every queue push happens
/// while holding this lock, so a worker that observes "no work" under
/// the lock cannot miss a wake-up.
#[derive(Debug, Default)]
struct PoolState {
    in_flight: usize,
    max_in_flight: usize,
    shutdown: bool,
}

/// Merges a sparse [`ServeStats`] delta into the server accumulator.
/// Every counter bump in the server goes through this one path (see
/// [`ServeStats::merge`]), so a new counter cannot be accumulated in one
/// call site and forgotten in another.
fn bump(stats: &Mutex<ServeStats>, delta: &ServeStats) {
    lock(stats).merge(delta);
}

/// What a worker hands back for one solved obligation.
#[derive(Debug)]
struct WorkerOutcome {
    verdict: Verdict,
    solve_ns: u128,
    stats: SolveStats,
}

/// Per-request completion state shared between the submitting thread and
/// the workers.
#[derive(Debug)]
struct RequestState {
    outcomes: Mutex<Vec<Option<WorkerOutcome>>>,
    remaining: Mutex<usize>,
    done: Condvar,
}

/// One unit of pool work.
struct Job {
    index: usize,
    template: Arc<ProblemTemplate>,
    problem: Arc<VerificationProblem>,
    region: StartRegion,
    bounds: Option<RegionBounds>,
    dedup_key: (Fingerprint, Fingerprint),
    request: Arc<RequestState>,
    /// The owning request's deadline token (`None` for unbounded
    /// requests): checked before solving and polled inside the solver.
    cancel: Option<CancelToken>,
    /// The owning request's trace tag (serves as the timeline key).
    request_seq: u64,
    /// When the job entered the queue, on the tracer's clock (0 when
    /// tracing is disabled).
    enqueued_at_ns: u64,
}

struct Inner {
    config: ServeConfig,
    templates: TemplateCache,
    snapshots: SnapshotPool,
    verdicts: Mutex<VerdictCache>,
    injector: Injector<Job>,
    stealers: Vec<Stealer<Job>>,
    state: Mutex<PoolState>,
    work: Condvar,
    space: Condvar,
    stats: Mutex<ServeStats>,
    /// The deterministic fault-injection seam (test/bench only; empty in
    /// production). Consulted once per obligation solve by index.
    fault_plan: Mutex<FaultPlan>,
    shutting_down: AtomicBool,
    /// The trace sink shared by admission, workers and both caches.
    /// Disabled unless the server was built with
    /// [`ServerBuilder::tracer`]; recording through a disabled tracer is
    /// a branch on an absent `Option`.
    tracer: Tracer,
    /// The admission thread's recording handle (workers register their
    /// own per-thread handles in [`worker_loop`]).
    admission: TraceHandle,
    /// Request tags start at 1; 0 is [`dpv_trace::NO_REQUEST`].
    request_seq: AtomicU64,
}

/// A resident verification server: persistent workers, cross-request
/// caches, bounded admission. See the crate docs for the cache-key
/// scheme, eviction policy and backpressure contract.
///
/// Dropping the server shuts the pool down and joins every worker.
pub struct ObligationServer {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

impl fmt::Debug for ObligationServer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ObligationServer")
            .field("config", &self.inner.config)
            .field("workers", &self.workers.len())
            .finish()
    }
}

/// Builder for an [`ObligationServer`] — the single construction path
/// (the `new`/`new_traced` constructor fork it replaced survives one PR
/// as deprecated shims).
///
/// Every axis defaults sensibly: stock [`ServeConfig`], tracing disabled
/// (the zero-overhead production default), empty fault plan.
///
/// ```
/// use dpv_serve::{ObligationServer, ServeConfig};
///
/// let server = ObligationServer::builder()
///     .config(ServeConfig::with_workers(2))
///     .build();
/// assert_eq!(server.config().workers, 2);
/// ```
#[derive(Default)]
pub struct ServerBuilder {
    config: ServeConfig,
    tracer: Option<Tracer>,
    fault_plan: FaultPlan,
}

impl ServerBuilder {
    /// A builder with every axis at its default.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sizes the server (workers, queue bound, cache capacities).
    pub fn config(mut self, config: ServeConfig) -> Self {
        self.config = config;
        self
    }

    /// Records into `tracer`: admission and worker events land in
    /// per-thread ring buffers, the template cache and snapshot pool
    /// record their hit/miss counters, and every report carries a
    /// [`RequestTimeline`]. Tracing is strictly observational: verdicts,
    /// fold order and cached bytes are bit-identical to an untraced
    /// server (pinned by the `trace_parity` proptest).
    pub fn tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// Installs a deterministic fault-injection plan from the start
    /// (equivalent to building and then calling
    /// [`ObligationServer::set_fault_plan`]). A test/bench seam; the
    /// default plan is empty.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Starts the server: spawns `config.workers` persistent worker
    /// threads against the shared caches.
    pub fn build(self) -> ObligationServer {
        ObligationServer::start(
            self.config,
            self.tracer.unwrap_or_else(Tracer::disabled),
            self.fault_plan,
        )
    }
}

impl ObligationServer {
    /// A [`ServerBuilder`] with every axis at its default.
    pub fn builder() -> ServerBuilder {
        ServerBuilder::new()
    }

    /// Starts a server with `config.workers` persistent worker threads
    /// and tracing disabled (the zero-overhead default).
    #[deprecated(
        since = "0.2.0",
        note = "use `ObligationServer::builder().config(..).build()`"
    )]
    pub fn new(config: ServeConfig) -> Self {
        Self::start(config, Tracer::disabled(), FaultPlan::default())
    }

    /// Starts a server recording into `tracer`.
    #[deprecated(
        since = "0.2.0",
        note = "use `ObligationServer::builder().config(..).tracer(..).build()`"
    )]
    pub fn new_traced(config: ServeConfig, tracer: Tracer) -> Self {
        Self::start(config, tracer, FaultPlan::default())
    }

    /// The single construction path behind [`ServerBuilder::build`] and
    /// the deprecated constructor shims.
    fn start(config: ServeConfig, tracer: Tracer, fault_plan: FaultPlan) -> Self {
        let config = ServeConfig {
            workers: config.workers.max(1),
            queue_capacity: config.queue_capacity.max(1),
            ..config
        };
        let deques: Vec<Worker<Job>> = (0..config.workers).map(|_| Worker::new_lifo()).collect();
        let stealers = deques.iter().map(Worker::stealer).collect();
        let admission = tracer.register();
        let inner = Arc::new(Inner {
            config,
            templates: TemplateCache::with_tracer(config.template_capacity, &tracer),
            snapshots: SnapshotPool::with_tracer(config.snapshot_per_key, &tracer),
            verdicts: Mutex::new(VerdictCache::default()),
            injector: Injector::new(),
            stealers,
            state: Mutex::new(PoolState::default()),
            work: Condvar::new(),
            space: Condvar::new(),
            stats: Mutex::new(ServeStats::default()),
            fault_plan: Mutex::new(fault_plan),
            shutting_down: AtomicBool::new(false),
            tracer,
            admission,
            request_seq: AtomicU64::new(0),
        });
        let workers = deques
            .into_iter()
            .enumerate()
            .map(|(me, local)| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&inner, &local, me))
            })
            .collect();
        Self { inner, workers }
    }

    /// Serves one request to completion: decomposes it into obligations,
    /// answers duplicates from the verdict cache, batches the remaining
    /// admissions per template, drains them through the pool (blocking on
    /// the queue bound), and folds the verdicts in obligation-index
    /// order.
    ///
    /// # Errors
    /// [`ServeError::Core`] when decomposition or encoding fails;
    /// [`ServeError::EmptyRequest`] when the request holds no risk
    /// conditions or regions.
    pub fn serve(&self, request: &VerificationRequest) -> Result<RequestReport, ServeError> {
        self.serve_with_prefill(request, &[])
    }

    /// [`ObligationServer::serve`] with a set of pre-decided verdicts: each
    /// `(index, verdict)` pair is written into the request state before
    /// admission, so the obligation is neither dedup-checked nor solved.
    /// This is the execution half of delta-verification
    /// ([`ObligationServer::serve_delta`]): planner-approved reuse and
    /// absorption verdicts are prefilled, everything else flows through
    /// the ordinary admission path (dedup cache, batched bounds, pool).
    ///
    /// Prefilled outcomes report `deduped: false` — they were answered by
    /// the delta plan, not the verdict cache. Out-of-range indices and
    /// duplicates are ignored (first write wins). An expired deadline
    /// still degrades the *whole* request, prefill included.
    pub(crate) fn serve_with_prefill(
        &self,
        request: &VerificationRequest,
        prefill: &[(usize, Verdict)],
    ) -> Result<RequestReport, ServeError> {
        let started = Instant::now();
        let request_seq = self.inner.request_seq.fetch_add(1, Ordering::Relaxed) + 1;
        let rtrace = self.inner.admission.tagged(request_seq, NO_OBLIGATION);
        let trace_began = rtrace.now_ns();
        // The deadline budget covers the whole request, decomposition
        // included, measured on the monotonic clock from entry.
        let cancel = request.deadline.map(CancelToken::with_deadline);
        let groups = request.decompose()?;
        let total: usize = groups.iter().map(|g| g.obligations.len()).sum();
        if total == 0 {
            return Err(ServeError::EmptyRequest);
        }
        rtrace.event(TraceEvent::instant(
            EventKind::RequestBegin,
            trace_began,
            total as u64,
        ));

        // Already expired: degrade every obligation without a single
        // solver invocation — a complete report, not an error.
        if cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
            return Ok(self.serve_expired(request, &groups, total, started, &rtrace));
        }

        let state = Arc::new(RequestState {
            outcomes: Mutex::new((0..total).map(|_| None).collect()),
            remaining: Mutex::new(0),
            done: Condvar::new(),
        });

        // Planner-decided verdicts land first; admission skips any slot
        // that is already filled.
        let mut prefilled = vec![false; total];
        if !prefill.is_empty() {
            let mut outcomes = lock(&state.outcomes);
            for (index, verdict) in prefill {
                if *index < total && outcomes[*index].is_none() {
                    outcomes[*index] = Some(WorkerOutcome {
                        verdict: verdict.clone(),
                        solve_ns: 0,
                        stats: SolveStats::default(),
                    });
                    prefilled[*index] = true;
                }
            }
        }

        // Admission: per template group, dedup first, then one batched
        // bound sweep over the surviving sibling boxes, then enqueue.
        let mut coordinates = Vec::with_capacity(total);
        let mut deduped = vec![false; total];
        let mut jobs = Vec::new();
        let mut dedup_hits = 0u64;
        for group in &groups {
            let (group_jobs, group_dedups) =
                self.admit_group(group, &state, cancel.as_ref(), request_seq, &rtrace)?;
            dedup_hits += group_dedups;
            jobs.extend(group_jobs);
            for obligation in &group.obligations {
                coordinates.push((obligation.family, obligation.shard, obligation.sub_box));
            }
        }
        {
            // Dedup answers were written straight into `outcomes`; mark
            // which indices they were (prefilled slots are also filled,
            // but their verdicts came from the delta plan, not the cache).
            let outcomes = lock(&state.outcomes);
            for (index, slot) in outcomes.iter().enumerate() {
                if slot.is_some() && !prefilled[index] {
                    deduped[index] = true;
                }
            }
        }
        *lock(&state.remaining) = jobs.len();

        self.enqueue_with_backpressure(jobs, &rtrace);

        // Wait for the pool to drain this request.
        {
            let mut remaining = lock(&state.remaining);
            while *remaining > 0 {
                remaining = wait(&state.done, remaining);
            }
        }

        let mut outcomes = Vec::with_capacity(total);
        {
            let mut slots = lock(&state.outcomes);
            for (index, slot) in slots.iter_mut().enumerate() {
                // A lost slot is an accounting bug, not a reason to crash
                // the submitter: report it as a degraded outcome with a
                // stable code and let the siblings' verdicts stand.
                let outcome = slot.take().unwrap_or_else(|| WorkerOutcome {
                    verdict: Verdict::Unknown(FailureReason::SlotLost.code().to_string()),
                    solve_ns: 0,
                    stats: SolveStats::default(),
                });
                let (family, shard, sub_box) = coordinates[index];
                outcomes.push(ObligationOutcome {
                    index,
                    family,
                    shard,
                    sub_box,
                    verdict: outcome.verdict,
                    deduped: deduped[index],
                    solve_ns: outcome.solve_ns,
                    stats: outcome.stats,
                });
            }
        }

        let verdicts = fold_families(request, &outcomes);
        bump(
            &self.inner.stats,
            &ServeStats {
                requests: 1,
                obligations: total as u64,
                dedup_hits,
                ..ServeStats::default()
            },
        );
        rtrace.add(CounterId::Requests, 1);
        rtrace.add(CounterId::Obligations, total as u64);
        if rtrace.is_enabled() {
            rtrace.event(TraceEvent::span(
                EventKind::RequestEnd,
                trace_began,
                rtrace.now_ns().saturating_sub(trace_began),
                total as u64,
            ));
        }
        Ok(RequestReport {
            verdicts,
            obligations: outcomes,
            seconds: started.elapsed().as_secs_f64(),
            stats: self.stats(),
            timeline: self.request_timeline(request_seq),
        })
    }

    /// The per-request timeline attached to a report: reconstructed from
    /// a fresh trace snapshot when tracing is enabled, `None` otherwise.
    fn request_timeline(&self, request_seq: u64) -> Option<RequestTimeline> {
        if !self.inner.tracer.is_enabled() {
            return None;
        }
        Some(RequestTimeline::from_snapshot(
            &self.inner.tracer.snapshot(),
            request_seq,
        ))
    }

    /// The degraded fast path for a request whose deadline expired before
    /// admission: every obligation reports
    /// `Unknown("deadline-exceeded")`, the solver pool is never touched
    /// (`solved` does not move), and the report is still complete —
    /// every obligation accounted for, folded in index order.
    fn serve_expired(
        &self,
        request: &VerificationRequest,
        groups: &[ObligationGroup],
        total: usize,
        started: Instant,
        rtrace: &TraceHandle,
    ) -> RequestReport {
        let mut outcomes = Vec::with_capacity(total);
        for group in groups {
            for obligation in &group.obligations {
                outcomes.push(ObligationOutcome {
                    index: obligation.index,
                    family: obligation.family,
                    shard: obligation.shard,
                    sub_box: obligation.sub_box,
                    verdict: Verdict::Unknown(FailureReason::DeadlineExceeded.code().to_string()),
                    deduped: false,
                    solve_ns: 0,
                    stats: SolveStats::default(),
                });
            }
        }
        let verdicts = fold_families(request, &outcomes);
        bump(
            &self.inner.stats,
            &ServeStats {
                requests: 1,
                obligations: total as u64,
                deadline_skipped: total as u64,
                ..ServeStats::default()
            },
        );
        rtrace.add(CounterId::Requests, 1);
        rtrace.add(CounterId::Obligations, total as u64);
        rtrace.add(CounterId::DeadlineSkipped, total as u64);
        rtrace.add(CounterId::DegradedDeadlineExceeded, total as u64);
        RequestReport {
            verdicts,
            obligations: outcomes,
            seconds: started.elapsed().as_secs_f64(),
            stats: self.stats(),
            timeline: None,
        }
    }

    /// Installs the deterministic fault-injection plan consulted (by
    /// global obligation index) on every subsequent solve. A test/bench
    /// seam: the default plan is empty and production callers never need
    /// this. Pass [`FaultPlan::new`] to clear. See [`crate::FaultKind`]
    /// for what each fault does.
    pub fn set_fault_plan(&self, plan: FaultPlan) {
        *lock(&self.inner.fault_plan) = plan;
    }

    /// Dedup + batched admission for one `(family, shard)` group. Cached
    /// verdicts are written straight into the request state; the
    /// remaining obligations come back as enqueueable jobs, box siblings
    /// carrying bounds from a single [`dpv_core::EncodingTemplate::region_bounds_batch`]
    /// sweep.
    fn admit_group(
        &self,
        group: &ObligationGroup,
        state: &Arc<RequestState>,
        cancel: Option<&CancelToken>,
        request_seq: u64,
        rtrace: &TraceHandle,
    ) -> Result<(Vec<Job>, u64), ServeError> {
        let template = self
            .inner
            .templates
            .get_or_build(&group.problem, &group.root)?;
        let template_fp = template.fingerprint();

        let mut pending: Vec<(&Obligation, (Fingerprint, Fingerprint))> = Vec::new();
        let mut dedup_hits = 0u64;
        {
            let verdicts = lock(&self.inner.verdicts);
            let mut outcomes = lock(&state.outcomes);
            for obligation in &group.obligations {
                // Prefilled (delta-plan) slots are already answered; they
                // bypass the dedup cache and never become jobs.
                if outcomes[obligation.index].is_some() {
                    continue;
                }
                let key = (template_fp, Fingerprint::of_region(&obligation.region));
                match verdicts.get(&key) {
                    Some(verdict) => {
                        dedup_hits += 1;
                        if rtrace.is_enabled() {
                            let mut event =
                                TraceEvent::instant(EventKind::DedupHit, rtrace.now_ns(), 0);
                            event.obligation = obligation.index as u64;
                            rtrace.event(event);
                        }
                        rtrace.add(CounterId::DedupHits, 1);
                        outcomes[obligation.index] = Some(WorkerOutcome {
                            verdict,
                            solve_ns: 0,
                            stats: SolveStats::default(),
                        });
                    }
                    None => pending.push((obligation, key)),
                }
            }
        }

        // One SoA sweep for every surviving box sibling of the group
        // (bit-identical to per-region propagation, so instantiation is
        // unchanged — only cheaper).
        let boxes: Vec<&BoxDomain> = pending
            .iter()
            .filter_map(|(o, _)| match &o.region {
                StartRegion::Box(b) if template.encoding().supports_box(b) => Some(b),
                _ => None,
            })
            .collect();
        let mut batched: VecDeque<RegionBounds> = if boxes.len() > 1 {
            template.encoding().region_bounds_batch(&boxes)?.into()
        } else {
            VecDeque::new()
        };

        let jobs = pending
            .into_iter()
            .map(|(obligation, dedup_key)| {
                let bounds = match &obligation.region {
                    StartRegion::Box(b)
                        if !batched.is_empty() && template.encoding().supports_box(b) =>
                    {
                        batched.pop_front()
                    }
                    _ => None,
                };
                Job {
                    index: obligation.index,
                    template: Arc::clone(&template),
                    problem: Arc::clone(&obligation.problem),
                    region: obligation.region.clone(),
                    bounds,
                    dedup_key,
                    request: Arc::clone(state),
                    cancel: cancel.cloned(),
                    request_seq,
                    enqueued_at_ns: 0,
                }
            })
            .collect();
        Ok((jobs, dedup_hits))
    }

    /// Pushes jobs into the pool, blocking whenever `queue_capacity`
    /// obligations are already in flight — the backpressure contract.
    fn enqueue_with_backpressure(&self, jobs: Vec<Job>, rtrace: &TraceHandle) {
        for mut job in jobs {
            if rtrace.is_enabled() {
                job.enqueued_at_ns = rtrace.now_ns();
                let mut event = TraceEvent::instant(EventKind::Enqueue, job.enqueued_at_ns, 0);
                event.obligation = job.index as u64;
                rtrace.event(event);
            }
            let depth;
            {
                let mut state = lock(&self.inner.state);
                while state.in_flight >= self.inner.config.queue_capacity {
                    state = wait(&self.inner.space, state);
                }
                state.in_flight += 1;
                state.max_in_flight = state.max_in_flight.max(state.in_flight);
                depth = state.in_flight;
                // Push under the lock so sleeping workers cannot miss it.
                self.inner.injector.push(job);
            }
            self.inner.work.notify_one();
            rtrace.gauge(GaugeId::QueueDepth, depth as u64);
        }
    }

    /// A point-in-time statistics snapshot: the merge-based accumulator
    /// plus the live queue-depth and cache readings.
    pub fn stats(&self) -> ServeStats {
        let mut stats = *lock(&self.inner.stats);
        {
            let state = lock(&self.inner.state);
            stats.queue_depth = state.in_flight;
            stats.max_queue_depth = state.max_in_flight;
        }
        stats.templates = self.inner.templates.stats();
        stats.snapshots = self.inner.snapshots.stats();
        stats
    }

    /// A full export of the server's tracer: counters, gauges,
    /// histograms and every buffered event. Empty (with
    /// `enabled: false`) for servers built without a tracer.
    pub fn trace_snapshot(&self) -> TraceSnapshot {
        self.inner.tracer.snapshot()
    }

    /// The configuration the server was started with.
    pub fn config(&self) -> ServeConfig {
        self.inner.config
    }
}

impl Drop for ObligationServer {
    fn drop(&mut self) {
        self.inner.shutting_down.store(true, Ordering::SeqCst);
        {
            let mut state = lock(&self.inner.state);
            state.shutdown = true;
        }
        self.inner.work.notify_all();
        self.inner.space.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Folds per-obligation verdicts into per-family verdicts in
/// obligation-index order: `Safe` only if every obligation is safe, a
/// counterexample beats a give-up, lowest index wins within each class.
fn fold_families(
    request: &VerificationRequest,
    outcomes: &[ObligationOutcome],
) -> Vec<FamilyVerdict> {
    request
        .risks
        .iter()
        .enumerate()
        .map(|(family, risk)| {
            let mut verdict = Verdict::Safe;
            for outcome in outcomes.iter().filter(|o| o.family == family) {
                match (&verdict, &outcome.verdict) {
                    (_, Verdict::Safe) => {}
                    (Verdict::Safe, other) => verdict = other.clone(),
                    (Verdict::Unknown(_), Verdict::Unsafe(_)) => {
                        verdict = outcome.verdict.clone();
                    }
                    _ => {}
                }
            }
            FamilyVerdict {
                family,
                risk: risk.name().to_string(),
                verdict,
            }
        })
        .collect()
}

/// How many extra jobs a worker pulls from the injector into its local
/// deque per refill, leaving the surplus stealable by idle peers.
const REFILL_BATCH: usize = 4;

fn worker_loop(inner: &Arc<Inner>, local: &Worker<Job>, me: usize) {
    let backend = BranchAndBoundBackend;
    // Each worker thread owns one trace ring buffer for its lifetime.
    let handle = inner.tracer.register();
    // The instantiation scratch is reusable only within one template
    // (content-addressed, so "one template" means one fingerprint).
    let mut scratch: Option<EncodedProblem> = None;
    let mut scratch_fp: Option<Fingerprint> = None;
    while let Some(job) = next_job(inner, local, me) {
        if scratch_fp != Some(job.template.fingerprint()) {
            scratch = None;
            scratch_fp = Some(job.template.fingerprint());
        }
        let outcome = run_job_isolated(inner, &job, &mut scratch, &backend, &handle);
        complete_job(inner, job, outcome, &handle);
    }
}

/// Runs one obligation with panic isolation: a panic anywhere in the
/// solve is caught, the obligation is retried once in place with fresh
/// scratch, and a second panic quarantines it — the obligation reports
/// `Unknown("worker-panic")`, is never written to the verdict cache, and
/// the worker (and every sibling obligation) carries on.
fn run_job_isolated(
    inner: &Arc<Inner>,
    job: &Job,
    scratch: &mut Option<EncodedProblem>,
    backend: &BranchAndBoundBackend,
    handle: &TraceHandle,
) -> WorkerOutcome {
    let trace = handle.tagged(job.request_seq, job.index as u64);
    for attempt in 0..2 {
        match catch_unwind(AssertUnwindSafe(|| {
            run_job(inner, job, scratch, backend, &trace)
        })) {
            Ok(outcome) => return outcome,
            Err(_) => {
                bump(
                    &inner.stats,
                    &ServeStats {
                        worker_panics: 1,
                        ..ServeStats::default()
                    },
                );
                trace.add(CounterId::WorkerPanics, 1);
                // The panic may have unwound mid-instantiation; the
                // scratch is suspect, so the retry starts cold.
                *scratch = None;
                if attempt == 1 {
                    bump(
                        &inner.stats,
                        &ServeStats {
                            quarantined: 1,
                            ..ServeStats::default()
                        },
                    );
                    trace.add(CounterId::Quarantined, 1);
                    trace.add(CounterId::DegradedWorkerPanic, 1);
                }
            }
        }
    }
    WorkerOutcome {
        verdict: Verdict::Unknown(FailureReason::WorkerPanic.code().to_string()),
        solve_ns: 0,
        stats: SolveStats::default(),
    }
}

/// Pops the next job: own deque first (depth-first), then a batched
/// refill from the injector (surplus lands in the local deque where
/// peers can steal it), then a steal from a peer; otherwise sleeps on
/// the work condvar until a push or shutdown.
fn next_job(inner: &Arc<Inner>, local: &Worker<Job>, me: usize) -> Option<Job> {
    loop {
        if let Some(job) = local.pop() {
            return Some(job);
        }
        let mut refilled = false;
        for _ in 0..REFILL_BATCH {
            match inner.injector.steal().success() {
                Some(job) => {
                    local.push(job);
                    refilled = true;
                }
                None => break,
            }
        }
        if refilled {
            // Peers may be sleeping while stealable work sits in our
            // deque; wake them to contend for it.
            inner.work.notify_all();
            continue;
        }
        for (peer, stealer) in inner.stealers.iter().enumerate() {
            if peer == me {
                continue;
            }
            if let Some(job) = stealer.steal().success() {
                return Some(job);
            }
        }
        let state = lock(&inner.state);
        if state.shutdown {
            return None;
        }
        // Re-check under the lock: every push happens while holding it,
        // so "still empty here" cannot race a missed notification.
        if inner.injector.is_empty() && inner.stealers.iter().all(Stealer::is_empty) {
            drop(wait(&inner.work, state));
        }
    }
}

/// The deterministic [`MilpSolution`] an injected iteration-budget
/// exhaustion reports, independent of the real solver's state.
fn exhausted_solution() -> MilpSolution {
    MilpSolution {
        status: MilpStatus::IterationLimit,
        values: Vec::new(),
        objective: 0.0,
        stats: SolveStats::default(),
    }
}

/// A basis snapshot from a foreign, tiny LP — structurally unrelated to
/// any obligation encoding, so the LP layer's guard must reject it and
/// degrade the solve to cold rather than produce a wrong verdict.
fn foreign_snapshot() -> Option<dpv_lp::BasisSnapshot> {
    let mut lp = LinearProgram::new();
    let x = lp.add_variable(0.0, 5.0);
    let y = lp.add_variable(0.0, 5.0);
    lp.set_objective(&[(x, 1.0), (y, 1.0)], true);
    lp.add_constraint(&[(x, 1.0), (y, 2.0)], ConstraintOp::Le, 4.0);
    let (_, snapshot) = lp.solve_with_snapshot();
    snapshot
}

/// Solves one obligation with every reuse lever plus the resilience
/// policy, in this order:
///
/// 1. **deadline gate** — an expired request deadline skips the solve
///    outright (`Unknown("deadline-exceeded")`, no solver invocation);
/// 2. **fault injection** — the obligation's planned fault (if any)
///    fires: panic, delay, injected exhaustion, or snapshot poisoning;
/// 3. **seeded solve** — with the request's cancel token polled between
///    simplex pivots and branch-and-bound nodes;
/// 4. **escalated retry** — a node-/iteration-limit outcome is retried
///    once on a cold solver with `ESCALATION_SCALE`× budgets before
///    degrading;
/// 5. **canonicalisation** — counterexamples found by a *seeded* solve
///    are re-solved unseeded so the reported verdict is a pure function
///    of the obligation, not of the pool's warm-start state (statuses
///    are already path-invariant; vertex coordinates are not);
/// 6. **degraded rewrite** — leftover Cancelled/NodeLimit/IterationLimit
///    statuses become stable [`FailureReason`] codes, and degraded
///    outcomes are *never* written to the verdict cache.
fn run_job(
    inner: &Arc<Inner>,
    job: &Job,
    scratch: &mut Option<EncodedProblem>,
    backend: &BranchAndBoundBackend,
    trace: &TraceHandle,
) -> WorkerOutcome {
    let started = Instant::now();
    if trace.is_enabled() {
        let now = trace.now_ns();
        let queue_wait = now.saturating_sub(job.enqueued_at_ns);
        trace.event(TraceEvent::instant(EventKind::Dequeue, now, queue_wait));
        trace.observe(HistogramId::QueueWaitNs, queue_wait);
    }
    if job.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
        return deadline_skip(inner, trace, 0);
    }
    let fault = lock(&inner.fault_plan).fault_at(job.index);
    match fault {
        // Injected before the snapshot checkout, so a panicking
        // obligation can never leak a checked-out basis.
        Some(FaultKind::Panic) => panic!("injected fault: panic at obligation {}", job.index),
        Some(FaultKind::Delay { millis }) => {
            std::thread::sleep(std::time::Duration::from_millis(millis));
            if job.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
                return deadline_skip(inner, trace, started.elapsed().as_nanos());
            }
        }
        _ => {}
    }
    let template_fp = job.template.fingerprint();
    let cancel = job.cancel.as_ref();

    // Injected exhaustion replaces the real solve (and the seed checkout
    // with it) by a deterministic IterationLimit outcome.
    let injected_exhaust = matches!(
        fault,
        Some(FaultKind::ExhaustIterations | FaultKind::TransientExhaust)
    );
    let (mut verdict, mut solution, was_seeded) = if injected_exhaust {
        (
            Verdict::Unknown(FailureReason::IterationLimit.code().to_string()),
            exhausted_solution(),
            false,
        )
    } else {
        let mut seed = inner.snapshots.check_out(template_fp);
        if matches!(fault, Some(FaultKind::PoisonSnapshot)) {
            seed = foreign_snapshot();
        }
        let was_seeded = seed.is_some();
        let attempt_started = trace.now_ns();
        let solved = job.problem.solve_with_template(
            &job.template,
            &job.region,
            &mut SolveOptions::new()
                .bounds(job.bounds.as_ref())
                .scratch(scratch)
                .seed(&mut seed)
                .cancel(cancel)
                .backend(backend)
                .tracer(trace),
        );
        if trace.is_enabled() {
            trace.event(TraceEvent::span(
                EventKind::SolveAttempt,
                attempt_started,
                trace.now_ns().saturating_sub(attempt_started),
                u64::from(was_seeded),
            ));
        }
        let (verdict, solution) = match solved {
            Ok(pair) => pair,
            Err(e) => {
                return WorkerOutcome {
                    verdict: Verdict::Unknown(format!("obligation failed: {e}")),
                    solve_ns: started.elapsed().as_nanos(),
                    stats: SolveStats::default(),
                }
            }
        };
        if let Some(basis) = seed.take() {
            inner.snapshots.check_in(template_fp, basis);
        }
        (verdict, solution, was_seeded)
    };

    // One escalated retry for budget-exhausted solves: cold, unseeded,
    // raised budgets (restored afterwards), so a successful retry is
    // bit-identical to the canonical fault-free verdict. A persistent
    // injected exhaustion (`ExhaustIterations`) exhausts the retry too.
    let mut retry_adopted = false;
    if matches!(
        solution.status,
        MilpStatus::NodeLimit | MilpStatus::IterationLimit
    ) {
        bump(
            &inner.stats,
            &ServeStats {
                retries: 1,
                ..ServeStats::default()
            },
        );
        trace.add(CounterId::Retries, 1);
        if !matches!(fault, Some(FaultKind::ExhaustIterations)) {
            let retry_started = trace.now_ns();
            let retried = job.problem.solve_with_template(
                &job.template,
                &job.region,
                &mut SolveOptions::new()
                    .bounds(job.bounds.as_ref())
                    .scratch(scratch)
                    .escalation(ESCALATION_SCALE)
                    .cancel(cancel)
                    .backend(backend)
                    .tracer(trace),
            );
            if trace.is_enabled() {
                trace.event(TraceEvent::span(
                    EventKind::EscalatedRetry,
                    retry_started,
                    trace.now_ns().saturating_sub(retry_started),
                    ESCALATION_SCALE as u64,
                ));
            }
            if let Ok((retry_verdict, retry_solution)) = retried {
                if matches!(
                    retry_solution.status,
                    MilpStatus::Optimal | MilpStatus::Infeasible | MilpStatus::Unbounded
                ) {
                    bump(
                        &inner.stats,
                        &ServeStats {
                            retry_successes: 1,
                            ..ServeStats::default()
                        },
                    );
                    trace.add(CounterId::RetrySuccesses, 1);
                    verdict = retry_verdict;
                    solution = retry_solution;
                    retry_adopted = true;
                }
            }
        }
    }

    // The escalated retry is already cold and unseeded, hence canonical.
    if was_seeded && !retry_adopted && verdict.is_unsafe() {
        let canonical_started = trace.now_ns();
        let resolved = job.problem.solve_with_template(
            &job.template,
            &job.region,
            &mut SolveOptions::new()
                .bounds(job.bounds.as_ref())
                .scratch(scratch)
                .cancel(cancel)
                .backend(backend)
                .tracer(trace),
        );
        if trace.is_enabled() {
            trace.event(TraceEvent::span(
                EventKind::CanonicalResolve,
                canonical_started,
                trace.now_ns().saturating_sub(canonical_started),
                0,
            ));
        }
        if let Ok((canonical_verdict, canonical_solution)) = resolved {
            verdict = canonical_verdict;
            solution = canonical_solution;
            bump(
                &inner.stats,
                &ServeStats {
                    canonical_resolves: 1,
                    ..ServeStats::default()
                },
            );
            trace.add(CounterId::CanonicalResolves, 1);
        }
    }

    // Rewrite leftover degraded statuses to stable machine-readable
    // codes (in this server, cancellation only ever means a request
    // deadline), and keep degraded outcomes out of the dedup cache so
    // they can never shadow a future clean solve.
    let degraded = match solution.status {
        MilpStatus::Cancelled => Some(FailureReason::DeadlineExceeded),
        MilpStatus::NodeLimit => Some(FailureReason::NodeLimit),
        MilpStatus::IterationLimit => Some(FailureReason::IterationLimit),
        _ => None,
    };
    if let Some(reason) = degraded {
        verdict = Verdict::Unknown(reason.code().to_string());
        trace.add(CounterId::for_failure_code(reason.code()), 1);
    } else {
        lock(&inner.verdicts).insert(
            inner.config.verdict_capacity,
            job.dedup_key,
            verdict.clone(),
        );
    }
    WorkerOutcome {
        verdict,
        solve_ns: started.elapsed().as_nanos(),
        stats: solution.stats,
    }
}

/// The degraded outcome of an obligation whose request deadline expired
/// before (or while) the worker picked it up.
fn deadline_skip(inner: &Arc<Inner>, trace: &TraceHandle, solve_ns: u128) -> WorkerOutcome {
    bump(
        &inner.stats,
        &ServeStats {
            deadline_skipped: 1,
            ..ServeStats::default()
        },
    );
    trace.add(CounterId::DeadlineSkipped, 1);
    trace.add(CounterId::DegradedDeadlineExceeded, 1);
    WorkerOutcome {
        verdict: Verdict::Unknown(FailureReason::DeadlineExceeded.code().to_string()),
        solve_ns,
        stats: SolveStats::default(),
    }
}

/// The trace detail payload of a [`EventKind::Verdict`] event.
fn verdict_class(verdict: &Verdict) -> dpv_trace::VerdictClass {
    match verdict {
        Verdict::Safe => dpv_trace::VerdictClass::Safe,
        Verdict::Unsafe(_) => dpv_trace::VerdictClass::Unsafe,
        Verdict::Unknown(_) => dpv_trace::VerdictClass::Unknown,
    }
}

/// Completion bookkeeping: writes the outcome, releases one unit of
/// queue capacity, and wakes the submitter when its request drained.
fn complete_job(inner: &Arc<Inner>, job: Job, outcome: WorkerOutcome, handle: &TraceHandle) {
    bump(
        &inner.stats,
        &ServeStats {
            solved: 1,
            total_solve_ns: outcome.solve_ns,
            ..ServeStats::default()
        },
    );
    if handle.is_enabled() {
        let trace = handle.tagged(job.request_seq, job.index as u64);
        trace.event(TraceEvent::instant(
            EventKind::Verdict,
            trace.now_ns(),
            verdict_class(&outcome.verdict) as u64,
        ));
        trace.observe(
            HistogramId::SolveNs,
            u64::try_from(outcome.solve_ns).unwrap_or(u64::MAX),
        );
        if let Some(margin) = job.cancel.as_ref().and_then(CancelToken::remaining) {
            trace.observe(
                HistogramId::DeadlineMarginNs,
                u64::try_from(margin.as_nanos()).unwrap_or(u64::MAX),
            );
        }
    }
    lock(&job.request.outcomes)[job.index] = Some(outcome);
    // Release the queue slot before marking the request drained, so a
    // submitter woken by `done` observes the freed capacity.
    let depth;
    {
        let mut state = lock(&inner.state);
        state.in_flight -= 1;
        depth = state.in_flight;
    }
    handle.gauge(GaugeId::QueueDepth, depth as u64);
    inner.space.notify_one();
    {
        let mut remaining = lock(&job.request.remaining);
        *remaining -= 1;
        if *remaining == 0 {
            job.request.done.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn shared_plumbing_is_send_and_sync() {
        assert_send_sync::<ProblemTemplate>();
        assert_send_sync::<TemplateCache>();
        assert_send_sync::<SnapshotPool>();
        assert_send_sync::<Fingerprint>();
        assert_send_sync::<Job>();
        assert_send_sync::<Inner>();
        assert_send_sync::<ObligationServer>();
    }

    #[test]
    fn verdict_cache_is_fifo_bounded() {
        let mut cache = VerdictCache::default();
        let keys: Vec<_> = (0..4u64)
            .map(|i| {
                let fp = Fingerprint::of_region(&StartRegion::Box(BoxDomain::uniform(
                    2,
                    -(i as f64) - 1.0,
                    i as f64 + 1.0,
                )));
                (fp, fp)
            })
            .collect();
        for key in &keys {
            cache.insert(2, *key, Verdict::Safe);
        }
        assert!(cache.get(&keys[0]).is_none(), "oldest entries evicted");
        assert!(cache.get(&keys[1]).is_none());
        assert!(cache.get(&keys[2]).is_some());
        assert!(cache.get(&keys[3]).is_some());
        cache.insert(0, keys[0], Verdict::Safe);
        assert!(cache.get(&keys[0]).is_none(), "capacity 0 disables dedup");
    }
}

//! # dpv-serve
//!
//! A **resident obligation server** for tail-network verification: a
//! long-lived process component that accepts verification requests (tail
//! network × risk-property family × characterizer × region, optionally
//! sharded), decomposes each request into proof obligations
//! (shard × property-family member × sub-box), and drains the obligations
//! through a persistent work-stealing pool that survives across requests.
//! What makes residency pay is the shared state *between* requests:
//!
//! * a [`dpv_core::TemplateCache`] of [`dpv_core::ProblemTemplate`]s keyed
//!   by canonical structural [`dpv_core::Fingerprint`]s, so a repeat
//!   request re-tightens a cached MILP skeleton instead of re-encoding it;
//! * a [`dpv_core::SnapshotPool`] of rolling
//!   [`dpv_lp::BasisSnapshot`]s, keyed by the same fingerprints, so the
//!   branch-and-bound root LP of a new obligation starts from a basis an
//!   earlier obligation of the *same* template finished with;
//! * a verdict cache for **deduplication**: an obligation whose
//!   `(template, sub-region)` fingerprint pair was already solved returns
//!   the recorded verdict without touching the solver.
//!
//! ## Cache-key scheme
//!
//! Every key is built from [`dpv_core::Fingerprint`], the 128-bit
//! content hash of the encoding inputs (tail layers, characterizer
//! network, risk inequalities, root region geometry — cosmetic names
//! excluded):
//!
//! | cache             | key                                               |
//! |-------------------|---------------------------------------------------|
//! | template cache    | `Fingerprint::of_template(tail, char, risk, root)` |
//! | snapshot pool     | the owning template's fingerprint                  |
//! | verdict (dedup)   | `(template fingerprint, Fingerprint::of_region)`   |
//!
//! Keying the snapshot pool by the *template* fingerprint is load-bearing
//! for soundness hygiene: the LP layer's structural check cannot tell two
//! feasibility problems apart when they differ only in a constraint
//! right-hand side (all-zero objective), so the pool never offers a basis
//! across template boundaries in the first place — the LP layer's
//! primal/Farkas validation remains the backstop, degrading a stale seed
//! to a cold solve rather than a wrong verdict.
//!
//! ## Eviction policy
//!
//! The template cache evicts least-recently-used whole templates once
//! `template_capacity` is exceeded. The snapshot pool keeps at most
//! `snapshot_per_key` bases per template and discards surplus check-ins.
//! The verdict cache evicts in FIFO (insertion) order past
//! `verdict_capacity` entries. All three are bounded so a resident server
//! cannot grow without limit across requests.
//!
//! ## Backpressure contract
//!
//! At most `queue_capacity` obligations are in flight (admitted to the
//! pool and not yet completed) at any moment.
//! [`ObligationServer::serve`] **blocks** while the queue is full and
//! admits the next obligation only when a worker completes one — a
//! bounded queue, not load shedding: no obligation is ever dropped, and a
//! burst of requests slows the submitters down instead of exhausting
//! memory.
//!
//! ## Determinism
//!
//! Workers race, caches warm up, seeds come and go — yet the *verdicts*
//! of a request are a pure function of the request: results are folded in
//! obligation-index order (lowest-index counterexample beats lowest-index
//! give-up, as in [`dpv_core::VerificationProblem::verify_sharded_with`]),
//! and any obligation whose seeded solve finds a counterexample is
//! re-solved unseeded so the reported point never depends on pool state
//! (see [`ServeStats::canonical_resolves`]). Timings and solver statistics
//! are explicitly *not* part of the deterministic surface.
//!
//! ## Failure-reason taxonomy
//!
//! An obligation the server could not answer definitively reports
//! [`dpv_core::Verdict::Unknown`] whose payload is one of the stable
//! machine-readable codes of [`FailureReason`]:
//!
//! | code                 | meaning                                            |
//! |----------------------|----------------------------------------------------|
//! | `deadline-exceeded`  | the request deadline expired before/during a solve |
//! | `worker-panic`       | the obligation panicked twice and was quarantined  |
//! | `iteration-limit`    | simplex budget exhausted, even after escalation    |
//! | `node-limit`         | branch-and-bound budget exhausted after escalation |
//! | `slot-lost`          | internal accounting bug (reported, never a crash)  |
//!
//! Match on the code, not on prose: codes are exact `Unknown` payloads
//! and parseable back via [`FailureReason::of`]. Degraded outcomes are
//! **never** written to the verdict cache, so a later identical
//! obligation gets a fresh chance at a definitive verdict.
//!
//! ## Retry and quarantine policy
//!
//! * A solve that exhausts its node or iteration budget is retried
//!   **once**, on a cold unseeded solver with budgets raised 4× (and
//!   restored afterwards), before degrading — so a transient exhaustion
//!   caused by a stale warm-start cannot produce a spurious give-up, and
//!   a successful retry is bit-identical to the canonical fault-free
//!   verdict ([`ServeStats::retries`], [`ServeStats::retry_successes`]).
//! * A worker panic while solving is caught; the obligation is retried
//!   **once** in place with fresh scratch, and a second panic
//!   quarantines it: verdict `Unknown("worker-panic")`, never cached,
//!   never retried again. The worker thread and every sibling obligation
//!   survive ([`ServeStats::worker_panics`], [`ServeStats::quarantined`]).
//!
//! ## Cancellation guarantees
//!
//! A request's optional [`VerificationRequest::deadline`] becomes a
//! [`dpv_lp::CancelToken`] polled cooperatively between simplex pivots
//! and branch-and-bound nodes. On expiry: an un-started obligation is
//! skipped without touching the solver; an in-flight solve returns
//! promptly with its incumbent discarded into `deadline-exceeded`;
//! **already-computed verdicts are never lost** — the report is always
//! complete, with every obligation either definitively answered or
//! carrying a degraded code. A request whose deadline has already
//! expired on arrival returns immediately with zero solver invocations.
//!
//! ## Fault injection
//!
//! [`ObligationServer::set_fault_plan`] installs a deterministic
//! [`FaultPlan`] (obligation index → [`FaultKind`]) used by the
//! resilience tests and benches; reports are pure functions of
//! `(request, plan)`, and obligations a plan does not touch are
//! bit-identical to the fault-free run.
//!
//! ## Delta verification
//!
//! [`ObligationServer::serve_delta`] serves a request as a **delta** over
//! a prior run of the same specification on a different perception
//! checkpoint: the two checkpoints are diffed per layer
//! ([`dpv_delta::CheckpointDiff`]), obligations whose tail is untouched
//! reuse the prior verdict verbatim and tail perturbations provably inside
//! the bound slack reuse prior `Safe` verdicts by absorption
//! ([`dpv_delta::DeltaPlanner`]); only the remainder is re-solved — warm
//! on the resident caches. The [`ProofDeltaReport`] carries a
//! [`dpv_delta::Disposition`] per obligation (reused / absorbed /
//! re-proved / newly-degraded) and is **bit-for-bit equal** to a
//! from-scratch serve of the same request (the `delta` parity proptest
//! pins this; the soundness argument lives on the `dpv_delta` crate
//! root).
//!
//! ## Observability
//!
//! A server built with [`ServerBuilder::tracer`] over an enabled
//! [`dpv_trace::Tracer`] records per-obligation timelines
//! (enqueue → dequeue → solve attempts → verdict), typed counters and
//! latency histograms into lock-free per-thread ring buffers;
//! [`ObligationServer::trace_snapshot`] exports everything and each
//! [`RequestReport`] carries a [`RequestTimeline`]. A default build
//! (`ObligationServer::builder().build()`) serves with tracing disabled,
//! where every recording call is a single branch on an absent `Option`.
//! Tracing is strictly observational — enabling it changes no verdict,
//! fold order or cached byte (the `trace_parity` proptest pins this).
#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]

mod delta;
mod fault;
mod request;
mod server;
mod stats;
mod timeline;

pub use delta::{DeltaCounts, ProofDeltaReport};
pub use fault::{FailureReason, FaultKind, FaultPlan};
pub use request::{RegionSpec, VerificationRequest};
pub use server::{
    FamilyVerdict, ObligationOutcome, ObligationServer, RequestReport, ServeConfig, ServeError,
    ServerBuilder,
};
pub use stats::ServeStats;
pub use timeline::{AttemptSpan, ObligationTimeline, RequestTimeline};

//! Delta-verification serving: executing a [`dpv_delta::DeltaPlan`]
//! against the resident server.
//!
//! [`ObligationServer::serve_delta`] takes the *prior* request/report pair
//! and the *new* request (same cut layer, characterizer and risk family —
//! only the perception checkpoint may differ), diffs the two checkpoints
//! ([`dpv_delta::CheckpointDiff`]), plans per-obligation reuse
//! ([`dpv_delta::DeltaPlanner`]) and serves the remainder through the
//! ordinary admission path with the reused verdicts prefilled. The result
//! is a [`ProofDeltaReport`]: a complete [`RequestReport`] plus a
//! machine-checkable [`Disposition`] per obligation stating *why* each
//! verdict holds for the new checkpoint.
//!
//! Soundness and the bit-for-bit parity guarantee (delta verdicts equal a
//! from-scratch run's verdicts) are argued on the
//! [`dpv_delta` crate root](dpv_delta); the `delta` parity proptest in
//! this crate pins them.

use dpv_core::{CoreError, StartRegion, Verdict};
use dpv_delta::{
    CheckpointDiff, DeltaPlanner, Disposition, ModelFingerprint, PlannedAction, PriorObligation,
};

use crate::request::VerificationRequest;
use crate::server::{ObligationServer, RequestReport, ServeError};

/// Summary counts of a [`ProofDeltaReport`], one per [`Disposition`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DeltaCounts {
    /// Obligations whose prior verdict carried over verbatim.
    pub reused: usize,
    /// Obligations whose prior `Safe` verdict carried over by absorption.
    pub absorbed: usize,
    /// Obligations re-solved to a definitive verdict.
    pub re_proved: usize,
    /// Obligations that ended `Unknown` in the delta run.
    pub newly_degraded: usize,
}

/// The result of a delta-verification run: the full request report plus a
/// per-obligation provenance trail.
///
/// The `report` is deterministic in the same sense as
/// [`ObligationServer::serve`]'s — and, by the delta soundness argument,
/// bit-for-bit equal to what a from-scratch serve of the same request
/// would produce. The dispositions are the machine-checkable part: an
/// auditor can re-derive every `Reused` stamp from the two checkpoints'
/// fingerprints and every `Absorbed` stamp from the weight-hull interval
/// check, without re-running any solver.
#[derive(Debug, Clone)]
pub struct ProofDeltaReport {
    /// The complete report for the new checkpoint, indistinguishable from
    /// a from-scratch serve.
    pub report: RequestReport,
    /// Why each obligation's verdict holds, in obligation-index order.
    pub dispositions: Vec<Disposition>,
    /// Fingerprint of the prior checkpoint (what `Reused` verdicts were
    /// originally proved against).
    pub prior_fingerprint: ModelFingerprint,
    /// Fingerprint of the new checkpoint this report certifies.
    pub fingerprint: ModelFingerprint,
}

impl ProofDeltaReport {
    /// Disposition tallies.
    pub fn counts(&self) -> DeltaCounts {
        let mut counts = DeltaCounts::default();
        for d in &self.dispositions {
            match d {
                Disposition::Reused { .. } => counts.reused += 1,
                Disposition::Absorbed => counts.absorbed += 1,
                Disposition::ReProved => counts.re_proved += 1,
                Disposition::NewlyDegraded => counts.newly_degraded += 1,
            }
        }
        counts
    }

    /// Fraction of obligations answered without solving (reused or
    /// absorbed), in permille. Zero for an empty report.
    pub fn reuse_rate_permille(&self) -> u64 {
        let total = self.dispositions.len();
        if total == 0 {
            return 0;
        }
        let counts = self.counts();
        (((counts.reused + counts.absorbed) * 1000) / total) as u64
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        let c = self.counts();
        format!(
            "delta {} -> {}: {} reused, {} absorbed, {} re-proved, {} degraded | {:.3}s",
            self.prior_fingerprint,
            self.fingerprint,
            c.reused,
            c.absorbed,
            c.re_proved,
            c.newly_degraded,
            self.report.seconds
        )
    }
}

/// Per-obligation coordinates and regions of a request, flattened in
/// obligation-index order.
fn flatten(
    request: &VerificationRequest,
) -> Result<Vec<(usize, usize, usize, StartRegion)>, ServeError> {
    let groups = request.decompose()?;
    let mut out = Vec::new();
    for group in &groups {
        for o in &group.obligations {
            debug_assert_eq!(o.index, out.len(), "decompose assigns indices in order");
            out.push((o.family, o.shard, o.sub_box, o.region.clone()));
        }
    }
    Ok(out)
}

fn inconsistent(msg: impl Into<String>) -> ServeError {
    ServeError::Core(CoreError::Inconsistent(msg.into()))
}

impl ObligationServer {
    /// Serves `request` as a **delta** over a prior run: obligations whose
    /// tail is untouched or whose perturbation is provably absorbed by the
    /// bound slack reuse the prior verdict without solving; the rest go
    /// through the ordinary admission path (dedup cache, batched bounds,
    /// warm-started pool).
    ///
    /// `prior_request` must be the request that produced `prior`, and
    /// `request` must agree with it on cut layer, characterizer and risk
    /// family — delta-verification is about a *checkpoint* change, not a
    /// specification change. The region spec may differ (a refit envelope
    /// moves shard regions); moved obligations are simply re-solved.
    ///
    /// # Errors
    /// [`ServeError::Core`] when the requests disagree on anything other
    /// than the perception network and regions, when `prior` does not
    /// match `prior_request`'s decomposition, when the two requests
    /// decompose into different obligation shapes, or when decomposition
    /// itself fails; [`ServeError::EmptyRequest`] as in
    /// [`ObligationServer::serve`].
    pub fn serve_delta(
        &self,
        prior_request: &VerificationRequest,
        prior: &RequestReport,
        request: &VerificationRequest,
    ) -> Result<ProofDeltaReport, ServeError> {
        if prior_request.cut_layer != request.cut_layer {
            return Err(inconsistent("delta request changes the cut layer"));
        }
        if prior_request.characterizer != request.characterizer {
            return Err(inconsistent("delta request changes the characterizer"));
        }
        if prior_request.risks != request.risks {
            return Err(inconsistent("delta request changes the risk family"));
        }

        let prior_shape = flatten(prior_request)?;
        let new_shape = flatten(request)?;
        if prior_shape.len() != prior.obligations.len() {
            return Err(inconsistent(format!(
                "prior report has {} obligations but its request decomposes into {}",
                prior.obligations.len(),
                prior_shape.len()
            )));
        }
        for (o, (family, shard, sub_box, _)) in prior.obligations.iter().zip(&prior_shape) {
            if (o.family, o.shard, o.sub_box) != (*family, *shard, *sub_box) {
                return Err(inconsistent(format!(
                    "prior report obligation {} does not match its request's decomposition",
                    o.index
                )));
            }
        }
        if new_shape.len() != prior_shape.len() {
            return Err(inconsistent(format!(
                "delta request decomposes into {} obligations, prior into {}",
                new_shape.len(),
                prior_shape.len()
            )));
        }
        for (index, (a, b)) in prior_shape.iter().zip(&new_shape).enumerate() {
            if (a.0, a.1, a.2) != (b.0, b.1, b.2) {
                return Err(inconsistent(format!(
                    "obligation {index} changes coordinates across the delta"
                )));
            }
        }

        let diff = CheckpointDiff::between(&prior_request.perception, &request.perception);
        let prior_obligations: Vec<PriorObligation> = prior
            .obligations
            .iter()
            .zip(&prior_shape)
            .map(|(o, (family, _, _, region))| PriorObligation {
                family: *family,
                region: region.clone(),
                verdict: o.verdict.clone(),
            })
            .collect();
        let regions: Vec<StartRegion> = new_shape.into_iter().map(|(_, _, _, r)| r).collect();
        let plan = DeltaPlanner::new()
            .plan(
                &diff,
                request.cut_layer,
                &request.risks,
                &prior_obligations,
                &regions,
            )
            .map_err(|e| inconsistent(e.to_string()))?;

        let prefill: Vec<(usize, Verdict)> = plan
            .actions()
            .iter()
            .enumerate()
            .filter_map(|(index, action)| match action {
                PlannedAction::Reuse => Some((index, prior_obligations[index].verdict.clone())),
                PlannedAction::ReuseAbsorbed => Some((index, Verdict::Safe)),
                PlannedAction::Resolve => None,
            })
            .collect();

        let report = self.serve_with_prefill(request, &prefill)?;

        let prior_fingerprint = diff.old_fingerprint();
        let dispositions = plan
            .actions()
            .iter()
            .zip(&report.obligations)
            .map(|(action, outcome)| match action {
                // An expired deadline degrades prefilled slots too; a
                // reuse stamp is only honest when the prefilled verdict
                // actually survived into the report.
                PlannedAction::Reuse
                    if outcome.verdict == prior.obligations[outcome.index].verdict =>
                {
                    Disposition::Reused { prior_fingerprint }
                }
                PlannedAction::ReuseAbsorbed if outcome.verdict.is_safe() => Disposition::Absorbed,
                _ => {
                    if matches!(outcome.verdict, Verdict::Unknown(_)) {
                        Disposition::NewlyDegraded
                    } else {
                        Disposition::ReProved
                    }
                }
            })
            .collect();

        Ok(ProofDeltaReport {
            report,
            dispositions,
            prior_fingerprint,
            fingerprint: diff.new_fingerprint(),
        })
    }
}

//! Deterministic fault injection and the degraded-verdict taxonomy.
//!
//! The server's resilience tests need faults that are *reproducible*: the
//! same request with the same [`FaultPlan`] must produce bit-identical
//! reports run after run, regardless of worker scheduling. A plan is a
//! plain obligation-index → [`FaultKind`] map injected through
//! [`crate::ObligationServer::set_fault_plan`] — a test-only seam that is
//! a no-op in production use (the default plan is empty).
//!
//! Degraded verdicts carry a machine-readable [`FailureReason`] code as
//! the payload of [`dpv_core::Verdict::Unknown`], so clients (and the
//! fault-injection proptests) can key off a stable string instead of
//! parsing human-facing prose.

use dpv_core::Verdict;

/// What an injected fault does to the obligation it targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The worker panics while solving the obligation — on every
    /// attempt, so after the single in-place retry the obligation is
    /// quarantined with [`FailureReason::WorkerPanic`].
    Panic,
    /// Every solve of the obligation, including the escalated retry,
    /// exhausts its simplex iteration budget. Degrades to
    /// [`FailureReason::IterationLimit`].
    ExhaustIterations,
    /// The first solve exhausts its iteration budget; the escalated
    /// cold retry succeeds, so the final verdict equals the fault-free
    /// one (and `retry_successes` ticks).
    TransientExhaust,
    /// The basis snapshot checked out for the obligation is replaced
    /// with a basis from a foreign, unrelated LP. The LP layer's
    /// structural guard must reject it and fall back to a cold solve —
    /// the verdict is unchanged.
    PoisonSnapshot,
    /// The worker sleeps before solving — for deadline-expiry tests.
    Delay {
        /// Milliseconds to sleep.
        millis: u64,
    },
}

/// A deterministic fault plan: a map from global obligation index to the
/// fault injected when that obligation is solved. Plans are part of the
/// *input* of a served request for determinism purposes: the report is a
/// pure function of `(request, plan)`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<(usize, FaultKind)>,
}

/// `splitmix64` step — a tiny, dependency-free PRNG for seeded plans.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        Self::default()
    }

    /// Injects `kind` at obligation `index`, replacing any fault already
    /// planned there.
    pub fn inject(&mut self, index: usize, kind: FaultKind) -> &mut Self {
        match self.faults.iter_mut().find(|(i, _)| *i == index) {
            Some(slot) => slot.1 = kind,
            None => self.faults.push((index, kind)),
        }
        self
    }

    /// A seeded plan: `count` faults at distinct obligation indices drawn
    /// deterministically from `seed` over `0..total`. The same
    /// `(seed, total, count)` always yields the same plan.
    pub fn from_seed(seed: u64, total: usize, count: usize) -> Self {
        let mut plan = Self::new();
        if total == 0 {
            return plan;
        }
        let mut state = seed;
        let mut placed = 0usize;
        // Bounded probing keeps this total even for pathological counts.
        for _ in 0..count.saturating_mul(8).max(8) {
            if placed >= count.min(total) {
                break;
            }
            let index = (splitmix64(&mut state) % total as u64) as usize;
            if plan.fault_at(index).is_some() {
                continue;
            }
            let kind = match splitmix64(&mut state) % 5 {
                0 => FaultKind::Panic,
                1 => FaultKind::ExhaustIterations,
                2 => FaultKind::TransientExhaust,
                3 => FaultKind::PoisonSnapshot,
                _ => FaultKind::Delay {
                    millis: splitmix64(&mut state) % 3,
                },
            };
            plan.inject(index, kind);
            placed += 1;
        }
        plan
    }

    /// The fault planned at obligation `index`, if any.
    pub fn fault_at(&self, index: usize) -> Option<FaultKind> {
        self.faults
            .iter()
            .find(|(i, _)| *i == index)
            .map(|(_, kind)| *kind)
    }

    /// Number of planned faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the plan holds no faults.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

/// The machine-readable taxonomy of degraded obligation outcomes. Each
/// reason is reported as the exact payload string of
/// [`Verdict::Unknown`] (see [`FailureReason::code`]), so it is stable
/// across releases and safe to match on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureReason {
    /// The request's deadline expired before (or while) the obligation
    /// was solved; the solver was cancelled cooperatively or skipped
    /// outright.
    DeadlineExceeded,
    /// The obligation's worker panicked twice (original attempt plus the
    /// single in-place retry) and the obligation was quarantined.
    WorkerPanic,
    /// The simplex iteration budget was exhausted on the original solve
    /// *and* on the escalated cold retry.
    IterationLimit,
    /// The branch-and-bound node budget was exhausted on the original
    /// solve *and* on the escalated cold retry.
    NodeLimit,
    /// Internal accounting lost the obligation's outcome slot — reported
    /// instead of crashing the submitter. Should never happen; its
    /// presence in a report is a server bug worth filing.
    SlotLost,
}

impl FailureReason {
    /// The stable machine-readable code, used verbatim as the
    /// [`Verdict::Unknown`] payload of degraded outcomes.
    pub fn code(self) -> &'static str {
        match self {
            FailureReason::DeadlineExceeded => "deadline-exceeded",
            FailureReason::WorkerPanic => "worker-panic",
            FailureReason::IterationLimit => "iteration-limit",
            FailureReason::NodeLimit => "node-limit",
            FailureReason::SlotLost => "slot-lost",
        }
    }

    /// Parses the degraded-outcome reason of a verdict: `Some` exactly
    /// when `verdict` is an `Unknown` whose payload is one of the codes
    /// in this taxonomy.
    pub fn of(verdict: &Verdict) -> Option<FailureReason> {
        let Verdict::Unknown(reason) = verdict else {
            return None;
        };
        [
            FailureReason::DeadlineExceeded,
            FailureReason::WorkerPanic,
            FailureReason::IterationLimit,
            FailureReason::NodeLimit,
            FailureReason::SlotLost,
        ]
        .into_iter()
        .find(|candidate| candidate.code() == reason)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_seed_deterministic() {
        let a = FaultPlan::from_seed(42, 16, 4);
        let b = FaultPlan::from_seed(42, 16, 4);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        assert!(a.len() <= 4);
    }

    #[test]
    fn inject_replaces_existing_fault() {
        let mut plan = FaultPlan::new();
        plan.inject(3, FaultKind::Panic);
        plan.inject(3, FaultKind::PoisonSnapshot);
        assert_eq!(plan.len(), 1);
        assert_eq!(plan.fault_at(3), Some(FaultKind::PoisonSnapshot));
        assert_eq!(plan.fault_at(4), None);
    }

    #[test]
    fn empty_universe_yields_empty_plan() {
        assert!(FaultPlan::from_seed(7, 0, 3).is_empty());
    }

    #[test]
    fn failure_reasons_round_trip_through_verdicts() {
        for reason in [
            FailureReason::DeadlineExceeded,
            FailureReason::WorkerPanic,
            FailureReason::IterationLimit,
            FailureReason::NodeLimit,
            FailureReason::SlotLost,
        ] {
            let verdict = Verdict::Unknown(reason.code().to_string());
            assert_eq!(FailureReason::of(&verdict), Some(reason));
        }
        assert_eq!(FailureReason::of(&Verdict::Safe), None);
        assert_eq!(
            FailureReason::of(&Verdict::Unknown("anything else".into())),
            None
        );
    }
}

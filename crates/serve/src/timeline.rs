//! Per-request timelines reconstructed from a [`TraceSnapshot`].
//!
//! A [`RequestTimeline`] is the serve-level view of the trace: the raw
//! per-worker event streams are filtered down to one request's tag,
//! grouped per obligation, and ordered by timestamp. Because the ring
//! buffers are bounded and drop-oldest, every field that depends on a
//! specific event is an `Option` — a dropped `Enqueue` loses the queue
//! wait, not the whole timeline. Timelines are *cost telemetry*: they
//! are never part of the deterministic report surface.

use dpv_trace::{EventKind, TraceEvent, TraceSnapshot, VerdictClass, NO_OBLIGATION};

/// One solver phase of an obligation: instantiation, a solve attempt,
/// an escalated retry or a canonicalising re-solve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttemptSpan {
    /// Which phase this span covers.
    pub kind: EventKind,
    /// Start, in nanoseconds since the tracer's epoch.
    pub at_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Kind-specific payload (e.g. whether a solve attempt was seeded).
    pub detail: u64,
}

/// Everything the trace recorded about one obligation of a request.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ObligationTimeline {
    /// Global obligation index within the request.
    pub index: u64,
    /// When the obligation entered the pool queue.
    pub enqueued_at_ns: Option<u64>,
    /// When a worker picked it up.
    pub dequeued_at_ns: Option<u64>,
    /// Queue wait as recorded by the worker at dequeue.
    pub queue_wait_ns: Option<u64>,
    /// Instantiation / solve / retry / canonicalise spans, in time order.
    pub attempts: Vec<AttemptSpan>,
    /// The verdict class the worker reported.
    pub verdict: Option<VerdictClass>,
    /// Whether the obligation was answered from the dedup cache.
    pub deduped: bool,
}

/// The trace-derived timeline of one served request.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RequestTimeline {
    /// The request's trace tag (a server-local sequence number).
    pub request: u64,
    /// When admission began, in nanoseconds since the tracer's epoch.
    pub began_at_ns: Option<u64>,
    /// End-to-end duration recorded by the admission thread.
    pub duration_ns: Option<u64>,
    /// Per-obligation timelines, sorted by obligation index.
    pub obligations: Vec<ObligationTimeline>,
    /// Events lost to ring-buffer overflow across all workers; when
    /// non-zero, gaps in the timelines are expected.
    pub dropped_events: u64,
}

impl RequestTimeline {
    /// Reconstructs the timeline of request `request` from a snapshot.
    ///
    /// Events carrying a different request tag are ignored; events whose
    /// obligation tag is unset contribute to the request-level fields.
    /// Tolerant of dropped events: missing fields stay `None`.
    pub fn from_snapshot(snapshot: &TraceSnapshot, request: u64) -> Self {
        let mut timeline = RequestTimeline {
            request,
            dropped_events: snapshot.dropped_events(),
            ..RequestTimeline::default()
        };
        let mut events: Vec<&TraceEvent> =
            snapshot.events().filter(|e| e.request == request).collect();
        events.sort_by_key(|e| (e.at_ns, e.obligation, e.kind as u8));
        for event in events {
            match event.kind {
                EventKind::RequestBegin => timeline.began_at_ns = Some(event.at_ns),
                EventKind::RequestEnd => timeline.duration_ns = Some(event.dur_ns),
                _ if event.obligation == NO_OBLIGATION => {}
                EventKind::Enqueue => {
                    timeline.obligation_mut(event.obligation).enqueued_at_ns = Some(event.at_ns);
                }
                EventKind::Dequeue => {
                    let obligation = timeline.obligation_mut(event.obligation);
                    obligation.dequeued_at_ns = Some(event.at_ns);
                    obligation.queue_wait_ns = Some(event.detail);
                }
                EventKind::DedupHit => timeline.obligation_mut(event.obligation).deduped = true,
                EventKind::Verdict => {
                    timeline.obligation_mut(event.obligation).verdict =
                        Some(VerdictClass::from_u64(event.detail));
                }
                EventKind::Instantiate
                | EventKind::SolveAttempt
                | EventKind::EscalatedRetry
                | EventKind::CanonicalResolve => {
                    timeline
                        .obligation_mut(event.obligation)
                        .attempts
                        .push(AttemptSpan {
                            kind: event.kind,
                            at_ns: event.at_ns,
                            dur_ns: event.dur_ns,
                            detail: event.detail,
                        });
                }
                // Sampled solver progress (WarmLp/ColdLp/BnbProgress) is
                // too fine-grained for the per-obligation view.
                _ => {}
            }
        }
        timeline.obligations.sort_by_key(|o| o.index);
        timeline
    }

    fn obligation_mut(&mut self, index: u64) -> &mut ObligationTimeline {
        let position = match self.obligations.iter().position(|o| o.index == index) {
            Some(position) => position,
            None => {
                self.obligations.push(ObligationTimeline {
                    index,
                    ..ObligationTimeline::default()
                });
                self.obligations.len() - 1
            }
        };
        &mut self.obligations[position]
    }

    /// Multi-line human-readable rendering of the timeline.
    pub fn summary(&self) -> String {
        let mut out = format!(
            "request {} | {} obligations | {} dropped events\n",
            self.request,
            self.obligations.len(),
            self.dropped_events
        );
        if let (Some(at), Some(dur)) = (self.began_at_ns, self.duration_ns) {
            out.push_str(&format!("  began +{at}ns, took {dur}ns\n"));
        }
        for obligation in &self.obligations {
            out.push_str(&format!("  obligation {}:", obligation.index));
            if obligation.deduped {
                out.push_str(" deduped");
            }
            if let Some(wait) = obligation.queue_wait_ns {
                out.push_str(&format!(" queued {wait}ns"));
            }
            for attempt in &obligation.attempts {
                out.push_str(&format!(" {} {}ns", attempt.kind.name(), attempt.dur_ns));
            }
            if let Some(verdict) = obligation.verdict {
                out.push_str(&format!(" -> {verdict:?}"));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpv_trace::{TraceConfig, Tracer};

    #[test]
    fn reconstructs_obligation_phases_from_events() {
        let tracer = Tracer::with_config(TraceConfig::default());
        let handle = tracer.register();
        let rtrace = handle.tagged(7, NO_OBLIGATION);
        rtrace.event(TraceEvent::instant(EventKind::RequestBegin, 10, 2));
        let otrace = handle.tagged(7, 0);
        otrace.event(TraceEvent::instant(EventKind::Enqueue, 12, 0));
        otrace.event(TraceEvent::instant(EventKind::Dequeue, 20, 8));
        otrace.event(TraceEvent::span(EventKind::SolveAttempt, 21, 5, 1));
        otrace.event(TraceEvent::instant(EventKind::Verdict, 27, 0));
        let dedup = handle.tagged(7, 1);
        dedup.event(TraceEvent::instant(EventKind::DedupHit, 11, 0));
        // A different request's events must not leak in.
        let other = handle.tagged(8, 0);
        other.event(TraceEvent::instant(EventKind::Enqueue, 13, 0));
        rtrace.event(TraceEvent::span(EventKind::RequestEnd, 10, 30, 2));

        let timeline = RequestTimeline::from_snapshot(&tracer.snapshot(), 7);
        assert_eq!(timeline.request, 7);
        assert_eq!(timeline.began_at_ns, Some(10));
        assert_eq!(timeline.duration_ns, Some(30));
        assert_eq!(timeline.dropped_events, 0);
        assert_eq!(timeline.obligations.len(), 2);
        let solved = &timeline.obligations[0];
        assert_eq!(solved.index, 0);
        assert_eq!(solved.enqueued_at_ns, Some(12));
        assert_eq!(solved.dequeued_at_ns, Some(20));
        assert_eq!(solved.queue_wait_ns, Some(8));
        assert_eq!(solved.attempts.len(), 1);
        assert_eq!(solved.attempts[0].kind, EventKind::SolveAttempt);
        assert_eq!(solved.attempts[0].detail, 1);
        assert_eq!(solved.verdict, Some(VerdictClass::Safe));
        assert!(!solved.deduped);
        let deduped = &timeline.obligations[1];
        assert_eq!(deduped.index, 1);
        assert!(deduped.deduped);
        assert!(deduped.attempts.is_empty());
        assert!(timeline.summary().contains("obligation 0"));
    }

    #[test]
    fn missing_events_leave_options_unset() {
        let tracer = Tracer::with_config(TraceConfig::default());
        let handle = tracer.register();
        let otrace = handle.tagged(3, 5);
        // Only a verdict survived (as if Enqueue/Dequeue were dropped).
        otrace.event(TraceEvent::instant(EventKind::Verdict, 40, 2));
        let timeline = RequestTimeline::from_snapshot(&tracer.snapshot(), 3);
        assert_eq!(timeline.began_at_ns, None);
        assert_eq!(timeline.duration_ns, None);
        assert_eq!(timeline.obligations.len(), 1);
        assert_eq!(timeline.obligations[0].enqueued_at_ns, None);
        assert_eq!(timeline.obligations[0].queue_wait_ns, None);
        assert_eq!(timeline.obligations[0].verdict, Some(VerdictClass::Unknown));
    }

    #[test]
    fn empty_snapshot_yields_empty_timeline() {
        let timeline = RequestTimeline::from_snapshot(&TraceSnapshot::default(), 1);
        assert_eq!(timeline.obligations.len(), 0);
        assert_eq!(timeline.began_at_ns, None);
    }
}

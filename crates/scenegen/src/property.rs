//! Input-property oracles over scene parameters.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::{SceneConfig, SceneParams};

/// The input properties φ considered in the experiments.
///
/// Each property is decidable from the hidden scene parameters; the scene
/// oracle therefore plays the role of the human expert in the paper, who
/// labels images with "the road strongly bends to the right" etc. The
/// trained characterizer only ever sees the *image* (through the perception
/// network's close-to-output activations), never these parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PropertyKind {
    /// The road bends to the right with at least the strong-bend curvature.
    BendsRight,
    /// The road bends to the left with at least the strong-bend curvature.
    BendsLeft,
    /// The road is (nearly) straight.
    Straight,
    /// A traffic participant occupies the adjacent lane. Unrelated to the
    /// affordance output — the information-bottleneck case of experiment E3.
    AdjacentTraffic,
    /// The scene is darker than the lighting threshold (dusk / tunnel).
    LowLight,
    /// A leading vehicle hides at least the configured fraction of the lane
    /// markings ([`SceneConfig::occlusion_threshold`]). Like traffic and
    /// lighting, a nuisance dimension unrelated to the affordance output.
    Occluded,
    /// Rain streaks at or above the configured density
    /// ([`SceneConfig::heavy_rain_threshold`]).
    HeavyRain,
    /// The centre lane marking is rendered dashed instead of solid.
    DashedLane,
}

impl PropertyKind {
    /// All property kinds, in a stable order.
    pub const ALL: [PropertyKind; 8] = [
        PropertyKind::BendsRight,
        PropertyKind::BendsLeft,
        PropertyKind::Straight,
        PropertyKind::AdjacentTraffic,
        PropertyKind::LowLight,
        PropertyKind::Occluded,
        PropertyKind::HeavyRain,
        PropertyKind::DashedLane,
    ];

    /// Ground-truth decision: does the property hold for this scene?
    pub fn holds(self, scene: &SceneParams, config: &SceneConfig) -> bool {
        match self {
            PropertyKind::BendsRight => scene.curvature >= config.strong_bend_threshold,
            PropertyKind::BendsLeft => scene.curvature <= -config.strong_bend_threshold,
            PropertyKind::Straight => scene.curvature.abs() <= config.straight_threshold,
            PropertyKind::AdjacentTraffic => scene.adjacent_traffic,
            PropertyKind::LowLight => scene.lighting < (config.min_lighting + 0.15),
            PropertyKind::Occluded => scene.occlusion >= config.occlusion_threshold,
            PropertyKind::HeavyRain => scene.rain_density >= config.heavy_rain_threshold,
            PropertyKind::DashedLane => scene.dashed_lanes,
        }
    }

    /// Returns `true` when in-ODD scenes satisfying the property exist
    /// under `config` — i.e. when balanced rejection sampling
    /// ([`crate::DatasetBundle::generate_balanced`]) can terminate. The
    /// diversity properties need their ODD dimension switched on (e.g.
    /// [`SceneConfig::diverse`]); under the legacy configurations they are
    /// unsatisfiable and must be skipped.
    pub fn satisfiable_in(self, config: &SceneConfig) -> bool {
        // Strict comparisons: at threshold == maximum the satisfying set
        // has measure zero under the uniform sampler, so rejection
        // sampling would still spin forever.
        match self {
            PropertyKind::Occluded => config.max_occlusion > config.occlusion_threshold,
            PropertyKind::HeavyRain => config.max_rain > config.heavy_rain_threshold,
            PropertyKind::DashedLane => config.dashed_lane_fraction > 0.0,
            _ => true,
        }
    }

    /// Returns `true` when the property is, by construction of the scene
    /// model, causally related to the affordance output (curvature-derived
    /// properties are; traffic and lighting are not). Used by experiment E3
    /// to split properties into "learnable at close-to-output layers" and
    /// "information-bottlenecked".
    pub fn is_output_related(self) -> bool {
        matches!(
            self,
            PropertyKind::BendsRight | PropertyKind::BendsLeft | PropertyKind::Straight
        )
    }

    /// Short snake_case name used in reports and benchmark labels.
    pub fn name(self) -> &'static str {
        match self {
            PropertyKind::BendsRight => "bends_right",
            PropertyKind::BendsLeft => "bends_left",
            PropertyKind::Straight => "straight",
            PropertyKind::AdjacentTraffic => "adjacent_traffic",
            PropertyKind::LowLight => "low_light",
            PropertyKind::Occluded => "occluded",
            PropertyKind::HeavyRain => "heavy_rain",
            PropertyKind::DashedLane => "dashed_lane",
        }
    }
}

impl fmt::Display for PropertyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SceneConfig {
        SceneConfig::small()
    }

    #[test]
    fn bend_properties_follow_curvature_sign() {
        let cfg = cfg();
        let right = SceneParams::nominal().with_curvature(0.8);
        let left = SceneParams::nominal().with_curvature(-0.8);
        let straight = SceneParams::nominal().with_curvature(0.05);
        assert!(PropertyKind::BendsRight.holds(&right, &cfg));
        assert!(!PropertyKind::BendsRight.holds(&left, &cfg));
        assert!(!PropertyKind::BendsRight.holds(&straight, &cfg));
        assert!(PropertyKind::BendsLeft.holds(&left, &cfg));
        assert!(PropertyKind::Straight.holds(&straight, &cfg));
        assert!(!PropertyKind::Straight.holds(&right, &cfg));
    }

    #[test]
    fn moderate_bend_is_neither_strong_nor_straight() {
        let cfg = cfg();
        let moderate = SceneParams::nominal().with_curvature(0.3);
        assert!(!PropertyKind::BendsRight.holds(&moderate, &cfg));
        assert!(!PropertyKind::BendsLeft.holds(&moderate, &cfg));
        assert!(!PropertyKind::Straight.holds(&moderate, &cfg));
    }

    #[test]
    fn traffic_and_lighting_properties() {
        let cfg = cfg();
        assert!(PropertyKind::AdjacentTraffic
            .holds(&SceneParams::nominal().with_adjacent_traffic(0.5), &cfg));
        assert!(!PropertyKind::AdjacentTraffic.holds(&SceneParams::nominal(), &cfg));
        let mut dark = SceneParams::nominal();
        dark.lighting = 0.6;
        assert!(PropertyKind::LowLight.holds(&dark, &cfg));
        assert!(!PropertyKind::LowLight.holds(&SceneParams::nominal(), &cfg));
    }

    #[test]
    fn output_relatedness_partition() {
        let related: Vec<_> = PropertyKind::ALL
            .iter()
            .filter(|p| p.is_output_related())
            .collect();
        assert_eq!(related.len(), 3);
        assert!(!PropertyKind::AdjacentTraffic.is_output_related());
        assert!(!PropertyKind::LowLight.is_output_related());
        // The diversity dimensions are nuisance parameters, not affordance
        // inputs — the information-bottleneck split must classify them so.
        assert!(!PropertyKind::Occluded.is_output_related());
        assert!(!PropertyKind::HeavyRain.is_output_related());
        assert!(!PropertyKind::DashedLane.is_output_related());
    }

    #[test]
    fn diversity_properties_follow_their_scene_knobs() {
        let cfg = SceneConfig::diverse();
        let occluded = SceneParams::nominal().with_occlusion(cfg.occlusion_threshold + 0.1, 0.4);
        assert!(PropertyKind::Occluded.holds(&occluded, &cfg));
        assert!(!PropertyKind::Occluded.holds(&SceneParams::nominal(), &cfg));
        let rainy = SceneParams::nominal().with_rain(cfg.heavy_rain_threshold + 0.1, 0.3);
        assert!(PropertyKind::HeavyRain.holds(&rainy, &cfg));
        assert!(!PropertyKind::HeavyRain.holds(&SceneParams::nominal(), &cfg));
        let dashed = SceneParams::nominal().with_dashed_lanes();
        assert!(PropertyKind::DashedLane.holds(&dashed, &cfg));
        assert!(!PropertyKind::DashedLane.holds(&SceneParams::nominal(), &cfg));
    }

    #[test]
    fn satisfiability_tracks_the_odd_configuration() {
        let legacy = SceneConfig::small();
        let diverse = SceneConfig::diverse();
        for p in PropertyKind::ALL {
            assert!(p.satisfiable_in(&diverse), "{p} unsatisfiable in diverse");
        }
        assert!(!PropertyKind::Occluded.satisfiable_in(&legacy));
        assert!(!PropertyKind::HeavyRain.satisfiable_in(&legacy));
        assert!(!PropertyKind::DashedLane.satisfiable_in(&legacy));
        assert!(PropertyKind::BendsRight.satisfiable_in(&legacy));
        // Threshold exactly at the maximum: the satisfying set has measure
        // zero, so the property must count as unsatisfiable.
        let boundary = SceneConfig {
            max_occlusion: 0.25,
            occlusion_threshold: 0.25,
            max_rain: 0.3,
            heavy_rain_threshold: 0.3,
            ..SceneConfig::small()
        };
        assert!(!PropertyKind::Occluded.satisfiable_in(&boundary));
        assert!(!PropertyKind::HeavyRain.satisfiable_in(&boundary));
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = PropertyKind::ALL.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), PropertyKind::ALL.len());
        assert_eq!(format!("{}", PropertyKind::BendsRight), "bends_right");
    }
}

//! Input-property oracles over scene parameters.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::{SceneConfig, SceneParams};

/// The input properties φ considered in the experiments.
///
/// Each property is decidable from the hidden scene parameters; the scene
/// oracle therefore plays the role of the human expert in the paper, who
/// labels images with "the road strongly bends to the right" etc. The
/// trained characterizer only ever sees the *image* (through the perception
/// network's close-to-output activations), never these parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PropertyKind {
    /// The road bends to the right with at least the strong-bend curvature.
    BendsRight,
    /// The road bends to the left with at least the strong-bend curvature.
    BendsLeft,
    /// The road is (nearly) straight.
    Straight,
    /// A traffic participant occupies the adjacent lane. Unrelated to the
    /// affordance output — the information-bottleneck case of experiment E3.
    AdjacentTraffic,
    /// The scene is darker than the lighting threshold (dusk / tunnel).
    LowLight,
}

impl PropertyKind {
    /// All property kinds, in a stable order.
    pub const ALL: [PropertyKind; 5] = [
        PropertyKind::BendsRight,
        PropertyKind::BendsLeft,
        PropertyKind::Straight,
        PropertyKind::AdjacentTraffic,
        PropertyKind::LowLight,
    ];

    /// Ground-truth decision: does the property hold for this scene?
    pub fn holds(self, scene: &SceneParams, config: &SceneConfig) -> bool {
        match self {
            PropertyKind::BendsRight => scene.curvature >= config.strong_bend_threshold,
            PropertyKind::BendsLeft => scene.curvature <= -config.strong_bend_threshold,
            PropertyKind::Straight => scene.curvature.abs() <= config.straight_threshold,
            PropertyKind::AdjacentTraffic => scene.adjacent_traffic,
            PropertyKind::LowLight => scene.lighting < (config.min_lighting + 0.15),
        }
    }

    /// Returns `true` when the property is, by construction of the scene
    /// model, causally related to the affordance output (curvature-derived
    /// properties are; traffic and lighting are not). Used by experiment E3
    /// to split properties into "learnable at close-to-output layers" and
    /// "information-bottlenecked".
    pub fn is_output_related(self) -> bool {
        matches!(
            self,
            PropertyKind::BendsRight | PropertyKind::BendsLeft | PropertyKind::Straight
        )
    }

    /// Short snake_case name used in reports and benchmark labels.
    pub fn name(self) -> &'static str {
        match self {
            PropertyKind::BendsRight => "bends_right",
            PropertyKind::BendsLeft => "bends_left",
            PropertyKind::Straight => "straight",
            PropertyKind::AdjacentTraffic => "adjacent_traffic",
            PropertyKind::LowLight => "low_light",
        }
    }
}

impl fmt::Display for PropertyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SceneConfig {
        SceneConfig::small()
    }

    #[test]
    fn bend_properties_follow_curvature_sign() {
        let cfg = cfg();
        let right = SceneParams::nominal().with_curvature(0.8);
        let left = SceneParams::nominal().with_curvature(-0.8);
        let straight = SceneParams::nominal().with_curvature(0.05);
        assert!(PropertyKind::BendsRight.holds(&right, &cfg));
        assert!(!PropertyKind::BendsRight.holds(&left, &cfg));
        assert!(!PropertyKind::BendsRight.holds(&straight, &cfg));
        assert!(PropertyKind::BendsLeft.holds(&left, &cfg));
        assert!(PropertyKind::Straight.holds(&straight, &cfg));
        assert!(!PropertyKind::Straight.holds(&right, &cfg));
    }

    #[test]
    fn moderate_bend_is_neither_strong_nor_straight() {
        let cfg = cfg();
        let moderate = SceneParams::nominal().with_curvature(0.3);
        assert!(!PropertyKind::BendsRight.holds(&moderate, &cfg));
        assert!(!PropertyKind::BendsLeft.holds(&moderate, &cfg));
        assert!(!PropertyKind::Straight.holds(&moderate, &cfg));
    }

    #[test]
    fn traffic_and_lighting_properties() {
        let cfg = cfg();
        assert!(PropertyKind::AdjacentTraffic
            .holds(&SceneParams::nominal().with_adjacent_traffic(0.5), &cfg));
        assert!(!PropertyKind::AdjacentTraffic.holds(&SceneParams::nominal(), &cfg));
        let mut dark = SceneParams::nominal();
        dark.lighting = 0.6;
        assert!(PropertyKind::LowLight.holds(&dark, &cfg));
        assert!(!PropertyKind::LowLight.holds(&SceneParams::nominal(), &cfg));
    }

    #[test]
    fn output_relatedness_partition() {
        let related: Vec<_> = PropertyKind::ALL
            .iter()
            .filter(|p| p.is_output_related())
            .collect();
        assert_eq!(related.len(), 3);
        assert!(!PropertyKind::AdjacentTraffic.is_output_related());
        assert!(!PropertyKind::LowLight.is_output_related());
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = PropertyKind::ALL.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), PropertyKind::ALL.len());
        assert_eq!(format!("{}", PropertyKind::BendsRight), "bends_right");
    }
}

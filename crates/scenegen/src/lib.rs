//! # dpv-scenegen
//!
//! Synthetic road-scene generator standing in for the proprietary camera
//! data used in the paper's evaluation (camera recordings of a German A9
//! highway segment, labelled by experts).
//!
//! The paper needs three things from its data source:
//!
//! 1. **images** whose ground-truth affordances (next-waypoint lateral
//!    offset and orientation) are known, to train the direct-perception
//!    network;
//! 2. **property labels** (road bends right / left / straight, traffic
//!    participants in adjacent lanes, ...) produced by an oracle, to train
//!    the input property characterizers;
//! 3. an **operational design domain (ODD)**: a distribution of realistic
//!    scenes whose layer-`l` activations define the assume-guarantee
//!    envelope `S̃`, plus *out-of-ODD* scenes to exercise the runtime
//!    monitor.
//!
//! This crate provides all three with a parametric scene model
//! ([`SceneParams`]) rendered into small grey-scale images by a
//! perspective-ish painter ([`render_scene`]). The renderer is intentionally
//! simple — the verification pipeline never looks at the pixels, only the
//! trained network does — but it preserves the causal structure the paper
//! relies on: road curvature determines both the image content and the
//! correct affordance, while nuisance parameters (lighting, noise, traffic)
//! perturb the image without changing the affordance.
//!
//! ## Scenario diversity
//!
//! Beyond the original highway recipe, the ODD spans four additional
//! scenario dimensions, each with a [`SceneConfig`] knob that defaults to
//! *off* (reproducing the historical RNG stream and renderer output bit for
//! bit, like `curvature_mix = 0.0`):
//!
//! * **occlusion** (`max_occlusion`) — a leading vehicle in the ego lane
//!   hides a fraction of the lane markings ([`SceneParams::occlusion`] /
//!   [`SceneParams::occlusion_position`]);
//! * **rain** (`max_rain`) — bright streaks perturb pixel intensities
//!   ([`SceneParams::rain_density`] / [`SceneParams::rain_length`]);
//! * **dashed lanes** (`dashed_lane_fraction`) — the centre marking is
//!   rendered dashed instead of solid ([`SceneParams::dashed_lanes`]);
//! * **sensor dropout** — a dead band of blanked rows
//!   ([`SceneParams::sensor_dropout`]), outside *every* ODD by definition.
//!
//! [`SceneConfig::diverse`] switches every dimension on. The matching
//! scenario properties ([`PropertyKind::Occluded`],
//! [`PropertyKind::HeavyRain`], [`PropertyKind::DashedLane`]) are
//! satisfiable only under such a configuration — check
//! [`PropertyKind::satisfiable_in`] before balanced dataset generation.
//!
//! Scenes *leave* the ODD in named ways: the [`OddViolation`] taxonomy
//! (extreme curvature, blackout, full occlusion, downpour, sensor dropout,
//! lane departure) with the per-class sampler
//! [`OddSampler::sample_violation`], so monitor experiments measure
//! detection rates per violation class instead of one aggregate "extreme
//! scene" recipe.
//!
//! ## Example
//!
//! ```
//! use dpv_scenegen::{OddSampler, SceneConfig, PropertyKind};
//! use rand::SeedableRng;
//!
//! let config = SceneConfig::small();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let sampler = OddSampler::new(config);
//! let scene = sampler.sample_in_odd(&mut rng);
//! let image = dpv_scenegen::render_scene(&scene, &config);
//! assert_eq!(image.len(), config.pixel_count());
//! let bends_right = PropertyKind::BendsRight.holds(&scene, &config);
//! let affordance = dpv_scenegen::affordance(&scene, &config);
//! assert_eq!(affordance.len(), 2);
//! let _ = bends_right;
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod affordance;
mod dataset;
mod odd;
mod property;
mod render;
mod sampler;
mod scene;

pub use affordance::{affordance, Affordance, AFFORDANCE_DIM};
pub use dataset::{
    characterizer_dataset, perception_dataset, property_examples, DatasetBundle, GeneratorConfig,
};
pub use odd::OddViolation;
pub use property::PropertyKind;
pub use render::render_scene;
pub use sampler::OddSampler;
pub use scene::{SceneConfig, SceneParams};

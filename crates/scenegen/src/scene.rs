//! Scene parameters and global scene-generation configuration.

use serde::{Deserialize, Serialize};

/// The hidden state of one road scene. The renderer maps this to pixels;
/// the affordance and property oracles map it to training labels.
///
/// Conventions:
/// * `curvature` > 0 means the road bends to the **right**; the unit is the
///   normalised curvature over the rendered look-ahead (roughly "fraction of
///   the image width the road centre shifts at the horizon").
/// * `ego_offset` > 0 means the ego vehicle sits to the right of the lane
///   centre (in lane-width units, so ±0.5 touches the lane boundary).
/// * `heading_error` > 0 means the ego vehicle points to the right of the
///   road direction (radians, small angles).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SceneParams {
    /// Signed road curvature (positive bends right).
    pub curvature: f64,
    /// Lateral ego offset from the lane centre, in lane widths.
    pub ego_offset: f64,
    /// Ego heading error relative to the road tangent, in radians.
    pub heading_error: f64,
    /// Global illumination factor in `(0, 1]` (1 = full daylight).
    pub lighting: f64,
    /// Standard deviation of additive pixel noise.
    pub noise: f64,
    /// Whether a traffic participant occupies the adjacent (left) lane.
    pub adjacent_traffic: bool,
    /// Longitudinal position of the adjacent traffic participant in `[0, 1]`
    /// (0 = right next to the ego vehicle, 1 = near the horizon). Ignored
    /// when `adjacent_traffic` is `false`.
    pub traffic_distance: f64,
}

impl Default for SceneParams {
    fn default() -> Self {
        Self {
            curvature: 0.0,
            ego_offset: 0.0,
            heading_error: 0.0,
            lighting: 1.0,
            noise: 0.0,
            adjacent_traffic: false,
            traffic_distance: 0.5,
        }
    }
}

impl SceneParams {
    /// A straight, centred, clean daylight scene.
    pub fn nominal() -> Self {
        Self::default()
    }

    /// Returns a copy with the curvature replaced.
    pub fn with_curvature(mut self, curvature: f64) -> Self {
        self.curvature = curvature;
        self
    }

    /// Returns a copy with the ego lateral offset replaced.
    pub fn with_ego_offset(mut self, ego_offset: f64) -> Self {
        self.ego_offset = ego_offset;
        self
    }

    /// Returns a copy with the heading error replaced.
    pub fn with_heading_error(mut self, heading_error: f64) -> Self {
        self.heading_error = heading_error;
        self
    }

    /// Returns a copy with adjacent traffic toggled on at the given distance.
    pub fn with_adjacent_traffic(mut self, distance: f64) -> Self {
        self.adjacent_traffic = true;
        self.traffic_distance = distance.clamp(0.0, 1.0);
        self
    }
}

/// Static configuration of the scene generator: image geometry, the ODD
/// parameter ranges, and the thresholds used by the property oracles.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SceneConfig {
    /// Image height in pixels (rows; the bottom row is nearest to the ego vehicle).
    pub height: usize,
    /// Image width in pixels.
    pub width: usize,
    /// Maximum |curvature| inside the ODD.
    pub max_curvature: f64,
    /// Maximum |ego_offset| inside the ODD (lane widths).
    pub max_ego_offset: f64,
    /// Maximum |heading_error| inside the ODD (radians).
    pub max_heading_error: f64,
    /// Minimum lighting factor inside the ODD.
    pub min_lighting: f64,
    /// Maximum pixel-noise standard deviation inside the ODD.
    pub max_noise: f64,
    /// Curvature magnitude above which a scene counts as "strongly bending".
    pub strong_bend_threshold: f64,
    /// Curvature magnitude below which a scene counts as "straight".
    pub straight_threshold: f64,
    /// Look-ahead distance (in image heights) at which the next waypoint is placed.
    pub lookahead: f64,
    /// Fraction of in-ODD samples drawn from a deliberately *bimodal*
    /// curvature distribution (half straight scenes with |curvature| below
    /// `straight_threshold`, half tight curves with |curvature| above
    /// `strong_bend_threshold`) instead of the uniform range. `0.0` — the
    /// default — reproduces the uniform sampler bit for bit; values near
    /// `1.0` give the clustered straight-vs-curve workload the envelope
    /// sharding experiments need. Both modes stay inside the ODD.
    pub curvature_mix: f64,
}

impl SceneConfig {
    /// The configuration used throughout the examples, tests and benches:
    /// 16×32 single-channel images, moderate curvature range.
    pub fn small() -> Self {
        Self {
            height: 16,
            width: 32,
            max_curvature: 1.0,
            max_ego_offset: 0.4,
            max_heading_error: 0.2,
            min_lighting: 0.55,
            max_noise: 0.03,
            strong_bend_threshold: 0.5,
            straight_threshold: 0.15,
            lookahead: 1.0,
            curvature_mix: 0.0,
        }
    }

    /// A larger 32×64 configuration, closer to a down-scaled camera frame;
    /// used by the scalability experiment (E6).
    pub fn medium() -> Self {
        Self {
            height: 32,
            width: 64,
            ..Self::small()
        }
    }

    /// Number of pixels of a rendered image (single channel).
    pub fn pixel_count(&self) -> usize {
        self.height * self.width
    }
}

impl Default for SceneConfig {
    fn default() -> Self {
        Self::small()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_scene_is_straight_and_clean() {
        let s = SceneParams::nominal();
        assert_eq!(s.curvature, 0.0);
        assert_eq!(s.lighting, 1.0);
        assert!(!s.adjacent_traffic);
    }

    #[test]
    fn with_builders_replace_fields() {
        let s = SceneParams::nominal()
            .with_curvature(0.7)
            .with_ego_offset(-0.2)
            .with_heading_error(0.1)
            .with_adjacent_traffic(1.5);
        assert_eq!(s.curvature, 0.7);
        assert_eq!(s.ego_offset, -0.2);
        assert_eq!(s.heading_error, 0.1);
        assert!(s.adjacent_traffic);
        assert_eq!(s.traffic_distance, 1.0, "distance is clamped to [0, 1]");
    }

    #[test]
    fn config_pixel_count() {
        assert_eq!(SceneConfig::small().pixel_count(), 512);
        assert_eq!(SceneConfig::medium().pixel_count(), 2048);
        assert_eq!(SceneConfig::default(), SceneConfig::small());
    }

    #[test]
    fn thresholds_are_ordered() {
        let c = SceneConfig::small();
        assert!(c.straight_threshold < c.strong_bend_threshold);
        assert!(c.strong_bend_threshold < c.max_curvature);
    }
}

//! Scene parameters and global scene-generation configuration.

use serde::{Deserialize, Serialize};

/// The hidden state of one road scene. The renderer maps this to pixels;
/// the affordance and property oracles map it to training labels.
///
/// Conventions:
/// * `curvature` > 0 means the road bends to the **right**; the unit is the
///   normalised curvature over the rendered look-ahead (roughly "fraction of
///   the image width the road centre shifts at the horizon").
/// * `ego_offset` > 0 means the ego vehicle sits to the right of the lane
///   centre (in lane-width units, so ±0.5 touches the lane boundary).
/// * `heading_error` > 0 means the ego vehicle points to the right of the
///   road direction (radians, small angles).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SceneParams {
    /// Signed road curvature (positive bends right).
    pub curvature: f64,
    /// Lateral ego offset from the lane centre, in lane widths.
    pub ego_offset: f64,
    /// Ego heading error relative to the road tangent, in radians.
    pub heading_error: f64,
    /// Global illumination factor in `(0, 1]` (1 = full daylight).
    pub lighting: f64,
    /// Standard deviation of additive pixel noise.
    pub noise: f64,
    /// Whether a traffic participant occupies the adjacent (left) lane.
    pub adjacent_traffic: bool,
    /// Longitudinal position of the adjacent traffic participant in `[0, 1]`
    /// (0 = right next to the ego vehicle, 1 = near the horizon). Ignored
    /// when `adjacent_traffic` is `false`.
    pub traffic_distance: f64,
    /// Fraction of the lane markings hidden by a *leading* vehicle in the
    /// ego lane, in `[0, 1]` (0 = no leading vehicle — the historical
    /// default). The renderer paints a dark box over the road centre whose
    /// footprint grows with this fraction, swallowing the centre marking.
    pub occlusion: f64,
    /// Longitudinal position of the leading (occluding) vehicle in `[0, 1]`
    /// (0 = right in front of the ego vehicle, 1 = near the horizon).
    /// Ignored when `occlusion` is zero.
    pub occlusion_position: f64,
    /// Rain-streak density: expected number of streaks per image column
    /// (0 = dry — the historical default). Streaks brighten the pixels they
    /// cross, the classic nuisance perturbation of camera frames in rain.
    pub rain_density: f64,
    /// Length of each rain streak as a fraction of the image height.
    /// Ignored when `rain_density` is zero.
    pub rain_length: f64,
    /// Whether the centre lane marking is rendered *dashed* instead of
    /// solid (`false` — solid — is the historical default). Road-edge
    /// markings stay solid either way.
    pub dashed_lanes: bool,
    /// Fraction of image rows (from the bottom, nearest the ego vehicle)
    /// blanked to zero intensity — a dead sensor region. Any non-zero value
    /// is outside every ODD; it exists for the out-of-ODD taxonomy's
    /// [`crate::OddViolation::SensorDropout`] class.
    pub sensor_dropout: f64,
}

impl Default for SceneParams {
    fn default() -> Self {
        Self {
            curvature: 0.0,
            ego_offset: 0.0,
            heading_error: 0.0,
            lighting: 1.0,
            noise: 0.0,
            adjacent_traffic: false,
            traffic_distance: 0.5,
            occlusion: 0.0,
            occlusion_position: 0.5,
            rain_density: 0.0,
            rain_length: 0.2,
            dashed_lanes: false,
            sensor_dropout: 0.0,
        }
    }
}

impl SceneParams {
    /// A straight, centred, clean daylight scene.
    pub fn nominal() -> Self {
        Self::default()
    }

    /// Returns a copy with the curvature replaced.
    pub fn with_curvature(mut self, curvature: f64) -> Self {
        self.curvature = curvature;
        self
    }

    /// Returns a copy with the ego lateral offset replaced.
    pub fn with_ego_offset(mut self, ego_offset: f64) -> Self {
        self.ego_offset = ego_offset;
        self
    }

    /// Returns a copy with the heading error replaced.
    pub fn with_heading_error(mut self, heading_error: f64) -> Self {
        self.heading_error = heading_error;
        self
    }

    /// Returns a copy with adjacent traffic toggled on at the given distance.
    pub fn with_adjacent_traffic(mut self, distance: f64) -> Self {
        self.adjacent_traffic = true;
        self.traffic_distance = distance.clamp(0.0, 1.0);
        self
    }

    /// Returns a copy with a leading vehicle occluding the given fraction of
    /// the lane markings at the given longitudinal position.
    pub fn with_occlusion(mut self, fraction: f64, position: f64) -> Self {
        self.occlusion = fraction.clamp(0.0, 1.0);
        self.occlusion_position = position.clamp(0.0, 1.0);
        self
    }

    /// Returns a copy with rain streaks of the given density and length.
    pub fn with_rain(mut self, density: f64, length: f64) -> Self {
        self.rain_density = density.max(0.0);
        self.rain_length = length.clamp(0.0, 1.0);
        self
    }

    /// Returns a copy with the centre lane marking rendered dashed.
    pub fn with_dashed_lanes(mut self) -> Self {
        self.dashed_lanes = true;
        self
    }
}

/// Static configuration of the scene generator: image geometry, the ODD
/// parameter ranges, and the thresholds used by the property oracles.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SceneConfig {
    /// Image height in pixels (rows; the bottom row is nearest to the ego vehicle).
    pub height: usize,
    /// Image width in pixels.
    pub width: usize,
    /// Maximum |curvature| inside the ODD.
    pub max_curvature: f64,
    /// Maximum |ego_offset| inside the ODD (lane widths).
    pub max_ego_offset: f64,
    /// Maximum |heading_error| inside the ODD (radians).
    pub max_heading_error: f64,
    /// Minimum lighting factor inside the ODD.
    pub min_lighting: f64,
    /// Maximum pixel-noise standard deviation inside the ODD.
    pub max_noise: f64,
    /// Curvature magnitude above which a scene counts as "strongly bending".
    pub strong_bend_threshold: f64,
    /// Curvature magnitude below which a scene counts as "straight".
    pub straight_threshold: f64,
    /// Look-ahead distance (in image heights) at which the next waypoint is placed.
    pub lookahead: f64,
    /// Fraction of in-ODD samples drawn from a deliberately *bimodal*
    /// curvature distribution (half straight scenes with |curvature| below
    /// `straight_threshold`, half tight curves with |curvature| above
    /// `strong_bend_threshold`) instead of the uniform range. `0.0` — the
    /// default — reproduces the uniform sampler bit for bit; values near
    /// `1.0` give the clustered straight-vs-curve workload the envelope
    /// sharding experiments need. Both modes stay inside the ODD.
    pub curvature_mix: f64,
    /// Maximum lane-marking occlusion fraction inside the ODD. `0.0` — the
    /// default — keeps the leading-vehicle dimension off entirely and the
    /// historical RNG stream bit-identical.
    pub max_occlusion: f64,
    /// Occlusion fraction at or above which a scene counts as "occluded"
    /// for [`crate::PropertyKind::Occluded`].
    pub occlusion_threshold: f64,
    /// Maximum rain-streak density inside the ODD. `0.0` — the default —
    /// keeps the rain dimension off entirely and the historical RNG stream
    /// bit-identical.
    pub max_rain: f64,
    /// Rain density at or above which a scene counts as "heavy rain" for
    /// [`crate::PropertyKind::HeavyRain`].
    pub heavy_rain_threshold: f64,
    /// Fraction of in-ODD scenes rendered with a dashed centre marking.
    /// `0.0` — the default — renders every scene with solid markings and
    /// keeps the historical RNG stream bit-identical.
    pub dashed_lane_fraction: f64,
}

impl SceneConfig {
    /// The configuration used throughout the examples, tests and benches:
    /// 16×32 single-channel images, moderate curvature range.
    pub fn small() -> Self {
        Self {
            height: 16,
            width: 32,
            max_curvature: 1.0,
            max_ego_offset: 0.4,
            max_heading_error: 0.2,
            min_lighting: 0.55,
            max_noise: 0.03,
            strong_bend_threshold: 0.5,
            straight_threshold: 0.15,
            lookahead: 1.0,
            curvature_mix: 0.0,
            max_occlusion: 0.0,
            occlusion_threshold: 0.25,
            max_rain: 0.0,
            heavy_rain_threshold: 0.3,
            dashed_lane_fraction: 0.0,
        }
    }

    /// A larger 32×64 configuration, closer to a down-scaled camera frame;
    /// used by the scalability experiment (E6).
    pub fn medium() -> Self {
        Self {
            height: 32,
            width: 64,
            ..Self::small()
        }
    }

    /// The scenario-diversity configuration: every ODD dimension switched
    /// on — partial lane-marking occlusion by leading vehicles, rain
    /// streaks, a dashed-vs-solid lane mix, and the bimodal curvature
    /// distribution — so datasets cover the full scenario taxonomy and the
    /// cut-layer activations are genuinely multi-modal. The thresholds keep
    /// [`crate::PropertyKind::Occluded`] and
    /// [`crate::PropertyKind::HeavyRain`] satisfiable *and* refutable, so
    /// balanced characterizer datasets exist for all properties.
    pub fn diverse() -> Self {
        Self {
            curvature_mix: 0.5,
            max_occlusion: 0.5,
            occlusion_threshold: 0.25,
            max_rain: 0.6,
            heavy_rain_threshold: 0.3,
            dashed_lane_fraction: 0.5,
            ..Self::small()
        }
    }

    /// Number of pixels of a rendered image (single channel).
    pub fn pixel_count(&self) -> usize {
        self.height * self.width
    }
}

impl Default for SceneConfig {
    fn default() -> Self {
        Self::small()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_scene_is_straight_and_clean() {
        let s = SceneParams::nominal();
        assert_eq!(s.curvature, 0.0);
        assert_eq!(s.lighting, 1.0);
        assert!(!s.adjacent_traffic);
    }

    #[test]
    fn with_builders_replace_fields() {
        let s = SceneParams::nominal()
            .with_curvature(0.7)
            .with_ego_offset(-0.2)
            .with_heading_error(0.1)
            .with_adjacent_traffic(1.5);
        assert_eq!(s.curvature, 0.7);
        assert_eq!(s.ego_offset, -0.2);
        assert_eq!(s.heading_error, 0.1);
        assert!(s.adjacent_traffic);
        assert_eq!(s.traffic_distance, 1.0, "distance is clamped to [0, 1]");
    }

    #[test]
    fn config_pixel_count() {
        assert_eq!(SceneConfig::small().pixel_count(), 512);
        assert_eq!(SceneConfig::medium().pixel_count(), 2048);
        assert_eq!(SceneConfig::default(), SceneConfig::small());
    }

    #[test]
    fn thresholds_are_ordered() {
        let c = SceneConfig::small();
        assert!(c.straight_threshold < c.strong_bend_threshold);
        assert!(c.strong_bend_threshold < c.max_curvature);
    }

    #[test]
    fn nominal_scene_has_every_diversity_knob_off() {
        let s = SceneParams::nominal();
        assert_eq!(s.occlusion, 0.0);
        assert_eq!(s.rain_density, 0.0);
        assert_eq!(s.sensor_dropout, 0.0);
        assert!(!s.dashed_lanes);
    }

    #[test]
    fn diversity_builders_replace_and_clamp() {
        let s = SceneParams::nominal()
            .with_occlusion(1.5, -0.2)
            .with_rain(0.4, 2.0)
            .with_dashed_lanes();
        assert_eq!(s.occlusion, 1.0, "occlusion is clamped to [0, 1]");
        assert_eq!(s.occlusion_position, 0.0);
        assert_eq!(s.rain_density, 0.4);
        assert_eq!(s.rain_length, 1.0, "length is clamped to [0, 1]");
        assert!(s.dashed_lanes);
    }

    #[test]
    fn small_config_keeps_diversity_dimensions_off() {
        let c = SceneConfig::small();
        assert_eq!(c.max_occlusion, 0.0);
        assert_eq!(c.max_rain, 0.0);
        assert_eq!(c.dashed_lane_fraction, 0.0);
    }

    #[test]
    fn diverse_config_enables_every_dimension_with_reachable_thresholds() {
        let c = SceneConfig::diverse();
        assert!(c.max_occlusion > 0.0 && c.occlusion_threshold < c.max_occlusion);
        assert!(c.max_rain > 0.0 && c.heavy_rain_threshold < c.max_rain);
        assert!(c.dashed_lane_fraction > 0.0 && c.dashed_lane_fraction < 1.0);
        assert!(c.curvature_mix > 0.0);
        // Geometry and the historical ODD ranges are untouched.
        assert_eq!(c.pixel_count(), SceneConfig::small().pixel_count());
        assert_eq!(c.max_curvature, SceneConfig::small().max_curvature);
    }
}

//! Grey-scale renderer mapping [`SceneParams`] to flattened images.

use dpv_tensor::Vector;

use crate::{SceneConfig, SceneParams};

/// Pixel intensity of the road surface.
const ROAD_INTENSITY: f64 = 0.55;
/// Pixel intensity of lane markings.
const MARKING_INTENSITY: f64 = 0.95;
/// Pixel intensity of off-road terrain.
const TERRAIN_INTENSITY: f64 = 0.2;
/// Pixel intensity of a traffic participant.
const VEHICLE_INTENSITY: f64 = 0.05;
/// Pixel intensity a rain streak pulls its pixels towards.
const RAIN_INTENSITY: f64 = 0.85;
/// Number of dash periods over the rendered look-ahead for dashed markings.
const DASH_PERIODS: f64 = 6.0;

/// Renders a scene into a flattened single-channel image of
/// `config.height * config.width` pixels in row-major order, row 0 at the
/// *top* (far away) and the last row at the *bottom* (next to the ego
/// vehicle). All pixel values are clamped to `[0, 1]`, matching the paper's
/// note that training inputs are rescaled to the unit interval.
///
/// The projection is a cheap pin-hole approximation: each image row `r`
/// corresponds to a longitudinal distance, the road centre shifts laterally
/// with `curvature * distance²`, `heading_error * distance` and the ego
/// offset, and the apparent road width shrinks towards the horizon.
///
/// Deterministic for a given scene except for the additive noise, which is
/// generated from a small deterministic hash of the scene parameters so the
/// whole pipeline stays reproducible without threading RNGs through the
/// renderer.
pub fn render_scene(scene: &SceneParams, config: &SceneConfig) -> Vector {
    let h = config.height;
    let w = config.width;
    let mut pixels = vec![0.0f64; h * w];
    let widthf = w as f64;

    for row in 0..h {
        // distance 0 at the bottom row, 1 at the top row (horizon).
        let distance = 1.0 - (row as f64 + 0.5) / h as f64;
        // Lateral position of the road centre in pixels.
        let centre = widthf / 2.0 - scene.ego_offset * widthf * 0.35
            + scene.curvature * distance * distance * widthf * 0.45
            + scene.heading_error * distance * widthf * 0.9;
        // Perspective: the road narrows towards the horizon.
        let half_width = widthf * (0.42 - 0.30 * distance);
        let marking_half_width = (half_width * 0.06).max(0.5);

        for col in 0..w {
            let x = col as f64 + 0.5;
            let offset = x - centre;
            let idx = row * w + col;
            let value = if offset.abs() <= half_width {
                // Lane markings at the centre and at both road edges. With
                // `dashed_lanes` the centre marking is painted only on the
                // "on" half of each dash period; edge markings stay solid.
                let centre_drawn =
                    !scene.dashed_lanes || (distance * DASH_PERIODS).rem_euclid(1.0) < 0.5;
                let near_centre = centre_drawn && offset.abs() <= marking_half_width;
                let near_edge = (offset.abs() - half_width).abs() <= marking_half_width;
                if near_centre || near_edge {
                    MARKING_INTENSITY
                } else {
                    ROAD_INTENSITY
                }
            } else {
                TERRAIN_INTENSITY
            };
            pixels[idx] = value;
        }

        // Leading vehicle in the ego lane: a dark box over the road centre
        // whose footprint grows with the occlusion fraction, hiding the
        // centre marking (and, at large fractions, the edge markings too).
        if scene.occlusion > 0.0 {
            let occlusion = scene.occlusion.clamp(0.0, 1.0);
            let position = scene.occlusion_position.clamp(0.0, 1.0);
            if (distance - position).abs() <= 0.08 + 0.14 * occlusion {
                let vehicle_half = (half_width * occlusion).max(1.0);
                for col in 0..w {
                    let x = col as f64 + 0.5;
                    if (x - centre).abs() <= vehicle_half {
                        pixels[row * w + col] = VEHICLE_INTENSITY;
                    }
                }
            }
        }

        // Adjacent-lane traffic participant: a dark box one lane to the left.
        if scene.adjacent_traffic {
            let traffic_distance = scene.traffic_distance.clamp(0.0, 1.0);
            // The participant spans a band of rows around its distance.
            if (distance - traffic_distance).abs() <= 0.12 {
                let lane_shift = half_width * 1.1;
                let vehicle_centre = centre - lane_shift;
                let vehicle_half = (half_width * 0.35).max(1.0);
                for col in 0..w {
                    let x = col as f64 + 0.5;
                    if (x - vehicle_centre).abs() <= vehicle_half {
                        pixels[row * w + col] = VEHICLE_INTENSITY;
                    }
                }
            }
        }
    }

    // Rain streaks: bright, slightly slanted line segments drawn from a
    // deterministic stream (same reproducibility contract as the noise),
    // pulling the pixels they cross towards `RAIN_INTENSITY`.
    if scene.rain_density > 0.0 {
        let streaks = (scene.rain_density * w as f64).round() as usize;
        let length_px = (scene.rain_length.clamp(0.0, 1.0) * h as f64).max(1.0) as usize;
        let mut rain_state = scene_hash(scene) ^ 0x5261_696e_5261_696e;
        for _ in 0..streaks {
            let col0 = (next_uniform(&mut rain_state) * w as f64) as usize;
            let row0 = (next_uniform(&mut rain_state) * h as f64) as usize;
            // Slant: at most one column of drift over the streak's run.
            let slant = next_uniform(&mut rain_state) * 2.0 - 1.0;
            for step in 0..length_px {
                let row = row0 + step;
                if row >= h {
                    break;
                }
                let col = col0 as f64 + slant * step as f64 / length_px as f64;
                if col < 0.0 || col >= w as f64 {
                    continue;
                }
                let idx = row * w + col as usize;
                pixels[idx] = 0.5 * pixels[idx] + 0.5 * RAIN_INTENSITY;
            }
        }
    }

    // Lighting and deterministic noise.
    let lighting = scene.lighting.clamp(0.05, 1.0);
    let mut state = scene_hash(scene);
    for p in &mut pixels {
        let mut value = *p * lighting;
        if scene.noise > 0.0 {
            value += scene.noise * next_noise(&mut state);
        }
        *p = value.clamp(0.0, 1.0);
    }

    // Sensor dropout: the bottom rows (nearest the ego vehicle) go dark —
    // a dead region no lighting or noise can reach. Applied last.
    if scene.sensor_dropout > 0.0 {
        let dead_rows = (scene.sensor_dropout.clamp(0.0, 1.0) * h as f64).ceil() as usize;
        let first_dead = h.saturating_sub(dead_rows);
        for p in &mut pixels[first_dead * w..] {
            *p = 0.0;
        }
    }
    Vector::from_vec(pixels)
}

/// Cheap deterministic hash of the scene parameters used to seed the noise
/// sequence, so identical scenes always render to identical images.
fn scene_hash(scene: &SceneParams) -> u64 {
    let mut state: u64 = 0x9e37_79b9_7f4a_7c15;
    let mut mix = |v: f64| {
        state ^= v.to_bits();
        state = state.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        state ^= state >> 27;
    };
    for v in [
        scene.curvature,
        scene.ego_offset,
        scene.heading_error,
        scene.lighting,
        scene.noise,
        scene.traffic_distance,
        if scene.adjacent_traffic { 1.0 } else { 0.0 },
    ] {
        mix(v);
    }
    // The scenario-diversity dimensions join the hash only when active, so
    // legacy scenes (every new knob zeroed) keep their historical noise
    // stream bit for bit.
    if scene.occlusion > 0.0 {
        mix(scene.occlusion);
        mix(scene.occlusion_position);
    }
    if scene.rain_density > 0.0 {
        mix(scene.rain_density);
        mix(scene.rain_length);
    }
    if scene.sensor_dropout > 0.0 {
        mix(scene.sensor_dropout);
    }
    if scene.dashed_lanes {
        mix(1.0);
    }
    state
}

/// One uniform draw in `[0, 1)` from the xorshift stream.
fn next_uniform(state: &mut u64) -> f64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    (*state >> 11) as f64 / (1u64 << 53) as f64
}

/// xorshift-based pseudo-normal noise in roughly `[-2, 2]` (sum of uniforms).
fn next_noise(state: &mut u64) -> f64 {
    let mut sum = 0.0;
    for _ in 0..4 {
        sum += next_uniform(state);
    }
    (sum - 2.0) * 1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> SceneConfig {
        SceneConfig::small()
    }

    /// Mean column index of the brightest pixel per row, a proxy for where
    /// the road is in the image.
    fn road_centre_of_mass(image: &Vector, config: &SceneConfig) -> f64 {
        let mut total = 0.0;
        let mut weight = 0.0;
        for row in 0..config.height {
            for col in 0..config.width {
                let v = image[row * config.width + col];
                if v > 0.4 {
                    total += col as f64 * v;
                    weight += v;
                }
            }
        }
        total / weight.max(1e-9)
    }

    #[test]
    fn image_has_expected_size_and_range() {
        let image = render_scene(&SceneParams::nominal(), &config());
        assert_eq!(image.len(), config().pixel_count());
        assert!(image.iter().all(|v| (0.0..=1.0).contains(v)));
    }

    #[test]
    fn rendering_is_deterministic() {
        let scene = SceneParams::nominal().with_curvature(0.3);
        let a = render_scene(&scene, &config());
        let b = render_scene(&scene, &config());
        assert_eq!(a, b);
    }

    #[test]
    fn right_bend_shifts_road_to_the_right() {
        let cfg = config();
        let straight = render_scene(&SceneParams::nominal(), &cfg);
        let right = render_scene(&SceneParams::nominal().with_curvature(0.9), &cfg);
        let left = render_scene(&SceneParams::nominal().with_curvature(-0.9), &cfg);
        let c_straight = road_centre_of_mass(&straight, &cfg);
        let c_right = road_centre_of_mass(&right, &cfg);
        let c_left = road_centre_of_mass(&left, &cfg);
        assert!(
            c_right > c_straight + 0.5,
            "right: {c_right}, straight: {c_straight}"
        );
        assert!(
            c_left < c_straight - 0.5,
            "left: {c_left}, straight: {c_straight}"
        );
    }

    #[test]
    fn lighting_darkens_the_image() {
        let cfg = config();
        let day = render_scene(&SceneParams::nominal(), &cfg);
        let mut dusk_scene = SceneParams::nominal();
        dusk_scene.lighting = 0.5;
        let dusk = render_scene(&dusk_scene, &cfg);
        assert!(dusk.mean() < day.mean() * 0.7);
    }

    #[test]
    fn traffic_participant_darkens_adjacent_lane() {
        let cfg = config();
        let without = render_scene(&SceneParams::nominal(), &cfg);
        let with = render_scene(&SceneParams::nominal().with_adjacent_traffic(0.3), &cfg);
        // The vehicle is dark, so the image mean must drop.
        assert!(with.mean() < without.mean());
        assert_ne!(with, without);
    }

    #[test]
    fn noise_perturbs_but_respects_bounds() {
        let cfg = config();
        let mut scene = SceneParams::nominal();
        scene.noise = 0.05;
        let noisy = render_scene(&scene, &cfg);
        let clean = render_scene(&SceneParams::nominal(), &cfg);
        assert_ne!(noisy, clean);
        assert!(noisy.iter().all(|v| (0.0..=1.0).contains(v)));
    }

    #[test]
    fn different_scenes_produce_different_images() {
        let cfg = config();
        let a = render_scene(&SceneParams::nominal().with_curvature(0.2), &cfg);
        let b = render_scene(&SceneParams::nominal().with_curvature(0.4), &cfg);
        assert_ne!(a, b);
    }

    /// FNV-style fold of an image into one checksum, for the golden tests.
    fn image_checksum(image: &Vector) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for v in image.iter() {
            hash ^= v.to_bits();
            hash = hash.wrapping_mul(0x0100_0000_01b3);
        }
        hash
    }

    /// Golden checksums captured from the pre-diversity renderer: scenes
    /// with every new knob at its default must render bit-identically to
    /// the historical code, at both image geometries.
    #[test]
    fn legacy_scenes_render_bit_identically_to_the_historical_code() {
        let mut scene = SceneParams::nominal()
            .with_curvature(0.6)
            .with_ego_offset(-0.2)
            .with_adjacent_traffic(0.4);
        scene.noise = 0.03;
        scene.lighting = 0.8;
        assert_eq!(
            image_checksum(&render_scene(&scene, &SceneConfig::small())),
            0x97c7_822e_9367_7ff0
        );
        assert_eq!(
            image_checksum(&render_scene(&scene, &SceneConfig::medium())),
            0xa236_5cbd_2a67_88d9
        );
    }

    #[test]
    fn occlusion_darkens_the_road_centre() {
        let cfg = config();
        let clear = render_scene(&SceneParams::nominal(), &cfg);
        let occluded = render_scene(&SceneParams::nominal().with_occlusion(0.6, 0.3), &cfg);
        assert_ne!(clear, occluded);
        // The leading vehicle is dark, so the mean drops, and at least one
        // centre-marking pixel is swallowed.
        assert!(occluded.mean() < clear.mean());
        let changed_dark = (0..cfg.pixel_count())
            .filter(|&i| clear[i] >= MARKING_INTENSITY && occluded[i] <= VEHICLE_INTENSITY + 1e-9)
            .count();
        assert!(changed_dark > 0, "no marking pixel was occluded");
    }

    #[test]
    fn larger_occlusion_hides_more_marking() {
        let cfg = config();
        let clear = render_scene(&SceneParams::nominal(), &cfg);
        let hidden = |fraction: f64| {
            let img = render_scene(&SceneParams::nominal().with_occlusion(fraction, 0.4), &cfg);
            (0..cfg.pixel_count())
                .filter(|&i| clear[i] >= MARKING_INTENSITY && img[i] <= VEHICLE_INTENSITY + 1e-9)
                .count()
        };
        assert!(hidden(0.9) > hidden(0.3));
    }

    #[test]
    fn rain_streaks_brighten_and_scale_with_density() {
        let cfg = config();
        let mut dusk = SceneParams::nominal();
        dusk.lighting = 0.6;
        let dry = render_scene(&dusk, &cfg);
        let drizzle = render_scene(&dusk.with_rain(0.3, 0.3), &cfg);
        let downpour = render_scene(&dusk.with_rain(2.0, 0.5), &cfg);
        assert_ne!(dry, drizzle);
        // Streaks pull dark dusk pixels up towards the rain intensity.
        assert!(drizzle.mean() > dry.mean());
        assert!(downpour.mean() > drizzle.mean());
        assert!(downpour.iter().all(|v| (0.0..=1.0).contains(v)));
    }

    #[test]
    fn dashed_centre_marking_removes_rows_but_keeps_edges() {
        let cfg = config();
        let solid = render_scene(&SceneParams::nominal(), &cfg);
        let dashed = render_scene(&SceneParams::nominal().with_dashed_lanes(), &cfg);
        assert_ne!(solid, dashed);
        // Dashing only ever removes marking pixels, never adds any.
        for i in 0..cfg.pixel_count() {
            assert!(dashed[i] <= solid[i] + 1e-9);
        }
        // Some rows keep their centre marking ("on" dash phase), some lose
        // it — and every removed pixel sits near the centre column (the
        // straight nominal scene keeps the road centred), so the edge
        // markings are untouched.
        let centre_cols = (cfg.width / 2 - 2)..(cfg.width / 2 + 2);
        let mut rows_with_centre = 0usize;
        let mut rows_without_centre = 0usize;
        for row in 0..cfg.height {
            let mut row_changed = false;
            for col in 0..cfg.width {
                if dashed[row * cfg.width + col] != solid[row * cfg.width + col] {
                    row_changed = true;
                    assert!(
                        centre_cols.contains(&col),
                        "dashing touched non-centre pixel ({row}, {col})"
                    );
                }
            }
            if row_changed {
                rows_without_centre += 1;
            } else {
                rows_with_centre += 1;
            }
        }
        assert!(rows_with_centre > 0 && rows_without_centre > 0);
    }

    #[test]
    fn sensor_dropout_blanks_the_bottom_rows() {
        let cfg = config();
        let mut scene = SceneParams::nominal();
        scene.sensor_dropout = 0.25;
        scene.noise = 0.03;
        let img = render_scene(&scene, &cfg);
        let dead_rows = (0.25 * cfg.height as f64).ceil() as usize;
        for row in cfg.height - dead_rows..cfg.height {
            for col in 0..cfg.width {
                assert_eq!(img[row * cfg.width + col], 0.0);
            }
        }
        // The live region above still shows the road.
        assert!(img.iter().any(|&v| v > 0.0));
    }
}

//! Grey-scale renderer mapping [`SceneParams`] to flattened images.

use dpv_tensor::Vector;

use crate::{SceneConfig, SceneParams};

/// Pixel intensity of the road surface.
const ROAD_INTENSITY: f64 = 0.55;
/// Pixel intensity of lane markings.
const MARKING_INTENSITY: f64 = 0.95;
/// Pixel intensity of off-road terrain.
const TERRAIN_INTENSITY: f64 = 0.2;
/// Pixel intensity of a traffic participant.
const VEHICLE_INTENSITY: f64 = 0.05;

/// Renders a scene into a flattened single-channel image of
/// `config.height * config.width` pixels in row-major order, row 0 at the
/// *top* (far away) and the last row at the *bottom* (next to the ego
/// vehicle). All pixel values are clamped to `[0, 1]`, matching the paper's
/// note that training inputs are rescaled to the unit interval.
///
/// The projection is a cheap pin-hole approximation: each image row `r`
/// corresponds to a longitudinal distance, the road centre shifts laterally
/// with `curvature * distance²`, `heading_error * distance` and the ego
/// offset, and the apparent road width shrinks towards the horizon.
///
/// Deterministic for a given scene except for the additive noise, which is
/// generated from a small deterministic hash of the scene parameters so the
/// whole pipeline stays reproducible without threading RNGs through the
/// renderer.
pub fn render_scene(scene: &SceneParams, config: &SceneConfig) -> Vector {
    let h = config.height;
    let w = config.width;
    let mut pixels = vec![0.0f64; h * w];
    let widthf = w as f64;

    for row in 0..h {
        // distance 0 at the bottom row, 1 at the top row (horizon).
        let distance = 1.0 - (row as f64 + 0.5) / h as f64;
        // Lateral position of the road centre in pixels.
        let centre = widthf / 2.0 - scene.ego_offset * widthf * 0.35
            + scene.curvature * distance * distance * widthf * 0.45
            + scene.heading_error * distance * widthf * 0.9;
        // Perspective: the road narrows towards the horizon.
        let half_width = widthf * (0.42 - 0.30 * distance);
        let marking_half_width = (half_width * 0.06).max(0.5);

        for col in 0..w {
            let x = col as f64 + 0.5;
            let offset = x - centre;
            let idx = row * w + col;
            let value = if offset.abs() <= half_width {
                // Lane markings at the centre and at both road edges.
                let near_centre = offset.abs() <= marking_half_width;
                let near_edge = (offset.abs() - half_width).abs() <= marking_half_width;
                if near_centre || near_edge {
                    MARKING_INTENSITY
                } else {
                    ROAD_INTENSITY
                }
            } else {
                TERRAIN_INTENSITY
            };
            pixels[idx] = value;
        }

        // Adjacent-lane traffic participant: a dark box one lane to the left.
        if scene.adjacent_traffic {
            let traffic_distance = scene.traffic_distance.clamp(0.0, 1.0);
            // The participant spans a band of rows around its distance.
            if (distance - traffic_distance).abs() <= 0.12 {
                let lane_shift = half_width * 1.1;
                let vehicle_centre = centre - lane_shift;
                let vehicle_half = (half_width * 0.35).max(1.0);
                for col in 0..w {
                    let x = col as f64 + 0.5;
                    if (x - vehicle_centre).abs() <= vehicle_half {
                        pixels[row * w + col] = VEHICLE_INTENSITY;
                    }
                }
            }
        }
    }

    // Lighting and deterministic noise.
    let lighting = scene.lighting.clamp(0.05, 1.0);
    let mut state = scene_hash(scene);
    for p in &mut pixels {
        let mut value = *p * lighting;
        if scene.noise > 0.0 {
            value += scene.noise * next_noise(&mut state);
        }
        *p = value.clamp(0.0, 1.0);
    }
    Vector::from_vec(pixels)
}

/// Cheap deterministic hash of the scene parameters used to seed the noise
/// sequence, so identical scenes always render to identical images.
fn scene_hash(scene: &SceneParams) -> u64 {
    let mut state: u64 = 0x9e37_79b9_7f4a_7c15;
    for v in [
        scene.curvature,
        scene.ego_offset,
        scene.heading_error,
        scene.lighting,
        scene.noise,
        scene.traffic_distance,
        if scene.adjacent_traffic { 1.0 } else { 0.0 },
    ] {
        state ^= v.to_bits();
        state = state.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        state ^= state >> 27;
    }
    state
}

/// xorshift-based pseudo-normal noise in roughly `[-2, 2]` (sum of uniforms).
fn next_noise(state: &mut u64) -> f64 {
    let mut sum = 0.0;
    for _ in 0..4 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        let uniform = (*state >> 11) as f64 / (1u64 << 53) as f64;
        sum += uniform;
    }
    (sum - 2.0) * 1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> SceneConfig {
        SceneConfig::small()
    }

    /// Mean column index of the brightest pixel per row, a proxy for where
    /// the road is in the image.
    fn road_centre_of_mass(image: &Vector, config: &SceneConfig) -> f64 {
        let mut total = 0.0;
        let mut weight = 0.0;
        for row in 0..config.height {
            for col in 0..config.width {
                let v = image[row * config.width + col];
                if v > 0.4 {
                    total += col as f64 * v;
                    weight += v;
                }
            }
        }
        total / weight.max(1e-9)
    }

    #[test]
    fn image_has_expected_size_and_range() {
        let image = render_scene(&SceneParams::nominal(), &config());
        assert_eq!(image.len(), config().pixel_count());
        assert!(image.iter().all(|v| (0.0..=1.0).contains(v)));
    }

    #[test]
    fn rendering_is_deterministic() {
        let scene = SceneParams::nominal().with_curvature(0.3);
        let a = render_scene(&scene, &config());
        let b = render_scene(&scene, &config());
        assert_eq!(a, b);
    }

    #[test]
    fn right_bend_shifts_road_to_the_right() {
        let cfg = config();
        let straight = render_scene(&SceneParams::nominal(), &cfg);
        let right = render_scene(&SceneParams::nominal().with_curvature(0.9), &cfg);
        let left = render_scene(&SceneParams::nominal().with_curvature(-0.9), &cfg);
        let c_straight = road_centre_of_mass(&straight, &cfg);
        let c_right = road_centre_of_mass(&right, &cfg);
        let c_left = road_centre_of_mass(&left, &cfg);
        assert!(
            c_right > c_straight + 0.5,
            "right: {c_right}, straight: {c_straight}"
        );
        assert!(
            c_left < c_straight - 0.5,
            "left: {c_left}, straight: {c_straight}"
        );
    }

    #[test]
    fn lighting_darkens_the_image() {
        let cfg = config();
        let day = render_scene(&SceneParams::nominal(), &cfg);
        let mut dusk_scene = SceneParams::nominal();
        dusk_scene.lighting = 0.5;
        let dusk = render_scene(&dusk_scene, &cfg);
        assert!(dusk.mean() < day.mean() * 0.7);
    }

    #[test]
    fn traffic_participant_darkens_adjacent_lane() {
        let cfg = config();
        let without = render_scene(&SceneParams::nominal(), &cfg);
        let with = render_scene(&SceneParams::nominal().with_adjacent_traffic(0.3), &cfg);
        // The vehicle is dark, so the image mean must drop.
        assert!(with.mean() < without.mean());
        assert_ne!(with, without);
    }

    #[test]
    fn noise_perturbs_but_respects_bounds() {
        let cfg = config();
        let mut scene = SceneParams::nominal();
        scene.noise = 0.05;
        let noisy = render_scene(&scene, &cfg);
        let clean = render_scene(&SceneParams::nominal(), &cfg);
        assert_ne!(noisy, clean);
        assert!(noisy.iter().all(|v| (0.0..=1.0).contains(v)));
    }

    #[test]
    fn different_scenes_produce_different_images() {
        let cfg = config();
        let a = render_scene(&SceneParams::nominal().with_curvature(0.2), &cfg);
        let b = render_scene(&SceneParams::nominal().with_curvature(0.4), &cfg);
        assert_ne!(a, b);
    }
}

//! Ground-truth affordances: the next waypoint offset and orientation.

use dpv_tensor::Vector;
use serde::{Deserialize, Serialize};

use crate::{SceneConfig, SceneParams};

/// Number of affordance outputs produced by the direct-perception network.
pub const AFFORDANCE_DIM: usize = 2;

/// The affordance the paper's network predicts: where the vehicle should go
/// next. Positive values mean "to the right".
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Affordance {
    /// Lateral offset of the next waypoint relative to the current ego
    /// position, normalised to roughly `[-1, 1]` (positive = steer right).
    pub waypoint_offset: f64,
    /// Orientation (heading) the vehicle should adopt at the waypoint,
    /// normalised to roughly `[-1, 1]` (positive = turned right).
    pub orientation: f64,
}

impl Affordance {
    /// Packs the affordance into the 2-vector used as a network target.
    pub fn to_vector(self) -> Vector {
        Vector::from_slice(&[self.waypoint_offset, self.orientation])
    }

    /// Unpacks an affordance from a network output vector.
    ///
    /// # Panics
    /// Panics when `v.len() < 2`.
    pub fn from_vector(v: &Vector) -> Self {
        assert!(v.len() >= AFFORDANCE_DIM, "affordance vector too short");
        Self {
            waypoint_offset: v[0],
            orientation: v[1],
        }
    }
}

/// Computes the ground-truth affordance for a scene.
///
/// A constant-curvature road of curvature `k` followed for a look-ahead
/// distance `L` displaces the waypoint laterally by `k·L²/2` and rotates the
/// required heading by `k·L`. The ego's own lateral offset and heading error
/// must be compensated, so they enter with a negative sign. Nuisance
/// parameters (lighting, noise, traffic — and the scenario-diversity
/// dimensions: occlusion, rain, dashed markings, sensor dropout) do **not**
/// influence the affordance — this is precisely the causal structure that
/// makes the "traffic participants" property unlearnable from
/// close-to-output layers (information bottleneck, experiment E3).
///
/// The result is returned as the 2-vector `(waypoint_offset, orientation)`.
pub fn affordance(scene: &SceneParams, config: &SceneConfig) -> Vector {
    let lookahead = config.lookahead;
    let curvature_term = 0.5 * scene.curvature * lookahead * lookahead;
    let waypoint_offset =
        (curvature_term - 0.8 * scene.ego_offset - 0.3 * scene.heading_error * lookahead)
            .clamp(-1.0, 1.0);
    let orientation = (scene.curvature * lookahead - 0.6 * scene.heading_error).clamp(-1.0, 1.0);
    Affordance {
        waypoint_offset,
        orientation,
    }
    .to_vector()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SceneConfig {
        SceneConfig::small()
    }

    #[test]
    fn straight_centred_scene_has_zero_affordance() {
        let a = affordance(&SceneParams::nominal(), &cfg());
        assert_eq!(a.as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn right_bend_requires_steering_right() {
        let a = affordance(&SceneParams::nominal().with_curvature(0.8), &cfg());
        assert!(
            a[0] > 0.2,
            "waypoint offset should be positive, got {}",
            a[0]
        );
        assert!(a[1] > 0.2, "orientation should be positive, got {}", a[1]);
    }

    #[test]
    fn left_bend_requires_steering_left() {
        let a = affordance(&SceneParams::nominal().with_curvature(-0.8), &cfg());
        assert!(a[0] < -0.2);
        assert!(a[1] < -0.2);
    }

    #[test]
    fn ego_offset_is_compensated() {
        // Sitting right of the centre requires steering left (negative offset).
        let a = affordance(&SceneParams::nominal().with_ego_offset(0.4), &cfg());
        assert!(a[0] < 0.0);
    }

    #[test]
    fn traffic_and_lighting_do_not_change_the_affordance() {
        let cfg = cfg();
        let base = SceneParams::nominal().with_curvature(0.5);
        let mut perturbed = base.with_adjacent_traffic(0.4);
        perturbed.lighting = 0.6;
        perturbed.noise = 0.03;
        assert_eq!(affordance(&base, &cfg), affordance(&perturbed, &cfg));
    }

    #[test]
    fn diversity_dimensions_do_not_change_the_affordance() {
        let cfg = cfg();
        let base = SceneParams::nominal()
            .with_curvature(-0.4)
            .with_ego_offset(0.2);
        let mut perturbed = base
            .with_occlusion(0.7, 0.3)
            .with_rain(0.8, 0.4)
            .with_dashed_lanes();
        perturbed.sensor_dropout = 0.3;
        assert_eq!(affordance(&base, &cfg), affordance(&perturbed, &cfg));
    }

    #[test]
    fn affordance_is_monotone_in_curvature() {
        let cfg = cfg();
        let mut last = f64::NEG_INFINITY;
        for i in -5..=5 {
            let k = i as f64 / 5.0;
            let a = affordance(&SceneParams::nominal().with_curvature(k), &cfg);
            assert!(a[0] >= last);
            last = a[0];
        }
    }

    #[test]
    fn affordance_roundtrips_through_struct() {
        let a = Affordance {
            waypoint_offset: 0.3,
            orientation: -0.2,
        };
        let v = a.to_vector();
        assert_eq!(Affordance::from_vector(&v), a);
        assert_eq!(v.len(), AFFORDANCE_DIM);
    }

    #[test]
    fn outputs_are_clamped_to_unit_range() {
        let a = affordance(
            &SceneParams::nominal()
                .with_curvature(5.0)
                .with_ego_offset(-3.0),
            &cfg(),
        );
        assert!(a[0] <= 1.0 && a[1] <= 1.0);
    }
}

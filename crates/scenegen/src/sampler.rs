//! Sampling scenes inside and outside the operational design domain.

use rand::Rng;

use crate::{OddViolation, SceneConfig, SceneParams};

/// Samples scene parameters from the operational design domain (ODD) — the
/// distribution the paper's training data is drawn from ("a particular
/// segment of the German A9 highway, with variations such as weather and the
/// current lane") — or from outside it, to exercise the runtime monitor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OddSampler {
    config: SceneConfig,
}

impl OddSampler {
    /// Creates a sampler for the given configuration.
    pub fn new(config: SceneConfig) -> Self {
        Self { config }
    }

    /// The configuration the sampler draws from.
    pub fn config(&self) -> &SceneConfig {
        &self.config
    }

    /// Samples a scene inside the ODD: curvature, offset, heading, lighting
    /// and noise all within the configured ranges; adjacent traffic present
    /// in roughly a third of the scenes.
    ///
    /// With [`SceneConfig::curvature_mix`] above zero, that fraction of the
    /// samples draws its curvature from a bimodal straight-or-tight-curve
    /// distribution instead of the uniform range (see
    /// [`OddSampler::sample_bimodal_curvature`]); at the default `0.0` the
    /// random stream is identical to the historical uniform sampler.
    pub fn sample_in_odd<R: Rng + ?Sized>(&self, rng: &mut R) -> SceneParams {
        let c = &self.config;
        // Short-circuit keeps the RNG stream untouched when the knob is off.
        let curvature = if c.curvature_mix > 0.0 && rng.gen_bool(c.curvature_mix.min(1.0)) {
            self.sample_bimodal_curvature(rng)
        } else {
            rng.gen_range(-c.max_curvature..=c.max_curvature)
        };
        let mut scene = SceneParams {
            curvature,
            ego_offset: rng.gen_range(-c.max_ego_offset..=c.max_ego_offset),
            heading_error: rng.gen_range(-c.max_heading_error..=c.max_heading_error),
            lighting: rng.gen_range(c.min_lighting..=1.0),
            noise: rng.gen_range(0.0..=c.max_noise),
            adjacent_traffic: rng.gen_bool(0.35),
            traffic_distance: rng.gen_range(0.0..=1.0),
            ..SceneParams::default()
        };
        // The scenario-diversity dimensions draw only when their ODD knob
        // is on, so the default configuration reproduces the historical
        // RNG stream bit for bit (same contract as `curvature_mix`).
        if c.max_occlusion > 0.0 {
            scene.occlusion = rng.gen_range(0.0..=c.max_occlusion);
            scene.occlusion_position = rng.gen_range(0.0..=1.0);
        }
        if c.max_rain > 0.0 {
            scene.rain_density = rng.gen_range(0.0..=c.max_rain);
            scene.rain_length = rng.gen_range(0.1..=0.35);
        }
        if c.dashed_lane_fraction > 0.0 {
            scene.dashed_lanes = rng.gen_bool(c.dashed_lane_fraction.min(1.0));
        }
        scene
    }

    /// Draws one curvature from the bimodal straight/tight-curve mixture:
    /// half the draws are straight scenes (|curvature| below
    /// `straight_threshold`), half are tight curves (|curvature| between
    /// `strong_bend_threshold` and `max_curvature`, either direction). Both
    /// modes lie inside the ODD, but they occupy opposite ends of the
    /// curvature range, so the resulting cut-layer activations cluster —
    /// the workload the per-cluster envelope sharding is designed for.
    pub fn sample_bimodal_curvature<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let c = &self.config;
        if rng.gen_bool(0.5) {
            rng.gen_range(-c.straight_threshold..=c.straight_threshold)
        } else {
            let magnitude = rng.gen_range(c.strong_bend_threshold..=c.max_curvature);
            if rng.gen_bool(0.5) {
                magnitude
            } else {
                -magnitude
            }
        }
    }

    /// Samples a scene satisfying `predicate`, by rejection from the ODD.
    ///
    /// # Panics
    /// Panics when no satisfying scene is found within 100 000 attempts,
    /// which indicates a predicate that is (nearly) unsatisfiable in the ODD.
    pub fn sample_where<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        predicate: impl Fn(&SceneParams) -> bool,
    ) -> SceneParams {
        for _ in 0..100_000 {
            let scene = self.sample_in_odd(rng);
            if predicate(&scene) {
                return scene;
            }
        }
        panic!("sample_where: predicate unsatisfied after 100000 rejection-sampling attempts");
    }

    /// Samples a scene exhibiting one *specific* out-of-ODD violation
    /// class: an in-ODD base scene with exactly the class's dimension
    /// pushed far outside its configured range, so per-class monitor
    /// detection rates decompose cleanly (see [`OddViolation`]).
    ///
    /// The guarantee is `!self.is_in_odd(&scene)` and
    /// `class.exhibited_by(&scene, self.config())` for every sample, for
    /// any configuration whose ODD maxima leave room above them (a
    /// positive `min_lighting` and `max_occlusion` at most 0.95; zeroed
    /// maxima for the other dimensions are handled by absolute floors).
    pub fn sample_violation<R: Rng + ?Sized>(
        &self,
        class: OddViolation,
        rng: &mut R,
    ) -> SceneParams {
        let c = &self.config;
        let mut scene = self.sample_in_odd(rng);
        match class {
            OddViolation::ExtremeCurvature => {
                // Absolute floors keep the range non-degenerate (and out
                // of the ODD) even when the configured maximum is zero.
                let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
                scene.curvature = sign
                    * rng.gen_range(
                        (c.max_curvature * 1.5).max(0.2)..=(c.max_curvature * 3.0).max(0.6),
                    );
            }
            OddViolation::Blackout => {
                // The `max` keeps the range non-empty for tiny lighting
                // minima; the final `min` guarantees the sample stays
                // below the ODD floor for any `min_lighting > 0`.
                let hi = (c.min_lighting * 0.25).max(0.021);
                scene.lighting = rng
                    .gen_range(0.02f64.min(hi)..=hi)
                    .min(c.min_lighting * 0.9);
            }
            OddViolation::FullOcclusion => {
                // Near-total occlusion by a close leading vehicle; the
                // lower edge stays above the in-ODD maximum (up to the
                // 0.98 cap — a `max_occlusion` beyond that leaves no room
                // for a distinguishable violation).
                let lo = (c.max_occlusion * 1.5)
                    .clamp(0.85, 0.95)
                    .max((c.max_occlusion + 0.02).min(0.98));
                scene.occlusion = rng.gen_range(lo..=1.0);
                scene.occlusion_position = rng.gen_range(0.1..=0.6);
            }
            OddViolation::Downpour => {
                let lo = c.max_rain * 2.0 + 0.5;
                scene.rain_density = rng.gen_range(lo..=lo + 1.0);
                scene.rain_length = rng.gen_range(0.3..=0.6);
            }
            OddViolation::SensorDropout => {
                scene.sensor_dropout = rng.gen_range(0.25..=0.6);
            }
            OddViolation::LaneDeparture => {
                let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
                scene.ego_offset = sign
                    * rng.gen_range(
                        (c.max_ego_offset * 2.0).max(0.1)..=(c.max_ego_offset * 4.0).max(0.3),
                    );
            }
        }
        scene
    }

    /// Samples a scene *outside* the ODD: at least one parameter exceeds its
    /// configured range (sharper curvature, stronger noise, darker lighting
    /// or a larger lateral offset). These are the inputs the runtime monitor
    /// is expected to flag.
    ///
    /// This is the historical *aggregate* out-of-ODD recipe (its RNG stream
    /// is pinned by regression tests); experiments that need detection
    /// rates per violation class use [`OddSampler::sample_violation`] with
    /// the [`OddViolation`] taxonomy instead.
    pub fn sample_out_of_odd<R: Rng + ?Sized>(&self, rng: &mut R) -> SceneParams {
        let c = &self.config;
        let mut scene = self.sample_in_odd(rng);
        // Pick which aspect leaves the ODD (possibly several).
        match rng.gen_range(0..4) {
            0 => {
                let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
                scene.curvature =
                    sign * rng.gen_range(c.max_curvature * 1.5..=c.max_curvature * 3.0);
            }
            1 => {
                scene.noise = rng.gen_range(c.max_noise * 4.0..=c.max_noise * 10.0 + 0.2);
            }
            2 => {
                scene.lighting = rng.gen_range(0.05..=c.min_lighting * 0.5);
            }
            _ => {
                let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
                scene.ego_offset =
                    sign * rng.gen_range(c.max_ego_offset * 2.0..=c.max_ego_offset * 4.0);
            }
        }
        scene
    }

    /// Returns `true` when every scene parameter is within the ODD ranges,
    /// including the scenario-diversity dimensions (occlusion and rain stay
    /// below their configured maxima; any sensor dropout is out of *every*
    /// ODD; dashed-vs-solid markings are an in-ODD rendering variant).
    pub fn is_in_odd(&self, scene: &SceneParams) -> bool {
        let c = &self.config;
        scene.curvature.abs() <= c.max_curvature
            && scene.ego_offset.abs() <= c.max_ego_offset
            && scene.heading_error.abs() <= c.max_heading_error
            && scene.lighting >= c.min_lighting
            && scene.lighting <= 1.0
            && scene.noise <= c.max_noise
            && scene.occlusion <= c.max_occlusion
            && scene.rain_density <= c.max_rain
            && scene.sensor_dropout == 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn in_odd_samples_are_in_odd() {
        let sampler = OddSampler::new(SceneConfig::small());
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..200 {
            let scene = sampler.sample_in_odd(&mut rng);
            assert!(sampler.is_in_odd(&scene), "scene out of ODD: {scene:?}");
        }
    }

    #[test]
    fn out_of_odd_samples_leave_the_odd() {
        let sampler = OddSampler::new(SceneConfig::small());
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let scene = sampler.sample_out_of_odd(&mut rng);
            assert!(
                !sampler.is_in_odd(&scene),
                "scene unexpectedly in ODD: {scene:?}"
            );
        }
    }

    #[test]
    fn sample_where_respects_predicate() {
        let sampler = OddSampler::new(SceneConfig::small());
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..20 {
            let scene = sampler.sample_where(&mut rng, |s| s.curvature > 0.5);
            assert!(scene.curvature > 0.5);
        }
    }

    #[test]
    fn sampling_covers_both_traffic_cases() {
        let sampler = OddSampler::new(SceneConfig::small());
        let mut rng = StdRng::seed_from_u64(3);
        let scenes: Vec<_> = (0..200).map(|_| sampler.sample_in_odd(&mut rng)).collect();
        assert!(scenes.iter().any(|s| s.adjacent_traffic));
        assert!(scenes.iter().any(|s| !s.adjacent_traffic));
    }

    #[test]
    fn config_accessor_returns_configuration() {
        let cfg = SceneConfig::medium();
        let sampler = OddSampler::new(cfg);
        assert_eq!(sampler.config(), &cfg);
    }

    #[test]
    fn zero_curvature_mix_reproduces_the_uniform_stream() {
        let uniform = OddSampler::new(SceneConfig::small());
        let explicit = OddSampler::new(SceneConfig {
            curvature_mix: 0.0,
            ..SceneConfig::small()
        });
        let mut rng_a = StdRng::seed_from_u64(9);
        let mut rng_b = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(
                uniform.sample_in_odd(&mut rng_a),
                explicit.sample_in_odd(&mut rng_b)
            );
        }
    }

    #[test]
    fn curvature_mix_is_bimodal_and_stays_in_odd() {
        let cfg = SceneConfig {
            curvature_mix: 1.0,
            ..SceneConfig::small()
        };
        let sampler = OddSampler::new(cfg);
        let mut rng = StdRng::seed_from_u64(10);
        let scenes: Vec<_> = (0..400).map(|_| sampler.sample_in_odd(&mut rng)).collect();
        let straight = scenes
            .iter()
            .filter(|s| s.curvature.abs() <= cfg.straight_threshold)
            .count();
        let tight = scenes
            .iter()
            .filter(|s| s.curvature.abs() >= cfg.strong_bend_threshold)
            .count();
        // Every sample falls in one of the two modes, none in between …
        assert_eq!(straight + tight, scenes.len());
        assert!(straight > 100, "straight mode undersampled: {straight}");
        assert!(tight > 100, "tight-curve mode undersampled: {tight}");
        // … both curve directions appear, and everything stays in the ODD.
        assert!(scenes
            .iter()
            .any(|s| s.curvature > cfg.strong_bend_threshold));
        assert!(scenes
            .iter()
            .any(|s| s.curvature < -cfg.strong_bend_threshold));
        for scene in &scenes {
            assert!(sampler.is_in_odd(scene), "scene left the ODD: {scene:?}");
        }
    }

    /// FNV-style fold of sampled scenes into one checksum.
    fn stream_checksum(scenes: &[SceneParams]) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        let mut fold = |v: f64| {
            hash ^= v.to_bits();
            hash = hash.wrapping_mul(0x0100_0000_01b3);
        };
        for s in scenes {
            for v in [
                s.curvature,
                s.ego_offset,
                s.heading_error,
                s.lighting,
                s.noise,
                if s.adjacent_traffic { 1.0 } else { 0.0 },
                s.traffic_distance,
            ] {
                fold(v);
            }
        }
        hash
    }

    /// Golden checksums captured from the pre-diversity sampler: with every
    /// new knob at its zero default, both sampling streams must match the
    /// historical code bit for bit.
    #[test]
    fn default_config_reproduces_the_historical_rng_stream() {
        let sampler = OddSampler::new(SceneConfig::small());
        let mut rng = StdRng::seed_from_u64(12345);
        let in_odd: Vec<_> = (0..64).map(|_| sampler.sample_in_odd(&mut rng)).collect();
        assert_eq!(stream_checksum(&in_odd), 0x13f5_e52d_2431_faea);
        let out_of_odd: Vec<_> = (0..64)
            .map(|_| sampler.sample_out_of_odd(&mut rng))
            .collect();
        assert_eq!(stream_checksum(&out_of_odd), 0x090e_1342_5760_3631);
        // And the zeroed knobs really stay zeroed.
        for s in in_odd.iter().chain(&out_of_odd) {
            assert_eq!(s.occlusion, 0.0);
            assert_eq!(s.rain_density, 0.0);
            assert_eq!(s.sensor_dropout, 0.0);
            assert!(!s.dashed_lanes);
        }
    }

    #[test]
    fn diverse_config_samples_cover_every_dimension_and_stay_in_odd() {
        let cfg = SceneConfig::diverse();
        let sampler = OddSampler::new(cfg);
        let mut rng = StdRng::seed_from_u64(21);
        let scenes: Vec<_> = (0..400).map(|_| sampler.sample_in_odd(&mut rng)).collect();
        for s in &scenes {
            assert!(sampler.is_in_odd(s), "diverse sample left the ODD: {s:?}");
        }
        assert!(scenes
            .iter()
            .any(|s| s.occlusion >= cfg.occlusion_threshold));
        assert!(scenes
            .iter()
            .any(|s| s.rain_density >= cfg.heavy_rain_threshold));
        assert!(scenes.iter().any(|s| s.dashed_lanes));
        assert!(scenes.iter().any(|s| !s.dashed_lanes));
        assert!(scenes.iter().all(|s| s.sensor_dropout == 0.0));
    }

    #[test]
    fn violation_samples_exhibit_their_class_and_leave_the_odd() {
        // Under both the legacy config (occlusion/rain disabled in the ODD)
        // and the diverse one, every class sample must leave the ODD and
        // exhibit exactly its own dimension's violation.
        for cfg in [SceneConfig::small(), SceneConfig::diverse()] {
            let sampler = OddSampler::new(cfg);
            let mut rng = StdRng::seed_from_u64(31);
            for class in OddViolation::ALL {
                for _ in 0..100 {
                    let scene = sampler.sample_violation(class, &mut rng);
                    assert!(
                        !sampler.is_in_odd(&scene),
                        "{class} sample stayed in ODD: {scene:?}"
                    );
                    assert!(
                        class.exhibited_by(&scene, &cfg),
                        "{class} sample does not exhibit its class: {scene:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn violation_samples_survive_degenerate_odd_configurations() {
        // Zeroed maxima, a lighting floor below the historical blackout
        // range, and an occlusion ceiling close to 1 must neither panic
        // (empty `gen_range`) nor break the out-of-ODD guarantee.
        let cfg = SceneConfig {
            max_curvature: 0.0,
            max_ego_offset: 0.0,
            min_lighting: 0.05,
            max_occlusion: 0.95,
            ..SceneConfig::small()
        };
        let sampler = OddSampler::new(cfg);
        let mut rng = StdRng::seed_from_u64(41);
        for class in OddViolation::ALL {
            for _ in 0..50 {
                let scene = sampler.sample_violation(class, &mut rng);
                assert!(!sampler.is_in_odd(&scene), "{class}: {scene:?}");
                assert!(class.exhibited_by(&scene, &cfg), "{class}: {scene:?}");
            }
        }
    }

    #[test]
    fn partial_curvature_mix_keeps_the_uniform_component() {
        let cfg = SceneConfig {
            curvature_mix: 0.5,
            ..SceneConfig::small()
        };
        let sampler = OddSampler::new(cfg);
        let mut rng = StdRng::seed_from_u64(11);
        let scenes: Vec<_> = (0..400).map(|_| sampler.sample_in_odd(&mut rng)).collect();
        // Mid-range curvatures (between the two modes) can only come from the
        // uniform component, which half the draws still use.
        let mid = scenes
            .iter()
            .filter(|s| {
                s.curvature.abs() > cfg.straight_threshold
                    && s.curvature.abs() < cfg.strong_bend_threshold
            })
            .count();
        assert!(
            mid > 40,
            "uniform component missing: {mid} mid-range scenes"
        );
    }
}

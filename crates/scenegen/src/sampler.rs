//! Sampling scenes inside and outside the operational design domain.

use rand::Rng;

use crate::{SceneConfig, SceneParams};

/// Samples scene parameters from the operational design domain (ODD) — the
/// distribution the paper's training data is drawn from ("a particular
/// segment of the German A9 highway, with variations such as weather and the
/// current lane") — or from outside it, to exercise the runtime monitor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OddSampler {
    config: SceneConfig,
}

impl OddSampler {
    /// Creates a sampler for the given configuration.
    pub fn new(config: SceneConfig) -> Self {
        Self { config }
    }

    /// The configuration the sampler draws from.
    pub fn config(&self) -> &SceneConfig {
        &self.config
    }

    /// Samples a scene inside the ODD: curvature, offset, heading, lighting
    /// and noise all within the configured ranges; adjacent traffic present
    /// in roughly a third of the scenes.
    pub fn sample_in_odd<R: Rng + ?Sized>(&self, rng: &mut R) -> SceneParams {
        let c = &self.config;
        SceneParams {
            curvature: rng.gen_range(-c.max_curvature..=c.max_curvature),
            ego_offset: rng.gen_range(-c.max_ego_offset..=c.max_ego_offset),
            heading_error: rng.gen_range(-c.max_heading_error..=c.max_heading_error),
            lighting: rng.gen_range(c.min_lighting..=1.0),
            noise: rng.gen_range(0.0..=c.max_noise),
            adjacent_traffic: rng.gen_bool(0.35),
            traffic_distance: rng.gen_range(0.0..=1.0),
        }
    }

    /// Samples a scene satisfying `predicate`, by rejection from the ODD.
    ///
    /// # Panics
    /// Panics when no satisfying scene is found within 100 000 attempts,
    /// which indicates a predicate that is (nearly) unsatisfiable in the ODD.
    pub fn sample_where<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        predicate: impl Fn(&SceneParams) -> bool,
    ) -> SceneParams {
        for _ in 0..100_000 {
            let scene = self.sample_in_odd(rng);
            if predicate(&scene) {
                return scene;
            }
        }
        panic!("sample_where: predicate unsatisfied after 100000 rejection-sampling attempts");
    }

    /// Samples a scene *outside* the ODD: at least one parameter exceeds its
    /// configured range (sharper curvature, stronger noise, darker lighting
    /// or a larger lateral offset). These are the inputs the runtime monitor
    /// is expected to flag.
    pub fn sample_out_of_odd<R: Rng + ?Sized>(&self, rng: &mut R) -> SceneParams {
        let c = &self.config;
        let mut scene = self.sample_in_odd(rng);
        // Pick which aspect leaves the ODD (possibly several).
        match rng.gen_range(0..4) {
            0 => {
                let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
                scene.curvature =
                    sign * rng.gen_range(c.max_curvature * 1.5..=c.max_curvature * 3.0);
            }
            1 => {
                scene.noise = rng.gen_range(c.max_noise * 4.0..=c.max_noise * 10.0 + 0.2);
            }
            2 => {
                scene.lighting = rng.gen_range(0.05..=c.min_lighting * 0.5);
            }
            _ => {
                let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
                scene.ego_offset =
                    sign * rng.gen_range(c.max_ego_offset * 2.0..=c.max_ego_offset * 4.0);
            }
        }
        scene
    }

    /// Returns `true` when every scene parameter is within the ODD ranges.
    pub fn is_in_odd(&self, scene: &SceneParams) -> bool {
        let c = &self.config;
        scene.curvature.abs() <= c.max_curvature
            && scene.ego_offset.abs() <= c.max_ego_offset
            && scene.heading_error.abs() <= c.max_heading_error
            && scene.lighting >= c.min_lighting
            && scene.lighting <= 1.0
            && scene.noise <= c.max_noise
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn in_odd_samples_are_in_odd() {
        let sampler = OddSampler::new(SceneConfig::small());
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..200 {
            let scene = sampler.sample_in_odd(&mut rng);
            assert!(sampler.is_in_odd(&scene), "scene out of ODD: {scene:?}");
        }
    }

    #[test]
    fn out_of_odd_samples_leave_the_odd() {
        let sampler = OddSampler::new(SceneConfig::small());
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let scene = sampler.sample_out_of_odd(&mut rng);
            assert!(
                !sampler.is_in_odd(&scene),
                "scene unexpectedly in ODD: {scene:?}"
            );
        }
    }

    #[test]
    fn sample_where_respects_predicate() {
        let sampler = OddSampler::new(SceneConfig::small());
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..20 {
            let scene = sampler.sample_where(&mut rng, |s| s.curvature > 0.5);
            assert!(scene.curvature > 0.5);
        }
    }

    #[test]
    fn sampling_covers_both_traffic_cases() {
        let sampler = OddSampler::new(SceneConfig::small());
        let mut rng = StdRng::seed_from_u64(3);
        let scenes: Vec<_> = (0..200).map(|_| sampler.sample_in_odd(&mut rng)).collect();
        assert!(scenes.iter().any(|s| s.adjacent_traffic));
        assert!(scenes.iter().any(|s| !s.adjacent_traffic));
    }

    #[test]
    fn config_accessor_returns_configuration() {
        let cfg = SceneConfig::medium();
        let sampler = OddSampler::new(cfg);
        assert_eq!(sampler.config(), &cfg);
    }
}

//! Dataset builders: rendered scenes paired with affordance targets or
//! property labels, generated in parallel.

use crossbeam::thread;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dpv_nn::{Dataset, NnError};
use dpv_tensor::Vector;

use crate::{affordance, render_scene, OddSampler, PropertyKind, SceneConfig, SceneParams};

/// Configuration for dataset generation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeneratorConfig {
    /// Scene / image configuration.
    pub scene: SceneConfig,
    /// Number of examples to generate.
    pub samples: usize,
    /// Base RNG seed; generation is deterministic given the seed.
    pub seed: u64,
    /// Number of worker threads used for rendering (1 = sequential).
    pub threads: usize,
}

impl GeneratorConfig {
    /// A small configuration suitable for unit tests and doc examples.
    pub fn small(samples: usize) -> Self {
        Self {
            scene: SceneConfig::small(),
            samples,
            seed: 7,
            threads: 1,
        }
    }

    /// Like [`GeneratorConfig::small`], but over the scenario-diverse ODD
    /// ([`SceneConfig::diverse`]), under which every [`PropertyKind`] is
    /// satisfiable.
    pub fn diverse(samples: usize) -> Self {
        Self {
            scene: SceneConfig::diverse(),
            ..Self::small(samples)
        }
    }
}

/// A generated dataset together with the hidden scenes that produced it.
/// Keeping the scenes around lets callers derive additional labels (e.g. a
/// second property) without re-rendering.
#[derive(Debug, Clone)]
pub struct DatasetBundle {
    /// Rendered input images.
    pub images: Vec<Vector>,
    /// The hidden scene parameters, aligned with `images`.
    pub scenes: Vec<SceneParams>,
}

impl DatasetBundle {
    /// Generates `config.samples` ODD scenes and renders them, using up to
    /// `config.threads` worker threads.
    pub fn generate(config: &GeneratorConfig) -> Self {
        let sampler = OddSampler::new(config.scene);
        let mut rng = StdRng::seed_from_u64(config.seed);
        let scenes: Vec<SceneParams> = (0..config.samples)
            .map(|_| sampler.sample_in_odd(&mut rng))
            .collect();
        let images = render_all(&scenes, &config.scene, config.threads);
        Self { images, scenes }
    }

    /// Generates a bundle in which roughly half the scenes satisfy
    /// `property` and half do not — the balanced labelling the paper's
    /// characterizer training assumes.
    ///
    /// # Panics
    /// Panics when `property` is unsatisfiable under the scene
    /// configuration (check [`PropertyKind::satisfiable_in`] first; the
    /// scenario-diversity properties need their ODD dimension enabled,
    /// e.g. via [`crate::SceneConfig::diverse`]).
    pub fn generate_balanced(config: &GeneratorConfig, property: PropertyKind) -> Self {
        assert!(
            property.satisfiable_in(&config.scene),
            "property {property} is unsatisfiable under this scene configuration; \
             enable its ODD dimension (e.g. SceneConfig::diverse())"
        );
        let sampler = OddSampler::new(config.scene);
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut scenes = Vec::with_capacity(config.samples);
        for i in 0..config.samples {
            let want_positive = i % 2 == 0;
            let scene = sampler.sample_where(&mut rng, |s| {
                property.holds(s, &config.scene) == want_positive
            });
            scenes.push(scene);
        }
        let images = render_all(&scenes, &config.scene, config.threads);
        Self { images, scenes }
    }

    /// Number of examples in the bundle.
    pub fn len(&self) -> usize {
        self.images.len()
    }

    /// Returns `true` when the bundle holds no examples.
    pub fn is_empty(&self) -> bool {
        self.images.is_empty()
    }

    /// Builds the affordance-regression dataset (image → waypoint/orientation).
    ///
    /// # Errors
    /// Propagates dataset-construction errors (an empty bundle).
    pub fn to_perception_dataset(&self, scene_config: &SceneConfig) -> Result<Dataset, NnError> {
        let targets: Vec<Vector> = self
            .scenes
            .iter()
            .map(|s| affordance(s, scene_config))
            .collect();
        Dataset::new(self.images.clone(), targets)
    }

    /// Builds a binary-label dataset for `property` (image → {0, 1}).
    ///
    /// # Errors
    /// Propagates dataset-construction errors (an empty bundle).
    pub fn to_property_dataset(
        &self,
        property: PropertyKind,
        scene_config: &SceneConfig,
    ) -> Result<Dataset, NnError> {
        let targets: Vec<Vector> = self
            .scenes
            .iter()
            .map(|s| {
                Vector::from_slice(&[if property.holds(s, scene_config) {
                    1.0
                } else {
                    0.0
                }])
            })
            .collect();
        Dataset::new(self.images.clone(), targets)
    }

    /// Ground-truth labels of `property` for every example.
    pub fn property_labels(&self, property: PropertyKind, scene_config: &SceneConfig) -> Vec<bool> {
        self.scenes
            .iter()
            .map(|s| property.holds(s, scene_config))
            .collect()
    }
}

fn render_all(scenes: &[SceneParams], config: &SceneConfig, threads: usize) -> Vec<Vector> {
    let threads = threads.max(1);
    if threads == 1 || scenes.len() < 2 * threads {
        return scenes.iter().map(|s| render_scene(s, config)).collect();
    }
    let chunk = scenes.len().div_ceil(threads);
    let mut rendered: Vec<Vec<Vector>> = Vec::new();
    thread::scope(|scope| {
        let handles: Vec<_> = scenes
            .chunks(chunk)
            .map(|part| {
                scope.spawn(move |_| {
                    part.iter()
                        .map(|s| render_scene(s, config))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for handle in handles {
            rendered.push(handle.join().expect("render worker panicked"));
        }
    })
    .expect("render scope panicked");
    rendered.into_iter().flatten().collect()
}

/// Convenience wrapper: generates the perception (affordance regression)
/// dataset in one call.
///
/// # Errors
/// Propagates dataset-construction errors.
pub fn perception_dataset(config: &GeneratorConfig) -> Result<Dataset, NnError> {
    DatasetBundle::generate(config).to_perception_dataset(&config.scene)
}

/// Convenience wrapper: generates a balanced binary dataset for `property`.
///
/// # Errors
/// Propagates dataset-construction errors.
pub fn characterizer_dataset(
    config: &GeneratorConfig,
    property: PropertyKind,
) -> Result<Dataset, NnError> {
    DatasetBundle::generate_balanced(config, property).to_property_dataset(property, &config.scene)
}

/// Generates raw `(image, label)` pairs for `property`, useful when the
/// caller wants to attach its own featureisation (e.g. the characterizer
/// training in `dpv-core`, which featurises through the perception network).
pub fn property_examples<R: Rng + ?Sized>(
    config: &SceneConfig,
    property: PropertyKind,
    samples: usize,
    rng: &mut R,
) -> Vec<(Vector, bool)> {
    assert!(
        property.satisfiable_in(config),
        "property {property} is unsatisfiable under this scene configuration; \
         enable its ODD dimension (e.g. SceneConfig::diverse())"
    );
    let sampler = OddSampler::new(*config);
    (0..samples)
        .map(|i| {
            let want_positive = i % 2 == 0;
            let scene = sampler.sample_where(rng, |s| property.holds(s, config) == want_positive);
            (render_scene(&scene, config), want_positive)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_produces_requested_count() {
        let bundle = DatasetBundle::generate(&GeneratorConfig::small(25));
        assert_eq!(bundle.len(), 25);
        assert!(!bundle.is_empty());
        assert_eq!(bundle.images[0].len(), SceneConfig::small().pixel_count());
    }

    #[test]
    fn generation_is_deterministic_for_a_seed() {
        let a = DatasetBundle::generate(&GeneratorConfig::small(10));
        let b = DatasetBundle::generate(&GeneratorConfig::small(10));
        assert_eq!(a.images, b.images);
        assert_eq!(a.scenes, b.scenes);
    }

    #[test]
    fn parallel_rendering_matches_sequential() {
        let mut cfg = GeneratorConfig::small(32);
        let sequential = DatasetBundle::generate(&cfg);
        cfg.threads = 4;
        let parallel = DatasetBundle::generate(&cfg);
        assert_eq!(sequential.images, parallel.images);
    }

    #[test]
    fn perception_dataset_has_affordance_targets() {
        let data = perception_dataset(&GeneratorConfig::small(12)).unwrap();
        assert_eq!(data.len(), 12);
        assert_eq!(data.target_dim(), crate::AFFORDANCE_DIM);
        assert!(data.targets().iter().all(|t| t.norm_linf() <= 1.0));
    }

    #[test]
    fn balanced_generation_balances_labels() {
        let cfg = GeneratorConfig::small(40);
        let bundle = DatasetBundle::generate_balanced(&cfg, PropertyKind::BendsRight);
        let labels = bundle.property_labels(PropertyKind::BendsRight, &cfg.scene);
        let positives = labels.iter().filter(|&&l| l).count();
        assert_eq!(positives, 20);
    }

    #[test]
    fn characterizer_dataset_targets_are_binary() {
        let data =
            characterizer_dataset(&GeneratorConfig::small(20), PropertyKind::BendsLeft).unwrap();
        assert!(data.targets().iter().all(|t| t[0] == 0.0 || t[0] == 1.0));
    }

    #[test]
    fn property_examples_alternate_labels() {
        let mut rng = StdRng::seed_from_u64(5);
        let examples =
            property_examples(&SceneConfig::small(), PropertyKind::Straight, 10, &mut rng);
        assert_eq!(examples.len(), 10);
        assert!(examples.iter().step_by(2).all(|(_, l)| *l));
        assert!(examples.iter().skip(1).step_by(2).all(|(_, l)| !*l));
    }

    #[test]
    fn balanced_generation_covers_the_diversity_properties() {
        let cfg = GeneratorConfig::diverse(30);
        for property in [
            PropertyKind::Occluded,
            PropertyKind::HeavyRain,
            PropertyKind::DashedLane,
        ] {
            let bundle = DatasetBundle::generate_balanced(&cfg, property);
            let labels = bundle.property_labels(property, &cfg.scene);
            assert_eq!(labels.iter().filter(|&&l| l).count(), 15, "{property}");
        }
    }

    #[test]
    #[should_panic(expected = "unsatisfiable")]
    fn balanced_generation_rejects_unsatisfiable_properties_early() {
        let _ =
            DatasetBundle::generate_balanced(&GeneratorConfig::small(10), PropertyKind::Occluded);
    }
}

//! The out-of-ODD taxonomy: *named* ways a scene can leave the operational
//! design domain.
//!
//! The assume-guarantee argument quantifies over the ODD, so monitor
//! experiments must measure detection *per way of leaving it* — a monitor
//! that reliably flags blackouts can still be blind to occlusions, and one
//! aggregate "extreme scene" rate hides exactly that. Each [`OddViolation`]
//! class owns a sampler ([`crate::OddSampler::sample_violation`]) that
//! starts from an in-ODD scene and pushes one dimension far outside its
//! configured range, so detection rates decompose cleanly by class.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::{SceneConfig, SceneParams};

/// One named way a scene leaves the operational design domain.
///
/// Every class pushes exactly one scene dimension beyond the ODD ranges of a
/// [`SceneConfig`]; the distances are chosen so the sampled scene is outside
/// the ODD for *any* configuration (a class whose dimension is disabled in
/// the ODD, e.g. occlusion under [`SceneConfig::small`], violates it with
/// any positive amount and is pushed near the physical maximum instead).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OddViolation {
    /// Road curvature far beyond `max_curvature` (1.5–3× the ODD limit):
    /// a hairpin the highway ODD never contains.
    ExtremeCurvature,
    /// Lighting far below `min_lighting` — an unlit tunnel or night scene.
    Blackout,
    /// A leading vehicle hiding (nearly) all lane markings: occlusion near
    /// 1, well above any in-ODD `max_occlusion`.
    FullOcclusion,
    /// Rain-streak density far above `max_rain` — a downpour drowning the
    /// frame in streaks.
    Downpour,
    /// A dead sensor region: a band of blanked rows no in-ODD scene has.
    SensorDropout,
    /// Lateral ego offset far beyond `max_ego_offset` — the vehicle has
    /// left its lane entirely.
    LaneDeparture,
}

impl OddViolation {
    /// All violation classes, in a stable order.
    pub const ALL: [OddViolation; 6] = [
        OddViolation::ExtremeCurvature,
        OddViolation::Blackout,
        OddViolation::FullOcclusion,
        OddViolation::Downpour,
        OddViolation::SensorDropout,
        OddViolation::LaneDeparture,
    ];

    /// Short kebab-case name, used in report tables and benchmark metric
    /// ids (`detection-<name>-permille`).
    pub fn name(self) -> &'static str {
        match self {
            OddViolation::ExtremeCurvature => "extreme-curvature",
            OddViolation::Blackout => "blackout",
            OddViolation::FullOcclusion => "full-occlusion",
            OddViolation::Downpour => "downpour",
            OddViolation::SensorDropout => "sensor-dropout",
            OddViolation::LaneDeparture => "lane-departure",
        }
    }

    /// One-line description for reports.
    pub fn describe(self) -> &'static str {
        match self {
            OddViolation::ExtremeCurvature => "curvature far beyond the ODD maximum",
            OddViolation::Blackout => "lighting far below the ODD minimum",
            OddViolation::FullOcclusion => "lane markings fully hidden by a leading vehicle",
            OddViolation::Downpour => "rain density far beyond the ODD maximum",
            OddViolation::SensorDropout => "a dead sensor band across the frame",
            OddViolation::LaneDeparture => "lateral offset far beyond the ODD maximum",
        }
    }

    /// Returns `true` when `scene` exhibits *this* violation relative to
    /// `config` (it may exhibit others too).
    pub fn exhibited_by(self, scene: &SceneParams, config: &SceneConfig) -> bool {
        match self {
            OddViolation::ExtremeCurvature => scene.curvature.abs() > config.max_curvature,
            OddViolation::Blackout => scene.lighting < config.min_lighting,
            OddViolation::FullOcclusion => scene.occlusion > config.max_occlusion,
            OddViolation::Downpour => scene.rain_density > config.max_rain,
            OddViolation::SensorDropout => scene.sensor_dropout > 0.0,
            OddViolation::LaneDeparture => scene.ego_offset.abs() > config.max_ego_offset,
        }
    }
}

impl fmt::Display for OddViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_display_matches() {
        let mut names: Vec<_> = OddViolation::ALL.iter().map(|v| v.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), OddViolation::ALL.len());
        assert_eq!(format!("{}", OddViolation::Blackout), "blackout");
        assert!(!OddViolation::Downpour.describe().is_empty());
    }

    #[test]
    fn exhibited_by_matches_the_violated_dimension() {
        let cfg = SceneConfig::small();
        let nominal = SceneParams::nominal();
        for class in OddViolation::ALL {
            assert!(
                !class.exhibited_by(&nominal, &cfg),
                "{class} claims the nominal scene"
            );
        }
        let mut dark = nominal;
        dark.lighting = 0.1;
        assert!(OddViolation::Blackout.exhibited_by(&dark, &cfg));
        assert!(!OddViolation::Downpour.exhibited_by(&dark, &cfg));
        let occluded = nominal.with_occlusion(0.9, 0.3);
        assert!(OddViolation::FullOcclusion.exhibited_by(&occluded, &cfg));
    }
}

//! # dpv-shard
//!
//! Cluster-partitioned ("sharded") activation envelopes.
//!
//! The paper's assume-guarantee argument verifies the network tail against
//! a *single* envelope `S̃` over all training-data activations. When the
//! operational domain is multi-modal — straight-road and tight-curve scenes
//! produce activations in different regions of the cut layer — one octagon
//! must cover both modes plus the empty space between them, which makes the
//! verified premise loose and the runtime monitor permissive.
//!
//! This crate partitions the activations instead:
//!
//! * [`kmeans`] / [`select_k`] — a dependency-free, deterministic k-means
//!   (k-means++ seeding, empty-cluster reseeding, inertia-based cluster
//!   count sweep) over cut-layer activation vectors; [`kmeans_seeded`]
//!   restarts the same Lloyd loop from caller-provided centroids, which is
//!   how a retrained checkpoint's envelope is refit without re-rolling
//!   shard identity ([`ShardedEnvelope::refit`]).
//! * [`ShardedEnvelope`] — one [`dpv_monitor::ActivationEnvelope`] per
//!   cluster, with the invariant that the shard **union contains every
//!   sample** the monolithic envelope was built from while each shard is a
//!   *subset* of the monolithic envelope.
//! * [`ShardedMonitor`] — the runtime-monitor mode in which containment
//!   means membership in *any* shard: strictly tighter out-of-ODD detection
//!   than the single octagon, at `k` containment checks per frame.
//!
//! Verification per shard — one MILP per cluster, each over a tighter start
//! region — lives in `dpv-core` (`VerificationProblem::verify_sharded`),
//! which dispatches the per-shard proof obligations across its parallel
//! work-list and aggregates verdicts deterministically.
//!
//! ## Example
//!
//! ```
//! use dpv_shard::{ShardConfig, ShardedEnvelope, ShardedMonitor};
//! use dpv_nn::{Activation, NetworkBuilder};
//! use dpv_tensor::Vector;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let net = NetworkBuilder::new(4)
//!     .dense(6, &mut rng)
//!     .activation(Activation::ReLU)
//!     .dense(2, &mut rng)
//!     .build();
//! let cut = 1;
//! // Deliberately bimodal inputs: two blobs.
//! let samples: Vec<Vector> = (0..60)
//!     .map(|i| Vector::filled(4, if i % 2 == 0 { 0.1 } else { 2.0 }))
//!     .collect();
//! let envelope =
//!     ShardedEnvelope::from_inputs(&net, cut, &samples, 0.0, &ShardConfig::auto(4)).unwrap();
//! let monitor = ShardedMonitor::new(net.clone(), cut, envelope).unwrap();
//! assert!(monitor.check(&samples[0]).is_in_odd());
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod envelope;
mod kmeans;
mod monitor;

pub use envelope::{ClusterSelection, ShardConfig, ShardedEnvelope};
pub use kmeans::{kmeans, kmeans_auto, kmeans_seeded, select_k, Clustering, KMeansConfig};
pub use monitor::ShardedMonitor;

//! The sharded activation envelope: one [`ActivationEnvelope`] per
//! activation cluster.

use serde::{Deserialize, Serialize};

use dpv_monitor::{union_contained_mask, ActivationEnvelope, EnvelopeSoa, MonitorError};
use dpv_nn::Network;
use dpv_tensor::{Matrix, Vector};

use crate::kmeans::nearest_centroid;
use crate::{kmeans, kmeans_auto, KMeansConfig};

/// How many shards (clusters) to build.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ClusterSelection {
    /// Exactly this many clusters (clamped to the sample count; clusters
    /// that would end up empty are dropped).
    Fixed(usize),
    /// Sweep `1..=max` clusters and keep adding clusters while the k-means
    /// inertia improves by at least `min_gain` (relative) — the elbow rule.
    Auto {
        /// Largest cluster count the sweep may choose.
        max: usize,
        /// Minimum relative inertia improvement required to accept one more
        /// cluster.
        min_gain: f64,
    },
}

/// Configuration of a sharded-envelope build.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShardConfig {
    /// Cluster-count policy.
    pub clusters: ClusterSelection,
    /// The k-means hyper-parameters (seeded, deterministic).
    pub kmeans: KMeansConfig,
}

impl ShardConfig {
    /// Exactly `k` clusters.
    pub fn fixed(k: usize) -> Self {
        Self {
            clusters: ClusterSelection::Fixed(k),
            kmeans: KMeansConfig::default(),
        }
    }

    /// Inertia-swept cluster count up to `max` clusters with the default
    /// 20% minimum relative gain.
    pub fn auto(max: usize) -> Self {
        Self {
            clusters: ClusterSelection::Auto { max, min_gain: 0.2 },
            kmeans: KMeansConfig::default(),
        }
    }

    /// Returns a copy using `seed` for the k-means initialisation.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.kmeans.seed = seed;
        self
    }
}

impl Default for ShardConfig {
    fn default() -> Self {
        Self::auto(8)
    }
}

/// A partition of the training-data activations into clusters, with one
/// [`ActivationEnvelope`] (octagon-lite hull, optionally widened) per
/// cluster.
///
/// # Invariant
///
/// The union of the shards contains **every** activation sample the
/// monolithic envelope was built from: each sample belongs to exactly one
/// k-means cluster, and that cluster's envelope is the hull of its members.
/// Because every shard hulls a *subset* of the samples, each shard is also
/// contained in the monolithic envelope — so the sharded union is a subset
/// of the single envelope that still covers all the data. Verification per
/// shard therefore keeps the assume-guarantee contract intact (monitor the
/// union at run time), while each per-shard MILP sees a strictly tighter
/// start region.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardedEnvelope {
    layer: usize,
    margin: f64,
    samples: usize,
    centroids: Vec<Vector>,
    shards: Vec<ActivationEnvelope>,
}

impl ShardedEnvelope {
    /// Clusters already-computed cut-layer activations and builds one
    /// envelope per cluster.
    ///
    /// # Errors
    /// Returns [`MonitorError::EmptyActivations`] when `activations` is
    /// empty.
    pub fn from_activations(
        layer: usize,
        activations: &[Vector],
        margin: f64,
        config: &ShardConfig,
    ) -> Result<Self, MonitorError> {
        if activations.is_empty() {
            return Err(MonitorError::EmptyActivations);
        }
        let clustering = match config.clusters {
            ClusterSelection::Fixed(k) => kmeans(activations, k.max(1), &config.kmeans),
            ClusterSelection::Auto { max, min_gain } => {
                kmeans_auto(activations, max.max(1), min_gain, &config.kmeans)
            }
        };
        let mut members: Vec<Vec<Vector>> = vec![Vec::new(); clustering.k()];
        for (sample, &cluster) in activations.iter().zip(&clustering.assignments) {
            members[cluster].push(sample.clone());
        }
        let shards = members
            .iter()
            .map(|m| ActivationEnvelope::from_activations(layer, m, margin))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            layer,
            margin,
            samples: activations.len(),
            centroids: clustering.centroids,
            shards,
        })
    }

    /// Clusters activations with [`crate::kmeans_seeded`], starting the
    /// Lloyd loop from `centroids` instead of a k-means++ draw, and builds
    /// one envelope per resulting cluster. This is the construction behind
    /// [`ShardedEnvelope::refit`]: seeding at a previous envelope's
    /// converged centroids keeps shard identity stable across checkpoints.
    ///
    /// # Errors
    /// Returns [`MonitorError::EmptyActivations`] when `activations` is
    /// empty.
    ///
    /// # Panics
    /// Panics when `centroids` is empty or dimensionally inconsistent with
    /// the activations (see [`crate::kmeans_seeded`]).
    pub fn from_activations_seeded(
        layer: usize,
        activations: &[Vector],
        margin: f64,
        centroids: &[Vector],
        kmeans: &KMeansConfig,
    ) -> Result<Self, MonitorError> {
        if activations.is_empty() {
            return Err(MonitorError::EmptyActivations);
        }
        let clustering = crate::kmeans_seeded(activations, centroids, kmeans);
        let mut members: Vec<Vec<Vector>> = vec![Vec::new(); clustering.k()];
        for (sample, &cluster) in activations.iter().zip(&clustering.assignments) {
            members[cluster].push(sample.clone());
        }
        let shards = members
            .iter()
            .map(|m| ActivationEnvelope::from_activations(layer, m, margin))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            layer,
            margin,
            samples: activations.len(),
            centroids: clustering.centroids,
            shards,
        })
    }

    /// Rebuilds the envelope for a **retrained** network: runs `inputs`
    /// through `network` up to this envelope's cut layer and re-clusters
    /// the fresh activations seeded at this envelope's converged centroids
    /// (same margin, same layer). Shard `i` of the result tracks the
    /// activation mode shard `i` described before the retrain, so
    /// per-shard proof obligations line up across checkpoints — the
    /// re-clustering half of continuous delta-verification.
    ///
    /// # Errors
    /// Returns [`MonitorError::EmptyActivations`] when `inputs` is empty.
    ///
    /// # Panics
    /// Panics when the envelope's layer is out of range for `network` or
    /// the network's cut-layer width differs from the envelope dimension.
    pub fn refit(
        &self,
        network: &Network,
        inputs: &[Vector],
        kmeans: &KMeansConfig,
    ) -> Result<Self, MonitorError> {
        let activations: Vec<Vector> = inputs
            .iter()
            .map(|x| network.activation_at(self.layer, x))
            .collect();
        Self::from_activations_seeded(
            self.layer,
            &activations,
            self.margin,
            &self.centroids,
            kmeans,
        )
    }

    /// Runs every input through `network` up to `layer` and shards the
    /// resulting activations.
    ///
    /// # Errors
    /// Returns [`MonitorError::EmptyActivations`] when `inputs` is empty.
    ///
    /// # Panics
    /// Panics when `layer` is out of range for the network.
    pub fn from_inputs(
        network: &Network,
        layer: usize,
        inputs: &[Vector],
        margin: f64,
        config: &ShardConfig,
    ) -> Result<Self, MonitorError> {
        let activations: Vec<Vector> = inputs
            .iter()
            .map(|x| network.activation_at(layer, x))
            .collect();
        Self::from_activations(layer, &activations, margin, config)
    }

    /// The cut layer the shards describe.
    pub fn layer(&self) -> usize {
        self.layer
    }

    /// The widening margin applied to every shard.
    pub fn margin(&self) -> f64 {
        self.margin
    }

    /// Total number of activation samples across all shards.
    pub fn sample_count(&self) -> usize {
        self.samples
    }

    /// Dimension of the monitored activation vector.
    pub fn dim(&self) -> usize {
        self.shards[0].dim()
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The per-cluster envelopes, indexed by shard id.
    pub fn shards(&self) -> &[ActivationEnvelope] {
        &self.shards
    }

    /// One shard's envelope.
    pub fn shard(&self, index: usize) -> &ActivationEnvelope {
        &self.shards[index]
    }

    /// The k-means centroids, aligned with [`ShardedEnvelope::shards`].
    pub fn centroids(&self) -> &[Vector] {
        &self.centroids
    }

    /// Returns `true` when the activation lies inside **any** shard — the
    /// sharded notion of "in ODD".
    pub fn contains(&self, activation: &Vector, tol: f64) -> bool {
        self.shards.iter().any(|s| s.contains(activation, tol))
    }

    /// Index of the first shard containing the activation, when one does.
    pub fn containing_shard(&self, activation: &Vector, tol: f64) -> Option<usize> {
        self.shards.iter().position(|s| s.contains(activation, tol))
    }

    /// Index of the shard whose centroid is nearest to the activation (ties
    /// break to the lowest index). Defined for every activation, inside the
    /// union or not — the monitor reports violations against this shard.
    pub fn nearest_shard(&self, activation: &Vector) -> usize {
        nearest_centroid(&self.centroids, activation).0
    }

    /// Flattens every shard into the SoA containment layout, aligned with
    /// [`ShardedEnvelope::shards`]. The flattening is rebuilt on demand (it
    /// is deliberately *not* part of the serialised/compared envelope
    /// state); callers on a hot path — the [`crate::ShardedMonitor`] —
    /// build it once and cache it.
    pub fn soa_shards(&self) -> Vec<EnvelopeSoa> {
        self.shards.iter().map(EnvelopeSoa::from_envelope).collect()
    }

    /// Fraction of `activations` inside the shard union (1.0 when empty).
    ///
    /// Routed through the batched SoA union sweep
    /// ([`dpv_monitor::union_contained_mask`]) — the same containment code
    /// path the batched [`crate::ShardedMonitor::check_frames`] uses, so
    /// coverage statistics cannot drift from monitor verdicts.
    pub fn coverage(&self, activations: &[Vector], tol: f64) -> f64 {
        if activations.is_empty() {
            return 1.0;
        }
        let frames = Matrix::from_columns(activations)
            .expect("coverage activations must share one dimension");
        let mask = union_contained_mask(&self.soa_shards(), &frames, tol);
        mask.count_contained() as f64 / activations.len() as f64
    }

    /// Folds every shard back into a single monolithic envelope (the join of
    /// the shard hulls). For a single shard this is exactly the envelope the
    /// monolithic path would have built from the same samples.
    pub fn merged(&self) -> ActivationEnvelope {
        let mut merged = self.shards[0].clone();
        for shard in &self.shards[1..] {
            merged = merged.merge(shard);
        }
        merged
    }

    /// Total box volume of the shard union relative to a reference envelope,
    /// computed as `Σ_shards Π_dims (shard width / reference width)` — each
    /// shard's volume is expressed in units of the reference box's volume,
    /// so the products stay in `[0, 1]` and never overflow. Dimensions where
    /// the reference has zero width contribute a neutral factor. A value
    /// below `1.0` means the shards jointly cover strictly less volume than
    /// the reference (the sharding win); `k = 1` yields exactly `1.0`
    /// against the monolithic envelope of the same samples.
    pub fn box_volume_ratio(&self, reference: &ActivationEnvelope) -> f64 {
        self.shards
            .iter()
            .map(|shard| {
                shard
                    .neuron_bounds()
                    .iter()
                    .zip(reference.neuron_bounds())
                    .map(|(s, r)| {
                        if r.width() > 0.0 {
                            s.width() / r.width()
                        } else {
                            1.0
                        }
                    })
                    .product::<f64>()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Clustered activations: two blobs far apart in a 4-d space.
    fn bimodal_activations(n: usize, seed: u64) -> Vec<Vector> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let base = if i % 2 == 0 { 0.0 } else { 5.0 };
                Vector::from_vec((0..4).map(|_| base + rng.gen_range(-0.4..0.4)).collect())
            })
            .collect()
    }

    #[test]
    fn union_contains_every_training_activation() {
        let acts = bimodal_activations(80, 1);
        let sharded =
            ShardedEnvelope::from_activations(3, &acts, 0.0, &ShardConfig::fixed(4)).unwrap();
        assert_eq!(sharded.layer(), 3);
        assert_eq!(sharded.sample_count(), 80);
        for a in &acts {
            assert!(sharded.contains(a, 1e-12), "sample escaped the union");
            assert!(sharded.containing_shard(a, 1e-12).is_some());
        }
        assert_eq!(sharded.coverage(&acts, 1e-12), 1.0);
    }

    #[test]
    fn every_shard_is_inside_the_monolithic_envelope() {
        let acts = bimodal_activations(60, 2);
        let monolithic = ActivationEnvelope::from_activations(0, &acts, 0.0).unwrap();
        let sharded =
            ShardedEnvelope::from_activations(0, &acts, 0.0, &ShardConfig::fixed(3)).unwrap();
        for shard in sharded.shards() {
            for (s, m) in shard.neuron_bounds().iter().zip(monolithic.neuron_bounds()) {
                assert!(s.lo >= m.lo - 1e-12 && s.hi <= m.hi + 1e-12);
            }
        }
        // The union is tighter: the ratio of covered volume is below one for
        // genuinely multi-modal data.
        assert!(sharded.box_volume_ratio(&monolithic) < 1.0);
    }

    #[test]
    fn single_shard_reproduces_the_monolithic_envelope() {
        let acts = bimodal_activations(50, 3);
        let monolithic = ActivationEnvelope::from_activations(2, &acts, 0.1).unwrap();
        let sharded =
            ShardedEnvelope::from_activations(2, &acts, 0.1, &ShardConfig::fixed(1)).unwrap();
        assert_eq!(sharded.shard_count(), 1);
        assert_eq!(sharded.shard(0), &monolithic);
        assert_eq!(sharded.merged(), monolithic);
        let ratio = sharded.box_volume_ratio(&monolithic);
        assert!((ratio - 1.0).abs() < 1e-12);
    }

    #[test]
    fn auto_selection_finds_the_two_modes() {
        let acts = bimodal_activations(80, 4);
        let sharded =
            ShardedEnvelope::from_activations(0, &acts, 0.0, &ShardConfig::auto(6)).unwrap();
        assert_eq!(sharded.shard_count(), 2);
        // The two shards separate the modes: a point between the blobs is in
        // neither shard even though the monolithic envelope contains it.
        let gap_point = Vector::filled(4, 2.5);
        assert!(!sharded.contains(&gap_point, 1e-9));
        assert!(sharded.merged().contains(&gap_point, 1e-9));
    }

    #[test]
    fn nearest_shard_follows_the_centroids() {
        let acts = bimodal_activations(40, 5);
        let sharded =
            ShardedEnvelope::from_activations(0, &acts, 0.0, &ShardConfig::fixed(2)).unwrap();
        let low = Vector::filled(4, 0.0);
        let high = Vector::filled(4, 5.0);
        assert_ne!(sharded.nearest_shard(&low), sharded.nearest_shard(&high));
        assert_eq!(
            sharded.nearest_shard(&low),
            sharded.containing_shard(&low, 1e-6).unwrap()
        );
    }

    #[test]
    fn refit_tracks_a_retrained_network_with_stable_shard_identity() {
        use dpv_nn::{Activation, NetworkBuilder};
        let mut rng = StdRng::seed_from_u64(11);
        let net = NetworkBuilder::new(3)
            .dense(4, &mut rng)
            .activation(Activation::ReLU)
            .dense(2, &mut rng)
            .build();
        let cut = 1;
        // Bimodal inputs so two shards have distinct modes to track.
        let inputs: Vec<Vector> = (0..60)
            .map(|i| {
                let base = if i % 2 == 0 { 0.0 } else { 3.0 };
                Vector::from_vec((0..3).map(|_| base + rng.gen_range(-0.2..0.2)).collect())
            })
            .collect();
        let config = ShardConfig::fixed(2);
        let envelope = ShardedEnvelope::from_inputs(&net, cut, &inputs, 0.05, &config).unwrap();

        // "Retrain": nudge the first dense layer's weights slightly.
        let mut retrained = net.clone();
        if let dpv_nn::Layer::Dense(d) = &mut retrained.layers_mut()[0] {
            for r in 0..d.weights().rows() {
                for c in 0..d.weights().cols() {
                    d.weights_mut()[(r, c)] += 0.01 * ((r + c) as f64);
                }
            }
        }
        let refit = envelope.refit(&retrained, &inputs, &config.kmeans).unwrap();
        assert_eq!(refit.shard_count(), envelope.shard_count());
        assert_eq!(refit.layer(), envelope.layer());
        assert_eq!(refit.margin(), envelope.margin());
        // Shard identity is stable: refit centroid i stays closest to the
        // old centroid i, not to any other old centroid.
        for (i, new_c) in refit.centroids().iter().enumerate() {
            let (nearest, _) = super::nearest_centroid(envelope.centroids(), new_c);
            assert_eq!(nearest, i, "shard {i} re-rolled its identity");
        }
        // And the refit union covers the retrained network's activations.
        for x in &inputs {
            assert!(refit.contains(&retrained.activation_at(cut, x), 1e-9));
        }
    }

    #[test]
    fn empty_activations_are_an_error() {
        assert_eq!(
            ShardedEnvelope::from_activations(0, &[], 0.0, &ShardConfig::default()),
            Err(MonitorError::EmptyActivations)
        );
    }

    #[test]
    fn margin_widens_every_shard() {
        let acts = bimodal_activations(40, 6);
        let tight =
            ShardedEnvelope::from_activations(0, &acts, 0.0, &ShardConfig::fixed(2)).unwrap();
        let wide =
            ShardedEnvelope::from_activations(0, &acts, 0.3, &ShardConfig::fixed(2)).unwrap();
        assert_eq!(wide.margin(), 0.3);
        for (t, w) in tight.shards().iter().zip(wide.shards()) {
            assert!(w.neuron_bounds()[0].width() > t.neuron_bounds()[0].width());
        }
    }
}

//! Dependency-free k-means over activation vectors.
//!
//! The sharded envelope needs nothing more than Lloyd's algorithm with a
//! good seeding: the build environment has no clustering crate, and the
//! workspace's [`rand`] shim provides the only randomness. Three details
//! matter for the verification use case and are therefore implemented
//! explicitly:
//!
//! * **k-means++ seeding** — centroids are drawn proportionally to the
//!   squared distance from the already-chosen ones, so the straight-road
//!   and tight-curve activation modes of a multi-modal dataset start in
//!   different clusters instead of splitting one mode twice.
//! * **Empty-cluster reseeding** — a cluster that loses every member is
//!   re-anchored at the sample currently farthest from its assigned
//!   centroid. The sharded envelope relies on every cluster being
//!   non-empty (an empty cluster would produce an envelope over zero
//!   samples).
//! * **Determinism** — everything is driven by a caller-provided seed
//!   through the workspace's deterministic `StdRng`, so shard layouts are
//!   reproducible run to run, which the verification determinism rule
//!   (lowest-index counterexample wins) depends on.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use dpv_tensor::Vector;

/// Hyper-parameters of one k-means run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KMeansConfig {
    /// Maximum number of Lloyd iterations (assignment + mean update).
    pub max_iterations: usize,
    /// Seed of the deterministic RNG driving the k-means++ initialisation.
    pub seed: u64,
    /// Convergence threshold: iteration stops once no centroid moves
    /// farther than this (Euclidean distance).
    pub tolerance: f64,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        Self {
            max_iterations: 64,
            seed: 7,
            tolerance: 1e-9,
        }
    }
}

/// The result of a k-means run: centroids, per-sample assignments and the
/// summed squared distance of every sample to its centroid (inertia).
#[derive(Debug, Clone, PartialEq)]
pub struct Clustering {
    /// Cluster centres, indexed by cluster id.
    pub centroids: Vec<Vector>,
    /// For every input sample, the id of the cluster it belongs to.
    pub assignments: Vec<usize>,
    /// Sum over samples of the squared distance to the assigned centroid —
    /// the objective Lloyd's algorithm minimises.
    pub inertia: f64,
}

impl Clustering {
    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.len()
    }

    /// Number of members per cluster, indexed by cluster id.
    pub fn cluster_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.k()];
        for &a in &self.assignments {
            sizes[a] += 1;
        }
        sizes
    }
}

/// Squared Euclidean distance (no square root — k-means only compares).
pub(crate) fn squared_distance(a: &Vector, b: &Vector) -> f64 {
    a.iter().zip(b.iter()).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Index of the centroid nearest to `point` (ties break to the lowest
/// index, keeping assignments deterministic). Shared with the sharded
/// envelope's nearest-shard lookup so both sides use one tie-break rule.
pub(crate) fn nearest_centroid(centroids: &[Vector], point: &Vector) -> (usize, f64) {
    let mut best = 0usize;
    let mut best_d2 = f64::INFINITY;
    for (i, c) in centroids.iter().enumerate() {
        let d2 = squared_distance(c, point);
        if d2 < best_d2 {
            best = i;
            best_d2 = d2;
        }
    }
    (best, best_d2)
}

/// k-means++ initialisation: the first centroid is uniform, every later one
/// is drawn with probability proportional to the squared distance from the
/// nearest already-chosen centroid.
fn seed_centroids(samples: &[Vector], k: usize, rng: &mut StdRng) -> Vec<Vector> {
    let mut centroids = Vec::with_capacity(k);
    centroids.push(samples[rng.gen_range(0..samples.len())].clone());
    let mut dist2: Vec<f64> = samples
        .iter()
        .map(|s| squared_distance(s, &centroids[0]))
        .collect();
    while centroids.len() < k {
        let total: f64 = dist2.iter().sum();
        let pick = if total > 0.0 {
            let mut target = rng.gen_range(0.0..total);
            let mut chosen = samples.len() - 1;
            for (i, &d2) in dist2.iter().enumerate() {
                if target < d2 {
                    chosen = i;
                    break;
                }
                target -= d2;
            }
            chosen
        } else {
            // Every sample coincides with a centroid already; any index
            // works (the duplicate centroid owns an empty region that the
            // Lloyd loop's reseeding will handle or leave empty).
            rng.gen_range(0..samples.len())
        };
        let centroid = samples[pick].clone();
        for (d2, s) in dist2.iter_mut().zip(samples) {
            *d2 = d2.min(squared_distance(s, &centroid));
        }
        centroids.push(centroid);
    }
    centroids
}

/// Runs k-means over `samples` with `k` clusters (clamped to the sample
/// count). Returns deterministic, non-empty clusters whose union is exactly
/// the sample set.
///
/// # Panics
/// Panics when `samples` is empty — callers building envelopes check for
/// the empty case first and surface it as an error.
pub fn kmeans(samples: &[Vector], k: usize, config: &KMeansConfig) -> Clustering {
    assert!(!samples.is_empty(), "k-means over zero samples");
    let k = k.clamp(1, samples.len());
    let mut rng = StdRng::seed_from_u64(config.seed);
    let centroids = seed_centroids(samples, k, &mut rng);
    lloyd(samples, centroids, config)
}

/// Runs k-means over `samples` starting from the given centroids instead of
/// a fresh k-means++ draw. This is the **warm re-clustering** entry point
/// for continuous delta-verification: after a retrain shifts the cut-layer
/// activations, re-clustering seeded at the *previous* envelope's converged
/// centroids keeps shard identity stable (shard `i` tracks the mode that
/// centroid `i` already described) instead of re-rolling the partition from
/// scratch — so per-shard obligations line up across checkpoints.
///
/// The Lloyd loop (assignment, empty-cluster reseeding, convergence
/// tolerance, final empty-cluster dropping) is exactly the one behind
/// [`kmeans`]; only the initialisation differs, and no randomness is
/// consumed.
///
/// # Panics
/// Panics when `samples` or `centroids` is empty, or when a centroid's
/// dimension differs from the samples'.
pub fn kmeans_seeded(
    samples: &[Vector],
    centroids: &[Vector],
    config: &KMeansConfig,
) -> Clustering {
    assert!(!samples.is_empty(), "k-means over zero samples");
    assert!(
        !centroids.is_empty(),
        "seeded k-means needs at least one centroid"
    );
    let dim = samples[0].len();
    for c in centroids {
        assert_eq!(c.len(), dim, "seed centroid dimension mismatch");
    }
    lloyd(samples, centroids.to_vec(), config)
}

/// The shared Lloyd iteration behind [`kmeans`] and [`kmeans_seeded`]:
/// assignment, empty-cluster reseeding at the worst-fitted sample, mean
/// update with a squared-shift convergence stop, then a final assignment
/// and empty-cluster drop.
fn lloyd(samples: &[Vector], mut centroids: Vec<Vector>, config: &KMeansConfig) -> Clustering {
    let k = centroids.len();
    let dim = samples[0].len();
    let mut assignments = vec![0usize; samples.len()];
    let mut dist2 = vec![0.0f64; samples.len()];

    for _ in 0..config.max_iterations.max(1) {
        // Assignment step.
        for (i, s) in samples.iter().enumerate() {
            let (a, d2) = nearest_centroid(&centroids, s);
            assignments[i] = a;
            dist2[i] = d2;
        }
        let mut sizes = vec![0usize; k];
        for &a in &assignments {
            sizes[a] += 1;
        }
        // Empty-cluster reseeding: re-anchor at the worst-fitted sample of
        // a cluster that can spare one.
        for c in 0..k {
            if sizes[c] > 0 {
                continue;
            }
            let far = dist2
                .iter()
                .enumerate()
                .filter(|&(i, _)| sizes[assignments[i]] > 1)
                .max_by(|(_, a), (_, b)| a.partial_cmp(b).expect("finite distances"))
                .map(|(i, _)| i);
            if let Some(far) = far {
                sizes[assignments[far]] -= 1;
                assignments[far] = c;
                sizes[c] = 1;
                centroids[c] = samples[far].clone();
                dist2[far] = 0.0;
            }
        }
        // Update step.
        let mut shift2: f64 = 0.0;
        let mut sums = vec![Vector::zeros(dim); k];
        for (s, &a) in samples.iter().zip(&assignments) {
            sums[a] += s;
        }
        for c in 0..k {
            if sizes[c] == 0 {
                continue; // duplicate-point corner case; centroid stays.
            }
            let mean = sums[c].scale(1.0 / sizes[c] as f64);
            shift2 = shift2.max(squared_distance(&mean, &centroids[c]));
            centroids[c] = mean;
        }
        if shift2 <= config.tolerance * config.tolerance {
            break;
        }
    }

    // Final assignment against the converged centroids, plus inertia.
    let mut inertia = 0.0;
    for (i, s) in samples.iter().enumerate() {
        let (a, d2) = nearest_centroid(&centroids, s);
        assignments[i] = a;
        inertia += d2;
    }
    // Drop clusters that ended empty (possible only when samples contain
    // fewer distinct points than k): the sharded envelope must not carry
    // shards over zero samples.
    let mut sizes = vec![0usize; k];
    for &a in &assignments {
        sizes[a] += 1;
    }
    if sizes.contains(&0) {
        let mut remap = vec![usize::MAX; k];
        let mut kept = Vec::new();
        for (c, centroid) in centroids.into_iter().enumerate() {
            if sizes[c] > 0 {
                remap[c] = kept.len();
                kept.push(centroid);
            }
        }
        for a in &mut assignments {
            *a = remap[*a];
        }
        centroids = kept;
    }
    Clustering {
        centroids,
        assignments,
        inertia,
    }
}

/// Inertia-based `k` sweep: clusters at `k = 1..=max_k` and keeps adding
/// clusters while the inertia improves by at least `min_gain` (relative to
/// the previous `k`'s inertia) — the classic elbow rule. Returns the last
/// accepted clustering (at least one cluster), so the winner does not have
/// to be re-clustered.
pub fn kmeans_auto(
    samples: &[Vector],
    max_k: usize,
    min_gain: f64,
    config: &KMeansConfig,
) -> Clustering {
    assert!(!samples.is_empty(), "k selection over zero samples");
    let max_k = max_k.clamp(1, samples.len());
    let mut best = kmeans(samples, 1, config);
    for k in 2..=max_k {
        if best.inertia <= 0.0 {
            break; // already a perfect fit; more clusters cannot help
        }
        let candidate = kmeans(samples, k, config);
        if (best.inertia - candidate.inertia) / best.inertia < min_gain {
            break;
        }
        best = candidate;
    }
    best
}

/// The cluster count [`kmeans_auto`] settles on (at least 1).
pub fn select_k(samples: &[Vector], max_k: usize, min_gain: f64, config: &KMeansConfig) -> usize {
    kmeans_auto(samples, max_k, min_gain, config).k()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two well-separated blobs around `(0, 0)` and `(10, 10)`.
    fn two_blobs(n: usize) -> Vec<Vector> {
        let mut rng = StdRng::seed_from_u64(1);
        (0..n)
            .map(|i| {
                let base = if i % 2 == 0 { 0.0 } else { 10.0 };
                Vector::from_slice(&[
                    base + rng.gen_range(-0.5..0.5),
                    base + rng.gen_range(-0.5..0.5),
                ])
            })
            .collect()
    }

    #[test]
    fn two_blobs_are_separated_cleanly() {
        let samples = two_blobs(60);
        let clustering = kmeans(&samples, 2, &KMeansConfig::default());
        assert_eq!(clustering.k(), 2);
        // All even-index samples share a cluster, all odd-index the other.
        let first = clustering.assignments[0];
        for (i, &a) in clustering.assignments.iter().enumerate() {
            if i % 2 == 0 {
                assert_eq!(a, first);
            } else {
                assert_ne!(a, first);
            }
        }
        // Inertia of the correct 2-clustering is far below the 1-cluster fit.
        let single = kmeans(&samples, 1, &KMeansConfig::default());
        assert!(clustering.inertia < 0.1 * single.inertia);
    }

    #[test]
    fn runs_are_deterministic_given_a_seed() {
        let samples = two_blobs(40);
        let a = kmeans(&samples, 3, &KMeansConfig::default());
        let b = kmeans(&samples, 3, &KMeansConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn k_is_clamped_and_clusters_are_never_empty() {
        let samples = two_blobs(5);
        let clustering = kmeans(&samples, 12, &KMeansConfig::default());
        assert!(clustering.k() <= 5);
        assert!(clustering.cluster_sizes().iter().all(|&s| s > 0));
        assert_eq!(clustering.assignments.len(), 5);
    }

    #[test]
    fn duplicate_points_collapse_to_one_cluster() {
        let samples = vec![Vector::from_slice(&[1.0, 2.0]); 8];
        let clustering = kmeans(&samples, 4, &KMeansConfig::default());
        assert!(clustering.cluster_sizes().iter().all(|&s| s > 0));
        assert_eq!(clustering.inertia, 0.0);
    }

    #[test]
    fn inertia_decreases_with_k() {
        let samples = two_blobs(50);
        let config = KMeansConfig::default();
        let mut last = f64::INFINITY;
        for k in 1..=4 {
            let inertia = kmeans(&samples, k, &config).inertia;
            assert!(inertia <= last + 1e-9, "inertia rose at k = {k}");
            last = inertia;
        }
    }

    #[test]
    fn seeded_restart_at_converged_centroids_is_a_fixed_point() {
        let samples = two_blobs(60);
        let config = KMeansConfig::default();
        let converged = kmeans(&samples, 2, &config);
        let restarted = kmeans_seeded(&samples, &converged.centroids, &config);
        assert_eq!(restarted, converged, "converged centroids must be stable");
    }

    #[test]
    fn seeded_clustering_keeps_cluster_identity_under_drift() {
        // Seed at the converged centroids of the original blobs, then
        // cluster a shifted copy: cluster i must keep tracking blob i.
        let samples = two_blobs(60);
        let config = KMeansConfig::default();
        let original = kmeans(&samples, 2, &config);
        let drifted: Vec<Vector> = samples
            .iter()
            .map(|s| Vector::from_slice(&[s[0] + 0.3, s[1] - 0.2]))
            .collect();
        let refit = kmeans_seeded(&drifted, &original.centroids, &config);
        assert_eq!(refit.k(), 2);
        assert_eq!(refit.assignments, original.assignments, "identity drifted");
        for (new_c, old_c) in refit.centroids.iter().zip(&original.centroids) {
            assert!(
                squared_distance(new_c, old_c) < 0.3f64.powi(2) + 0.2f64.powi(2) + 1e-9,
                "centroid moved farther than the injected drift"
            );
        }
    }

    #[test]
    fn seeded_clustering_drops_empty_clusters() {
        // Eight identical points cannot support three clusters: the
        // duplicates collapse and surplus clusters are dropped.
        let samples = vec![Vector::from_slice(&[1.0, 2.0]); 8];
        let seeds = vec![
            Vector::from_slice(&[1.0, 2.0]),
            Vector::from_slice(&[5.0, 5.0]),
            Vector::from_slice(&[-4.0, 0.0]),
        ];
        let clustering = kmeans_seeded(&samples, &seeds, &KMeansConfig::default());
        assert_eq!(clustering.k(), 1);
        assert_eq!(clustering.inertia, 0.0);
        assert!(clustering.assignments.iter().all(|&a| a == 0));
    }

    #[test]
    fn select_k_finds_the_two_blobs() {
        let samples = two_blobs(60);
        let k = select_k(&samples, 6, 0.2, &KMeansConfig::default());
        assert_eq!(k, 2, "elbow should stop right after the real mode count");
    }

    #[test]
    fn select_k_on_identical_points_returns_one() {
        let samples = vec![Vector::from_slice(&[3.0]); 10];
        assert_eq!(select_k(&samples, 5, 0.2, &KMeansConfig::default()), 1);
    }
}

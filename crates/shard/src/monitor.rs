//! The sharded runtime monitor: containment in **any** shard counts as
//! in-ODD.

use std::sync::atomic::{AtomicUsize, Ordering};

use dpv_monitor::{union_contained_mask, EnvelopeSoa, MonitorError, MonitorReport, MonitorVerdict};
use dpv_nn::Network;
use dpv_tensor::Vector;

use crate::kmeans::squared_distance;
use crate::ShardedEnvelope;

/// The sharded counterpart of [`dpv_monitor::RuntimeMonitor`]: evaluates
/// the perception network up to the cut layer and checks the activation
/// against a [`ShardedEnvelope`].
///
/// Semantics: a frame is **in ODD** iff its activation lies inside *at
/// least one* shard. Because the shard union is a subset of the monolithic
/// envelope over the same data, the sharded monitor accepts everything only
/// a tighter region would — it can only *raise* out-of-ODD detection
/// relative to the single-octagon monitor, never lower it, while still
/// accepting every training-set activation (each one lies in its own
/// cluster's shard by construction).
///
/// When a frame is out of every shard, the reported violations are those of
/// the shard whose centroid is nearest to the activation — the cluster the
/// frame "should" have belonged to — so the diagnostics stay as actionable
/// as the monolithic monitor's.
///
/// Containment runs on a cached [`EnvelopeSoa`] flattening of every shard
/// (one contiguous `lo`/`hi` slice pair per shard) shared between the
/// scalar [`ShardedMonitor::check`] and the batched
/// [`ShardedMonitor::check_frames`], so the two paths cannot drift. Shard
/// union semantics are unchanged: in-ODD iff *any* shard contains the
/// activation, shards tested in index order, lowest-index shard wins.
///
/// The per-frame statistics are plain atomics (monotonic counters,
/// relaxed ordering): a [`ShardedMonitor::report`] taken while checks are
/// in flight may observe a frame before its in/out increment, but
/// quiescent reports are exact and the hot path never contends on a lock.
#[derive(Debug)]
pub struct ShardedMonitor {
    network: Network,
    cut_layer: usize,
    envelope: ShardedEnvelope,
    soa: Vec<EnvelopeSoa>,
    tolerance: f64,
    frames: AtomicUsize,
    in_odd: AtomicUsize,
    out_of_odd: AtomicUsize,
}

impl ShardedMonitor {
    /// Creates a sharded monitor for `network`, monitoring the activation
    /// after `cut_layer` (zero-based) against the shard union.
    ///
    /// # Errors
    /// Returns [`MonitorError::Mismatch`] when the cut layer is out of range
    /// or the envelope dimension does not match the network's activation
    /// dimension at that layer — the same contract as
    /// [`dpv_monitor::RuntimeMonitor::new`].
    pub fn new(
        network: Network,
        cut_layer: usize,
        envelope: ShardedEnvelope,
    ) -> Result<Self, MonitorError> {
        if cut_layer >= network.len() {
            return Err(MonitorError::Mismatch(format!(
                "cut layer {cut_layer} out of range for a network with {} layers",
                network.len()
            )));
        }
        let dim = network.layer_output_dim(cut_layer);
        if dim != envelope.dim() {
            return Err(MonitorError::Mismatch(format!(
                "sharded envelope dimension {} does not match layer dimension {dim}",
                envelope.dim()
            )));
        }
        let soa = envelope.soa_shards();
        Ok(Self {
            network,
            cut_layer,
            envelope,
            soa,
            tolerance: 1e-9,
            frames: AtomicUsize::new(0),
            in_odd: AtomicUsize::new(0),
            out_of_odd: AtomicUsize::new(0),
        })
    }

    /// The monitored cut layer.
    pub fn cut_layer(&self) -> usize {
        self.cut_layer
    }

    /// The shard union being enforced.
    pub fn envelope(&self) -> &ShardedEnvelope {
        &self.envelope
    }

    /// Sets the numerical tolerance used for containment checks.
    pub fn set_tolerance(&mut self, tolerance: f64) {
        self.tolerance = tolerance.max(0.0);
    }

    /// Computes the monitored activation for an input image.
    pub fn activation(&self, input: &Vector) -> Vector {
        self.network.activation_at(self.cut_layer, input)
    }

    /// Checks one input frame end to end (forward pass to the cut layer
    /// plus shard-union containment) and updates the statistics.
    pub fn check(&self, input: &Vector) -> MonitorVerdict {
        let activation = self.activation(input);
        self.check_activation(&activation)
    }

    /// Checks an already-computed activation against the shard union and
    /// updates the statistics.
    pub fn check_activation(&self, activation: &Vector) -> MonitorVerdict {
        let verdict = self.classify(activation);
        self.frames.fetch_add(1, Ordering::Relaxed);
        match &verdict {
            MonitorVerdict::InOdd => self.in_odd.fetch_add(1, Ordering::Relaxed),
            MonitorVerdict::OutOfOdd { .. } => self.out_of_odd.fetch_add(1, Ordering::Relaxed),
        };
        verdict
    }

    /// Checks a batch of input frames in one pass: one batched forward
    /// pass to the cut layer ([`Network::activation_at_batch`]) and one
    /// SoA union sweep over all frames and shards, with nearest-shard
    /// violation lists materialised only for the frames that escape the
    /// union.
    ///
    /// Verdicts (including violation lists) are identical to calling
    /// [`ShardedMonitor::check`] frame by frame in order; statistics are
    /// updated once for the whole batch.
    pub fn check_frames(&self, inputs: &[Vector]) -> Vec<MonitorVerdict> {
        let activations = self.network.activation_matrix_at(self.cut_layer, inputs);
        let mask = union_contained_mask(&self.soa, &activations, self.tolerance);
        let verdicts: Vec<MonitorVerdict> = (0..inputs.len())
            .map(|f| {
                if mask.is_contained(f) {
                    MonitorVerdict::InOdd
                } else {
                    let activation = activations.col_vector(f);
                    let nearest = self.envelope.nearest_shard(&activation);
                    MonitorVerdict::OutOfOdd {
                        violations: self
                            .envelope
                            .shard(nearest)
                            .violations(&activation, self.tolerance),
                    }
                }
            })
            .collect();
        let in_odd = mask.count_contained();
        self.frames.fetch_add(inputs.len(), Ordering::Relaxed);
        self.in_odd.fetch_add(in_odd, Ordering::Relaxed);
        self.out_of_odd
            .fetch_add(inputs.len() - in_odd, Ordering::Relaxed);
        verdicts
    }

    /// Pure classification without statistics side effects: in ODD iff the
    /// activation lies in any shard; otherwise the violations of the
    /// nearest shard (by centroid) are reported.
    ///
    /// Runs a *single* pass over the shards: each shard is tested for
    /// containment (returning immediately on the first hit — shard union
    /// semantics, lowest index wins) while the centroid distance is
    /// accumulated along the way, so the out-of-union path no longer
    /// re-walks every centroid after a full containment scan.
    pub fn classify(&self, activation: &Vector) -> MonitorVerdict {
        match self.locate(activation) {
            Ok(_) => MonitorVerdict::InOdd,
            Err(nearest) => MonitorVerdict::OutOfOdd {
                violations: self
                    .envelope
                    .shard(nearest)
                    .violations(activation, self.tolerance),
            },
        }
    }

    /// Single shard sweep: `Ok(index)` of the first (lowest-index) shard
    /// containing the activation, or `Err(index)` of the nearest shard by
    /// centroid (ties break to the lowest index, the k-means rule) when no
    /// shard contains it.
    fn locate(&self, activation: &Vector) -> Result<usize, usize> {
        let mut best = 0usize;
        let mut best_d2 = f64::INFINITY;
        for (i, (soa, centroid)) in self.soa.iter().zip(self.envelope.centroids()).enumerate() {
            if soa.contains(activation.as_slice(), self.tolerance) {
                return Ok(i);
            }
            let d2 = squared_distance(centroid, activation);
            if d2 < best_d2 {
                best = i;
                best_d2 = d2;
            }
        }
        Err(best)
    }

    /// Snapshot of the cumulative statistics.
    pub fn report(&self) -> MonitorReport {
        MonitorReport {
            frames: self.frames.load(Ordering::Relaxed),
            in_odd: self.in_odd.load(Ordering::Relaxed),
            out_of_odd: self.out_of_odd.load(Ordering::Relaxed),
        }
    }

    /// Resets the cumulative statistics.
    pub fn reset(&self) {
        self.frames.store(0, Ordering::Relaxed);
        self.in_odd.store(0, Ordering::Relaxed);
        self.out_of_odd.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ShardConfig;
    use dpv_monitor::RuntimeMonitor;
    use dpv_nn::{Activation, NetworkBuilder};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A network plus deliberately bimodal inputs (two input blobs).
    fn setup(seed: u64) -> (Network, Vec<Vector>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = NetworkBuilder::new(4)
            .dense(6, &mut rng)
            .activation(Activation::ReLU)
            .dense(3, &mut rng)
            .build();
        let inputs: Vec<Vector> = (0..80)
            .map(|i| {
                let base = if i % 2 == 0 { 0.0 } else { 2.0 };
                Vector::from_vec((0..4).map(|_| base + rng.gen_range(0.0..0.3)).collect())
            })
            .collect();
        (net, inputs)
    }

    #[test]
    fn training_inputs_are_never_rejected() {
        let (net, inputs) = setup(1);
        let envelope =
            ShardedEnvelope::from_inputs(&net, 1, &inputs, 0.0, &ShardConfig::fixed(4)).unwrap();
        let monitor = ShardedMonitor::new(net, 1, envelope).unwrap();
        for x in &inputs {
            assert!(monitor.check(x).is_in_odd());
        }
        let report = monitor.report();
        assert_eq!(report.frames, inputs.len());
        assert_eq!(report.out_of_odd, 0);
    }

    #[test]
    fn sharded_detection_dominates_the_monolithic_monitor() {
        let (net, inputs) = setup(2);
        let sharded_env =
            ShardedEnvelope::from_inputs(&net, 0, &inputs, 0.0, &ShardConfig::fixed(4)).unwrap();
        let mono_env = sharded_env.merged();
        let sharded = ShardedMonitor::new(net.clone(), 0, sharded_env).unwrap();
        let monolithic = RuntimeMonitor::new(net, 0, mono_env).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let mut sharded_flags = 0usize;
        let mut mono_flags = 0usize;
        for _ in 0..200 {
            // Probes across and beyond the two input modes.
            let x = Vector::from_vec((0..4).map(|_| rng.gen_range(-1.0..3.5)).collect());
            let sharded_out = !sharded.check(&x).is_in_odd();
            let mono_out = !monolithic.check(&x).is_in_odd();
            sharded_flags += usize::from(sharded_out);
            mono_flags += usize::from(mono_out);
            // Union ⊆ monolithic envelope: anything the single octagon
            // flags, the shards flag too.
            if mono_out {
                assert!(sharded_out, "sharded monitor missed a monolithic flag");
            }
        }
        assert!(
            sharded_flags > mono_flags,
            "sharding should tighten detection: {sharded_flags} vs {mono_flags}"
        );
    }

    #[test]
    fn out_of_odd_verdicts_carry_nearest_shard_violations() {
        let (net, inputs) = setup(3);
        let envelope =
            ShardedEnvelope::from_inputs(&net, 1, &inputs, 0.0, &ShardConfig::fixed(2)).unwrap();
        let monitor = ShardedMonitor::new(net, 1, envelope).unwrap();
        let far = Vector::filled(monitor.envelope().dim(), 1e3);
        match monitor.classify(&far) {
            MonitorVerdict::OutOfOdd { violations } => {
                assert!(!violations.is_empty());
                assert!(violations.iter().all(|v| v.lower <= v.upper));
            }
            MonitorVerdict::InOdd => panic!("extreme activation accepted"),
        }
    }

    #[test]
    fn constructor_validates_dimensions() {
        let (net, inputs) = setup(4);
        let envelope =
            ShardedEnvelope::from_inputs(&net, 1, &inputs, 0.0, &ShardConfig::fixed(2)).unwrap();
        assert!(ShardedMonitor::new(net.clone(), 99, envelope.clone()).is_err());
        assert!(ShardedMonitor::new(net, 2, envelope).is_err());
    }

    #[test]
    fn reset_clears_statistics_and_monitor_is_shareable() {
        let (net, inputs) = setup(5);
        let envelope =
            ShardedEnvelope::from_inputs(&net, 1, &inputs, 0.1, &ShardConfig::fixed(3)).unwrap();
        let monitor = std::sync::Arc::new(ShardedMonitor::new(net, 1, envelope).unwrap());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = monitor.clone();
                let xs = inputs.clone();
                std::thread::spawn(move || {
                    for x in &xs {
                        let _ = m.check(x);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(monitor.report().frames, 4 * inputs.len());
        monitor.reset();
        assert_eq!(monitor.report().frames, 0);
    }
}

//! Property-based tests of the sharded-envelope invariants: whatever the
//! data distribution, the cluster count or the margin, the shard union must
//! contain every training activation (the soundness the assume-guarantee
//! argument rests on), and every shard must stay inside the monolithic
//! envelope (so sharded monitoring only tightens detection).

use dpv_monitor::ActivationEnvelope;
use dpv_nn::{Activation, NetworkBuilder};
use dpv_shard::{kmeans, KMeansConfig, ShardConfig, ShardedEnvelope, ShardedMonitor};
use dpv_tensor::Vector;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random activation sets with `modes` Gaussian-ish blobs in `dim`
/// dimensions — the multi-modal shape envelope sharding targets.
fn random_activations(seed: u64, n: usize, dim: usize, modes: usize) -> Vec<Vector> {
    let mut rng = StdRng::seed_from_u64(seed);
    let centres: Vec<Vec<f64>> = (0..modes)
        .map(|_| (0..dim).map(|_| rng.gen_range(-5.0..5.0)).collect())
        .collect();
    (0..n)
        .map(|i| {
            let centre = &centres[i % modes];
            Vector::from_vec(
                centre
                    .iter()
                    .map(|c| c + rng.gen_range(-0.5..0.5))
                    .collect(),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Soundness vs. the monolithic envelope: every activation the single
    /// envelope was built from lies in the shard union, for any k.
    #[test]
    fn sharded_union_contains_every_training_activation(seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
        let n = rng.gen_range(5usize..80);
        let dim = rng.gen_range(1usize..6);
        let modes = rng.gen_range(1usize..4);
        let k = rng.gen_range(1usize..8);
        let margin = if rng.gen_bool(0.5) { 0.0 } else { 0.1 };
        let activations = random_activations(seed, n, dim, modes);

        let config = ShardConfig::fixed(k).with_seed(seed ^ 0xc105_7e28);
        let sharded =
            ShardedEnvelope::from_activations(2, &activations, margin, &config).unwrap();
        prop_assert!(sharded.shard_count() >= 1 && sharded.shard_count() <= k.min(n));
        for a in &activations {
            prop_assert!(
                sharded.contains(a, 1e-9),
                "activation escaped the shard union (n={n}, dim={dim}, k={k})"
            );
        }
        prop_assert_eq!(
            sharded.shards().iter().map(|s| s.sample_count()).sum::<usize>(),
            n
        );

        // Each shard is a subset of the monolithic envelope (so anything the
        // monolithic monitor flags, the sharded union flags too).
        let monolithic =
            ActivationEnvelope::from_activations(2, &activations, margin).unwrap();
        for shard in sharded.shards() {
            for (s, m) in shard.neuron_bounds().iter().zip(monolithic.neuron_bounds()) {
                prop_assert!(s.lo >= m.lo - 1e-9 && s.hi <= m.hi + 1e-9);
            }
        }
        // Volume sanity: each shard's box fits in the monolithic box, so
        // the summed ratio is bounded by the shard count — and a single
        // shard reproduces the monolithic envelope exactly (ratio 1). The
        // headline "strictly below 1 on multi-modal data" claim is a
        // workload property, measured by `benches/e9_sharding.rs`.
        let ratio = sharded.box_volume_ratio(&monolithic);
        prop_assert!(ratio <= sharded.shard_count() as f64 + 1e-9);
        if sharded.shard_count() == 1 {
            prop_assert!((ratio - 1.0).abs() < 1e-9);
        }
    }

    /// k-means partitions exactly: every sample is assigned, assignments
    /// index real clusters, and no cluster is empty.
    #[test]
    fn kmeans_partitions_the_samples(seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x006b_ea95);
        let n = rng.gen_range(3usize..60);
        let dim = rng.gen_range(1usize..5);
        let k = rng.gen_range(1usize..10);
        let samples = random_activations(seed, n, dim, 2);
        let clustering = kmeans(&samples, k, &KMeansConfig { seed, ..Default::default() });
        prop_assert_eq!(clustering.assignments.len(), n);
        prop_assert!(clustering.k() <= k.min(n));
        prop_assert!(clustering.assignments.iter().all(|&a| a < clustering.k()));
        prop_assert!(clustering.cluster_sizes().iter().all(|&s| s > 0));
        prop_assert!(clustering.inertia >= 0.0);
    }

    /// Batched sharded monitoring parity: `check_frames` returns the same
    /// verdicts — including the nearest-shard violation lists — as per-frame
    /// `check`, and accumulates the same report.
    #[test]
    fn sharded_check_frames_matches_per_frame_check(seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xba7c);
        let input_dim = rng.gen_range(2usize..5);
        let net = NetworkBuilder::new(input_dim)
            .dense(rng.gen_range(2usize..6), &mut rng)
            .activation(Activation::ReLU)
            .dense(rng.gen_range(2usize..4), &mut rng)
            .build();
        let training: Vec<Vector> = (0..rng.gen_range(5usize..40))
            .map(|_| {
                Vector::from_vec(
                    (0..input_dim).map(|_| rng.gen_range(-1.0..1.0)).collect(),
                )
            })
            .collect();
        let k = rng.gen_range(1usize..5);
        let config = ShardConfig::fixed(k).with_seed(seed ^ 0x51ab);
        let sharded = ShardedEnvelope::from_inputs(&net, 1, &training, 0.02, &config).unwrap();
        let batched_monitor =
            ShardedMonitor::new(net.clone(), 1, sharded.clone()).unwrap();
        let scalar_monitor = ShardedMonitor::new(net, 1, sharded).unwrap();

        // Mix in-distribution frames with far-out ones so both verdicts and
        // the escaped-frame violation path are exercised.
        let frames: Vec<Vector> = (0..rng.gen_range(0usize..80))
            .map(|_| {
                let scale = if rng.gen_bool(0.6) { 1.0 } else { 40.0 };
                Vector::from_vec(
                    (0..input_dim)
                        .map(|_| scale * rng.gen_range(-1.0..1.0))
                        .collect(),
                )
            })
            .collect();
        let batched = batched_monitor.check_frames(&frames);
        let scalar: Vec<_> = frames.iter().map(|f| scalar_monitor.check(f)).collect();
        prop_assert_eq!(&batched, &scalar);
        prop_assert_eq!(batched_monitor.report(), scalar_monitor.report());
    }

    /// `ShardedEnvelope::coverage` routes through the batched SoA union
    /// sweep; it must equal the per-activation `contains` fraction.
    #[test]
    fn sharded_coverage_equals_per_frame_containment_fraction(seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xc0fe);
        let n = rng.gen_range(5usize..60);
        let dim = rng.gen_range(1usize..5);
        let k = rng.gen_range(1usize..6);
        let activations = random_activations(seed, n, dim, 2);
        let config = ShardConfig::fixed(k).with_seed(seed ^ 0x7a11);
        let sharded =
            ShardedEnvelope::from_activations(2, &activations, 0.0, &config).unwrap();

        // Probe with a mix of training points and perturbed/far-out points.
        let probes: Vec<Vector> = activations
            .iter()
            .enumerate()
            .map(|(i, a)| {
                if i % 3 == 0 {
                    a.clone()
                } else {
                    let scale = if i % 3 == 1 { 1.0 } else { 20.0 };
                    Vector::from_vec(
                        a.as_slice()
                            .iter()
                            .map(|v| v + scale * rng.gen_range(-0.3..0.3))
                            .collect(),
                    )
                }
            })
            .collect();
        let expected = probes
            .iter()
            .filter(|p| sharded.contains(p, 1e-9))
            .count() as f64
            / probes.len() as f64;
        prop_assert_eq!(sharded.coverage(&probes, 1e-9), expected);
        prop_assert_eq!(sharded.coverage(&[], 1e-9), 1.0);
    }
}

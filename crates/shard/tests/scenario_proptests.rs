//! Property-based tests of the out-of-ODD taxonomy against the runtime
//! monitors: whatever the seed, every [`OddViolation`] class sample must be
//! rejected by the scene-parameter in-ODD check (the ground truth the
//! [`dpv_scenegen::PropertyKind`] oracles and `OddSampler::is_in_odd`
//! decide from), and the rendered frames must be flagged by both the
//! monolithic envelope monitor and the sharded monitor at high per-class
//! rates — with the sharded monitor never missing a frame the monolithic
//! one flags (the union-containment invariant).

use dpv_monitor::{ActivationEnvelope, RuntimeMonitor};
use dpv_nn::{Activation, NetworkBuilder};
use dpv_scenegen::{render_scene, OddSampler, OddViolation, SceneConfig};
use dpv_shard::{ShardConfig, ShardedEnvelope, ShardedMonitor};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Ground truth: a violation sample is never in the ODD and always
    /// exhibits its own class, under the legacy and the diverse config.
    #[test]
    fn violation_samples_are_rejected_by_the_in_odd_check(seed in 0u64..1000) {
        for cfg in [SceneConfig::small(), SceneConfig::diverse()] {
            let sampler = OddSampler::new(cfg);
            let mut rng = StdRng::seed_from_u64(seed);
            for class in OddViolation::ALL {
                let scene = sampler.sample_violation(class, &mut rng);
                prop_assert!(!sampler.is_in_odd(&scene), "{class} stayed in ODD");
                prop_assert!(
                    class.exhibited_by(&scene, &cfg),
                    "{class} sample does not exhibit its class"
                );
            }
        }
    }

    /// Monitors: per violation class, the monolithic envelope monitor
    /// flags ≥ 90% of rendered violation frames and the sharded monitor
    /// dominates it frame by frame. The envelope is built directly over
    /// rendered in-ODD pixels (an identity ReLU "network"), isolating the
    /// taxonomy from perception-training noise.
    #[test]
    fn violation_frames_are_flagged_by_both_monitors(seed in 0u64..200) {
        let cfg = SceneConfig::diverse();
        let sampler = OddSampler::new(cfg);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x0dd);
        let images: Vec<_> = (0..100)
            .map(|_| render_scene(&sampler.sample_in_odd(&mut rng), &cfg))
            .collect();
        // Pixels are non-negative, so a single ReLU layer is the identity:
        // the monitored "activation" is the frame itself.
        let net = NetworkBuilder::new(cfg.pixel_count())
            .activation(Activation::ReLU)
            .build();
        let monolithic_envelope =
            ActivationEnvelope::from_inputs(&net, 0, &images, 0.0).unwrap();
        let sharded_envelope = ShardedEnvelope::from_inputs(
            &net,
            0,
            &images,
            0.0,
            &ShardConfig::fixed(4).with_seed(seed ^ 0x5ead),
        )
        .unwrap();
        let monolithic = RuntimeMonitor::new(net.clone(), 0, monolithic_envelope).unwrap();
        let sharded = ShardedMonitor::new(net, 0, sharded_envelope).unwrap();

        // Every training frame stays accepted by both (soundness side).
        for image in &images {
            prop_assert!(monolithic.check(image).is_in_odd());
            prop_assert!(sharded.check(image).is_in_odd());
        }

        let frames = 20usize;
        for class in OddViolation::ALL {
            let mut mono_flagged = 0usize;
            let mut shard_flagged = 0usize;
            for _ in 0..frames {
                let image = render_scene(&sampler.sample_violation(class, &mut rng), &cfg);
                let mono_out = !monolithic.check(&image).is_in_odd();
                let shard_out = !sharded.check(&image).is_in_odd();
                // Union ⊆ monolithic envelope: the sharded monitor flags
                // every frame the monolithic one does.
                prop_assert!(shard_out || !mono_out, "{class}: sharded missed a mono flag");
                mono_flagged += usize::from(mono_out);
                shard_flagged += usize::from(shard_out);
            }
            prop_assert!(
                mono_flagged * 10 >= frames * 9,
                "{class}: monolithic detection {mono_flagged}/{frames} below 90%"
            );
            prop_assert!(shard_flagged >= mono_flagged);
        }
    }
}

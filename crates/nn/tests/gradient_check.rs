//! Property-based gradient and serialisation checks for whole networks.

use dpv_nn::{network_from_text, network_to_text, Activation, LossKind, NetworkBuilder};
use dpv_tensor::Vector;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds a small random dense/ReLU/batch-norm network from a seed.
fn random_network(
    seed: u64,
    input_dim: usize,
    hidden: usize,
    output_dim: usize,
) -> dpv_nn::Network {
    let mut rng = StdRng::seed_from_u64(seed);
    NetworkBuilder::new(input_dim)
        .dense(hidden, &mut rng)
        .activation(Activation::ReLU)
        .batch_norm()
        .dense(output_dim, &mut rng)
        .build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn network_forward_is_deterministic(seed in 0u64..500, xs in prop::collection::vec(-2.0f64..2.0, 4)) {
        let net = random_network(seed, 4, 6, 2);
        let x = Vector::from_vec(xs);
        prop_assert_eq!(net.forward(&x), net.forward(&x));
    }

    #[test]
    fn trace_last_equals_forward(seed in 0u64..500, xs in prop::collection::vec(-2.0f64..2.0, 5)) {
        let net = random_network(seed, 5, 7, 3);
        let x = Vector::from_vec(xs);
        let trace = net.forward_trace(&x);
        prop_assert_eq!(trace.output(), &net.forward(&x));
    }

    #[test]
    fn split_compose_equals_full(seed in 0u64..300, xs in prop::collection::vec(-2.0f64..2.0, 4), cut in 0usize..3) {
        let net = random_network(seed, 4, 5, 2);
        let x = Vector::from_vec(xs);
        let (head, tail) = net.split_at(cut).unwrap();
        let composed = tail.forward(&head.forward(&x));
        let full = net.forward(&x);
        prop_assert!(dpv_tensor::approx_eq_slice(composed.as_slice(), full.as_slice(), 1e-9));
    }

    #[test]
    fn text_roundtrip_preserves_function(seed in 0u64..300, xs in prop::collection::vec(-3.0f64..3.0, 4)) {
        let net = random_network(seed, 4, 6, 2);
        let parsed = network_from_text(&network_to_text(&net)).unwrap();
        let x = Vector::from_vec(xs);
        prop_assert!(dpv_tensor::approx_eq_slice(
            net.forward(&x).as_slice(),
            parsed.forward(&x).as_slice(),
            1e-9,
        ));
    }

    #[test]
    fn mse_loss_is_non_negative(seed in 0u64..200, xs in prop::collection::vec(-1.0f64..1.0, 4), ys in prop::collection::vec(-1.0f64..1.0, 2)) {
        let net = random_network(seed, 4, 4, 2);
        let pred = net.forward(&Vector::from_vec(xs));
        let loss = LossKind::Mse.evaluate(&pred, &Vector::from_vec(ys));
        prop_assert!(loss.value >= 0.0);
        prop_assert_eq!(loss.grad.len(), 2);
    }

    #[test]
    fn relu_networks_are_piecewise_linear(seed in 0u64..100) {
        let net = random_network(seed, 3, 4, 1);
        prop_assert!(net.is_piecewise_linear());
    }
}

/// End-to-end gradient check on a full network: the analytic gradient of a
/// scalar loss with respect to the *input* must match finite differences.
#[test]
fn full_network_input_gradient_matches_finite_differences() {
    let mut rng = StdRng::seed_from_u64(77);
    let net = NetworkBuilder::new(3)
        .dense(5, &mut rng)
        .activation(Activation::Tanh)
        .dense(2, &mut rng)
        .build();
    let target = Vector::from_slice(&[0.3, -0.4]);
    let x = Vector::from_slice(&[0.2, -0.6, 1.1]);

    // Analytic gradient via a clone in training mode.
    let mut train_net = net.clone();
    let loss_of =
        |net: &dpv_nn::Network, x: &Vector| LossKind::Mse.evaluate(&net.forward(x), &target).value;
    // Use the public training entry point indirectly: finite differences on
    // the input against the chain rule applied through layer backward calls.
    let trace = net.forward_trace(&x);
    let loss = LossKind::Mse.evaluate(trace.output(), &target);
    // Manual backward through the layer API.
    let mut caches = Vec::new();
    let mut acc = x.clone();
    for layer in train_net.layers_mut() {
        let (next, cache) = layer.forward_train(&acc);
        caches.push(cache);
        acc = next;
    }
    let mut grad = loss.grad.clone();
    for (layer, cache) in net.layers().iter().zip(caches.iter()).rev() {
        let (g, _) = layer.backward(cache, &grad);
        grad = g;
    }

    let eps = 1e-6;
    for i in 0..3 {
        let mut xp = x.clone();
        xp[i] += eps;
        let mut xm = x.clone();
        xm[i] -= eps;
        let numeric = (loss_of(&net, &xp) - loss_of(&net, &xm)) / (2.0 * eps);
        assert!(
            (grad[i] - numeric).abs() < 1e-5,
            "input gradient mismatch at {i}: {} vs {}",
            grad[i],
            numeric
        );
    }
}

//! Property-based parity of the batched forward pass: for any network the
//! builder can produce and any batch of frames, `activation_at_batch` must
//! return **bit-identical** vectors to the per-frame `activation_at` — the
//! batched kernels replicate the scalar accumulation order, they only widen
//! the inner loops across frames.

use dpv_nn::{Activation, Network, NetworkBuilder, TensorShape};
use dpv_tensor::Vector;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_dense_network(seed: u64) -> (Network, usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let input_dim = rng.gen_range(1usize..6);
    let mut builder = NetworkBuilder::new(input_dim);
    let hidden_layers = rng.gen_range(1usize..4);
    for _ in 0..hidden_layers {
        builder = builder.dense(rng.gen_range(1usize..8), &mut rng);
        builder = match rng.gen_range(0u8..4) {
            0 => builder.activation(Activation::ReLU),
            1 => builder.activation(Activation::LeakyReLU(0.05)),
            2 => builder.activation(Activation::Tanh),
            _ => builder.batch_norm(),
        };
    }
    let net = builder.dense(rng.gen_range(1usize..4), &mut rng).build();
    (net, input_dim)
}

fn random_frames(rng: &mut StdRng, n: usize, dim: usize) -> Vec<Vector> {
    (0..n)
        .map(|_| Vector::from_vec((0..dim).map(|_| rng.gen_range(-3.0..3.0)).collect()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Batched activations equal the scalar path exactly, at every layer,
    /// for batches spanning empty through several SIMD chunks.
    #[test]
    fn activation_at_batch_matches_activation_at(seed in 0u64..500) {
        let (net, input_dim) = random_dense_network(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xf0a3);
        let n = rng.gen_range(0usize..70);
        let frames = random_frames(&mut rng, n, input_dim);
        for layer in 0..net.len() {
            let batched = net.activation_at_batch(layer, &frames);
            let scalar: Vec<Vector> =
                frames.iter().map(|x| net.activation_at(layer, x)).collect();
            // Exact f64 equality, not approximate.
            prop_assert_eq!(&batched, &scalar, "layer {} drifted", layer);
        }
    }
}

/// The spatial layers (conv, pooling-free here) run through the per-frame
/// fallback inside `Layer::forward_batch`; the parity contract still holds.
#[test]
fn conv_head_batch_matches_scalar() {
    let mut rng = StdRng::seed_from_u64(31);
    let net = NetworkBuilder::with_image_input(TensorShape::new(1, 6, 8))
        .conv2d(2, 3, 2, &mut rng)
        .activation(Activation::ReLU)
        .flatten()
        .dense(4, &mut rng)
        .build();
    let frames = random_frames(&mut rng, 9, 6 * 8);
    for layer in 0..net.len() {
        let batched = net.activation_at_batch(layer, &frames);
        let scalar: Vec<Vector> = frames.iter().map(|x| net.activation_at(layer, x)).collect();
        assert_eq!(batched, scalar, "layer {layer} drifted");
    }
}

#[test]
fn empty_batch_is_empty() {
    let (net, _) = random_dense_network(7);
    assert!(net.activation_at_batch(0, &[]).is_empty());
}

//! The closed set of layers a network may contain, plus the gradient
//! containers used during backpropagation.

use serde::{Deserialize, Serialize};

use dpv_tensor::{Matrix, Vector};

use crate::{Activation, BatchNorm1d, Conv2d, Dense, Flatten, MaxPool2d};

/// Shape of a channel-major feature map `(channels, height, width)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TensorShape {
    /// Number of channels.
    pub channels: usize,
    /// Height in pixels / cells.
    pub height: usize,
    /// Width in pixels / cells.
    pub width: usize,
}

impl TensorShape {
    /// Creates a shape.
    pub fn new(channels: usize, height: usize, width: usize) -> Self {
        Self {
            channels,
            height,
            width,
        }
    }

    /// Total number of elements when flattened.
    pub fn len(&self) -> usize {
        self.channels * self.height * self.width
    }

    /// Returns `true` when the shape contains no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One layer of a feed-forward network.
///
/// The enum is deliberately closed (not a trait object): the verification
/// crates pattern-match on it to build MILP encodings and abstract
/// transformers, and a closed set makes the soundness argument auditable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Layer {
    /// Fully connected affine layer.
    Dense(Dense),
    /// Element-wise activation.
    Activation(Activation),
    /// Frozen-statistics batch normalisation (affine at verification time).
    BatchNorm(BatchNorm1d),
    /// 2-D convolution over flattened channel-major feature maps.
    Conv2d(Conv2d),
    /// Non-overlapping 2-D max pooling.
    MaxPool2d(MaxPool2d),
    /// Flattening marker (numerically the identity).
    Flatten(Flatten),
}

/// Per-layer cache produced by the forward pass in training mode and
/// consumed by the backward pass.
#[derive(Debug, Clone)]
pub enum LayerCache {
    /// The layer's input vector (dense, batch-norm, conv, activation).
    Input(Vector),
    /// Input plus max-pool argmax indices.
    PoolIndices {
        /// The layer input.
        input: Vector,
        /// Flat input index of the maximum for each output cell.
        indices: Vec<usize>,
    },
    /// Layers with no trainable parameters and trivial backward rule.
    None,
}

/// Gradients of a layer's trainable parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum LayerGrad {
    /// Dense or convolution gradients.
    WeightBias {
        /// Gradient of the weight matrix.
        weights: Matrix,
        /// Gradient of the bias vector.
        bias: Vector,
    },
    /// Batch-norm gradients.
    GammaBeta {
        /// Gradient of the scale vector.
        gamma: Vector,
        /// Gradient of the shift vector.
        beta: Vector,
    },
    /// The layer has no trainable parameters.
    None,
}

impl Layer {
    /// Output dimension given the input dimension `input_dim`.
    ///
    /// For shape-carrying layers (conv, pool, flatten) the recorded shape is
    /// authoritative; `input_dim` is only used by activations, which preserve
    /// dimension.
    pub fn output_dim(&self, input_dim: usize) -> usize {
        match self {
            Layer::Dense(d) => d.output_dim(),
            Layer::Activation(_) => input_dim,
            Layer::BatchNorm(bn) => bn.dim(),
            Layer::Conv2d(c) => c.output_dim(),
            Layer::MaxPool2d(p) => p.output_dim(),
            Layer::Flatten(f) => f.dim(),
        }
    }

    /// Expected input dimension, when the layer constrains it (`None` for
    /// activations, which accept any dimension).
    pub fn input_dim(&self) -> Option<usize> {
        match self {
            Layer::Dense(d) => Some(d.input_dim()),
            Layer::Activation(_) => None,
            Layer::BatchNorm(bn) => Some(bn.dim()),
            Layer::Conv2d(c) => Some(c.input_dim()),
            Layer::MaxPool2d(p) => Some(p.input_dim()),
            Layer::Flatten(f) => Some(f.dim()),
        }
    }

    /// Returns `true` when the layer is exactly representable in the MILP /
    /// abstract-interpretation verifiers (affine or piecewise-linear).
    pub fn is_piecewise_linear(&self) -> bool {
        match self {
            Layer::Dense(_) | Layer::BatchNorm(_) | Layer::Conv2d(_) | Layer::Flatten(_) => true,
            Layer::MaxPool2d(_) => true,
            Layer::Activation(a) => a.is_piecewise_linear(),
        }
    }

    /// Returns `true` when the layer has trainable parameters.
    pub fn has_parameters(&self) -> bool {
        matches!(
            self,
            Layer::Dense(_) | Layer::BatchNorm(_) | Layer::Conv2d(_)
        )
    }

    /// Number of trainable scalar parameters.
    pub fn parameter_count(&self) -> usize {
        match self {
            Layer::Dense(d) => d.weights().rows() * d.weights().cols() + d.bias().len(),
            Layer::BatchNorm(bn) => 2 * bn.dim(),
            Layer::Conv2d(c) => c.weights().rows() * c.weights().cols() + c.bias().len(),
            _ => 0,
        }
    }

    /// Short human-readable description.
    pub fn describe(&self) -> String {
        match self {
            Layer::Dense(d) => format!("dense {}x{}", d.output_dim(), d.input_dim()),
            Layer::Activation(a) => a.name().to_string(),
            Layer::BatchNorm(bn) => format!("batchnorm {}", bn.dim()),
            Layer::Conv2d(c) => format!(
                "conv2d {}ch k{} s{} ({} -> {})",
                c.output_shape().channels,
                c.kernel(),
                c.stride(),
                c.input_dim(),
                c.output_dim()
            ),
            Layer::MaxPool2d(p) => format!(
                "maxpool2d {} ({} -> {})",
                p.pool(),
                p.input_dim(),
                p.output_dim()
            ),
            Layer::Flatten(f) => format!("flatten {}", f.dim()),
        }
    }

    /// Inference-mode forward pass.
    pub fn forward(&self, x: &Vector) -> Vector {
        match self {
            Layer::Dense(d) => d.forward(x),
            Layer::Activation(a) => a.apply_vector(x),
            Layer::BatchNorm(bn) => bn.forward(x),
            Layer::Conv2d(c) => c.forward(x),
            Layer::MaxPool2d(p) => p.forward(x),
            Layer::Flatten(f) => f.forward(x),
        }
    }

    /// Batched inference forward pass over a feature-major frame batch
    /// (rows = input dimension, columns = frames).
    ///
    /// Column `f` of the result is **bit-identical** to `forward` of column
    /// `f` of the input: the dense, activation and batch-norm kernels
    /// perform the exact per-frame operation sequence of their scalar
    /// counterparts and only vectorise across the frame lanes. Spatial
    /// layers (convolution, pooling) fall back to the scalar kernel per
    /// frame — they never appear past the cut layer in the monitor hot
    /// path.
    ///
    /// # Panics
    /// Panics when `x.rows()` does not match the layer input dimension.
    pub fn forward_batch(&self, x: &Matrix) -> Matrix {
        match self {
            Layer::Dense(d) => d.forward_batch(x),
            Layer::Activation(a) => a.apply_matrix(x),
            Layer::BatchNorm(bn) => bn.forward_batch(x),
            Layer::Conv2d(c) => c.forward_batch(x),
            other => {
                let columns: Vec<Vector> = (0..x.cols())
                    .map(|f| other.forward(&x.col_vector(f)))
                    .collect();
                Matrix::from_columns(&columns).expect("layer outputs share one dimension")
            }
        }
    }

    /// Training-mode forward pass: returns the output and a cache for the
    /// backward pass. Batch-norm layers additionally update their running
    /// statistics.
    pub fn forward_train(&mut self, x: &Vector) -> (Vector, LayerCache) {
        match self {
            Layer::Dense(d) => (d.forward(x), LayerCache::Input(x.clone())),
            Layer::Activation(a) => (a.apply_vector(x), LayerCache::Input(x.clone())),
            Layer::BatchNorm(bn) => {
                bn.update_statistics(x);
                (bn.forward(x), LayerCache::Input(x.clone()))
            }
            Layer::Conv2d(c) => (c.forward(x), LayerCache::Input(x.clone())),
            Layer::MaxPool2d(p) => {
                let (out, indices) = p.forward_with_indices(x);
                (
                    out,
                    LayerCache::PoolIndices {
                        input: x.clone(),
                        indices,
                    },
                )
            }
            Layer::Flatten(f) => (f.forward(x), LayerCache::None),
        }
    }

    /// Backward pass: given the cache from [`Layer::forward_train`] and the
    /// gradient with respect to the layer output, returns the gradient with
    /// respect to the layer input and the parameter gradients.
    ///
    /// # Panics
    /// Panics when the cache variant does not match the layer kind.
    pub fn backward(&self, cache: &LayerCache, grad_output: &Vector) -> (Vector, LayerGrad) {
        match (self, cache) {
            (Layer::Dense(d), LayerCache::Input(input)) => {
                let (gi, gw, gb) = d.backward(input, grad_output);
                (
                    gi,
                    LayerGrad::WeightBias {
                        weights: gw,
                        bias: gb,
                    },
                )
            }
            (Layer::Activation(a), LayerCache::Input(input)) => {
                let grad_input = Vector::from_vec(
                    input
                        .iter()
                        .zip(grad_output.iter())
                        .map(|(x, g)| a.derivative(*x) * g)
                        .collect(),
                );
                (grad_input, LayerGrad::None)
            }
            (Layer::BatchNorm(bn), LayerCache::Input(input)) => {
                let (gi, gg, gb) = bn.backward(input, grad_output);
                (
                    gi,
                    LayerGrad::GammaBeta {
                        gamma: gg,
                        beta: gb,
                    },
                )
            }
            (Layer::Conv2d(c), LayerCache::Input(input)) => {
                let (gi, gw, gb) = c.backward(input, grad_output);
                (
                    gi,
                    LayerGrad::WeightBias {
                        weights: gw,
                        bias: gb,
                    },
                )
            }
            (Layer::MaxPool2d(p), LayerCache::PoolIndices { indices, .. }) => {
                (p.backward(indices, grad_output), LayerGrad::None)
            }
            (Layer::Flatten(_), _) => (grad_output.clone(), LayerGrad::None),
            _ => panic!("layer/cache mismatch in backward pass"),
        }
    }

    /// Applies parameter gradients scaled by `lr` (plain SGD step). Layers
    /// without parameters ignore the call.
    ///
    /// # Panics
    /// Panics when the gradient variant does not match the layer kind.
    pub fn apply_grad(&mut self, lr: f64, grad: &LayerGrad) {
        match (self, grad) {
            (Layer::Dense(d), LayerGrad::WeightBias { weights, bias }) => {
                d.apply_gradients(lr, weights, bias)
            }
            (Layer::Conv2d(c), LayerGrad::WeightBias { weights, bias }) => {
                c.weights_mut().add_scaled(-lr, weights);
                let update = bias.scale(lr);
                *c.bias_mut() -= &update;
            }
            (Layer::BatchNorm(bn), LayerGrad::GammaBeta { gamma, beta }) => {
                bn.apply_gradients(lr, gamma, beta)
            }
            (_, LayerGrad::None) => {}
            _ => panic!("layer/gradient mismatch in apply_grad"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpv_tensor::{Initializer, Matrix};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn tensor_shape_len() {
        let s = TensorShape::new(3, 4, 5);
        assert_eq!(s.len(), 60);
        assert!(!s.is_empty());
        assert!(TensorShape::new(0, 4, 5).is_empty());
    }

    #[test]
    fn output_dim_per_layer_kind() {
        let dense = Layer::Dense(Dense::from_parts(Matrix::zeros(3, 2), Vector::zeros(3)));
        assert_eq!(dense.output_dim(2), 3);
        assert_eq!(dense.input_dim(), Some(2));
        let act = Layer::Activation(Activation::ReLU);
        assert_eq!(act.output_dim(7), 7);
        assert_eq!(act.input_dim(), None);
        let bn = Layer::BatchNorm(BatchNorm1d::new(4));
        assert_eq!(bn.output_dim(4), 4);
    }

    #[test]
    fn piecewise_linear_classification() {
        assert!(Layer::Activation(Activation::ReLU).is_piecewise_linear());
        assert!(!Layer::Activation(Activation::Sigmoid).is_piecewise_linear());
        assert!(Layer::BatchNorm(BatchNorm1d::new(2)).is_piecewise_linear());
    }

    #[test]
    fn parameter_counts() {
        let dense = Layer::Dense(Dense::from_parts(Matrix::zeros(3, 2), Vector::zeros(3)));
        assert_eq!(dense.parameter_count(), 9);
        assert!(dense.has_parameters());
        let bn = Layer::BatchNorm(BatchNorm1d::new(4));
        assert_eq!(bn.parameter_count(), 8);
        let act = Layer::Activation(Activation::Tanh);
        assert_eq!(act.parameter_count(), 0);
        assert!(!act.has_parameters());
    }

    #[test]
    fn forward_train_and_backward_roundtrip_dense_relu() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut dense = Layer::Dense(Dense::new(3, 2, Initializer::HeNormal, &mut rng));
        let mut relu = Layer::Activation(Activation::ReLU);
        let x = Vector::from_slice(&[0.5, -0.2, 0.9]);
        let (h, cache_d) = dense.forward_train(&x);
        let (y, cache_r) = relu.forward_train(&h);
        assert_eq!(y.len(), 2);
        let grad_out = Vector::ones(2);
        let (grad_h, _) = relu.backward(&cache_r, &grad_out);
        let (grad_x, grad_d) = dense.backward(&cache_d, &grad_h);
        assert_eq!(grad_x.len(), 3);
        assert!(matches!(grad_d, LayerGrad::WeightBias { .. }));
    }

    #[test]
    fn describe_is_informative() {
        let dense = Layer::Dense(Dense::from_parts(Matrix::zeros(3, 2), Vector::zeros(3)));
        assert!(dense.describe().contains("dense"));
        assert!(Layer::Activation(Activation::ReLU)
            .describe()
            .contains("relu"));
    }

    #[test]
    #[should_panic(expected = "layer/cache mismatch")]
    fn backward_rejects_mismatched_cache() {
        let dense = Layer::Dense(Dense::from_parts(Matrix::zeros(1, 1), Vector::zeros(1)));
        let _ = dense.backward(&LayerCache::None, &Vector::zeros(1));
    }
}

//! In-memory supervised datasets and mini-batching.

use rand::seq::SliceRandom;
use rand::Rng;

use dpv_tensor::Vector;

use crate::NnError;

/// A borrowed mini-batch of `(input, target)` pairs.
#[derive(Debug, Clone)]
pub struct Batch<'a> {
    /// Input vectors of the batch.
    pub inputs: Vec<&'a Vector>,
    /// Target vectors of the batch, aligned with `inputs`.
    pub targets: Vec<&'a Vector>,
}

impl Batch<'_> {
    /// Number of examples in the batch.
    pub fn len(&self) -> usize {
        self.inputs.len()
    }

    /// Returns `true` when the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.inputs.is_empty()
    }
}

/// An in-memory supervised dataset of `(input, target)` vector pairs.
///
/// ```
/// use dpv_nn::Dataset;
/// use dpv_tensor::Vector;
/// let data = Dataset::new(
///     vec![Vector::zeros(2), Vector::ones(2)],
///     vec![Vector::zeros(1), Vector::ones(1)],
/// ).unwrap();
/// assert_eq!(data.len(), 2);
/// assert_eq!(data.input_dim(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    inputs: Vec<Vector>,
    targets: Vec<Vector>,
}

impl Dataset {
    /// Creates a dataset.
    ///
    /// # Errors
    /// Returns [`NnError::InvalidDataset`] when the two lists differ in
    /// length, are empty, or contain vectors of inconsistent dimensions.
    pub fn new(inputs: Vec<Vector>, targets: Vec<Vector>) -> Result<Self, NnError> {
        if inputs.len() != targets.len() {
            return Err(NnError::InvalidDataset(format!(
                "{} inputs but {} targets",
                inputs.len(),
                targets.len()
            )));
        }
        if inputs.is_empty() {
            return Err(NnError::InvalidDataset("dataset is empty".to_string()));
        }
        let in_dim = inputs[0].len();
        let out_dim = targets[0].len();
        for (i, (x, y)) in inputs.iter().zip(targets.iter()).enumerate() {
            if x.len() != in_dim || y.len() != out_dim {
                return Err(NnError::InvalidDataset(format!(
                    "example {i} has dimensions ({}, {}) but expected ({in_dim}, {out_dim})",
                    x.len(),
                    y.len()
                )));
            }
        }
        Ok(Self { inputs, targets })
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.inputs.len()
    }

    /// Returns `true` when the dataset has no examples (never true for a
    /// successfully constructed dataset).
    pub fn is_empty(&self) -> bool {
        self.inputs.is_empty()
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.inputs[0].len()
    }

    /// Target dimension.
    pub fn target_dim(&self) -> usize {
        self.targets[0].len()
    }

    /// The input vectors.
    pub fn inputs(&self) -> &[Vector] {
        &self.inputs
    }

    /// The target vectors.
    pub fn targets(&self) -> &[Vector] {
        &self.targets
    }

    /// The `(input, target)` pair at `index`.
    ///
    /// # Panics
    /// Panics when `index` is out of bounds.
    pub fn example(&self, index: usize) -> (&Vector, &Vector) {
        (&self.inputs[index], &self.targets[index])
    }

    /// Iterator over `(input, target)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Vector, &Vector)> {
        self.inputs.iter().zip(self.targets.iter())
    }

    /// Splits the dataset into a training part with `train_fraction` of the
    /// examples and a held-out part with the rest (no shuffling; shuffle
    /// first via [`Dataset::shuffled`] if needed).
    ///
    /// # Errors
    /// Returns [`NnError::InvalidDataset`] when either part would be empty.
    pub fn split(&self, train_fraction: f64) -> Result<(Dataset, Dataset), NnError> {
        let n_train = ((self.len() as f64) * train_fraction).round() as usize;
        if n_train == 0 || n_train >= self.len() {
            return Err(NnError::InvalidDataset(format!(
                "split fraction {train_fraction} leaves an empty part (n = {})",
                self.len()
            )));
        }
        let train = Dataset::new(
            self.inputs[..n_train].to_vec(),
            self.targets[..n_train].to_vec(),
        )?;
        let test = Dataset::new(
            self.inputs[n_train..].to_vec(),
            self.targets[n_train..].to_vec(),
        )?;
        Ok((train, test))
    }

    /// Returns a copy of the dataset with examples shuffled by `rng`.
    pub fn shuffled<R: Rng + ?Sized>(&self, rng: &mut R) -> Dataset {
        let mut order: Vec<usize> = (0..self.len()).collect();
        order.shuffle(rng);
        Dataset {
            inputs: order.iter().map(|&i| self.inputs[i].clone()).collect(),
            targets: order.iter().map(|&i| self.targets[i].clone()).collect(),
        }
    }

    /// Concatenates two datasets with matching dimensions.
    ///
    /// # Errors
    /// Returns [`NnError::InvalidDataset`] when dimensions differ.
    pub fn concat(&self, other: &Dataset) -> Result<Dataset, NnError> {
        if self.input_dim() != other.input_dim() || self.target_dim() != other.target_dim() {
            return Err(NnError::InvalidDataset(
                "cannot concatenate datasets with different dimensions".to_string(),
            ));
        }
        let mut inputs = self.inputs.clone();
        inputs.extend(other.inputs.iter().cloned());
        let mut targets = self.targets.clone();
        targets.extend(other.targets.iter().cloned());
        Dataset::new(inputs, targets)
    }

    /// Mini-batches of (at most) `batch_size` examples, optionally over a
    /// permuted index order.
    pub fn batches(&self, batch_size: usize, order: Option<&[usize]>) -> Vec<Batch<'_>> {
        let default_order: Vec<usize> = (0..self.len()).collect();
        let order = order.unwrap_or(&default_order);
        let bs = batch_size.max(1);
        order
            .chunks(bs)
            .map(|chunk| Batch {
                inputs: chunk.iter().map(|&i| &self.inputs[i]).collect(),
                targets: chunk.iter().map(|&i| &self.targets[i]).collect(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample(n: usize) -> Dataset {
        let inputs: Vec<Vector> = (0..n).map(|i| Vector::filled(2, i as f64)).collect();
        let targets: Vec<Vector> = (0..n).map(|i| Vector::filled(1, i as f64)).collect();
        Dataset::new(inputs, targets).unwrap()
    }

    #[test]
    fn construction_validates_consistency() {
        assert!(Dataset::new(vec![], vec![]).is_err());
        assert!(Dataset::new(vec![Vector::zeros(2)], vec![]).is_err());
        assert!(Dataset::new(
            vec![Vector::zeros(2), Vector::zeros(3)],
            vec![Vector::zeros(1), Vector::zeros(1)]
        )
        .is_err());
        let ok = sample(4);
        assert_eq!(ok.len(), 4);
        assert_eq!(ok.input_dim(), 2);
        assert_eq!(ok.target_dim(), 1);
    }

    #[test]
    fn split_preserves_counts() {
        let data = sample(10);
        let (train, test) = data.split(0.8).unwrap();
        assert_eq!(train.len(), 8);
        assert_eq!(test.len(), 2);
        assert!(data.split(0.0).is_err());
        assert!(data.split(1.0).is_err());
    }

    #[test]
    fn shuffled_keeps_pairing() {
        let data = sample(20);
        let mut rng = StdRng::seed_from_u64(0);
        let shuffled = data.shuffled(&mut rng);
        assert_eq!(shuffled.len(), 20);
        for (x, y) in shuffled.iter() {
            assert_eq!(x[0], y[0]);
        }
    }

    #[test]
    fn batches_cover_all_examples() {
        let data = sample(10);
        let batches = data.batches(3, None);
        assert_eq!(batches.len(), 4);
        let total: usize = batches.iter().map(Batch::len).sum();
        assert_eq!(total, 10);
        assert!(!batches[0].is_empty());
    }

    #[test]
    fn concat_checks_dimensions() {
        let a = sample(3);
        let b = sample(2);
        assert_eq!(a.concat(&b).unwrap().len(), 5);
        let c = Dataset::new(vec![Vector::zeros(5)], vec![Vector::zeros(1)]).unwrap();
        assert!(a.concat(&c).is_err());
    }

    #[test]
    fn example_and_iter() {
        let data = sample(3);
        let (x, y) = data.example(1);
        assert_eq!(x[0], 1.0);
        assert_eq!(y[0], 1.0);
        assert_eq!(data.iter().count(), 3);
    }
}

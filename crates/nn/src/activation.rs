//! Element-wise activation functions.

use serde::{Deserialize, Serialize};

use dpv_tensor::{Matrix, Vector};

/// Element-wise activation functions supported by the library.
///
/// The verification crates only accept piecewise-linear activations
/// ([`Activation::ReLU`], [`Activation::LeakyReLU`], [`Activation::Identity`]);
/// the smooth ones are available for training-only parts of a model (e.g.
/// the logistic output of a characterizer, which the verifier replaces by a
/// linear threshold on the pre-activation logit).
///
/// ```
/// use dpv_nn::Activation;
/// assert_eq!(Activation::ReLU.apply(-2.0), 0.0);
/// assert_eq!(Activation::ReLU.apply(3.0), 3.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Activation {
    /// The identity function (no-op). Useful as a named cut point.
    Identity,
    /// Rectified linear unit `max(0, x)`.
    ReLU,
    /// Leaky ReLU with the given negative slope.
    LeakyReLU(f64),
    /// Logistic sigmoid `1 / (1 + e^-x)`.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
}

impl Activation {
    /// Applies the activation to a scalar.
    pub fn apply(self, x: f64) -> f64 {
        match self {
            Activation::Identity => x,
            Activation::ReLU => x.max(0.0),
            Activation::LeakyReLU(slope) => {
                if x >= 0.0 {
                    x
                } else {
                    slope * x
                }
            }
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Tanh => x.tanh(),
        }
    }

    /// Derivative of the activation evaluated at pre-activation `x`.
    ///
    /// For ReLU the sub-gradient at `0` is taken to be `0`.
    pub fn derivative(self, x: f64) -> f64 {
        match self {
            Activation::Identity => 1.0,
            Activation::ReLU => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::LeakyReLU(slope) => {
                if x > 0.0 {
                    1.0
                } else {
                    slope
                }
            }
            Activation::Sigmoid => {
                let s = self.apply(x);
                s * (1.0 - s)
            }
            Activation::Tanh => 1.0 - x.tanh().powi(2),
        }
    }

    /// Applies the activation element-wise to a vector.
    pub fn apply_vector(self, x: &Vector) -> Vector {
        x.map(|v| self.apply(v))
    }

    /// Applies the activation element-wise to a feature-major frame batch.
    /// Same per-element function as [`Activation::apply_vector`], so each
    /// column matches the scalar path bit for bit.
    pub fn apply_matrix(self, x: &Matrix) -> Matrix {
        x.map(|v| self.apply(v))
    }

    /// Returns `true` when the activation is piecewise linear and therefore
    /// exactly encodable in the MILP verifier.
    pub fn is_piecewise_linear(self) -> bool {
        matches!(
            self,
            Activation::Identity | Activation::ReLU | Activation::LeakyReLU(_)
        )
    }

    /// Short lowercase name used by the text serialisation format.
    pub fn name(self) -> &'static str {
        match self {
            Activation::Identity => "identity",
            Activation::ReLU => "relu",
            Activation::LeakyReLU(_) => "leaky_relu",
            Activation::Sigmoid => "sigmoid",
            Activation::Tanh => "tanh",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_behaviour() {
        assert_eq!(Activation::ReLU.apply(-1.0), 0.0);
        assert_eq!(Activation::ReLU.apply(0.0), 0.0);
        assert_eq!(Activation::ReLU.apply(2.5), 2.5);
        assert_eq!(Activation::ReLU.derivative(-1.0), 0.0);
        assert_eq!(Activation::ReLU.derivative(1.0), 1.0);
    }

    #[test]
    fn leaky_relu_behaviour() {
        let a = Activation::LeakyReLU(0.1);
        assert!((a.apply(-2.0) + 0.2).abs() < 1e-12);
        assert_eq!(a.apply(3.0), 3.0);
        assert_eq!(a.derivative(-1.0), 0.1);
        assert_eq!(a.derivative(1.0), 1.0);
    }

    #[test]
    fn sigmoid_is_bounded_and_monotone() {
        let s = Activation::Sigmoid;
        assert!((s.apply(0.0) - 0.5).abs() < 1e-12);
        assert!(s.apply(10.0) > 0.99);
        assert!(s.apply(-10.0) < 0.01);
        assert!(s.apply(1.0) > s.apply(0.5));
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let eps = 1e-6;
        for act in [
            Activation::Identity,
            Activation::ReLU,
            Activation::LeakyReLU(0.05),
            Activation::Sigmoid,
            Activation::Tanh,
        ] {
            for x in [-1.7, -0.3, 0.4, 2.2] {
                let numeric = (act.apply(x + eps) - act.apply(x - eps)) / (2.0 * eps);
                assert!(
                    (act.derivative(x) - numeric).abs() < 1e-5,
                    "{act:?} derivative mismatch at {x}"
                );
            }
        }
    }

    #[test]
    fn piecewise_linear_flag() {
        assert!(Activation::ReLU.is_piecewise_linear());
        assert!(Activation::LeakyReLU(0.1).is_piecewise_linear());
        assert!(Activation::Identity.is_piecewise_linear());
        assert!(!Activation::Sigmoid.is_piecewise_linear());
        assert!(!Activation::Tanh.is_piecewise_linear());
    }

    #[test]
    fn apply_vector_maps_elementwise() {
        let v = Vector::from_slice(&[-1.0, 2.0]);
        assert_eq!(Activation::ReLU.apply_vector(&v).as_slice(), &[0.0, 2.0]);
    }
}

//! Feed-forward network container.

use serde::{Deserialize, Serialize};

use dpv_tensor::{Matrix, Vector};

use crate::layer::LayerCache;
use crate::{Layer, LayerGrad, NnError};

/// The activation vectors produced by every layer for a single input, in
/// order: `trace[0]` is the input itself and `trace[i]` is the output of
/// layer `i - 1` (so `trace.last()` is the network output).
///
/// This is the object from which the paper's activation envelope `S̃` is
/// built: record the trace of every training sample and aggregate the
/// entries at the cut layer.
#[derive(Debug, Clone, PartialEq)]
pub struct ActivationTrace {
    values: Vec<Vector>,
}

impl ActivationTrace {
    /// The recorded vectors (input first, output last).
    pub fn values(&self) -> &[Vector] {
        &self.values
    }

    /// Activation after layer `layer` (zero-based), i.e. `f^(layer+1)(in)`.
    /// `layer_output(l)` therefore corresponds to the paper's `f^(l)` with
    /// one-based `l = layer + 1`.
    pub fn layer_output(&self, layer: usize) -> &Vector {
        &self.values[layer + 1]
    }

    /// The network input.
    pub fn input(&self) -> &Vector {
        &self.values[0]
    }

    /// The network output.
    pub fn output(&self) -> &Vector {
        self.values.last().expect("trace always contains the input")
    }
}

/// A feed-forward neural network: an ordered list of [`Layer`]s.
///
/// ```
/// use dpv_nn::{Activation, NetworkBuilder};
/// use dpv_tensor::Vector;
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let net = NetworkBuilder::new(4)
///     .dense(8, &mut rng)
///     .activation(Activation::ReLU)
///     .dense(2, &mut rng)
///     .build();
/// assert_eq!(net.output_dim(), 2);
/// assert_eq!(net.forward(&Vector::zeros(4)).len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Network {
    input_dim: usize,
    layers: Vec<Layer>,
}

impl Network {
    /// Creates a network from an explicit layer list.
    ///
    /// # Errors
    /// Returns [`NnError::InvalidNetwork`] when consecutive layer dimensions
    /// are inconsistent.
    pub fn new(input_dim: usize, layers: Vec<Layer>) -> Result<Self, NnError> {
        let mut dim = input_dim;
        for (i, layer) in layers.iter().enumerate() {
            if let Some(expected) = layer.input_dim() {
                if expected != dim {
                    return Err(NnError::InvalidNetwork(format!(
                        "layer {i} ({}) expects input dimension {expected} but receives {dim}",
                        layer.describe()
                    )));
                }
            }
            dim = layer.output_dim(dim);
        }
        Ok(Self { input_dim, layers })
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Output dimension.
    pub fn output_dim(&self) -> usize {
        self.layers
            .iter()
            .fold(self.input_dim, |dim, layer| layer.output_dim(dim))
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Returns `true` when the network has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// The layers, in order.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Mutable access to the layers (used by the optimisers).
    pub fn layers_mut(&mut self) -> &mut [Layer] {
        &mut self.layers
    }

    /// Dimension of the activation vector after layer `layer` (zero-based).
    ///
    /// # Panics
    /// Panics when `layer >= self.len()`.
    pub fn layer_output_dim(&self, layer: usize) -> usize {
        assert!(layer < self.len(), "layer index out of bounds");
        self.layers[..=layer]
            .iter()
            .fold(self.input_dim, |dim, l| l.output_dim(dim))
    }

    /// Total number of trainable parameters.
    pub fn parameter_count(&self) -> usize {
        self.layers.iter().map(Layer::parameter_count).sum()
    }

    /// Returns `true` when every layer is piecewise linear, i.e. the whole
    /// network is exactly encodable by the MILP verifier.
    pub fn is_piecewise_linear(&self) -> bool {
        self.layers.iter().all(Layer::is_piecewise_linear)
    }

    /// Human-readable architecture summary, one layer per line.
    pub fn summary(&self) -> String {
        let mut out = format!("input dim {}\n", self.input_dim);
        let mut dim = self.input_dim;
        for (i, layer) in self.layers.iter().enumerate() {
            dim = layer.output_dim(dim);
            out.push_str(&format!("  [{i}] {} -> {}\n", layer.describe(), dim));
        }
        out.push_str(&format!("parameters: {}", self.parameter_count()));
        out
    }

    /// Inference-mode forward pass.
    ///
    /// # Panics
    /// Panics when `x.len() != self.input_dim()`.
    pub fn forward(&self, x: &Vector) -> Vector {
        assert_eq!(x.len(), self.input_dim, "network input dimension mismatch");
        self.layers
            .iter()
            .fold(x.clone(), |acc, layer| layer.forward(&acc))
    }

    /// Forward pass recording the activation after every layer.
    pub fn forward_trace(&self, x: &Vector) -> ActivationTrace {
        assert_eq!(x.len(), self.input_dim, "network input dimension mismatch");
        let mut values = Vec::with_capacity(self.layers.len() + 1);
        values.push(x.clone());
        for layer in &self.layers {
            let next = layer.forward(values.last().expect("trace is non-empty"));
            values.push(next);
        }
        ActivationTrace { values }
    }

    /// Activation vector after layer `layer` (zero-based), the paper's
    /// `f^(l)(in)` with `l = layer + 1`.
    pub fn activation_at(&self, layer: usize, x: &Vector) -> Vector {
        assert!(layer < self.len(), "layer index out of bounds");
        let mut acc = x.clone();
        for l in &self.layers[..=layer] {
            acc = l.forward(&acc);
        }
        acc
    }

    /// Batched [`Network::activation_at`]: evaluates the cut-layer
    /// activation of every frame in one matrix–matrix pass per layer
    /// instead of a matrix–vector pass per frame.
    ///
    /// The result is **bit-identical** to calling `activation_at` on each
    /// frame: the batch kernels keep the per-frame accumulation order of
    /// the scalar kernels and only widen the loop across frames (see
    /// [`Layer::forward_batch`]), so monitors built on either path agree
    /// exactly.
    ///
    /// # Panics
    /// Panics when `layer` is out of bounds or any frame's length differs
    /// from the network input dimension.
    pub fn activation_at_batch(&self, layer: usize, inputs: &[Vector]) -> Vec<Vector> {
        let activations = self.activation_matrix_at(layer, inputs);
        (0..activations.cols())
            .map(|f| activations.col_vector(f))
            .collect()
    }

    /// Batched activations at `layer` in feature-major layout: row `d` of
    /// the result holds activation coordinate `d` of every frame
    /// contiguously (columns = frames, in input order). This is the form
    /// the batched monitors sweep directly; [`Network::activation_at_batch`]
    /// is the column-unpacked convenience wrapper.
    ///
    /// # Panics
    /// Panics when `layer` is out of bounds or any frame's length differs
    /// from the network input dimension.
    pub fn activation_matrix_at(&self, layer: usize, inputs: &[Vector]) -> Matrix {
        assert!(layer < self.len(), "layer index out of bounds");
        if inputs.is_empty() {
            return Matrix::zeros(self.layer_output_dim(layer), 0);
        }
        let mut acc =
            Matrix::from_columns(inputs).expect("all frames must share the input dimension");
        assert_eq!(
            acc.rows(),
            self.input_dim,
            "frame length must equal the network input dimension"
        );
        for l in &self.layers[..=layer] {
            acc = l.forward_batch(&acc);
        }
        acc
    }

    /// Runs the forward pass from the activation at layer `layer` (zero-based)
    /// to the output, i.e. evaluates the *tail* `g^(L) ∘ … ∘ g^(layer+2)`.
    pub fn forward_from(&self, layer: usize, activation: &Vector) -> Vector {
        assert!(layer < self.len(), "layer index out of bounds");
        let mut acc = activation.clone();
        for l in &self.layers[layer + 1..] {
            acc = l.forward(&acc);
        }
        acc
    }

    /// Splits the network after layer `layer` (zero-based) into
    /// `(head, tail)`: `head` computes `f^(layer+1)` and `tail` maps that
    /// activation to the network output. The tail is what the paper verifies.
    ///
    /// # Errors
    /// Returns [`NnError::InvalidNetwork`] when `layer >= self.len()`.
    pub fn split_at(&self, layer: usize) -> Result<(Network, Network), NnError> {
        if layer >= self.len() {
            return Err(NnError::InvalidNetwork(format!(
                "cannot split after layer {layer}: network has {} layers",
                self.len()
            )));
        }
        let cut_dim = self.layer_output_dim(layer);
        let head = Network::new(self.input_dim, self.layers[..=layer].to_vec())?;
        let tail = Network::new(cut_dim, self.layers[layer + 1..].to_vec())?;
        Ok((head, tail))
    }

    /// Training-mode forward pass; returns the output and per-layer caches.
    pub(crate) fn forward_train(&mut self, x: &Vector) -> (Vector, Vec<LayerCache>) {
        let mut caches = Vec::with_capacity(self.layers.len());
        let mut acc = x.clone();
        for layer in &mut self.layers {
            let (next, cache) = layer.forward_train(&acc);
            caches.push(cache);
            acc = next;
        }
        (acc, caches)
    }

    /// Backward pass; returns the per-layer parameter gradients (aligned with
    /// `self.layers()`) and the gradient with respect to the network input.
    pub(crate) fn backward(
        &self,
        caches: &[LayerCache],
        grad_output: &Vector,
    ) -> (Vec<LayerGrad>, Vector) {
        let mut grads = vec![LayerGrad::None; self.layers.len()];
        let mut grad = grad_output.clone();
        for (i, layer) in self.layers.iter().enumerate().rev() {
            let (grad_in, layer_grad) = layer.backward(&caches[i], &grad);
            grads[i] = layer_grad;
            grad = grad_in;
        }
        (grads, grad)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Activation, BatchNorm1d, Dense, NetworkBuilder};
    use dpv_tensor::{approx_eq_slice, Initializer, Matrix};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_network() -> Network {
        // 2 -> 3 (relu) -> 2, hand-crafted weights.
        let w1 = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]]).unwrap();
        let w2 = Matrix::from_rows(&[vec![1.0, -1.0, 0.5], vec![0.0, 1.0, -0.5]]).unwrap();
        Network::new(
            2,
            vec![
                Layer::Dense(Dense::from_parts(w1, Vector::zeros(3))),
                Layer::Activation(Activation::ReLU),
                Layer::Dense(Dense::from_parts(w2, Vector::from_slice(&[0.1, -0.1]))),
            ],
        )
        .unwrap()
    }

    #[test]
    fn dimensions_are_validated() {
        let bad = Network::new(
            3,
            vec![Layer::Dense(Dense::from_parts(
                Matrix::zeros(2, 2),
                Vector::zeros(2),
            ))],
        );
        assert!(bad.is_err());
        let net = tiny_network();
        assert_eq!(net.input_dim(), 2);
        assert_eq!(net.output_dim(), 2);
        assert_eq!(net.len(), 3);
        assert_eq!(net.layer_output_dim(0), 3);
        assert_eq!(net.layer_output_dim(2), 2);
        assert_eq!(net.parameter_count(), 6 + 3 + 6 + 2);
    }

    #[test]
    fn forward_computes_expected_values() {
        let net = tiny_network();
        let x = Vector::from_slice(&[1.0, -2.0]);
        // h = relu([1, -2, -1]) = [1, 0, 0]; y = [1*1 + 0 + 0 + 0.1, 0 + 0 + 0 - 0.1].
        let y = net.forward(&x);
        assert!(approx_eq_slice(y.as_slice(), &[1.1, -0.1], 1e-12));
    }

    #[test]
    fn trace_and_activation_at_agree() {
        let net = tiny_network();
        let x = Vector::from_slice(&[0.5, 0.25]);
        let trace = net.forward_trace(&x);
        assert_eq!(trace.input(), &x);
        assert_eq!(trace.values().len(), 4);
        for l in 0..net.len() {
            assert_eq!(trace.layer_output(l), &net.activation_at(l, &x));
        }
        assert_eq!(trace.output(), &net.forward(&x));
    }

    #[test]
    fn split_and_forward_from_compose_to_full_network() {
        let net = tiny_network();
        let x = Vector::from_slice(&[0.3, 0.9]);
        for cut in 0..net.len() - 1 {
            let (head, tail) = net.split_at(cut).unwrap();
            let mid = head.forward(&x);
            let composed = tail.forward(&mid);
            assert!(approx_eq_slice(
                composed.as_slice(),
                net.forward(&x).as_slice(),
                1e-12
            ));
            let via_forward_from = net.forward_from(cut, &mid);
            assert!(approx_eq_slice(
                via_forward_from.as_slice(),
                net.forward(&x).as_slice(),
                1e-12
            ));
        }
        assert!(net.split_at(10).is_err());
    }

    #[test]
    fn summary_mentions_each_layer() {
        let net = tiny_network();
        let s = net.summary();
        assert!(s.contains("dense"));
        assert!(s.contains("relu"));
        assert!(s.contains("parameters"));
    }

    #[test]
    fn piecewise_linear_detection() {
        let net = tiny_network();
        assert!(net.is_piecewise_linear());
        let mut rng = StdRng::seed_from_u64(0);
        let smooth = NetworkBuilder::new(2)
            .dense(2, &mut rng)
            .activation(Activation::Sigmoid)
            .build();
        assert!(!smooth.is_piecewise_linear());
    }

    #[test]
    fn backward_produces_gradient_per_layer() {
        let mut net = tiny_network();
        let x = Vector::from_slice(&[1.0, 1.0]);
        let (out, caches) = net.forward_train(&x);
        assert_eq!(out.len(), 2);
        let (grads, grad_in) = net.backward(&caches, &Vector::ones(2));
        assert_eq!(grads.len(), 3);
        assert_eq!(grad_in.len(), 2);
        assert!(matches!(grads[0], LayerGrad::WeightBias { .. }));
        assert!(matches!(grads[1], LayerGrad::None));
    }

    #[test]
    fn batchnorm_layer_integrates() {
        let net = Network::new(
            2,
            vec![
                Layer::Dense(Dense::from_parts(Matrix::identity(2), Vector::zeros(2))),
                Layer::BatchNorm(BatchNorm1d::new(2)),
                Layer::Activation(Activation::ReLU),
            ],
        )
        .unwrap();
        let y = net.forward(&Vector::from_slice(&[1.0, -1.0]));
        assert!(y[0] > 0.99 && y[1] == 0.0);
    }

    #[test]
    fn network_builder_and_initializer_shapes() {
        let mut rng = StdRng::seed_from_u64(5);
        let net = NetworkBuilder::new(6)
            .dense_with(10, Initializer::XavierUniform, &mut rng)
            .activation(Activation::ReLU)
            .batch_norm()
            .dense(3, &mut rng)
            .build();
        assert_eq!(net.input_dim(), 6);
        assert_eq!(net.output_dim(), 3);
        assert_eq!(net.len(), 4);
    }
}

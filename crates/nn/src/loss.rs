//! Loss functions.

use serde::{Deserialize, Serialize};

use dpv_tensor::Vector;

/// The loss functions used in this workspace.
///
/// * [`LossKind::Mse`] trains the affordance regression head of the
///   perception network.
/// * [`LossKind::BceWithLogits`] trains the binary input-property
///   characterizer; the network outputs a raw logit and the sigmoid is folded
///   into the loss, so the trained characterizer can be verified with a
///   *linear* threshold (`logit >= 0`) instead of a non-linear sigmoid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LossKind {
    /// Mean squared error.
    Mse,
    /// Binary cross entropy on logits (numerically stable formulation).
    BceWithLogits,
}

/// A computed loss value and its gradient with respect to the prediction.
#[derive(Debug, Clone, PartialEq)]
pub struct Loss {
    /// Scalar loss value.
    pub value: f64,
    /// Gradient of the loss with respect to each prediction component.
    pub grad: Vector,
}

impl LossKind {
    /// Evaluates the loss and its gradient for one `(prediction, target)` pair.
    ///
    /// # Panics
    /// Panics when the prediction and target lengths differ.
    pub fn evaluate(self, prediction: &Vector, target: &Vector) -> Loss {
        assert_eq!(
            prediction.len(),
            target.len(),
            "loss requires prediction and target of equal length"
        );
        match self {
            LossKind::Mse => {
                let n = prediction.len().max(1) as f64;
                let diff = prediction - target;
                let value = diff.dot(&diff) / n;
                let grad = diff.scale(2.0 / n);
                Loss { value, grad }
            }
            LossKind::BceWithLogits => {
                let n = prediction.len().max(1) as f64;
                let mut value = 0.0;
                let mut grad = Vector::zeros(prediction.len());
                for i in 0..prediction.len() {
                    let z = prediction[i];
                    let y = target[i];
                    // Numerically stable: max(z,0) - z*y + ln(1 + e^-|z|).
                    value += z.max(0.0) - z * y + (1.0 + (-z.abs()).exp()).ln();
                    let sigmoid = 1.0 / (1.0 + (-z).exp());
                    grad[i] = (sigmoid - y) / n;
                }
                Loss {
                    value: value / n,
                    grad,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpv_tensor::approx_eq;

    #[test]
    fn mse_of_equal_vectors_is_zero() {
        let p = Vector::from_slice(&[1.0, 2.0]);
        let loss = LossKind::Mse.evaluate(&p, &p);
        assert_eq!(loss.value, 0.0);
        assert_eq!(loss.grad.as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn mse_value_and_gradient() {
        let p = Vector::from_slice(&[1.0, 3.0]);
        let t = Vector::from_slice(&[0.0, 1.0]);
        let loss = LossKind::Mse.evaluate(&p, &t);
        assert!(approx_eq(loss.value, (1.0 + 4.0) / 2.0, 1e-12));
        assert_eq!(loss.grad.as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn bce_is_low_for_confident_correct_predictions() {
        let correct = LossKind::BceWithLogits
            .evaluate(&Vector::from_slice(&[8.0]), &Vector::from_slice(&[1.0]));
        let wrong = LossKind::BceWithLogits
            .evaluate(&Vector::from_slice(&[8.0]), &Vector::from_slice(&[0.0]));
        assert!(correct.value < 0.01);
        assert!(wrong.value > 5.0);
    }

    #[test]
    fn bce_gradient_matches_finite_differences() {
        let target = Vector::from_slice(&[1.0, 0.0]);
        let z = Vector::from_slice(&[0.3, -0.8]);
        let loss = LossKind::BceWithLogits.evaluate(&z, &target);
        let eps = 1e-6;
        for i in 0..2 {
            let mut zp = z.clone();
            zp[i] += eps;
            let mut zm = z.clone();
            zm[i] -= eps;
            let numeric = (LossKind::BceWithLogits.evaluate(&zp, &target).value
                - LossKind::BceWithLogits.evaluate(&zm, &target).value)
                / (2.0 * eps);
            assert!((loss.grad[i] - numeric).abs() < 1e-6);
        }
    }

    #[test]
    fn mse_gradient_matches_finite_differences() {
        let target = Vector::from_slice(&[0.5, -1.0, 2.0]);
        let p = Vector::from_slice(&[0.1, 0.2, 0.3]);
        let loss = LossKind::Mse.evaluate(&p, &target);
        let eps = 1e-6;
        for i in 0..3 {
            let mut pp = p.clone();
            pp[i] += eps;
            let mut pm = p.clone();
            pm[i] -= eps;
            let numeric = (LossKind::Mse.evaluate(&pp, &target).value
                - LossKind::Mse.evaluate(&pm, &target).value)
                / (2.0 * eps);
            assert!((loss.grad[i] - numeric).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_lengths_panic() {
        let _ = LossKind::Mse.evaluate(&Vector::zeros(2), &Vector::zeros(3));
    }
}

//! # dpv-nn
//!
//! A from-scratch feed-forward neural-network library used both to *train*
//! the direct-perception network / input-property characterizers of the
//! paper and to *expose their structure* to the verification crates
//! (`dpv-absint`, `dpv-lp`, `dpv-core`).
//!
//! The design follows the paper's needs rather than a general deep-learning
//! framework:
//!
//! * layers are a closed [`Layer`] enum so verifiers can pattern-match on
//!   the exact piecewise-linear structure (dense, ReLU, batch-norm, ...);
//! * every network can report the activation vector at any layer
//!   ([`Network::activation_at`]), which is how the characterizer is
//!   attached at a close-to-output layer `l` and how the activation
//!   envelope `S̃` is collected from the training data;
//! * a network can be split at layer `l` ([`Network::split_at`]) yielding
//!   the head `f^(l)` and the tail `g^(L) ∘ … ∘ g^(l+1)` — the tail is the
//!   only part that reaches the MILP solver.
//!
//! Training uses plain backpropagation with SGD/momentum or Adam. Batch
//! normalisation trains against running statistics (documented in
//! [`BatchNorm1d`]) so that the trained layer is exactly the affine
//! transform the verifier analyses.
//!
//! ## Example
//!
//! ```
//! use dpv_nn::{Activation, Dataset, LossKind, NetworkBuilder, TrainConfig};
//! use dpv_tensor::Vector;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let mut net = NetworkBuilder::new(2)
//!     .dense(8, &mut rng)
//!     .activation(Activation::ReLU)
//!     .dense(1, &mut rng)
//!     .build();
//!
//! // Learn y = x0 + x1 on a tiny dataset.
//! let inputs: Vec<Vector> = (0..20)
//!     .map(|i| Vector::from_slice(&[i as f64 / 20.0, (20 - i) as f64 / 20.0]))
//!     .collect();
//! let targets: Vec<Vector> = inputs.iter().map(|x| Vector::from_slice(&[x[0] + x[1]])).collect();
//! let data = Dataset::new(inputs, targets).unwrap();
//! let config = TrainConfig { epochs: 50, ..TrainConfig::default() };
//! let history = dpv_nn::train(&mut net, &data, &config, LossKind::Mse, &mut rng);
//! assert!(history.final_loss() < 0.5);
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod activation;
mod batchnorm;
mod builder;
mod conv;
mod dataset;
mod dense;
mod error;
mod io;
mod layer;
mod loss;
mod network;
mod optimizer;
mod pool;
mod train;

pub use activation::Activation;
pub use batchnorm::BatchNorm1d;
pub use builder::NetworkBuilder;
pub use conv::Conv2d;
pub use dataset::{Batch, Dataset};
pub use dense::Dense;
pub use error::NnError;
pub use io::{network_from_text, network_to_text};
pub use layer::{Layer, LayerCache, LayerGrad, TensorShape};
pub use loss::{Loss, LossKind};
pub use network::{ActivationTrace, Network};
pub use optimizer::{Adam, Optimizer, OptimizerKind, Sgd};
pub use pool::{Flatten, MaxPool2d};
pub use train::{
    binary_accuracy, evaluate_loss, labels_to_dataset, train, EpochStats, TrainConfig, TrainHistory,
};

//! One-dimensional batch normalisation.

use serde::{Deserialize, Serialize};

use dpv_tensor::{Matrix, Vector};

/// Batch normalisation over a 1-D feature vector.
///
/// The paper's Audi network uses batch-normalisation layers close to the
/// output; at verification time those are frozen affine transforms
/// `y_i = gamma_i * (x_i - mean_i) / sqrt(var_i + eps) + beta_i`.
///
/// During training this implementation normalises against *running*
/// statistics that are updated from each observed sample (exponential
/// moving average with `momentum`). This keeps single-sample training
/// simple, and — more importantly for this workspace — guarantees that the
/// function analysed by the verifier (`forward`) is identical to the
/// function used during training, avoiding a train/inference semantic gap.
///
/// ```
/// use dpv_nn::BatchNorm1d;
/// use dpv_tensor::Vector;
/// let bn = BatchNorm1d::new(3);
/// let x = Vector::from_slice(&[1.0, -2.0, 0.5]);
/// // Fresh layer has mean 0, var 1, gamma 1, beta 0: identity up to eps.
/// let y = bn.forward(&x);
/// assert!(y.iter().zip(x.iter()).all(|(a, b)| (a - b).abs() < 1e-4));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchNorm1d {
    gamma: Vector,
    beta: Vector,
    running_mean: Vector,
    running_var: Vector,
    eps: f64,
    momentum: f64,
}

impl BatchNorm1d {
    /// Creates a batch-norm layer for `dim` features with unit scale, zero
    /// shift, zero running mean and unit running variance.
    pub fn new(dim: usize) -> Self {
        Self {
            gamma: Vector::ones(dim),
            beta: Vector::zeros(dim),
            running_mean: Vector::zeros(dim),
            running_var: Vector::ones(dim),
            eps: 1e-5,
            momentum: 0.01,
        }
    }

    /// Builds a frozen batch-norm layer from explicit statistics and affine
    /// parameters — the form in which a trained TensorFlow model would be
    /// imported.
    ///
    /// # Panics
    /// Panics when the four vectors do not share the same length.
    pub fn from_parts(gamma: Vector, beta: Vector, mean: Vector, var: Vector, eps: f64) -> Self {
        assert!(
            gamma.len() == beta.len() && beta.len() == mean.len() && mean.len() == var.len(),
            "batch-norm parameter vectors must share one length"
        );
        Self {
            gamma,
            beta,
            running_mean: mean,
            running_var: var,
            eps,
            momentum: 0.01,
        }
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.gamma.len()
    }

    /// Scale parameters `gamma`.
    pub fn gamma(&self) -> &Vector {
        &self.gamma
    }

    /// Shift parameters `beta`.
    pub fn beta(&self) -> &Vector {
        &self.beta
    }

    /// Running mean.
    pub fn running_mean(&self) -> &Vector {
        &self.running_mean
    }

    /// Running variance.
    pub fn running_var(&self) -> &Vector {
        &self.running_var
    }

    /// Numerical-stability epsilon.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// Effective affine form `y = a * x + b` of the (frozen) layer, returned
    /// as `(a, b)` vectors. This is what the abstract-interpretation and
    /// MILP encodings consume.
    pub fn affine_form(&self) -> (Vector, Vector) {
        let dim = self.dim();
        let mut a = Vector::zeros(dim);
        let mut b = Vector::zeros(dim);
        for i in 0..dim {
            let denom = (self.running_var[i] + self.eps).sqrt();
            a[i] = self.gamma[i] / denom;
            b[i] = self.beta[i] - self.gamma[i] * self.running_mean[i] / denom;
        }
        (a, b)
    }

    /// Forward pass using the running statistics (both training and inference).
    ///
    /// # Panics
    /// Panics when `x.len() != self.dim()`.
    pub fn forward(&self, x: &Vector) -> Vector {
        assert_eq!(x.len(), self.dim(), "batch-norm input dimension mismatch");
        let (a, b) = self.affine_form();
        &x.hadamard(&a) + &b
    }

    /// Batched inference forward pass over a feature-major frame batch
    /// (rows = channel, columns = frames). Applies the same frozen affine
    /// form `y = a * x + b` as [`BatchNorm1d::forward`] with the identical
    /// multiply-then-add per element, so every column matches the scalar
    /// path bit for bit.
    ///
    /// # Panics
    /// Panics when `x.rows() != self.dim()`.
    pub fn forward_batch(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.rows(), self.dim(), "batch-norm input dimension mismatch");
        let (a, b) = self.affine_form();
        let mut out = Matrix::zeros(x.rows(), x.cols());
        for i in 0..x.rows() {
            let (ai, bi) = (a[i], b[i]);
            let src = x.row(i);
            for (o, &v) in out.row_mut(i).iter_mut().zip(src.iter()) {
                *o = v * ai + bi;
            }
        }
        out
    }

    /// Updates the running statistics from one observed pre-normalisation
    /// sample (exponential moving average).
    ///
    /// # Panics
    /// Panics when `x.len() != self.dim()`.
    pub fn update_statistics(&mut self, x: &Vector) {
        assert_eq!(x.len(), self.dim(), "batch-norm input dimension mismatch");
        let m = self.momentum;
        for i in 0..self.dim() {
            self.running_mean[i] = (1.0 - m) * self.running_mean[i] + m * x[i];
            let centred = x[i] - self.running_mean[i];
            self.running_var[i] = (1.0 - m) * self.running_var[i] + m * centred * centred;
        }
    }

    /// Backward pass with frozen statistics. Returns
    /// `(grad_input, grad_gamma, grad_beta)`.
    pub fn backward(&self, input: &Vector, grad_output: &Vector) -> (Vector, Vector, Vector) {
        let dim = self.dim();
        let mut grad_input = Vector::zeros(dim);
        let mut grad_gamma = Vector::zeros(dim);
        let mut grad_beta = Vector::zeros(dim);
        for i in 0..dim {
            let denom = (self.running_var[i] + self.eps).sqrt();
            let normalised = (input[i] - self.running_mean[i]) / denom;
            grad_input[i] = grad_output[i] * self.gamma[i] / denom;
            grad_gamma[i] = grad_output[i] * normalised;
            grad_beta[i] = grad_output[i];
        }
        (grad_input, grad_gamma, grad_beta)
    }

    /// Applies a gradient step to `gamma` and `beta`.
    pub fn apply_gradients(&mut self, lr: f64, grad_gamma: &Vector, grad_beta: &Vector) {
        self.gamma -= &grad_gamma.scale(lr);
        self.beta -= &grad_beta.scale(lr);
    }

    /// Mutable access to gamma (used by the optimisers).
    pub fn gamma_mut(&mut self) -> &mut Vector {
        &mut self.gamma
    }

    /// Mutable access to beta (used by the optimisers).
    pub fn beta_mut(&mut self) -> &mut Vector {
        &mut self.beta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpv_tensor::approx_eq_slice;

    #[test]
    fn fresh_layer_is_identity_up_to_eps() {
        let bn = BatchNorm1d::new(2);
        let x = Vector::from_slice(&[3.0, -1.5]);
        let y = bn.forward(&x);
        assert!(approx_eq_slice(
            y.as_slice(),
            &[2.99998500011, -1.49999250006],
            1e-6
        ));
    }

    #[test]
    fn affine_form_matches_forward() {
        let bn = BatchNorm1d::from_parts(
            Vector::from_slice(&[2.0, 0.5]),
            Vector::from_slice(&[1.0, -1.0]),
            Vector::from_slice(&[0.5, 0.0]),
            Vector::from_slice(&[4.0, 1.0]),
            0.0,
        );
        let x = Vector::from_slice(&[1.5, 2.0]);
        let (a, b) = bn.affine_form();
        let via_affine = &x.hadamard(&a) + &b;
        assert!(approx_eq_slice(
            via_affine.as_slice(),
            bn.forward(&x).as_slice(),
            1e-12
        ));
        // Manual check: (1.5 - 0.5)/2 * 2 + 1 = 2; (2 - 0)/1 * 0.5 - 1 = 0.
        assert!(approx_eq_slice(
            bn.forward(&x).as_slice(),
            &[2.0, 0.0],
            1e-12
        ));
    }

    #[test]
    fn update_statistics_tracks_mean() {
        let mut bn = BatchNorm1d::new(1);
        for _ in 0..2000 {
            bn.update_statistics(&Vector::from_slice(&[5.0]));
        }
        assert!((bn.running_mean()[0] - 5.0).abs() < 0.1);
        assert!(bn.running_var()[0] < 0.2);
    }

    #[test]
    fn backward_matches_finite_differences() {
        let bn = BatchNorm1d::from_parts(
            Vector::from_slice(&[1.3, 0.7]),
            Vector::from_slice(&[0.2, -0.4]),
            Vector::from_slice(&[0.1, -0.2]),
            Vector::from_slice(&[0.9, 2.0]),
            1e-5,
        );
        let x = Vector::from_slice(&[0.6, -1.1]);
        let grad_out = Vector::ones(2);
        let (grad_in, grad_gamma, grad_beta) = bn.backward(&x, &grad_out);
        let eps = 1e-6;
        for i in 0..2 {
            let mut xp = x.clone();
            xp[i] += eps;
            let mut xm = x.clone();
            xm[i] -= eps;
            let numeric = (bn.forward(&xp).sum() - bn.forward(&xm).sum()) / (2.0 * eps);
            assert!((grad_in[i] - numeric).abs() < 1e-6);
        }
        for i in 0..2 {
            let mut bp = bn.clone();
            bp.gamma_mut()[i] += eps;
            let mut bm = bn.clone();
            bm.gamma_mut()[i] -= eps;
            let numeric = (bp.forward(&x).sum() - bm.forward(&x).sum()) / (2.0 * eps);
            assert!((grad_gamma[i] - numeric).abs() < 1e-6);
        }
        assert!(approx_eq_slice(grad_beta.as_slice(), &[1.0, 1.0], 1e-12));
    }

    #[test]
    #[should_panic(expected = "share one length")]
    fn from_parts_validates_lengths() {
        let _ = BatchNorm1d::from_parts(
            Vector::zeros(2),
            Vector::zeros(2),
            Vector::zeros(3),
            Vector::zeros(2),
            1e-5,
        );
    }
}

//! Self-contained plain-text (de)serialisation of networks.
//!
//! The format is intentionally trivial — one whitespace-separated record per
//! line — so that a trained model can be persisted, diffed and inspected
//! without pulling in a serde data-format crate. It plays the role the
//! TensorFlow model files play in the paper's original toolchain.

use dpv_tensor::{Matrix, Vector};

use crate::{
    Activation, BatchNorm1d, Dense, Flatten, Layer, MaxPool2d, Network, NnError, TensorShape,
};

/// Serialises a network to the plain-text model format.
///
/// ```
/// use dpv_nn::{network_to_text, network_from_text, Activation, NetworkBuilder};
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let net = NetworkBuilder::new(3).dense(2, &mut rng).activation(Activation::ReLU).build();
/// let text = network_to_text(&net);
/// let back = network_from_text(&text).unwrap();
/// assert_eq!(net, back);
/// ```
pub fn network_to_text(network: &Network) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "dpv-network v1 input_dim {} layers {}\n",
        network.input_dim(),
        network.len()
    ));
    for layer in network.layers() {
        match layer {
            Layer::Dense(d) => {
                out.push_str(&format!("dense {} {}\n", d.output_dim(), d.input_dim()));
                push_matrix(&mut out, d.weights());
                push_vector(&mut out, d.bias());
            }
            Layer::Activation(a) => match a {
                Activation::LeakyReLU(slope) => {
                    out.push_str(&format!("activation leaky_relu {slope}\n"))
                }
                other => out.push_str(&format!("activation {}\n", other.name())),
            },
            Layer::BatchNorm(bn) => {
                out.push_str(&format!("batchnorm {} {}\n", bn.dim(), bn.eps()));
                push_vector(&mut out, bn.gamma());
                push_vector(&mut out, bn.beta());
                push_vector(&mut out, bn.running_mean());
                push_vector(&mut out, bn.running_var());
            }
            Layer::Conv2d(c) => {
                let shape = c.input_shape();
                out.push_str(&format!(
                    "conv2d {} {} {} {} {} {}\n",
                    shape.channels,
                    shape.height,
                    shape.width,
                    c.output_shape().channels,
                    c.kernel(),
                    c.stride()
                ));
                push_matrix(&mut out, c.weights());
                push_vector(&mut out, c.bias());
            }
            Layer::MaxPool2d(p) => {
                let shape = p.input_shape();
                out.push_str(&format!(
                    "maxpool2d {} {} {} {}\n",
                    shape.channels,
                    shape.height,
                    shape.width,
                    p.pool()
                ));
            }
            Layer::Flatten(f) => {
                let shape = f.shape();
                out.push_str(&format!(
                    "flatten {} {} {}\n",
                    shape.channels, shape.height, shape.width
                ));
            }
        }
    }
    out
}

/// Parses a network from the plain-text model format produced by
/// [`network_to_text`].
///
/// # Errors
/// Returns [`NnError::Parse`] when the text is malformed, and
/// [`NnError::InvalidNetwork`] when the parsed layers are dimensionally
/// inconsistent.
pub fn network_from_text(text: &str) -> Result<Network, NnError> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header = lines
        .next()
        .ok_or_else(|| NnError::Parse("empty model text".into()))?;
    let header_tokens: Vec<&str> = header.split_whitespace().collect();
    if header_tokens.len() != 6 || header_tokens[0] != "dpv-network" || header_tokens[1] != "v1" {
        return Err(NnError::Parse(format!("unrecognised header: {header}")));
    }
    let input_dim: usize = parse_token(header_tokens[3], "input_dim")?;
    let layer_count: usize = parse_token(header_tokens[5], "layer count")?;

    let mut layers = Vec::with_capacity(layer_count);
    for _ in 0..layer_count {
        let decl = lines
            .next()
            .ok_or_else(|| NnError::Parse("unexpected end of model text".into()))?;
        let tokens: Vec<&str> = decl.split_whitespace().collect();
        match tokens.first().copied() {
            Some("dense") => {
                let out_dim: usize =
                    parse_token(tokens.get(1).copied().unwrap_or(""), "dense rows")?;
                let in_dim: usize =
                    parse_token(tokens.get(2).copied().unwrap_or(""), "dense cols")?;
                let weights = read_matrix(&mut lines, out_dim, in_dim)?;
                let bias = read_vector(&mut lines, out_dim)?;
                layers.push(Layer::Dense(Dense::from_parts(weights, bias)));
            }
            Some("activation") => {
                let kind = tokens.get(1).copied().unwrap_or("");
                let act = match kind {
                    "identity" => Activation::Identity,
                    "relu" => Activation::ReLU,
                    "sigmoid" => Activation::Sigmoid,
                    "tanh" => Activation::Tanh,
                    "leaky_relu" => {
                        let slope: f64 =
                            parse_token(tokens.get(2).copied().unwrap_or(""), "leaky slope")?;
                        Activation::LeakyReLU(slope)
                    }
                    other => return Err(NnError::Parse(format!("unknown activation: {other}"))),
                };
                layers.push(Layer::Activation(act));
            }
            Some("batchnorm") => {
                let dim: usize =
                    parse_token(tokens.get(1).copied().unwrap_or(""), "batchnorm dim")?;
                let eps: f64 = parse_token(tokens.get(2).copied().unwrap_or(""), "batchnorm eps")?;
                let gamma = read_vector(&mut lines, dim)?;
                let beta = read_vector(&mut lines, dim)?;
                let mean = read_vector(&mut lines, dim)?;
                let var = read_vector(&mut lines, dim)?;
                layers.push(Layer::BatchNorm(BatchNorm1d::from_parts(
                    gamma, beta, mean, var, eps,
                )));
            }
            Some("conv2d") => {
                let c: usize = parse_token(tokens.get(1).copied().unwrap_or(""), "conv channels")?;
                let h: usize = parse_token(tokens.get(2).copied().unwrap_or(""), "conv height")?;
                let w: usize = parse_token(tokens.get(3).copied().unwrap_or(""), "conv width")?;
                let out_c: usize =
                    parse_token(tokens.get(4).copied().unwrap_or(""), "conv out channels")?;
                let kernel: usize =
                    parse_token(tokens.get(5).copied().unwrap_or(""), "conv kernel")?;
                let stride: usize =
                    parse_token(tokens.get(6).copied().unwrap_or(""), "conv stride")?;
                let shape = TensorShape::new(c, h, w);
                let fan_in = c * kernel * kernel;
                let weights = read_matrix(&mut lines, out_c, fan_in)?;
                let bias = read_vector(&mut lines, out_c)?;
                let mut rng = rand::rngs::mock::StepRng::new(0, 0);
                let mut conv = crate::Conv2d::new(
                    shape,
                    out_c,
                    kernel,
                    stride,
                    dpv_tensor::Initializer::Zeros,
                    &mut rng,
                );
                *conv.weights_mut() = weights;
                *conv.bias_mut() = bias;
                layers.push(Layer::Conv2d(conv));
            }
            Some("maxpool2d") => {
                let c: usize = parse_token(tokens.get(1).copied().unwrap_or(""), "pool channels")?;
                let h: usize = parse_token(tokens.get(2).copied().unwrap_or(""), "pool height")?;
                let w: usize = parse_token(tokens.get(3).copied().unwrap_or(""), "pool width")?;
                let pool: usize = parse_token(tokens.get(4).copied().unwrap_or(""), "pool size")?;
                layers.push(Layer::MaxPool2d(MaxPool2d::new(
                    TensorShape::new(c, h, w),
                    pool,
                )));
            }
            Some("flatten") => {
                let c: usize =
                    parse_token(tokens.get(1).copied().unwrap_or(""), "flatten channels")?;
                let h: usize = parse_token(tokens.get(2).copied().unwrap_or(""), "flatten height")?;
                let w: usize = parse_token(tokens.get(3).copied().unwrap_or(""), "flatten width")?;
                layers.push(Layer::Flatten(Flatten::new(TensorShape::new(c, h, w))));
            }
            other => {
                return Err(NnError::Parse(format!("unknown layer kind: {other:?}")));
            }
        }
    }
    Network::new(input_dim, layers)
}

fn parse_token<T: std::str::FromStr>(token: &str, what: &str) -> Result<T, NnError> {
    token
        .parse()
        .map_err(|_| NnError::Parse(format!("cannot parse {what} from {token:?}")))
}

fn push_vector(out: &mut String, v: &Vector) {
    let rendered: Vec<String> = v.iter().map(|x| format!("{x:e}")).collect();
    out.push_str(&rendered.join(" "));
    out.push('\n');
}

fn push_matrix(out: &mut String, m: &Matrix) {
    for r in 0..m.rows() {
        let rendered: Vec<String> = m.row(r).iter().map(|x| format!("{x:e}")).collect();
        out.push_str(&rendered.join(" "));
        out.push('\n');
    }
}

fn read_vector<'a>(
    lines: &mut impl Iterator<Item = &'a str>,
    len: usize,
) -> Result<Vector, NnError> {
    let line = lines.next().ok_or_else(|| {
        NnError::Parse("unexpected end of model text while reading vector".into())
    })?;
    let values: Result<Vec<f64>, _> = line.split_whitespace().map(str::parse).collect();
    let values =
        values.map_err(|_| NnError::Parse(format!("cannot parse vector line {line:?}")))?;
    if values.len() != len {
        return Err(NnError::Parse(format!(
            "expected vector of length {len}, got {}",
            values.len()
        )));
    }
    Ok(Vector::from_vec(values))
}

fn read_matrix<'a>(
    lines: &mut impl Iterator<Item = &'a str>,
    rows: usize,
    cols: usize,
) -> Result<Matrix, NnError> {
    let mut data = Vec::with_capacity(rows * cols);
    for _ in 0..rows {
        let row = read_vector(lines, cols)?;
        data.extend_from_slice(row.as_slice());
    }
    Matrix::from_flat(rows, cols, data).map_err(|e| NnError::Parse(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetworkBuilder;
    use dpv_tensor::approx_eq_slice;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn roundtrip_dense_relu_batchnorm() {
        let mut rng = StdRng::seed_from_u64(42);
        let net = NetworkBuilder::new(4)
            .dense(6, &mut rng)
            .activation(Activation::ReLU)
            .batch_norm()
            .dense(2, &mut rng)
            .activation(Activation::LeakyReLU(0.05))
            .build();
        let text = network_to_text(&net);
        let parsed = network_from_text(&text).unwrap();
        assert_eq!(net, parsed);
    }

    #[test]
    fn roundtrip_convolutional_network_preserves_function() {
        let mut rng = StdRng::seed_from_u64(7);
        let net = NetworkBuilder::with_image_input(TensorShape::new(1, 6, 6))
            .conv2d(2, 3, 1, &mut rng)
            .activation(Activation::ReLU)
            .max_pool(2)
            .flatten()
            .dense(3, &mut rng)
            .build();
        let text = network_to_text(&net);
        let parsed = network_from_text(&text).unwrap();
        let x = Vector::from_vec((0..36).map(|i| (i as f64 * 0.1).sin()).collect());
        assert!(approx_eq_slice(
            net.forward(&x).as_slice(),
            parsed.forward(&x).as_slice(),
            1e-9
        ));
    }

    #[test]
    fn rejects_malformed_text() {
        assert!(network_from_text("").is_err());
        assert!(network_from_text("bogus header here x y z\n").is_err());
        assert!(network_from_text("dpv-network v1 input_dim 2 layers 1\nunknown_layer\n").is_err());
        assert!(
            network_from_text("dpv-network v1 input_dim 2 layers 1\ndense 2 2\n1 2\n").is_err()
        );
    }

    #[test]
    fn header_reports_layer_count() {
        let mut rng = StdRng::seed_from_u64(1);
        let net = NetworkBuilder::new(2).dense(2, &mut rng).build();
        let text = network_to_text(&net);
        assert!(text.starts_with("dpv-network v1 input_dim 2 layers 1"));
    }
}

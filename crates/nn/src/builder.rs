//! Fluent builder for feed-forward networks.

use dpv_tensor::Initializer;
use rand::Rng;

use crate::{
    Activation, BatchNorm1d, Conv2d, Dense, Flatten, Layer, MaxPool2d, Network, TensorShape,
};

/// Fluent builder that tracks the running output dimension so layers can be
/// appended without repeating shapes.
///
/// ```
/// use dpv_nn::{Activation, NetworkBuilder};
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let net = NetworkBuilder::new(16)
///     .dense(32, &mut rng)
///     .activation(Activation::ReLU)
///     .batch_norm()
///     .dense(4, &mut rng)
///     .build();
/// assert_eq!(net.output_dim(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct NetworkBuilder {
    input_dim: usize,
    current_dim: usize,
    current_shape: Option<TensorShape>,
    layers: Vec<Layer>,
}

impl NetworkBuilder {
    /// Starts a builder for networks whose input is a flat vector of
    /// dimension `input_dim`.
    pub fn new(input_dim: usize) -> Self {
        Self {
            input_dim,
            current_dim: input_dim,
            current_shape: None,
            layers: Vec::new(),
        }
    }

    /// Starts a builder for networks whose input is a channel-major image of
    /// the given shape (e.g. a camera frame for the perception front-end).
    pub fn with_image_input(shape: TensorShape) -> Self {
        Self {
            input_dim: shape.len(),
            current_dim: shape.len(),
            current_shape: Some(shape),
            layers: Vec::new(),
        }
    }

    /// Current output dimension of the network under construction.
    pub fn current_dim(&self) -> usize {
        self.current_dim
    }

    /// Appends a dense layer with He-normal initialisation (the default for
    /// ReLU networks).
    pub fn dense<R: Rng + ?Sized>(self, output_dim: usize, rng: &mut R) -> Self {
        self.dense_with(output_dim, Initializer::HeNormal, rng)
    }

    /// Appends a dense layer with an explicit initialiser.
    pub fn dense_with<R: Rng + ?Sized>(
        mut self,
        output_dim: usize,
        init: Initializer,
        rng: &mut R,
    ) -> Self {
        let layer = Dense::new(self.current_dim, output_dim, init, rng);
        self.layers.push(Layer::Dense(layer));
        self.current_dim = output_dim;
        self.current_shape = None;
        self
    }

    /// Appends an element-wise activation layer.
    pub fn activation(mut self, activation: Activation) -> Self {
        self.layers.push(Layer::Activation(activation));
        self
    }

    /// Appends a batch-normalisation layer matching the current dimension.
    pub fn batch_norm(mut self) -> Self {
        self.layers
            .push(Layer::BatchNorm(BatchNorm1d::new(self.current_dim)));
        self
    }

    /// Appends a convolution layer. Requires the running value to still be an
    /// image (i.e. no dense layer has been added yet).
    ///
    /// # Panics
    /// Panics when the current value is not shaped (call
    /// [`NetworkBuilder::with_image_input`] first).
    pub fn conv2d<R: Rng + ?Sized>(
        mut self,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        rng: &mut R,
    ) -> Self {
        let shape = self
            .current_shape
            .expect("conv2d requires an image-shaped input; use with_image_input");
        let layer = Conv2d::new(
            shape,
            out_channels,
            kernel,
            stride,
            Initializer::HeNormal,
            rng,
        );
        let out_shape = layer.output_shape();
        self.layers.push(Layer::Conv2d(layer));
        self.current_dim = out_shape.len();
        self.current_shape = Some(out_shape);
        self
    }

    /// Appends a non-overlapping max-pool layer.
    ///
    /// # Panics
    /// Panics when the current value is not shaped.
    pub fn max_pool(mut self, pool: usize) -> Self {
        let shape = self
            .current_shape
            .expect("max_pool requires an image-shaped input");
        let layer = MaxPool2d::new(shape, pool);
        let out_shape = layer.output_shape();
        self.layers.push(Layer::MaxPool2d(layer));
        self.current_dim = out_shape.len();
        self.current_shape = Some(out_shape);
        self
    }

    /// Appends a flatten marker, after which dense layers may follow.
    ///
    /// # Panics
    /// Panics when the current value is not shaped.
    pub fn flatten(mut self) -> Self {
        let shape = self
            .current_shape
            .expect("flatten requires an image-shaped input");
        self.layers.push(Layer::Flatten(Flatten::new(shape)));
        self.current_shape = None;
        self
    }

    /// Appends an arbitrary pre-built layer.
    ///
    /// # Panics
    /// Panics when the layer's expected input dimension conflicts with the
    /// running dimension.
    pub fn layer(mut self, layer: Layer) -> Self {
        if let Some(expected) = layer.input_dim() {
            assert_eq!(
                expected, self.current_dim,
                "layer expects input dimension {expected}, builder is at {}",
                self.current_dim
            );
        }
        self.current_dim = layer.output_dim(self.current_dim);
        self.current_shape = None;
        self.layers.push(layer);
        self
    }

    /// Finalises the network.
    ///
    /// # Panics
    /// Never panics in practice: dimensions are maintained incrementally, so
    /// the internal consistency check always succeeds.
    pub fn build(self) -> Network {
        Network::new(self.input_dim, self.layers).expect("builder maintains consistent dimensions")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpv_tensor::Vector;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn builds_dense_network() {
        let mut rng = StdRng::seed_from_u64(0);
        let net = NetworkBuilder::new(3)
            .dense(5, &mut rng)
            .activation(Activation::ReLU)
            .dense(2, &mut rng)
            .build();
        assert_eq!(net.input_dim(), 3);
        assert_eq!(net.output_dim(), 2);
    }

    #[test]
    fn builds_convolutional_front_end() {
        let mut rng = StdRng::seed_from_u64(1);
        let net = NetworkBuilder::with_image_input(TensorShape::new(1, 8, 8))
            .conv2d(4, 3, 1, &mut rng)
            .activation(Activation::ReLU)
            .max_pool(2)
            .flatten()
            .dense(10, &mut rng)
            .activation(Activation::ReLU)
            .dense(2, &mut rng)
            .build();
        assert_eq!(net.input_dim(), 64);
        assert_eq!(net.output_dim(), 2);
        let y = net.forward(&Vector::zeros(64));
        assert_eq!(y.len(), 2);
    }

    #[test]
    fn layer_method_checks_dimensions() {
        let mut rng = StdRng::seed_from_u64(2);
        let extra = Layer::Dense(crate::Dense::new(
            4,
            2,
            dpv_tensor::Initializer::HeNormal,
            &mut rng,
        ));
        let net = NetworkBuilder::new(6)
            .dense(4, &mut rng)
            .layer(extra)
            .build();
        assert_eq!(net.output_dim(), 2);
    }

    #[test]
    #[should_panic(expected = "expects input dimension")]
    fn layer_method_panics_on_mismatch() {
        let mut rng = StdRng::seed_from_u64(3);
        let extra = Layer::Dense(crate::Dense::new(
            9,
            2,
            dpv_tensor::Initializer::HeNormal,
            &mut rng,
        ));
        let _ = NetworkBuilder::new(6).dense(4, &mut rng).layer(extra);
    }

    #[test]
    #[should_panic(expected = "image-shaped input")]
    fn conv_requires_image_input() {
        let mut rng = StdRng::seed_from_u64(4);
        let _ = NetworkBuilder::new(10).conv2d(2, 3, 1, &mut rng);
    }
}

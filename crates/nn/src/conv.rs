//! Two-dimensional convolution over flattened channel-major images.

use serde::{Deserialize, Serialize};

use dpv_tensor::{Initializer, Matrix, Vector};
use rand::Rng;

use crate::layer::TensorShape;

/// A 2-D convolution layer.
///
/// Inputs and outputs are flattened channel-major vectors (`c * h * w`):
/// index `(c, y, x)` lives at `c * h * w + y * w + x`. This matches the
/// flattening used by [`crate::Flatten`] and by the scene generator, so a
/// convolutional perception front-end can feed a dense verification tail
/// without reshaping glue.
///
/// The kernel weights are stored as a matrix of shape
/// `(out_channels, in_channels * kernel * kernel)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Conv2d {
    in_shape: TensorShape,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    weights: Matrix,
    bias: Vector,
}

impl Conv2d {
    /// Creates a randomly initialised convolution layer.
    ///
    /// # Panics
    /// Panics when `kernel` is zero, `stride` is zero, or the kernel does not
    /// fit inside the input spatial dimensions.
    pub fn new<R: Rng + ?Sized>(
        in_shape: TensorShape,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        init: Initializer,
        rng: &mut R,
    ) -> Self {
        assert!(
            kernel > 0 && stride > 0,
            "kernel and stride must be positive"
        );
        assert!(
            kernel <= in_shape.height && kernel <= in_shape.width,
            "kernel {}x{} does not fit input {}x{}",
            kernel,
            kernel,
            in_shape.height,
            in_shape.width
        );
        let fan_in = in_shape.channels * kernel * kernel;
        Self {
            in_shape,
            out_channels,
            kernel,
            stride,
            weights: init.matrix(out_channels, fan_in, rng),
            bias: init.bias(out_channels, rng),
        }
    }

    /// Input shape.
    pub fn input_shape(&self) -> TensorShape {
        self.in_shape
    }

    /// Output shape after the convolution.
    pub fn output_shape(&self) -> TensorShape {
        TensorShape {
            channels: self.out_channels,
            height: (self.in_shape.height - self.kernel) / self.stride + 1,
            width: (self.in_shape.width - self.kernel) / self.stride + 1,
        }
    }

    /// Flattened input dimension.
    pub fn input_dim(&self) -> usize {
        self.in_shape.len()
    }

    /// Flattened output dimension.
    pub fn output_dim(&self) -> usize {
        self.output_shape().len()
    }

    /// Kernel size.
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    /// Stride.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Kernel weight matrix of shape `(out_channels, in_channels * k * k)`.
    pub fn weights(&self) -> &Matrix {
        &self.weights
    }

    /// Bias vector (one entry per output channel).
    pub fn bias(&self) -> &Vector {
        &self.bias
    }

    /// Mutable kernel weights (used by the optimisers).
    pub fn weights_mut(&mut self) -> &mut Matrix {
        &mut self.weights
    }

    /// Mutable bias (used by the optimisers).
    pub fn bias_mut(&mut self) -> &mut Vector {
        &mut self.bias
    }

    fn patch(&self, x: &Vector, oy: usize, ox: usize) -> Vector {
        let TensorShape {
            channels,
            height,
            width,
        } = self.in_shape;
        let mut patch = Vec::with_capacity(channels * self.kernel * self.kernel);
        for c in 0..channels {
            for ky in 0..self.kernel {
                for kx in 0..self.kernel {
                    let y = oy * self.stride + ky;
                    let xx = ox * self.stride + kx;
                    debug_assert!(y < height && xx < width);
                    patch.push(x[c * height * width + y * width + xx]);
                }
            }
        }
        Vector::from_vec(patch)
    }

    /// Forward pass over a flattened channel-major input.
    ///
    /// # Panics
    /// Panics when `x.len() != self.input_dim()`.
    pub fn forward(&self, x: &Vector) -> Vector {
        assert_eq!(x.len(), self.input_dim(), "conv2d input dimension mismatch");
        let out_shape = self.output_shape();
        let mut out = Vector::zeros(out_shape.len());
        for oc in 0..self.out_channels {
            let kernel_row = Vector::from_slice(self.weights.row(oc));
            for oy in 0..out_shape.height {
                for ox in 0..out_shape.width {
                    let patch = self.patch(x, oy, ox);
                    let value = kernel_row.dot(&patch) + self.bias[oc];
                    out[oc * out_shape.height * out_shape.width + oy * out_shape.width + ox] =
                        value;
                }
            }
        }
        out
    }

    /// Batched forward pass over feature-major columns: `xs` has one row per
    /// input feature and one column per frame; the result has one row per
    /// output feature and the same columns.
    ///
    /// Bit-exact with [`Conv2d::forward`] per frame: for every output
    /// position the patch columns are accumulated in the same `(channel,
    /// ky, kx)` order the scalar dot product walks them in, with the bias
    /// added last — the batch kernel only widens the inner loop across
    /// frames (and skips the per-position patch allocation, which is where
    /// the throughput win comes from).
    ///
    /// # Panics
    /// Panics when `xs.rows() != self.input_dim()`.
    pub fn forward_batch(&self, xs: &Matrix) -> Matrix {
        assert_eq!(
            xs.rows(),
            self.input_dim(),
            "conv2d batch input dimension mismatch"
        );
        let TensorShape { height, width, .. } = self.in_shape;
        let out_shape = self.output_shape();
        let mut out = Matrix::zeros(out_shape.len(), xs.cols());
        for oc in 0..self.out_channels {
            let kernel_row = self.weights.row(oc);
            for oy in 0..out_shape.height {
                for ox in 0..out_shape.width {
                    let out_row = out.row_mut(
                        oc * out_shape.height * out_shape.width + oy * out_shape.width + ox,
                    );
                    let mut col = 0usize;
                    for c in 0..self.in_shape.channels {
                        for ky in 0..self.kernel {
                            let y = oy * self.stride + ky;
                            for kx in 0..self.kernel {
                                let xx = ox * self.stride + kx;
                                let w = kernel_row[col];
                                let src = xs.row(c * height * width + y * width + xx);
                                for (acc, &v) in out_row.iter_mut().zip(src.iter()) {
                                    *acc += w * v;
                                }
                                col += 1;
                            }
                        }
                    }
                    let b = self.bias[oc];
                    for acc in out_row.iter_mut() {
                        *acc += b;
                    }
                }
            }
        }
        out
    }

    /// Backward pass. Returns `(grad_input, grad_weights, grad_bias)`.
    pub fn backward(&self, input: &Vector, grad_output: &Vector) -> (Vector, Matrix, Vector) {
        let out_shape = self.output_shape();
        assert_eq!(
            grad_output.len(),
            out_shape.len(),
            "conv2d grad_output dimension mismatch"
        );
        let TensorShape {
            channels,
            height,
            width,
        } = self.in_shape;
        let mut grad_input = Vector::zeros(self.input_dim());
        let mut grad_weights = Matrix::zeros(self.weights.rows(), self.weights.cols());
        let mut grad_bias = Vector::zeros(self.out_channels);
        for oc in 0..self.out_channels {
            for oy in 0..out_shape.height {
                for ox in 0..out_shape.width {
                    let go = grad_output
                        [oc * out_shape.height * out_shape.width + oy * out_shape.width + ox];
                    if go == 0.0 {
                        continue;
                    }
                    grad_bias[oc] += go;
                    let mut col = 0usize;
                    for c in 0..channels {
                        for ky in 0..self.kernel {
                            for kx in 0..self.kernel {
                                let y = oy * self.stride + ky;
                                let xx = ox * self.stride + kx;
                                let in_idx = c * height * width + y * width + xx;
                                grad_weights[(oc, col)] += go * input[in_idx];
                                grad_input[in_idx] += go * self.weights[(oc, col)];
                                col += 1;
                            }
                        }
                    }
                }
            }
        }
        (grad_input, grad_weights, grad_bias)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_shape() -> TensorShape {
        TensorShape {
            channels: 1,
            height: 4,
            width: 4,
        }
    }

    #[test]
    fn output_shape_accounts_for_stride() {
        let mut rng = StdRng::seed_from_u64(0);
        let conv = Conv2d::new(small_shape(), 2, 2, 2, Initializer::HeNormal, &mut rng);
        let out = conv.output_shape();
        assert_eq!((out.channels, out.height, out.width), (2, 2, 2));
        assert_eq!(conv.output_dim(), 8);
    }

    #[test]
    fn forward_computes_known_convolution() {
        // Single 1x3x3 input, one 2x2 kernel of all ones, stride 1.
        let shape = TensorShape {
            channels: 1,
            height: 3,
            width: 3,
        };
        let mut rng = StdRng::seed_from_u64(0);
        let mut conv = Conv2d::new(shape, 1, 2, 1, Initializer::Zeros, &mut rng);
        for c in 0..4 {
            conv.weights_mut()[(0, c)] = 1.0;
        }
        let x = Vector::from_vec((1..=9).map(|v| v as f64).collect());
        let y = conv.forward(&x);
        // Sliding 2x2 sums of [[1,2,3],[4,5,6],[7,8,9]].
        assert_eq!(y.as_slice(), &[12.0, 16.0, 24.0, 28.0]);
    }

    #[test]
    fn batched_forward_matches_scalar_exactly() {
        let shape = TensorShape {
            channels: 2,
            height: 5,
            width: 6,
        };
        let mut rng = StdRng::seed_from_u64(3);
        let conv = Conv2d::new(shape, 3, 2, 2, Initializer::XavierUniform, &mut rng);
        let frames: Vec<Vector> = (0..7)
            .map(|f| {
                Vector::from_vec(
                    (0..shape.len())
                        .map(|i| ((i + f * 31) as f64 * 0.17).sin())
                        .collect(),
                )
            })
            .collect();
        let batched = conv.forward_batch(&Matrix::from_columns(&frames).unwrap());
        for (f, frame) in frames.iter().enumerate() {
            let scalar = conv.forward(frame);
            // Bit-exact, not approximate: the batch kernel replays the
            // scalar accumulation order.
            assert_eq!(batched.col_vector(f), scalar, "frame {f} drifted");
        }
    }

    #[test]
    fn gradients_match_finite_differences() {
        let shape = TensorShape {
            channels: 2,
            height: 3,
            width: 3,
        };
        let mut rng = StdRng::seed_from_u64(7);
        let conv = Conv2d::new(shape, 2, 2, 1, Initializer::XavierUniform, &mut rng);
        let x = Vector::from_vec((0..shape.len()).map(|i| (i as f64 * 0.37).sin()).collect());
        let grad_out = Vector::ones(conv.output_dim());
        let (grad_in, grad_w, grad_b) = conv.backward(&x, &grad_out);
        let eps = 1e-6;
        for i in [0usize, 5, 11, 17] {
            let mut xp = x.clone();
            xp[i] += eps;
            let mut xm = x.clone();
            xm[i] -= eps;
            let numeric = (conv.forward(&xp).sum() - conv.forward(&xm).sum()) / (2.0 * eps);
            assert!(
                (grad_in[i] - numeric).abs() < 1e-5,
                "input grad mismatch at {i}"
            );
        }
        for (r, c) in [(0usize, 0usize), (1, 3), (1, 7)] {
            let mut cp = conv.clone();
            cp.weights_mut()[(r, c)] += eps;
            let mut cm = conv.clone();
            cm.weights_mut()[(r, c)] -= eps;
            let numeric = (cp.forward(&x).sum() - cm.forward(&x).sum()) / (2.0 * eps);
            assert!(
                (grad_w[(r, c)] - numeric).abs() < 1e-5,
                "weight grad mismatch at {r},{c}"
            );
        }
        for i in 0..2 {
            let mut cp = conv.clone();
            cp.bias_mut()[i] += eps;
            let mut cm = conv.clone();
            cm.bias_mut()[i] -= eps;
            let numeric = (cp.forward(&x).sum() - cm.forward(&x).sum()) / (2.0 * eps);
            assert!((grad_b[i] - numeric).abs() < 1e-5);
        }
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn kernel_must_fit() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = Conv2d::new(
            TensorShape {
                channels: 1,
                height: 2,
                width: 2,
            },
            1,
            3,
            1,
            Initializer::Zeros,
            &mut rng,
        );
    }
}

//! Max-pooling and flattening layers.

use serde::{Deserialize, Serialize};

use dpv_tensor::Vector;

use crate::layer::TensorShape;

/// 2-D max pooling over flattened channel-major images.
///
/// The pooling window is square (`pool` × `pool`) and the stride equals the
/// window size (non-overlapping pooling), which is how the perception
/// front-end downsamples feature maps.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MaxPool2d {
    in_shape: TensorShape,
    pool: usize,
}

impl MaxPool2d {
    /// Creates a max-pool layer.
    ///
    /// # Panics
    /// Panics when `pool` is zero or larger than either spatial dimension.
    pub fn new(in_shape: TensorShape, pool: usize) -> Self {
        assert!(pool > 0, "pool size must be positive");
        assert!(
            pool <= in_shape.height && pool <= in_shape.width,
            "pool window {}x{} does not fit input {}x{}",
            pool,
            pool,
            in_shape.height,
            in_shape.width
        );
        Self { in_shape, pool }
    }

    /// Input shape.
    pub fn input_shape(&self) -> TensorShape {
        self.in_shape
    }

    /// Output shape.
    pub fn output_shape(&self) -> TensorShape {
        TensorShape {
            channels: self.in_shape.channels,
            height: self.in_shape.height / self.pool,
            width: self.in_shape.width / self.pool,
        }
    }

    /// Flattened input dimension.
    pub fn input_dim(&self) -> usize {
        self.in_shape.len()
    }

    /// Flattened output dimension.
    pub fn output_dim(&self) -> usize {
        self.output_shape().len()
    }

    /// Pooling window size.
    pub fn pool(&self) -> usize {
        self.pool
    }

    /// Forward pass. Also returns the argmax indices so the backward pass can
    /// route gradients; use [`MaxPool2d::forward`] when only the value is needed.
    pub fn forward_with_indices(&self, x: &Vector) -> (Vector, Vec<usize>) {
        assert_eq!(
            x.len(),
            self.input_dim(),
            "max-pool input dimension mismatch"
        );
        let out_shape = self.output_shape();
        let mut out = Vector::zeros(out_shape.len());
        let mut indices = vec![0usize; out_shape.len()];
        let (h, w) = (self.in_shape.height, self.in_shape.width);
        for c in 0..self.in_shape.channels {
            for oy in 0..out_shape.height {
                for ox in 0..out_shape.width {
                    let mut best = f64::NEG_INFINITY;
                    let mut best_idx = 0usize;
                    for ky in 0..self.pool {
                        for kx in 0..self.pool {
                            let y = oy * self.pool + ky;
                            let xx = ox * self.pool + kx;
                            let idx = c * h * w + y * w + xx;
                            if x[idx] > best {
                                best = x[idx];
                                best_idx = idx;
                            }
                        }
                    }
                    let out_idx =
                        c * out_shape.height * out_shape.width + oy * out_shape.width + ox;
                    out[out_idx] = best;
                    indices[out_idx] = best_idx;
                }
            }
        }
        (out, indices)
    }

    /// Forward pass returning only the pooled values.
    pub fn forward(&self, x: &Vector) -> Vector {
        self.forward_with_indices(x).0
    }

    /// Backward pass: routes each output gradient to the input position that
    /// produced the maximum.
    pub fn backward(&self, indices: &[usize], grad_output: &Vector) -> Vector {
        assert_eq!(
            grad_output.len(),
            indices.len(),
            "max-pool grad_output dimension mismatch"
        );
        let mut grad_input = Vector::zeros(self.input_dim());
        for (out_idx, in_idx) in indices.iter().enumerate() {
            grad_input[*in_idx] += grad_output[out_idx];
        }
        grad_input
    }
}

/// Marker layer recording that a `(c, h, w)` feature map is from here on
/// treated as a flat vector. Numerically it is the identity (inputs are
/// already flat vectors); it exists so a network's shape bookkeeping stays
/// explicit and serialisable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Flatten {
    shape: TensorShape,
}

impl Flatten {
    /// Creates a flatten marker for the given feature-map shape.
    pub fn new(shape: TensorShape) -> Self {
        Self { shape }
    }

    /// The feature-map shape being flattened.
    pub fn shape(&self) -> TensorShape {
        self.shape
    }

    /// Flattened dimension.
    pub fn dim(&self) -> usize {
        self.shape.len()
    }

    /// Identity forward pass.
    ///
    /// # Panics
    /// Panics when `x.len()` does not equal the recorded shape's length.
    pub fn forward(&self, x: &Vector) -> Vector {
        assert_eq!(x.len(), self.dim(), "flatten input dimension mismatch");
        x.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape(c: usize, h: usize, w: usize) -> TensorShape {
        TensorShape {
            channels: c,
            height: h,
            width: w,
        }
    }

    #[test]
    fn max_pool_reduces_spatial_dims() {
        let mp = MaxPool2d::new(shape(1, 4, 4), 2);
        assert_eq!(mp.output_dim(), 4);
        let x = Vector::from_vec((0..16).map(|v| v as f64).collect());
        let y = mp.forward(&x);
        assert_eq!(y.as_slice(), &[5.0, 7.0, 13.0, 15.0]);
    }

    #[test]
    fn max_pool_multi_channel() {
        let mp = MaxPool2d::new(shape(2, 2, 2), 2);
        let x = Vector::from_slice(&[1.0, 2.0, 3.0, 4.0, -1.0, -2.0, -3.0, -4.0]);
        let y = mp.forward(&x);
        assert_eq!(y.as_slice(), &[4.0, -1.0]);
    }

    #[test]
    fn backward_routes_gradient_to_argmax() {
        let mp = MaxPool2d::new(shape(1, 2, 2), 2);
        let x = Vector::from_slice(&[1.0, 5.0, 3.0, 2.0]);
        let (y, idx) = mp.forward_with_indices(&x);
        assert_eq!(y.as_slice(), &[5.0]);
        let grad = mp.backward(&idx, &Vector::from_slice(&[2.0]));
        assert_eq!(grad.as_slice(), &[0.0, 2.0, 0.0, 0.0]);
    }

    #[test]
    fn flatten_is_identity() {
        let f = Flatten::new(shape(1, 2, 3));
        assert_eq!(f.dim(), 6);
        let x = Vector::from_vec((0..6).map(|v| v as f64).collect());
        assert_eq!(f.forward(&x), x);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn pool_window_must_fit() {
        let _ = MaxPool2d::new(shape(1, 2, 2), 3);
    }
}

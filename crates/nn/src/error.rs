//! Error type for the neural-network crate.

use std::error::Error;
use std::fmt;

/// Errors produced while constructing, training, (de)serialising or
/// evaluating a network.
#[derive(Debug, Clone, PartialEq)]
pub enum NnError {
    /// A layer received an input whose dimension does not match its expectation.
    DimensionMismatch {
        /// Name of the layer or operation reporting the mismatch.
        context: String,
        /// Dimension the layer expected.
        expected: usize,
        /// Dimension it actually received.
        actual: usize,
    },
    /// Dataset construction failed (e.g. inputs/targets of different lengths).
    InvalidDataset(String),
    /// A network was built or used in an inconsistent way.
    InvalidNetwork(String),
    /// Parsing a serialised network failed.
    Parse(String),
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::DimensionMismatch {
                context,
                expected,
                actual,
            } => write!(
                f,
                "dimension mismatch in {context}: expected {expected}, got {actual}"
            ),
            NnError::InvalidDataset(msg) => write!(f, "invalid dataset: {msg}"),
            NnError::InvalidNetwork(msg) => write!(f, "invalid network: {msg}"),
            NnError::Parse(msg) => write!(f, "parse error: {msg}"),
        }
    }
}

impl Error for NnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_context() {
        let err = NnError::DimensionMismatch {
            context: "dense".into(),
            expected: 4,
            actual: 3,
        };
        let msg = err.to_string();
        assert!(msg.contains("dense"));
        assert!(msg.contains('4'));
        assert!(msg.contains('3'));
    }

    #[test]
    fn other_variants_display() {
        assert!(NnError::InvalidDataset("empty".into())
            .to_string()
            .contains("empty"));
        assert!(NnError::InvalidNetwork("no layers".into())
            .to_string()
            .contains("no layers"));
        assert!(NnError::Parse("bad header".into())
            .to_string()
            .contains("bad header"));
    }
}

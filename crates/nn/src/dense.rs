//! Fully connected (dense / affine) layer.

use serde::{Deserialize, Serialize};

use dpv_tensor::{Initializer, Matrix, Vector};
use rand::Rng;

/// A fully connected layer computing `W x + b`.
///
/// ```
/// use dpv_nn::Dense;
/// use dpv_tensor::{Matrix, Vector};
/// let layer = Dense::from_parts(
///     Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, -1.0]]).unwrap(),
///     Vector::from_slice(&[0.5, 0.5]),
/// );
/// let y = layer.forward(&Vector::from_slice(&[2.0, 3.0]));
/// assert_eq!(y.as_slice(), &[2.5, -2.5]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dense {
    weights: Matrix,
    bias: Vector,
}

impl Dense {
    /// Creates a randomly initialised dense layer mapping `input_dim` to `output_dim`.
    pub fn new<R: Rng + ?Sized>(
        input_dim: usize,
        output_dim: usize,
        init: Initializer,
        rng: &mut R,
    ) -> Self {
        Self {
            weights: init.matrix(output_dim, input_dim, rng),
            bias: init.bias(output_dim, rng),
        }
    }

    /// Builds a dense layer from an explicit weight matrix and bias vector.
    ///
    /// # Panics
    /// Panics when `weights.rows() != bias.len()`.
    pub fn from_parts(weights: Matrix, bias: Vector) -> Self {
        assert_eq!(
            weights.rows(),
            bias.len(),
            "bias length must equal the number of output rows"
        );
        Self { weights, bias }
    }

    /// Input dimension (number of columns of the weight matrix).
    pub fn input_dim(&self) -> usize {
        self.weights.cols()
    }

    /// Output dimension (number of rows of the weight matrix).
    pub fn output_dim(&self) -> usize {
        self.weights.rows()
    }

    /// The weight matrix.
    pub fn weights(&self) -> &Matrix {
        &self.weights
    }

    /// The bias vector.
    pub fn bias(&self) -> &Vector {
        &self.bias
    }

    /// Mutable access to the weight matrix (used by the optimisers).
    pub fn weights_mut(&mut self) -> &mut Matrix {
        &mut self.weights
    }

    /// Mutable access to the bias vector (used by the optimisers).
    pub fn bias_mut(&mut self) -> &mut Vector {
        &mut self.bias
    }

    /// Forward pass `W x + b`.
    ///
    /// # Panics
    /// Panics when `x.len() != self.input_dim()`.
    pub fn forward(&self, x: &Vector) -> Vector {
        &self.weights.matvec(x) + &self.bias
    }

    /// Batched forward pass `W X + b` over a feature-major frame batch
    /// (rows = `input_dim`, columns = frames).
    ///
    /// Column `f` of the result is bit-identical to `forward` of column `f`:
    /// per output row the inputs are accumulated in ascending index order
    /// with no zero-skipping (exactly [`Matrix::matvec`]) and the bias is
    /// added in a separate final pass (exactly the `matvec + bias` sum of
    /// the scalar path). The inner loops run over the contiguous frame
    /// lanes, which is what lets the compiler vectorise them.
    ///
    /// # Panics
    /// Panics when `x.rows() != self.input_dim()`.
    pub fn forward_batch(&self, x: &Matrix) -> Matrix {
        assert_eq!(
            x.rows(),
            self.input_dim(),
            "dense batch dimension mismatch: {}x{} * {}x{}",
            self.output_dim(),
            self.input_dim(),
            x.rows(),
            x.cols()
        );
        let mut out = Matrix::zeros(self.output_dim(), x.cols());
        for r in 0..self.weights.rows() {
            let row = self.weights.row(r);
            let out_row = out.row_mut(r);
            for (c, &w) in row.iter().enumerate() {
                let src = x.row(c);
                for (acc, &v) in out_row.iter_mut().zip(src.iter()) {
                    *acc += w * v;
                }
            }
            let b = self.bias[r];
            for acc in out_row.iter_mut() {
                *acc += b;
            }
        }
        out
    }

    /// Backward pass. Given the gradient of the loss with respect to the
    /// layer output and the cached input, returns
    /// `(grad_input, grad_weights, grad_bias)`.
    pub fn backward(&self, input: &Vector, grad_output: &Vector) -> (Vector, Matrix, Vector) {
        let grad_input = self.weights.matvec_transposed(grad_output);
        let grad_weights = Matrix::outer(grad_output, input);
        let grad_bias = grad_output.clone();
        (grad_input, grad_weights, grad_bias)
    }

    /// Applies a gradient step `W -= lr * dW`, `b -= lr * db`.
    pub fn apply_gradients(&mut self, lr: f64, grad_weights: &Matrix, grad_bias: &Vector) {
        self.weights.add_scaled(-lr, grad_weights);
        let update = grad_bias.scale(lr);
        self.bias -= &update;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpv_tensor::approx_eq_slice;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_computes_affine_map() {
        let layer = Dense::from_parts(
            Matrix::from_rows(&[vec![2.0, 0.0], vec![1.0, 1.0]]).unwrap(),
            Vector::from_slice(&[1.0, -1.0]),
        );
        let y = layer.forward(&Vector::from_slice(&[1.0, 2.0]));
        assert!(approx_eq_slice(y.as_slice(), &[3.0, 2.0], 1e-12));
        assert_eq!(layer.input_dim(), 2);
        assert_eq!(layer.output_dim(), 2);
    }

    #[test]
    fn random_construction_has_right_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let layer = Dense::new(5, 3, Initializer::HeNormal, &mut rng);
        assert_eq!(layer.weights().shape(), (3, 5));
        assert_eq!(layer.bias().len(), 3);
    }

    #[test]
    fn backward_matches_finite_differences() {
        let mut rng = StdRng::seed_from_u64(1);
        let layer = Dense::new(3, 2, Initializer::XavierUniform, &mut rng);
        let x = Vector::from_slice(&[0.3, -0.7, 1.1]);
        // Loss = sum of outputs, so grad_output = ones.
        let grad_out = Vector::ones(2);
        let (grad_in, grad_w, grad_b) = layer.backward(&x, &grad_out);

        let eps = 1e-6;
        // Check input gradient.
        for i in 0..3 {
            let mut xp = x.clone();
            xp[i] += eps;
            let mut xm = x.clone();
            xm[i] -= eps;
            let numeric = (layer.forward(&xp).sum() - layer.forward(&xm).sum()) / (2.0 * eps);
            assert!((grad_in[i] - numeric).abs() < 1e-6);
        }
        // Check weight gradient for a couple of entries.
        for (r, c) in [(0usize, 0usize), (1, 2)] {
            let mut lp = layer.clone();
            lp.weights_mut()[(r, c)] += eps;
            let mut lm = layer.clone();
            lm.weights_mut()[(r, c)] -= eps;
            let numeric = (lp.forward(&x).sum() - lm.forward(&x).sum()) / (2.0 * eps);
            assert!((grad_w[(r, c)] - numeric).abs() < 1e-6);
        }
        // Bias gradient equals grad_output.
        assert!(approx_eq_slice(
            grad_b.as_slice(),
            grad_out.as_slice(),
            1e-12
        ));
    }

    #[test]
    fn apply_gradients_moves_parameters() {
        let mut layer = Dense::from_parts(Matrix::identity(2), Vector::zeros(2));
        let gw = Matrix::filled(2, 2, 1.0);
        let gb = Vector::ones(2);
        layer.apply_gradients(0.1, &gw, &gb);
        assert!((layer.weights()[(0, 0)] - 0.9).abs() < 1e-12);
        assert!((layer.bias()[0] + 0.1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "bias length")]
    fn from_parts_validates_shapes() {
        let _ = Dense::from_parts(Matrix::identity(2), Vector::zeros(3));
    }
}

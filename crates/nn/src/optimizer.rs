//! Gradient-descent optimisers.

use dpv_tensor::{Matrix, Vector};

use crate::{Layer, LayerGrad, Network};

/// Per-parameter optimiser state for one layer.
#[derive(Debug, Clone)]
enum Slot {
    None,
    WeightBias {
        m_w: Matrix,
        v_w: Matrix,
        m_b: Vector,
        v_b: Vector,
    },
    GammaBeta {
        m_g: Vector,
        v_g: Vector,
        m_b: Vector,
        v_b: Vector,
    },
}

/// The optimiser algorithms offered by [`Optimizer`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OptimizerKind {
    /// Stochastic gradient descent with optional momentum.
    Sgd {
        /// Momentum coefficient in `[0, 1)`; `0.0` disables momentum.
        momentum: f64,
    },
    /// Adam with the usual exponential moving averages.
    Adam {
        /// First-moment decay (typically `0.9`).
        beta1: f64,
        /// Second-moment decay (typically `0.999`).
        beta2: f64,
        /// Numerical-stability constant.
        eps: f64,
    },
}

/// Convenience constructor type for plain SGD.
#[derive(Debug, Clone, Copy)]
pub struct Sgd;

/// Convenience constructor type for Adam with default hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct Adam;

impl Sgd {
    /// Creates an SGD optimiser with the given learning rate and momentum.
    #[allow(clippy::new_ret_no_self)] // deliberate shorthand constructor for `Optimizer`
    pub fn new(learning_rate: f64, momentum: f64) -> Optimizer {
        Optimizer::new(learning_rate, OptimizerKind::Sgd { momentum })
    }
}

impl Adam {
    /// Creates an Adam optimiser with the given learning rate and the usual
    /// default moment coefficients.
    #[allow(clippy::new_ret_no_self)] // deliberate shorthand constructor for `Optimizer`
    pub fn new(learning_rate: f64) -> Optimizer {
        Optimizer::new(
            learning_rate,
            OptimizerKind::Adam {
                beta1: 0.9,
                beta2: 0.999,
                eps: 1e-8,
            },
        )
    }
}

/// A stateful optimiser that applies [`LayerGrad`]s to a [`Network`].
///
/// The state (momentum / moment estimates) is keyed by layer index, so one
/// optimiser instance must be used with a single network for its lifetime.
#[derive(Debug, Clone)]
pub struct Optimizer {
    learning_rate: f64,
    kind: OptimizerKind,
    slots: Vec<Slot>,
    step: u64,
}

impl Optimizer {
    /// Creates an optimiser.
    pub fn new(learning_rate: f64, kind: OptimizerKind) -> Self {
        Self {
            learning_rate,
            kind,
            slots: Vec::new(),
            step: 0,
        }
    }

    /// Learning rate currently in use.
    pub fn learning_rate(&self) -> f64 {
        self.learning_rate
    }

    /// Replaces the learning rate (e.g. for simple decay schedules).
    pub fn set_learning_rate(&mut self, lr: f64) {
        self.learning_rate = lr;
    }

    /// Number of update steps applied so far.
    pub fn steps(&self) -> u64 {
        self.step
    }

    fn ensure_slots(&mut self, network: &Network) {
        if self.slots.len() == network.len() {
            return;
        }
        self.slots = network
            .layers()
            .iter()
            .map(|layer| match layer {
                Layer::Dense(d) => Slot::WeightBias {
                    m_w: Matrix::zeros(d.weights().rows(), d.weights().cols()),
                    v_w: Matrix::zeros(d.weights().rows(), d.weights().cols()),
                    m_b: Vector::zeros(d.bias().len()),
                    v_b: Vector::zeros(d.bias().len()),
                },
                Layer::Conv2d(c) => Slot::WeightBias {
                    m_w: Matrix::zeros(c.weights().rows(), c.weights().cols()),
                    v_w: Matrix::zeros(c.weights().rows(), c.weights().cols()),
                    m_b: Vector::zeros(c.bias().len()),
                    v_b: Vector::zeros(c.bias().len()),
                },
                Layer::BatchNorm(bn) => Slot::GammaBeta {
                    m_g: Vector::zeros(bn.dim()),
                    v_g: Vector::zeros(bn.dim()),
                    m_b: Vector::zeros(bn.dim()),
                    v_b: Vector::zeros(bn.dim()),
                },
                _ => Slot::None,
            })
            .collect();
    }

    /// Applies one gradient update to `network`.
    ///
    /// `grads` must be aligned with `network.layers()` (as produced by the
    /// training loop in [`crate::train`]).
    ///
    /// # Panics
    /// Panics when `grads.len() != network.len()`.
    pub fn apply(&mut self, network: &mut Network, grads: &[LayerGrad]) {
        assert_eq!(grads.len(), network.len(), "gradient/layer count mismatch");
        self.ensure_slots(network);
        self.step += 1;
        let lr = self.learning_rate;
        match self.kind {
            OptimizerKind::Sgd { momentum } => {
                for (i, layer) in network.layers_mut().iter_mut().enumerate() {
                    match (&grads[i], &mut self.slots[i]) {
                        (
                            LayerGrad::WeightBias { weights, bias },
                            Slot::WeightBias { m_w, m_b, .. },
                        ) => {
                            if momentum > 0.0 {
                                *m_w = &m_w.scale(momentum) + weights;
                                *m_b = &m_b.scale(momentum) + bias;
                                layer.apply_grad(
                                    lr,
                                    &LayerGrad::WeightBias {
                                        weights: m_w.clone(),
                                        bias: m_b.clone(),
                                    },
                                );
                            } else {
                                layer.apply_grad(lr, &grads[i]);
                            }
                        }
                        (
                            LayerGrad::GammaBeta { gamma, beta },
                            Slot::GammaBeta { m_g, m_b, .. },
                        ) => {
                            if momentum > 0.0 {
                                *m_g = &m_g.scale(momentum) + gamma;
                                *m_b = &m_b.scale(momentum) + beta;
                                layer.apply_grad(
                                    lr,
                                    &LayerGrad::GammaBeta {
                                        gamma: m_g.clone(),
                                        beta: m_b.clone(),
                                    },
                                );
                            } else {
                                layer.apply_grad(lr, &grads[i]);
                            }
                        }
                        (LayerGrad::None, _) => {}
                        _ => panic!("gradient kind does not match optimiser slot"),
                    }
                }
            }
            OptimizerKind::Adam { beta1, beta2, eps } => {
                let t = self.step as f64;
                let bias_corr1 = 1.0 - beta1.powf(t);
                let bias_corr2 = 1.0 - beta2.powf(t);
                for (i, layer) in network.layers_mut().iter_mut().enumerate() {
                    match (&grads[i], &mut self.slots[i]) {
                        (
                            LayerGrad::WeightBias { weights, bias },
                            Slot::WeightBias { m_w, v_w, m_b, v_b },
                        ) => {
                            adam_update_matrix(m_w, v_w, weights, beta1, beta2);
                            adam_update_vector(m_b, v_b, bias, beta1, beta2);
                            let step_w = adam_step_matrix(m_w, v_w, bias_corr1, bias_corr2, eps);
                            let step_b = adam_step_vector(m_b, v_b, bias_corr1, bias_corr2, eps);
                            layer.apply_grad(
                                lr,
                                &LayerGrad::WeightBias {
                                    weights: step_w,
                                    bias: step_b,
                                },
                            );
                        }
                        (
                            LayerGrad::GammaBeta { gamma, beta },
                            Slot::GammaBeta { m_g, v_g, m_b, v_b },
                        ) => {
                            adam_update_vector(m_g, v_g, gamma, beta1, beta2);
                            adam_update_vector(m_b, v_b, beta, beta1, beta2);
                            let step_g = adam_step_vector(m_g, v_g, bias_corr1, bias_corr2, eps);
                            let step_b = adam_step_vector(m_b, v_b, bias_corr1, bias_corr2, eps);
                            layer.apply_grad(
                                lr,
                                &LayerGrad::GammaBeta {
                                    gamma: step_g,
                                    beta: step_b,
                                },
                            );
                        }
                        (LayerGrad::None, _) => {}
                        _ => panic!("gradient kind does not match optimiser slot"),
                    }
                }
            }
        }
    }
}

fn adam_update_matrix(m: &mut Matrix, v: &mut Matrix, grad: &Matrix, beta1: f64, beta2: f64) {
    for i in 0..m.as_slice().len() {
        let g = grad.as_slice()[i];
        m.as_mut_slice()[i] = beta1 * m.as_slice()[i] + (1.0 - beta1) * g;
        v.as_mut_slice()[i] = beta2 * v.as_slice()[i] + (1.0 - beta2) * g * g;
    }
}

fn adam_update_vector(m: &mut Vector, v: &mut Vector, grad: &Vector, beta1: f64, beta2: f64) {
    for i in 0..m.len() {
        let g = grad[i];
        m[i] = beta1 * m[i] + (1.0 - beta1) * g;
        v[i] = beta2 * v[i] + (1.0 - beta2) * g * g;
    }
}

fn adam_step_matrix(m: &Matrix, v: &Matrix, corr1: f64, corr2: f64, eps: f64) -> Matrix {
    let mut out = m.clone();
    for i in 0..out.as_slice().len() {
        let m_hat = m.as_slice()[i] / corr1;
        let v_hat = v.as_slice()[i] / corr2;
        out.as_mut_slice()[i] = m_hat / (v_hat.sqrt() + eps);
    }
    out
}

fn adam_step_vector(m: &Vector, v: &Vector, corr1: f64, corr2: f64, eps: f64) -> Vector {
    let mut out = m.clone();
    for i in 0..out.len() {
        let m_hat = m[i] / corr1;
        let v_hat = v[i] / corr2;
        out[i] = m_hat / (v_hat.sqrt() + eps);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Activation, Dataset, LossKind, NetworkBuilder, TrainConfig};
    use dpv_tensor::Vector;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_dataset() -> Dataset {
        // y = 2*x0 - x1
        let inputs: Vec<Vector> = (0..40)
            .map(|i| {
                let a = (i % 8) as f64 / 8.0;
                let b = (i / 8) as f64 / 5.0;
                Vector::from_slice(&[a, b])
            })
            .collect();
        let targets: Vec<Vector> = inputs
            .iter()
            .map(|x| Vector::from_slice(&[2.0 * x[0] - x[1]]))
            .collect();
        Dataset::new(inputs, targets).unwrap()
    }

    #[test]
    fn sgd_reduces_loss_on_linear_problem() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut net = NetworkBuilder::new(2).dense(1, &mut rng).build();
        let data = toy_dataset();
        let config = TrainConfig {
            epochs: 100,
            learning_rate: 0.1,
            batch_size: 4,
            optimizer: OptimizerKind::Sgd { momentum: 0.0 },
            shuffle: true,
            verbose: false,
        };
        let history = crate::train(&mut net, &data, &config, LossKind::Mse, &mut rng);
        assert!(
            history.final_loss() < 1e-3,
            "loss: {}",
            history.final_loss()
        );
    }

    #[test]
    fn momentum_sgd_converges() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut net = NetworkBuilder::new(2)
            .dense(8, &mut rng)
            .activation(Activation::ReLU)
            .dense(1, &mut rng)
            .build();
        let data = toy_dataset();
        let config = TrainConfig {
            epochs: 120,
            learning_rate: 0.05,
            batch_size: 8,
            optimizer: OptimizerKind::Sgd { momentum: 0.9 },
            shuffle: true,
            verbose: false,
        };
        let history = crate::train(&mut net, &data, &config, LossKind::Mse, &mut rng);
        assert!(
            history.final_loss() < 1e-2,
            "loss: {}",
            history.final_loss()
        );
    }

    #[test]
    fn adam_converges_faster_than_plain_sgd_on_relu_net() {
        let data = toy_dataset();
        let run = |kind: OptimizerKind, seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut net = NetworkBuilder::new(2)
                .dense(8, &mut rng)
                .activation(Activation::ReLU)
                .dense(1, &mut rng)
                .build();
            let config = TrainConfig {
                epochs: 40,
                learning_rate: 0.01,
                batch_size: 4,
                optimizer: kind,
                shuffle: false,
                verbose: false,
            };
            let mut rng2 = StdRng::seed_from_u64(seed + 1);
            crate::train(&mut net, &data, &config, LossKind::Mse, &mut rng2).final_loss()
        };
        let adam_loss = run(
            OptimizerKind::Adam {
                beta1: 0.9,
                beta2: 0.999,
                eps: 1e-8,
            },
            21,
        );
        let sgd_loss = run(OptimizerKind::Sgd { momentum: 0.0 }, 21);
        assert!(
            adam_loss < sgd_loss * 1.5,
            "adam {adam_loss} vs sgd {sgd_loss}"
        );
    }

    #[test]
    fn optimizer_accessors() {
        let mut opt = Sgd::new(0.1, 0.0);
        assert_eq!(opt.learning_rate(), 0.1);
        opt.set_learning_rate(0.01);
        assert_eq!(opt.learning_rate(), 0.01);
        assert_eq!(opt.steps(), 0);
        let adam = Adam::new(0.001);
        assert_eq!(adam.learning_rate(), 0.001);
    }
}

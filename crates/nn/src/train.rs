//! Mini-batch training loop.

use rand::seq::SliceRandom;
use rand::Rng;

use dpv_tensor::Vector;

use crate::{Dataset, LayerGrad, LossKind, Network, Optimizer, OptimizerKind};

/// Hyper-parameters of a training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the dataset.
    pub epochs: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// Mini-batch size (gradients are averaged over the batch).
    pub batch_size: usize,
    /// Optimiser algorithm.
    pub optimizer: OptimizerKind,
    /// Whether to reshuffle the example order every epoch.
    pub shuffle: bool,
    /// Whether to print a line per epoch to stdout.
    pub verbose: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 50,
            learning_rate: 0.01,
            batch_size: 16,
            optimizer: OptimizerKind::Adam {
                beta1: 0.9,
                beta2: 0.999,
                eps: 1e-8,
            },
            shuffle: true,
            verbose: false,
        }
    }
}

/// Loss statistics for one epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochStats {
    /// Epoch index (zero-based).
    pub epoch: usize,
    /// Mean loss over all examples seen in the epoch.
    pub mean_loss: f64,
}

/// The per-epoch loss curve of a training run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TrainHistory {
    epochs: Vec<EpochStats>,
}

impl TrainHistory {
    /// Per-epoch statistics in order.
    pub fn epochs(&self) -> &[EpochStats] {
        &self.epochs
    }

    /// Mean loss of the final epoch (`f64::INFINITY` when no epoch ran).
    pub fn final_loss(&self) -> f64 {
        self.epochs.last().map_or(f64::INFINITY, |e| e.mean_loss)
    }

    /// Mean loss of the first epoch (`f64::INFINITY` when no epoch ran).
    pub fn initial_loss(&self) -> f64 {
        self.epochs.first().map_or(f64::INFINITY, |e| e.mean_loss)
    }

    /// Returns `true` when the final loss improved on the initial loss.
    pub fn improved(&self) -> bool {
        self.final_loss() < self.initial_loss()
    }
}

/// Trains `network` on `data` with the given configuration and loss.
///
/// Gradients are averaged over each mini-batch; batch-norm running statistics
/// are updated sample by sample during the forward passes.
pub fn train<R: Rng + ?Sized>(
    network: &mut Network,
    data: &Dataset,
    config: &TrainConfig,
    loss: LossKind,
    rng: &mut R,
) -> TrainHistory {
    let mut optimizer = Optimizer::new(config.learning_rate, config.optimizer);
    let mut history = TrainHistory::default();
    let mut order: Vec<usize> = (0..data.len()).collect();
    for epoch in 0..config.epochs {
        if config.shuffle {
            order.shuffle(rng);
        }
        let mut epoch_loss = 0.0;
        let mut examples = 0usize;
        for batch in data.batches(config.batch_size, Some(&order)) {
            let mut accumulated: Option<Vec<LayerGrad>> = None;
            for (x, y) in batch.inputs.iter().zip(batch.targets.iter()) {
                let (prediction, caches) = network.forward_train(x);
                let loss_value = loss.evaluate(&prediction, y);
                epoch_loss += loss_value.value;
                examples += 1;
                let (grads, _) = network.backward(&caches, &loss_value.grad);
                accumulated = Some(match accumulated {
                    None => grads,
                    Some(acc) => add_grads(acc, grads),
                });
            }
            if let Some(mut grads) = accumulated {
                let scale = 1.0 / batch.len().max(1) as f64;
                scale_grads(&mut grads, scale);
                optimizer.apply(network, &grads);
            }
        }
        let mean_loss = epoch_loss / examples.max(1) as f64;
        if config.verbose {
            println!("epoch {epoch:4}  loss {mean_loss:.6}");
        }
        history.epochs.push(EpochStats { epoch, mean_loss });
    }
    history
}

/// Mean loss of `network` over a dataset without updating any parameters.
pub fn evaluate_loss(network: &Network, data: &Dataset, loss: LossKind) -> f64 {
    let total: f64 = data
        .iter()
        .map(|(x, y)| loss.evaluate(&network.forward(x), y).value)
        .sum();
    total / data.len().max(1) as f64
}

/// Classification accuracy of a single-logit binary classifier over a dataset
/// whose targets are `0.0` / `1.0` scalars. The decision threshold is a logit
/// of `0` (probability one half).
pub fn binary_accuracy(network: &Network, data: &Dataset) -> f64 {
    let correct = data
        .iter()
        .filter(|(x, y)| {
            let logit = network.forward(x)[0];
            let predicted = if logit >= 0.0 { 1.0 } else { 0.0 };
            (predicted - y[0]).abs() < 0.5
        })
        .count();
    correct as f64 / data.len().max(1) as f64
}

fn add_grads(mut acc: Vec<LayerGrad>, other: Vec<LayerGrad>) -> Vec<LayerGrad> {
    for (a, b) in acc.iter_mut().zip(other) {
        match (a, b) {
            (
                LayerGrad::WeightBias {
                    weights: wa,
                    bias: ba,
                },
                LayerGrad::WeightBias {
                    weights: wb,
                    bias: bb,
                },
            ) => {
                wa.add_scaled(1.0, &wb);
                *ba += &bb;
            }
            (
                LayerGrad::GammaBeta {
                    gamma: ga,
                    beta: ba,
                },
                LayerGrad::GammaBeta {
                    gamma: gb,
                    beta: bb,
                },
            ) => {
                *ga += &gb;
                *ba += &bb;
            }
            (LayerGrad::None, LayerGrad::None) => {}
            _ => panic!("gradient kinds diverge between examples of one batch"),
        }
    }
    acc
}

fn scale_grads(grads: &mut [LayerGrad], scale: f64) {
    for g in grads {
        match g {
            LayerGrad::WeightBias { weights, bias } => {
                *weights = weights.scale(scale);
                *bias = bias.scale(scale);
            }
            LayerGrad::GammaBeta { gamma, beta } => {
                *gamma = gamma.scale(scale);
                *beta = beta.scale(scale);
            }
            LayerGrad::None => {}
        }
    }
}

/// Builds a dataset of scalar binary labels from raw `(input, bool)` pairs —
/// the shape used when training input-property characterizers from oracle
/// labels.
pub fn labels_to_dataset(examples: Vec<(Vector, bool)>) -> Result<Dataset, crate::NnError> {
    let (inputs, targets): (Vec<Vector>, Vec<Vector>) = examples
        .into_iter()
        .map(|(x, label)| (x, Vector::from_slice(&[if label { 1.0 } else { 0.0 }])))
        .unzip();
    Dataset::new(inputs, targets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Activation, NetworkBuilder};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn xor_like_dataset() -> Dataset {
        // A linearly separable binary problem: label = x0 > x1.
        let mut inputs = Vec::new();
        let mut targets = Vec::new();
        for i in 0..10 {
            for j in 0..10 {
                let x0 = i as f64 / 10.0;
                let x1 = j as f64 / 10.0;
                inputs.push(Vector::from_slice(&[x0, x1]));
                targets.push(Vector::from_slice(&[if x0 > x1 { 1.0 } else { 0.0 }]));
            }
        }
        Dataset::new(inputs, targets).unwrap()
    }

    #[test]
    fn training_reduces_regression_loss() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut net = NetworkBuilder::new(2)
            .dense(6, &mut rng)
            .activation(Activation::ReLU)
            .dense(1, &mut rng)
            .build();
        let data = xor_like_dataset();
        let config = TrainConfig {
            epochs: 30,
            ..TrainConfig::default()
        };
        let history = train(&mut net, &data, &config, LossKind::Mse, &mut rng);
        assert!(history.improved());
        assert!(history.final_loss() < history.initial_loss());
        assert_eq!(history.epochs().len(), 30);
    }

    #[test]
    fn binary_classifier_reaches_high_accuracy() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut net = NetworkBuilder::new(2)
            .dense(8, &mut rng)
            .activation(Activation::ReLU)
            .dense(1, &mut rng)
            .build();
        let data = xor_like_dataset();
        let config = TrainConfig {
            epochs: 60,
            learning_rate: 0.02,
            ..TrainConfig::default()
        };
        train(&mut net, &data, &config, LossKind::BceWithLogits, &mut rng);
        let acc = binary_accuracy(&net, &data);
        assert!(acc > 0.93, "accuracy only {acc}");
    }

    #[test]
    fn evaluate_loss_is_consistent_with_training_objective() {
        let mut rng = StdRng::seed_from_u64(2);
        let net = NetworkBuilder::new(2).dense(1, &mut rng).build();
        let data = xor_like_dataset();
        let loss = evaluate_loss(&net, &data, LossKind::Mse);
        assert!(loss.is_finite());
        assert!(loss >= 0.0);
    }

    #[test]
    fn labels_to_dataset_builds_binary_targets() {
        let data =
            labels_to_dataset(vec![(Vector::zeros(2), true), (Vector::ones(2), false)]).unwrap();
        assert_eq!(data.targets()[0].as_slice(), &[1.0]);
        assert_eq!(data.targets()[1].as_slice(), &[0.0]);
    }

    #[test]
    fn empty_history_reports_infinite_loss() {
        let h = TrainHistory::default();
        assert_eq!(h.final_loss(), f64::INFINITY);
        assert!(!h.improved());
    }
}

//! Tests of the `SolverBackend` seam: every verification path in `dpv-core`
//! must route its MILP solves through the backend it was given, and
//! independent backends must agree on verdicts.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use dpv_absint::{AbstractDomain, BoxDomain, Interval};
use dpv_core::{
    Characterizer, CharacterizerConfig, InputProperty, ParallelRefinementConfig, RefinedVerdict,
    RefinementVerifier, RiskCondition, VerificationProblem, VerificationStrategy, Workflow,
    WorkflowConfig,
};
use dpv_lp::{
    BranchAndBoundBackend, ExhaustiveBackend, MilpProblem, MilpSolution,
    ParallelBranchAndBoundBackend, SolverBackend,
};
use dpv_nn::{Activation, Dense, Layer, Network, NetworkBuilder};
use dpv_tensor::{Matrix, Vector};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A trivial mock backend: delegates to branch-and-bound but counts how many
/// solves were routed through it, proving the seam is actually used.
#[derive(Debug, Default)]
struct CountingMockBackend {
    calls: AtomicUsize,
}

impl CountingMockBackend {
    fn calls(&self) -> usize {
        self.calls.load(Ordering::SeqCst)
    }
}

impl SolverBackend for CountingMockBackend {
    fn name(&self) -> &str {
        "counting-mock"
    }

    fn solve(&self, problem: &MilpProblem) -> MilpSolution {
        self.calls.fetch_add(1, Ordering::SeqCst);
        BranchAndBoundBackend.solve(problem)
    }
}

/// A fixture whose verified tail is exactly two layers (dense 2→2, then
/// ReLU) behind an identity head, with an always-firing characterizer:
/// output0 = relu(x0 + x1), output1 = relu(x0 - x1).
fn two_layer_problem(risk: RiskCondition) -> VerificationProblem {
    let perception = Network::new(
        2,
        vec![
            // Head (unverified): identity, so the cut-layer activation is the input.
            Layer::Dense(Dense::from_parts(Matrix::identity(2), Vector::zeros(2))),
            // Verified two-layer tail.
            Layer::Dense(Dense::from_parts(
                Matrix::from_rows(&[vec![1.0, 1.0], vec![1.0, -1.0]]).unwrap(),
                Vector::zeros(2),
            )),
            Layer::Activation(Activation::ReLU),
        ],
    )
    .unwrap();
    // Characterizer with constant logit 1: fires everywhere.
    let ch_net = Network::new(
        2,
        vec![Layer::Dense(Dense::from_parts(
            Matrix::from_rows(&[vec![0.0, 0.0]]).unwrap(),
            Vector::from_slice(&[1.0]),
        ))],
    )
    .unwrap();
    let characterizer =
        Characterizer::from_network(InputProperty::new("always", "always true"), 0, ch_net, 1.0)
            .unwrap();
    VerificationProblem::new(perception, 0, characterizer, risk).unwrap()
}

fn strategy() -> VerificationStrategy {
    VerificationStrategy::LayerAbstraction { bound: 1.0 }
}

#[test]
fn default_and_mock_backend_agree_on_the_two_layer_fixture() {
    // Inside the cut-layer box [-1, 1]^2 the tail's first output
    // relu(x0 + x1) ranges over [0, 2]: 1.5 is reachable, 5.0 is not.
    for (risk, expect_safe) in [
        (RiskCondition::new("reachable").output_ge(0, 1.5), false),
        (RiskCondition::new("unreachable").output_ge(0, 5.0), true),
    ] {
        let problem = two_layer_problem(risk);
        let mock = CountingMockBackend::default();

        let via_default = problem.verify(&strategy()).unwrap();
        let via_mock = problem.verify_with(&strategy(), &mock).unwrap();

        assert_eq!(mock.calls(), 1, "the mock backend must be the one solving");
        assert_eq!(via_default.verdict.is_safe(), expect_safe);
        assert_eq!(via_default.verdict, via_mock.verdict);
        assert_eq!(via_default.num_binaries, via_mock.num_binaries);
        assert_eq!(via_default.backend, "branch-and-bound");
        assert_eq!(via_mock.backend, "counting-mock");
    }
}

#[test]
fn branch_and_bound_and_exhaustive_enumeration_agree() {
    for risk in [
        RiskCondition::new("reachable").output_ge(0, 1.5),
        RiskCondition::new("unreachable").output_ge(0, 5.0),
        RiskCondition::new("banded")
            .output_ge(0, 0.25)
            .output_le(0, 0.75),
    ] {
        let problem = two_layer_problem(risk);
        let bnb = problem
            .verify_with(&strategy(), &BranchAndBoundBackend)
            .unwrap();
        let exhaustive = problem
            .verify_with(&strategy(), &ExhaustiveBackend::default())
            .unwrap();
        assert_eq!(
            bnb.verdict.is_safe(),
            exhaustive.verdict.is_safe(),
            "backends disagree: bnb={} exhaustive={}",
            bnb.summary(),
            exhaustive.summary()
        );
        // Both backends' counterexamples must be confirmed concretely.
        for outcome in [&bnb, &exhaustive] {
            if let dpv_core::Verdict::Unsafe(ce) = &outcome.verdict {
                assert!(problem
                    .confirm_counterexample(&strategy(), ce, 1e-4)
                    .unwrap());
            }
        }
    }
}

#[test]
fn refinement_routes_every_solve_through_the_backend() {
    let problem = two_layer_problem(RiskCondition::new("unreachable").output_ge(0, 5.0));
    let region =
        BoxDomain::from_intervals(vec![Interval::new(-1.0, 1.0), Interval::new(-1.0, 1.0)]);
    let references: Vec<Vector> = (0..5)
        .map(|i| Vector::from_slice(&[i as f64 / 5.0, 0.0]))
        .collect();
    let mock = CountingMockBackend::default();
    let verifier = RefinementVerifier::new(16, 0.05);
    let (verdict, report) = verifier
        .verify_with(&problem, &region, &references, &mock)
        .unwrap();
    assert!(verdict.is_safe());
    assert!(report.verification_calls >= 1);
    assert_eq!(mock.calls(), report.verification_calls);
}

/// The hand-crafted pruning fixture from the refinement module: the
/// single-box envelope admits spurious counterexamples in a data-free corner
/// (tail output x0 + x1 can reach 1.7 inside `[0,1] × [0,0.7]`, while the
/// recorded activations live on the diagonal x0 = x1 ≤ 0.7), so refinement
/// must split, prune the empty corner, and prove "sum ≥ 1.5" safe.
fn pruning_fixture() -> (VerificationProblem, BoxDomain, Vec<Vector>) {
    let perception = Network::new(
        2,
        vec![
            Layer::Dense(Dense::from_parts(Matrix::identity(2), Vector::zeros(2))),
            Layer::Activation(Activation::ReLU),
            Layer::Dense(Dense::from_parts(
                Matrix::from_rows(&[vec![1.0, 1.0]]).unwrap(),
                Vector::zeros(1),
            )),
        ],
    )
    .unwrap();
    let ch_net = Network::new(
        2,
        vec![Layer::Dense(Dense::from_parts(
            Matrix::from_rows(&[vec![0.0, 0.0]]).unwrap(),
            Vector::from_slice(&[1.0]),
        ))],
    )
    .unwrap();
    let characterizer =
        Characterizer::from_network(InputProperty::new("always", "always true"), 1, ch_net, 1.0)
            .unwrap();
    let risk = RiskCondition::new("large sum").output_ge(0, 1.5);
    let problem = VerificationProblem::new(perception, 1, characterizer, risk).unwrap();
    let region = BoxDomain::from_intervals(vec![Interval::new(0.0, 1.0), Interval::new(0.0, 0.7)]);
    let references: Vec<Vector> = (0..30)
        .map(|i| {
            let v = 0.7 * i as f64 / 29.0;
            Vector::from_slice(&[v, v])
        })
        .collect();
    (problem, region, references)
}

/// A backend that always gives up with [`dpv_lp::MilpStatus::IterationLimit`],
/// as a numerically degenerate model would make the simplex do.
#[derive(Debug, Default)]
struct IterationLimitedBackend;

impl SolverBackend for IterationLimitedBackend {
    fn name(&self) -> &str {
        "iteration-limited"
    }

    fn solve(&self, _problem: &MilpProblem) -> MilpSolution {
        MilpSolution {
            status: dpv_lp::MilpStatus::IterationLimit,
            values: Vec::new(),
            objective: 0.0,
            stats: dpv_lp::SolveStats::default(),
        }
    }
}

#[test]
fn simplex_iteration_limits_degrade_to_unknown_not_abort() {
    // Regression for the old `panic!("simplex exceeded the iteration
    // limit…")`: a model the solver cannot finish must surface as an
    // Unknown verdict (and a SolverLimit error in refinement), never tear
    // down the process.
    let problem = two_layer_problem(RiskCondition::new("reachable").output_ge(0, 1.5));
    let outcome = problem
        .verify_with(&strategy(), &IterationLimitedBackend)
        .unwrap();
    match &outcome.verdict {
        dpv_core::Verdict::Unknown(reason) => {
            assert!(reason.contains("iteration limit"), "reason: {reason}")
        }
        other => panic!("expected Unknown, got {other:?}"),
    }
    // The refinement loop converts the Unknown into a SolverLimit error.
    let region =
        BoxDomain::from_intervals(vec![Interval::new(-1.0, 1.0), Interval::new(-1.0, 1.0)]);
    let references = vec![Vector::from_slice(&[0.5, 0.0])];
    let verifier = RefinementVerifier::new(4, 0.05);
    let result = verifier.verify_with(&problem, &region, &references, &IterationLimitedBackend);
    assert!(matches!(result, Err(dpv_core::CoreError::SolverLimit(_))));
}

#[test]
fn template_refinement_matches_the_reencoding_path_exactly() {
    // The PR-3 incremental template must be invisible in the results: on the
    // pruning fixture, the template-driven sweep and the PR-2 re-encoding
    // sweep produce byte-identical verdicts and identical reports up to
    // solver statistics (node/iteration counts legitimately differ because
    // the instantiated MILP's relaxation is not the re-encoded one).
    let (problem, region, references) = pruning_fixture();
    for workers in [1usize, 4] {
        let base = RefinementVerifier::new(2000, 0.05);
        let (with_template, without_template) = if workers == 1 {
            (base.clone(), base.without_template())
        } else {
            (
                base.clone()
                    .with_parallelism(ParallelRefinementConfig::new(workers)),
                base.without_template()
                    .with_parallelism(ParallelRefinementConfig::new(workers)),
            )
        };
        assert!(with_template.uses_template());
        assert!(!without_template.uses_template());
        let backend = BranchAndBoundBackend;
        let (template_verdict, template_report) = with_template
            .verify_with(&problem, &region, &references, &backend)
            .unwrap();
        let (reencode_verdict, reencode_report) = without_template
            .verify_with(&problem, &region, &references, &backend)
            .unwrap();
        assert_eq!(
            template_verdict, reencode_verdict,
            "workers={workers}: template and re-encoding verdicts diverge"
        );
        assert_eq!(
            template_report.refined_envelope,
            reencode_report.refined_envelope
        );
        assert_eq!(
            template_report.verification_calls,
            reencode_report.verification_calls
        );
        assert_eq!(template_report.splits, reencode_report.splits);
        assert_eq!(
            template_report.pruned_subregions,
            reencode_report.pruned_subregions
        );
        assert_eq!(
            template_report.spurious_counterexamples,
            reencode_report.spurious_counterexamples
        );
        assert!(template_report.covers(&references, 1e-9));
    }
}

#[test]
fn template_refinement_reports_identical_unsafe_verdicts() {
    // Data-supported violation: both sweeps must surface the same
    // counterexample (the root box is the sole first-generation member, and
    // the serial branch-and-bound engine is deterministic for a fixed MILP
    // feasible set).
    let (problem, region, _) = pruning_fixture();
    let references: Vec<Vector> = (0..=10)
        .map(|i| Vector::from_slice(&[0.9 + 0.01 * i as f64, 0.7]))
        .collect();
    let with_template = RefinementVerifier::new(2000, 0.35);
    let without_template = RefinementVerifier::new(2000, 0.35).without_template();
    let backend = BranchAndBoundBackend;
    let (a, _) = with_template
        .verify_with(&problem, &region, &references, &backend)
        .unwrap();
    let (b, _) = without_template
        .verify_with(&problem, &region, &references, &backend)
        .unwrap();
    assert!(matches!(a, RefinedVerdict::Unsafe(_)));
    assert_eq!(a, b);
}

#[test]
fn refinement_reports_surface_warm_start_counters() {
    let (problem, region, references) = pruning_fixture();
    let verifier = RefinementVerifier::new(2000, 0.05);
    let (_, report) = verifier.verify(&problem, &region, &references).unwrap();
    let stats = report.solver_stats;
    assert!(stats.warm_solves + stats.cold_solves >= 1);
    assert!(
        stats.warm_solves + stats.cold_solves <= stats.nodes_explored,
        "LP solves cannot exceed explored nodes: {stats:?}"
    );
    assert!(stats.simplex_iterations > 0);
    // The hit rate feeds the e8 benchmark's JSON summary.
    assert!(stats.warm_hit_rate() >= 0.0 && stats.warm_hit_rate() <= 1.0);
}

#[test]
fn refinement_verdicts_match_for_serial_and_parallel_dispatch() {
    let (problem, region, references) = pruning_fixture();
    let serial = RefinementVerifier::new(2000, 0.05);
    let parallel =
        RefinementVerifier::new(2000, 0.05).with_parallelism(ParallelRefinementConfig::new(4));
    let backend = BranchAndBoundBackend;
    let (serial_verdict, serial_report) = serial
        .verify_with(&problem, &region, &references, &backend)
        .unwrap();
    let (parallel_verdict, parallel_report) = parallel
        .verify_with(&problem, &region, &references, &backend)
        .unwrap();
    assert_eq!(serial_verdict, RefinedVerdict::Safe);
    assert_eq!(parallel_verdict, RefinedVerdict::Safe);
    assert!(serial_report.pruned_subregions > 0);
    assert!(parallel_report.pruned_subregions > 0);
    assert!(serial_report.covers(&references, 1e-9));
    assert!(parallel_report.covers(&references, 1e-9));
    // Both dispatch modes surface aggregated solver statistics.
    assert!(serial_report.solver_stats.nodes_explored >= serial_report.verification_calls);
    assert!(parallel_report.solver_stats.nodes_explored >= parallel_report.verification_calls);
}

#[test]
fn parallel_backend_agrees_through_the_seam() {
    for (risk, expect_safe) in [
        (RiskCondition::new("reachable").output_ge(0, 1.5), false),
        (RiskCondition::new("unreachable").output_ge(0, 5.0), true),
    ] {
        let problem = two_layer_problem(risk);
        let serial = problem
            .verify_with(&strategy(), &BranchAndBoundBackend)
            .unwrap();
        let parallel = problem
            .verify_with(&strategy(), &ParallelBranchAndBoundBackend::new(4))
            .unwrap();
        assert_eq!(serial.verdict.is_safe(), expect_safe);
        assert_eq!(parallel.verdict.is_safe(), expect_safe);
        assert_eq!(parallel.backend, "parallel-bnb(4)");
        if let dpv_core::Verdict::Unsafe(ce) = &parallel.verdict {
            assert!(problem
                .confirm_counterexample(&strategy(), ce, 1e-4)
                .unwrap());
        }
    }
}

#[test]
fn refinement_with_parallel_dispatch_and_parallel_backend_composes() {
    // Both levels of parallelism at once: the work-list fans sub-boxes
    // across threads and each solve fans subtrees across workers.
    let (problem, region, references) = pruning_fixture();
    let verifier =
        RefinementVerifier::new(2000, 0.05).with_parallelism(ParallelRefinementConfig::new(2));
    let backend = ParallelBranchAndBoundBackend::new(2);
    let (verdict, report) = verifier
        .verify_with(&problem, &region, &references, &backend)
        .unwrap();
    assert_eq!(verdict, RefinedVerdict::Safe);
    assert!(report.covers(&references, 1e-9));
}

#[test]
fn workflow_threads_a_custom_backend_through_every_experiment() {
    let config = WorkflowConfig {
        training_samples: 60,
        characterizer_samples: 60,
        validation_samples: 40,
        perception_epochs: 4,
        characterizer: CharacterizerConfig {
            hidden: vec![6],
            epochs: 30,
            ..CharacterizerConfig::small()
        },
        ..WorkflowConfig::small()
    };
    let backend = Arc::new(CountingMockBackend::default());
    let workflow = Workflow::with_backend(config, backend.clone());
    assert_eq!(workflow.backend().name(), "counting-mock");
    let outcome = workflow.run().unwrap();
    // E1 compares four strategies, E2 runs one more: five solves minimum.
    assert!(
        backend.calls() >= 5,
        "only {} solves were routed",
        backend.calls()
    );
    for experiment in &outcome.experiments {
        for outcome in &experiment.outcomes {
            assert_eq!(outcome.backend, "counting-mock");
            assert!(outcome.summary().contains("counting-mock"));
        }
    }
}

#[test]
fn trained_fixture_backends_agree_end_to_end() {
    // A randomly initialised 2-layer tail (ReLU, dense): backends must
    // still agree.
    let mut rng = StdRng::seed_from_u64(11);
    let perception = NetworkBuilder::new(3)
        .dense(4, &mut rng)
        .activation(Activation::ReLU)
        .dense(1, &mut rng)
        .build();
    let ch_net = Network::new(
        4,
        vec![Layer::Dense(Dense::from_parts(
            Matrix::from_rows(&[vec![0.0, 0.0, 0.0, 0.0]]).unwrap(),
            Vector::from_slice(&[1.0]),
        ))],
    )
    .unwrap();
    let characterizer =
        Characterizer::from_network(InputProperty::new("always", "always true"), 0, ch_net, 1.0)
            .unwrap();
    let risk = RiskCondition::new("large output").output_ge(0, 100.0);
    let problem = VerificationProblem::new(perception, 0, characterizer, risk).unwrap();
    let strategy = VerificationStrategy::LayerAbstraction { bound: 2.0 };
    let bnb = problem
        .verify_with(&strategy, &BranchAndBoundBackend)
        .unwrap();
    let exhaustive = problem
        .verify_with(&strategy, &ExhaustiveBackend::default())
        .unwrap();
    assert_eq!(bnb.verdict.is_safe(), exhaustive.verdict.is_safe());
}

/// Clustered cut-layer activations for the two-layer fixture: two blobs in
/// opposite corners of the `[-1, 1]^2` cut-layer box.
fn bimodal_references() -> Vec<Vector> {
    (0..20)
        .map(|i| {
            let jitter = (i / 2) as f64 * 0.02;
            if i % 2 == 0 {
                Vector::from_slice(&[-0.9 + jitter, -0.9 + jitter])
            } else {
                Vector::from_slice(&[0.7 + jitter, 0.7 + jitter])
            }
        })
        .collect()
}

#[test]
fn sharded_k1_is_verdict_identical_to_the_monolithic_path() {
    let references = bimodal_references();
    // Reachable and unreachable risks over the envelope of the references
    // (both outputs stay within relu(x0 + x1) <= ~1.48 on the data).
    for risk in [
        RiskCondition::new("reachable").output_ge(0, 1.0),
        RiskCondition::new("unreachable").output_ge(0, 5.0),
    ] {
        let problem = two_layer_problem(risk);
        let sharded_envelope = dpv_shard::ShardedEnvelope::from_activations(
            0,
            &references,
            0.0,
            &dpv_shard::ShardConfig::fixed(1),
        )
        .unwrap();
        assert_eq!(sharded_envelope.shard_count(), 1);
        for use_diff in [true, false] {
            let monolithic = problem
                .verify(&VerificationStrategy::AssumeGuarantee(
                    dpv_core::AssumeGuarantee {
                        envelope: sharded_envelope.merged(),
                        use_difference_constraints: use_diff,
                    },
                ))
                .unwrap();
            let sharded = problem
                .verify_sharded(
                    &sharded_envelope,
                    &dpv_core::ShardedVerificationConfig {
                        use_difference_constraints: use_diff,
                        workers: 1,
                    },
                )
                .unwrap();
            // Identical verdicts — including the witness point, since the
            // k = 1 shard encodes the exact same MILP for a deterministic
            // backend — and identical problem shape.
            assert_eq!(sharded.verdict, monolithic.verdict);
            assert_eq!(sharded.shards[0].num_binaries, monolithic.num_binaries);
            assert_eq!(sharded.shards[0].stable_relus, monolithic.stable_relus);
            assert_eq!(
                sharded.solver_stats().nodes_explored,
                monolithic.nodes_explored
            );
        }
    }
}

#[test]
fn sharded_verification_routes_every_shard_through_the_backend() {
    let problem = two_layer_problem(RiskCondition::new("unreachable").output_ge(0, 5.0));
    let sharded_envelope = dpv_shard::ShardedEnvelope::from_activations(
        0,
        &bimodal_references(),
        0.0,
        &dpv_shard::ShardConfig::fixed(3),
    )
    .unwrap();
    let mock = CountingMockBackend::default();
    let report = problem
        .verify_sharded_with(
            &sharded_envelope,
            &dpv_core::ShardedVerificationConfig::default(),
            &mock,
        )
        .unwrap();
    assert!(report.verdict.is_safe());
    assert_eq!(
        mock.calls(),
        sharded_envelope.shard_count(),
        "one MILP per shard must be routed through the seam"
    );
    assert_eq!(report.backend, "counting-mock");
    // Parallel dispatch routes the same obligations and agrees.
    let parallel_mock = CountingMockBackend::default();
    let parallel = problem
        .verify_sharded_with(
            &sharded_envelope,
            &dpv_core::ShardedVerificationConfig::with_workers(3),
            &parallel_mock,
        )
        .unwrap();
    assert_eq!(parallel_mock.calls(), sharded_envelope.shard_count());
    assert_eq!(parallel.verdict, report.verdict);
}

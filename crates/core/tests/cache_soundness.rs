//! Property-based soundness of the cross-run cache layer: a cache-hit
//! verdict must equal a cold solve of the same obligation, and a stale
//! `BasisSnapshot` deposited by a *different* template must be rejected by
//! the structural-fingerprint guard (pool keying) rather than warm-started —
//! with the LP layer's validation as the backstop even when a foreign basis
//! is forced in.

use dpv_absint::{AbstractDomain, BoxDomain, Interval};
use dpv_core::{
    Characterizer, InputProperty, RiskCondition, SnapshotPool, SolveOptions, StartRegion,
    TemplateCache, Verdict, VerificationProblem,
};
use dpv_lp::{BranchAndBoundBackend, ColdBranchAndBoundBackend};
use dpv_nn::{Activation, Network, NetworkBuilder};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random perception network with a ReLU cut point, plus a characterizer
/// head adopted verbatim (no training — parity tests only need *a* problem,
/// not a good one).
fn random_problem(rng: &mut StdRng, threshold: f64) -> (VerificationProblem, usize) {
    let input_dim = rng.gen_range(2usize..4);
    let cut_width = rng.gen_range(2usize..5);
    let out_dim = rng.gen_range(1usize..3);
    let perception = NetworkBuilder::new(input_dim)
        .dense(cut_width, rng)
        .activation(Activation::ReLU)
        .dense(out_dim, rng)
        .build();
    let cut = 1; // output of the ReLU stage
    let head: Network = NetworkBuilder::new(cut_width)
        .dense(rng.gen_range(2usize..4), rng)
        .activation(Activation::ReLU)
        .dense(1, rng)
        .build();
    let characterizer = Characterizer::from_network(
        InputProperty::new("p", "synthetic property"),
        cut,
        head,
        0.9,
    )
    .expect("characterizer head adopts");
    let problem = VerificationProblem::new(
        perception,
        cut,
        characterizer,
        RiskCondition::new("r").output_ge(0, threshold),
    )
    .expect("problem assembles");
    (problem, cut_width)
}

fn random_sub_box(rng: &mut StdRng, dim: usize) -> BoxDomain {
    let bounds: Vec<Interval> = (0..dim)
        .map(|_| {
            let a: f64 = rng.gen_range(-1.0..1.0);
            let b: f64 = rng.gen_range(-1.0..1.0);
            Interval::new(a.min(b), a.max(b))
        })
        .collect();
    BoxDomain::from_intervals(bounds)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A verdict produced through every cache lever at once — shared
    /// template from a `TemplateCache`, warm basis from a `SnapshotPool`,
    /// repeated solve of the identical obligation (the dedup scenario) —
    /// must agree with a cold solve of the same obligation: equal statuses
    /// always, and any counterexample must satisfy the problem's own
    /// confirmation check.
    #[test]
    fn cache_hit_verdict_equals_cold_solve(seed in 0u64..400) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xcafe);
        let threshold = rng.gen_range(-2.0..2.0);
        let (problem, cut_width) = random_problem(&mut rng, threshold);
        let root = StartRegion::Box(BoxDomain::uniform(cut_width, -1.0, 1.0));
        let sub = StartRegion::Box(random_sub_box(&mut rng, cut_width));

        let cache = TemplateCache::new(4);
        let pool = SnapshotPool::new(2);
        let warm_backend = BranchAndBoundBackend;
        let cold_backend = ColdBranchAndBoundBackend;

        let fp = problem.template_fingerprint(&root).unwrap();
        let template = cache.get_or_build(&problem, &root).unwrap();
        prop_assert_eq!(template.fingerprint(), fp);

        // First (cache-warming) solve: no pooled basis yet.
        let mut scratch = None;
        let mut seed_basis = pool.check_out(fp);
        let (first, _) = problem
            .solve_with_template(
                &template,
                &sub,
                &mut SolveOptions::new()
                    .scratch(&mut scratch)
                    .seed(&mut seed_basis)
                    .backend(&warm_backend),
            )
            .unwrap();
        if let Some(basis) = seed_basis.take() {
            pool.check_in(fp, basis);
        }

        // Second solve of the *identical* obligation through the caches —
        // the verdict a dedup layer would have served from its map.
        let template2 = cache.get_or_build(&problem, &root).unwrap();
        let mut seed_basis = pool.check_out(fp);
        let (cached, _) = problem
            .solve_with_template(
                &template2,
                &sub,
                &mut SolveOptions::new()
                    .scratch(&mut scratch)
                    .seed(&mut seed_basis)
                    .backend(&warm_backend),
            )
            .unwrap();

        // Cold reference: fresh template, no scratch, no seed, cold engine.
        let reference_template = problem.encoding_template(&root).unwrap();
        let (cold, _) = problem
            .solve_with_template(
                &reference_template,
                &sub,
                &mut SolveOptions::new().backend(&cold_backend),
            )
            .unwrap();

        prop_assert_eq!(
            std::mem::discriminant(&first),
            std::mem::discriminant(&cached)
        );
        prop_assert_eq!(
            std::mem::discriminant(&cached),
            std::mem::discriminant(&cold)
        );
        if let Verdict::Unsafe(ce) = &cached {
            // Counterexample *points* may differ between warm and cold
            // solves of a feasibility MILP; what must hold is that the
            // cached one is genuine for the obligation itself.
            prop_assert!(sub.contains(ce.activation.as_slice(), 1e-6));
        }
        prop_assert!(cache.stats().hits >= 1);
    }

    /// A basis deposited under template A must never warm-start template B
    /// when the two differ only in a risk threshold — the pair the LP
    /// layer's structure fingerprint cannot distinguish on feasibility
    /// problems (all-zero objective, rhs excluded). The pool's
    /// fingerprint keying is the guard; and even force-feeding A's basis
    /// into B's solve must leave the verdict unchanged (LP validation
    /// backstop).
    #[test]
    fn stale_snapshot_from_another_template_is_rejected(seed in 0u64..400) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x57a1e);
        let threshold = rng.gen_range(-1.0..1.0);
        let (problem_a, cut_width) = random_problem(&mut rng, threshold);
        // Same networks, different risk threshold: rebuild from the same
        // parts so only the risk row differs.
        let problem_b = VerificationProblem::new(
            problem_a.perception().clone(),
            problem_a.cut_layer(),
            problem_a.characterizer().clone(),
            RiskCondition::new("r").output_ge(0, threshold + 0.75),
        )
        .unwrap();
        let root = StartRegion::Box(BoxDomain::uniform(cut_width, -1.0, 1.0));
        let fp_a = problem_a.template_fingerprint(&root).unwrap();
        let fp_b = problem_b.template_fingerprint(&root).unwrap();
        prop_assert_ne!(fp_a, fp_b, "distinct thresholds must split fingerprints");

        let template_a = problem_a.encoding_template(&root).unwrap();
        let template_b = problem_b.encoding_template(&root).unwrap();

        // Harvest a basis from template A's obligation.
        let pool = SnapshotPool::new(2);
        let backend = BranchAndBoundBackend;
        let sub = StartRegion::Box(random_sub_box(&mut rng, cut_width));
        let mut seed_basis = None;
        let _ = problem_a
            .solve_with_template(
                &template_a,
                &sub,
                &mut SolveOptions::new().seed(&mut seed_basis).backend(&backend),
            )
            .unwrap();
        let Some(basis) = seed_basis else {
            // Infeasible runs can end without a reusable basis; nothing to
            // pool, nothing to guard.
            return;
        };
        pool.check_in(fp_a, basis);

        // The guard: template B's check-out must miss.
        prop_assert!(pool.check_out(fp_b).is_none());
        prop_assert_eq!(pool.stats().misses, 1);

        // Backstop: even a forced foreign seed cannot change B's verdict.
        let mut foreign = pool.check_out(fp_a);
        prop_assert!(foreign.is_some());
        let (seeded, _) = problem_b
            .solve_with_template(
                &template_b,
                &sub,
                &mut SolveOptions::new().seed(&mut foreign).backend(&backend),
            )
            .unwrap();
        let (unseeded, _) = problem_b
            .solve_with_template(&template_b, &sub, &mut SolveOptions::new().backend(&backend))
            .unwrap();
        prop_assert_eq!(
            std::mem::discriminant(&seeded),
            std::mem::discriminant(&unseeded)
        );
    }
}

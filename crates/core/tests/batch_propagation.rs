//! Property-based parity of the batched bound-propagation path used by the
//! generational refinement loop: for any tail/characterizer pair and any set
//! of sibling sub-boxes, `region_bounds_batch` must be bit-identical to the
//! scalar `region_bounds`, and instantiating from precomputed bounds must
//! yield exactly the MILP that direct instantiation would.

use dpv_absint::{AbstractDomain, BoxDomain, Interval};
use dpv_core::{EncodingTemplate, RiskCondition, StartRegion};
use dpv_nn::{Activation, Network, NetworkBuilder};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_tail(rng: &mut StdRng, input_dim: usize, out_dim: usize) -> Network {
    let mut builder = NetworkBuilder::new(input_dim);
    for _ in 0..rng.gen_range(1usize..3) {
        builder = builder.dense(rng.gen_range(2usize..6), rng);
        builder = if rng.gen_bool(0.7) {
            builder.activation(Activation::ReLU)
        } else {
            builder.batch_norm()
        };
    }
    builder.dense(out_dim, rng).build()
}

/// Random sub-boxes of the root, the shape refinement splitting produces.
fn random_sub_boxes(rng: &mut StdRng, dim: usize, n: usize) -> Vec<BoxDomain> {
    (0..n)
        .map(|_| {
            let bounds: Vec<Interval> = (0..dim)
                .map(|_| {
                    let a: f64 = rng.gen_range(-1.0..1.0);
                    let b: f64 = rng.gen_range(-1.0..1.0);
                    Interval::new(a.min(b), a.max(b))
                })
                .collect();
            BoxDomain::from_intervals(bounds)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Batched sibling propagation is bit-identical to per-region scalar
    /// propagation, and the bounds instantiate the exact same MILP.
    #[test]
    fn batched_bounds_and_instantiation_match_scalar(seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xbb05);
        let input_dim = rng.gen_range(2usize..4);
        let tail_out = rng.gen_range(1usize..3);
        let tail = random_tail(&mut rng, input_dim, tail_out);
        let characterizer = if rng.gen_bool(0.5) {
            Some(random_tail(&mut rng, input_dim, 1))
        } else {
            None
        };
        let risk = RiskCondition::new("r").output_ge(0, rng.gen_range(-0.5..0.5));
        let root = StartRegion::Box(BoxDomain::uniform(input_dim, -1.0, 1.0));
        let template = EncodingTemplate::build(
            tail.layers(),
            characterizer.as_ref(),
            &risk,
            &root,
        )
        .unwrap();

        let sibling_count = rng.gen_range(1usize..9);
        let boxes = random_sub_boxes(&mut rng, input_dim, sibling_count);
        let refs: Vec<&BoxDomain> = boxes.iter().collect();
        let batched = template.region_bounds_batch(&refs).unwrap();
        prop_assert_eq!(batched.len(), boxes.len());

        for (sub_box, batched_bounds) in boxes.iter().zip(&batched) {
            let region = StartRegion::Box(sub_box.clone());
            let scalar = template.region_bounds(&region).unwrap();
            prop_assert_eq!(batched_bounds, &scalar);

            let via_bounds = template.instantiate_with(&region, batched_bounds).unwrap();
            let direct = template.instantiate(&region).unwrap();
            prop_assert_eq!(&via_bounds.milp, &direct.milp);
            prop_assert_eq!(via_bounds.num_binaries, direct.num_binaries);
            prop_assert_eq!(via_bounds.stable_relus, direct.stable_relus);
        }
    }
}

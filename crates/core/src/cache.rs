//! Cross-run template and basis caches keyed by canonical
//! [`Fingerprint`]s — the shared state behind the obligation server
//! (`dpv-serve`) and any other long-lived process that re-verifies the same
//! models.
//!
//! Two cache kinds live here:
//!
//! * [`TemplateCache`] — `Arc`-held [`ProblemTemplate`]s keyed by their
//!   content fingerprint, with LRU eviction. A hit skips the whole MILP
//!   skeleton encoding; concurrent verification jobs share one immutable
//!   template.
//! * [`SnapshotPool`] — rolling [`BasisSnapshot`]s pooled *per template
//!   fingerprint* with interior mutability, so warm dual-simplex bases flow
//!   between workers and across requests. The fingerprint keying is the
//!   load-bearing cross-template guard: the LP layer's own
//!   `StructureFingerprint` deliberately excludes bound values, right-hand
//!   sides and (for the all-zero feasibility objective) any useful cost
//!   signature, so two templates differing only in a risk threshold can
//!   look alike to it. Pooling by template fingerprint means a snapshot can
//!   never be offered to a structurally different template in the first
//!   place — and even a hypothetical mix-up only costs a cold re-solve, as
//!   the LP layer validates every warm start before trusting it.
//!
//! Both caches are `Send + Sync` (a `Mutex` around plain maps — lock hold
//! times are a few pointer moves, never a solve) and deliberately
//! verdict-neutral: any entry can be evicted at any time without changing
//! what a verification returns, only what it costs.

use std::collections::HashMap;
use std::sync::Mutex;

use dpv_lp::BasisSnapshot;
use dpv_trace::{CounterId, TraceHandle, Tracer};

use crate::fingerprint::Fingerprint;
use crate::verify::ProblemTemplate;
use crate::{CoreError, StartRegion, VerificationProblem};

use std::sync::Arc;

/// Counters describing a [`TemplateCache`]'s effectiveness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to build (and then inserted) a template.
    pub misses: u64,
    /// Entries evicted by the LRU policy.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
}

impl CacheStats {
    /// Hit rate in permille (0 when nothing was looked up).
    pub fn hit_rate_permille(&self) -> u64 {
        let total = self.hits + self.misses;
        (self.hits * 1000).checked_div(total).unwrap_or(0)
    }
}

/// An LRU cache of `Arc`-held [`ProblemTemplate`]s keyed by their canonical
/// content [`Fingerprint`].
///
/// **Key scheme.** The key is [`Fingerprint::of_template`] over the
/// template's defining `(tail, characterizer, risk, root region)` tuple —
/// computed via [`VerificationProblem::template_fingerprint`] *before*
/// building, so lookups are cheap. Identical tuples submitted by different
/// requests (or different threads) resolve to one shared template.
///
/// **Eviction.** Least-recently-used beyond `capacity`: every hit refreshes
/// an entry's recency; inserting beyond capacity drops the stalest entry.
/// Because templates are handed out as `Arc`s, eviction never invalidates a
/// template a worker is still solving with.
#[derive(Debug)]
pub struct TemplateCache {
    capacity: usize,
    inner: Mutex<TemplateCacheInner>,
    trace: TraceHandle,
}

#[derive(Debug, Default)]
struct TemplateCacheInner {
    map: HashMap<Fingerprint, Arc<ProblemTemplate>>,
    /// Recency order, least-recently-used first.
    order: Vec<Fingerprint>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl TemplateCacheInner {
    fn touch(&mut self, fp: Fingerprint) {
        if let Some(pos) = self.order.iter().position(|&f| f == fp) {
            self.order.remove(pos);
        }
        self.order.push(fp);
    }
}

impl TemplateCache {
    /// Creates a cache holding at most `capacity` templates (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Self::with_tracer(capacity, &Tracer::disabled())
    }

    /// [`TemplateCache::new`] additionally mirroring hit/miss/eviction
    /// counters into `tracer` (`template-hits`/`-misses`/`-evictions`).
    /// Tracing is observational: a disabled tracer makes this exactly
    /// [`TemplateCache::new`].
    pub fn with_tracer(capacity: usize, tracer: &Tracer) -> Self {
        Self {
            capacity: capacity.max(1),
            inner: Mutex::new(TemplateCacheInner::default()),
            trace: tracer.metrics_handle(),
        }
    }

    /// Returns the cached template for `problem` over `root`, building and
    /// inserting it on a miss. The build happens *outside* the cache lock,
    /// so a slow encoding never blocks concurrent hits; when two threads
    /// race to build the same template, the first insert wins and the loser
    /// adopts it (both count one miss — both paid a build).
    ///
    /// # Errors
    /// Propagates encoding errors from
    /// [`VerificationProblem::encoding_template`].
    pub fn get_or_build(
        &self,
        problem: &VerificationProblem,
        root: &StartRegion,
    ) -> Result<Arc<ProblemTemplate>, CoreError> {
        let fp = problem.template_fingerprint(root)?;
        {
            let mut inner = self.inner.lock().expect("template cache poisoned");
            if let Some(template) = inner.map.get(&fp).cloned() {
                inner.hits += 1;
                inner.touch(fp);
                drop(inner);
                self.trace.add(CounterId::TemplateHits, 1);
                return Ok(template);
            }
            inner.misses += 1;
        }
        self.trace.add(CounterId::TemplateMisses, 1);
        let built = Arc::new(problem.encoding_template(root)?);
        debug_assert_eq!(built.fingerprint(), fp, "fingerprint must be content-true");
        let mut inner = self.inner.lock().expect("template cache poisoned");
        let template = inner.map.entry(fp).or_insert_with(|| built).clone();
        inner.touch(fp);
        let mut evicted = 0;
        while inner.map.len() > self.capacity {
            let stale = inner.order.remove(0);
            inner.map.remove(&stale);
            inner.evictions += 1;
            evicted += 1;
        }
        drop(inner);
        if evicted > 0 {
            self.trace.add(CounterId::TemplateEvictions, evicted);
        }
        Ok(template)
    }

    /// Looks up a template by fingerprint without building on a miss. Does
    /// not count towards hit/miss statistics (probes are free).
    pub fn peek(&self, fp: Fingerprint) -> Option<Arc<ProblemTemplate>> {
        self.inner
            .lock()
            .expect("template cache poisoned")
            .map
            .get(&fp)
            .cloned()
    }

    /// Current effectiveness counters.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().expect("template cache poisoned");
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            entries: inner.map.len(),
        }
    }
}

/// Counters describing a [`SnapshotPool`]'s effectiveness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SnapshotPoolStats {
    /// Check-outs that returned a pooled basis.
    pub hits: u64,
    /// Check-outs that found the template's pool empty.
    pub misses: u64,
    /// Snapshots dropped because a template's pool was full.
    pub discarded: u64,
}

impl SnapshotPoolStats {
    /// Hit rate in permille (0 when nothing was checked out).
    pub fn hit_rate_permille(&self) -> u64 {
        let total = self.hits + self.misses;
        (self.hits * 1000).checked_div(total).unwrap_or(0)
    }
}

/// A pool of warm [`BasisSnapshot`]s segregated by template
/// [`Fingerprint`].
///
/// Workers check a basis out before solving an obligation
/// ([`SnapshotPool::check_out`]), seed the backend with it
/// ([`crate::VerificationProblem::solve_with_template`] with a seed in its
/// [`crate::SolveOptions`]), and check
/// the refreshed basis back in afterwards — so the dual-simplex repair
/// chain that PR 3 ran *within* one search tree now spans obligations,
/// workers and requests.
///
/// **Guard.** Check-out is keyed strictly by template fingerprint: a basis
/// deposited under template A is unreachable from template B even when the
/// two LPs share every structural count (the stale-snapshot scenario the
/// cache-soundness tests pin down). The LP layer's per-solve validation
/// remains the soundness backstop — a wrong basis degrades to a cold solve,
/// never to a wrong verdict — but the pool keying is what keeps the *hit
/// rate* honest across templates.
///
/// **Eviction.** Each template keeps at most `per_key` bases (FIFO beyond
/// that); `per_key == 0` disables pooling entirely, which is also the
/// determinism-friendly configuration for reproducing a solve with no warm
/// state.
#[derive(Debug)]
pub struct SnapshotPool {
    per_key: usize,
    inner: Mutex<SnapshotPoolInner>,
    trace: TraceHandle,
}

#[derive(Debug, Default)]
struct SnapshotPoolInner {
    pools: HashMap<Fingerprint, Vec<BasisSnapshot>>,
    hits: u64,
    misses: u64,
    discarded: u64,
}

impl SnapshotPool {
    /// Creates a pool keeping at most `per_key` bases per template.
    pub fn new(per_key: usize) -> Self {
        Self::with_tracer(per_key, &Tracer::disabled())
    }

    /// [`SnapshotPool::new`] additionally mirroring hit/miss/discard
    /// counters into `tracer` (`snapshot-hits`/`-misses`/`-discards`).
    pub fn with_tracer(per_key: usize, tracer: &Tracer) -> Self {
        Self {
            per_key,
            inner: Mutex::new(SnapshotPoolInner::default()),
            trace: tracer.metrics_handle(),
        }
    }

    /// Takes a warm basis for the template `fp`, if one is pooled.
    pub fn check_out(&self, fp: Fingerprint) -> Option<BasisSnapshot> {
        let mut inner = self.inner.lock().expect("snapshot pool poisoned");
        let snapshot = inner.pools.get_mut(&fp).and_then(Vec::pop);
        match snapshot {
            Some(s) => {
                inner.hits += 1;
                drop(inner);
                self.trace.add(CounterId::SnapshotHits, 1);
                Some(s)
            }
            None => {
                inner.misses += 1;
                drop(inner);
                self.trace.add(CounterId::SnapshotMisses, 1);
                None
            }
        }
    }

    /// Returns a refreshed basis to the template `fp`'s pool; dropped when
    /// the pool is full (or pooling is disabled).
    pub fn check_in(&self, fp: Fingerprint, snapshot: BasisSnapshot) {
        let mut inner = self.inner.lock().expect("snapshot pool poisoned");
        let pool = inner.pools.entry(fp).or_default();
        if pool.len() < self.per_key {
            pool.push(snapshot);
        } else {
            inner.discarded += 1;
            drop(inner);
            self.trace.add(CounterId::SnapshotDiscards, 1);
        }
    }

    /// Current effectiveness counters.
    pub fn stats(&self) -> SnapshotPoolStats {
        let inner = self.inner.lock().expect("snapshot pool poisoned");
        SnapshotPoolStats {
            hits: inner.hits,
            misses: inner.misses,
            discarded: inner.discarded,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        Characterizer, CharacterizerConfig, InputProperty, RiskCondition, SolveOptions, Verdict,
        VerificationProblem,
    };
    use dpv_absint::BoxDomain;
    use dpv_lp::default_backend;
    use dpv_nn::{Activation, NetworkBuilder};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A small trained-ish verification problem over a fixed seed.
    fn problem(threshold: f64) -> VerificationProblem {
        let mut rng = StdRng::seed_from_u64(41);
        let perception = NetworkBuilder::new(3)
            .dense(6, &mut rng)
            .activation(Activation::ReLU)
            .dense(4, &mut rng)
            .activation(Activation::ReLU)
            .dense(2, &mut rng)
            .build();
        let cut = 2;
        let examples: Vec<(dpv_tensor::Vector, bool)> = (0..60)
            .map(|i| {
                let v: dpv_tensor::Vector = (0..3).map(|_| rng.gen_range(-1.0..1.0)).collect();
                (v, i % 2 == 0)
            })
            .collect();
        let characterizer = Characterizer::train(
            InputProperty::new("p", "test property"),
            &perception,
            cut,
            &examples,
            &CharacterizerConfig::small(),
            &mut rng,
        )
        .expect("characterizer trains");
        VerificationProblem::new(
            perception,
            cut,
            characterizer,
            RiskCondition::new("r").output_ge(0, threshold),
        )
        .expect("problem assembles")
    }

    fn region(lo: f64, hi: f64) -> StartRegion {
        StartRegion::Box(BoxDomain::uniform(4, lo, hi))
    }

    #[test]
    fn identical_tuples_share_one_template() {
        let cache = TemplateCache::new(4);
        let p = problem(10.0);
        let a = cache.get_or_build(&p, &region(-1.0, 1.0)).unwrap();
        let b = cache.get_or_build(&p, &region(-1.0, 1.0)).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(stats.hit_rate_permille(), 500);
    }

    #[test]
    fn distinct_risks_get_distinct_templates() {
        let cache = TemplateCache::new(4);
        let a = cache
            .get_or_build(&problem(10.0), &region(-1.0, 1.0))
            .unwrap();
        let b = cache
            .get_or_build(&problem(0.0), &region(-1.0, 1.0))
            .unwrap();
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn lru_evicts_the_stalest_template() {
        let cache = TemplateCache::new(2);
        let p = problem(10.0);
        let r1 = region(-1.0, 1.0);
        let r2 = region(-0.5, 0.5);
        let r3 = region(-0.25, 0.25);
        let t1 = cache.get_or_build(&p, &r1).unwrap();
        let _t2 = cache.get_or_build(&p, &r2).unwrap();
        // Touch t1 so r2 is now the LRU entry, then overflow.
        let _ = cache.get_or_build(&p, &r1).unwrap();
        let _t3 = cache.get_or_build(&p, &r3).unwrap();
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.entries, 2);
        assert!(cache.peek(t1.fingerprint()).is_some(), "t1 was touched");
        assert!(
            cache.peek(p.template_fingerprint(&r2).unwrap()).is_none(),
            "r2 was the LRU entry"
        );
    }

    /// A basis from a small always-feasible LP; the pool treats snapshots
    /// as opaque, so any basis exercises its keying and capacity logic.
    fn any_basis() -> BasisSnapshot {
        let mut lp = dpv_lp::LinearProgram::new();
        let x = lp.add_variable(0.0, 1.0);
        lp.add_constraint(&[(x, 1.0)], dpv_lp::ConstraintOp::Le, 1.0);
        let (_, snap) = lp.solve_with_snapshot();
        snap.expect("optimal solve yields a basis")
    }

    #[test]
    fn snapshot_pool_segregates_templates() {
        // Deposit a basis under template A; template B must miss even
        // though the two MILPs share every structural count (the risks
        // differ only in a threshold — exactly the pair the LP layer's own
        // structure fingerprint cannot tell apart on feasibility problems).
        let pool = SnapshotPool::new(2);
        let root = region(-1.0, 1.0);
        let fp_a = problem(10.0).template_fingerprint(&root).unwrap();
        let fp_b = problem(11.0).template_fingerprint(&root).unwrap();
        assert_ne!(fp_a, fp_b);

        pool.check_in(fp_a, any_basis());
        assert!(pool.check_out(fp_b).is_none(), "foreign template must miss");
        assert!(pool.check_out(fp_a).is_some());
        let stats = pool.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(stats.hit_rate_permille(), 500);
    }

    #[test]
    fn pool_capacity_bounds_each_template() {
        let pool = SnapshotPool::new(1);
        let p = problem(10.0);
        let root = region(-1.0, 1.0);
        let fp = p.template_fingerprint(&root).unwrap();
        pool.check_in(fp, any_basis());
        pool.check_in(fp, any_basis());
        assert_eq!(pool.stats().discarded, 1);
        let disabled = SnapshotPool::new(0);
        disabled.check_in(fp, any_basis());
        assert!(
            disabled.check_out(fp).is_none(),
            "per_key=0 disables pooling"
        );
    }

    #[test]
    fn seeded_and_unseeded_template_solves_agree() {
        // The cache layer must be verdict-neutral: solving the same
        // obligation with and without a pooled seed returns equal statuses.
        let p = problem(10.0);
        let root = region(-1.0, 1.0);
        let template = p.encoding_template(&root).unwrap();
        let backend = default_backend();

        let mut seed = None;
        let (first, _) = p
            .solve_with_template(
                &template,
                &root,
                &mut SolveOptions::new().seed(&mut seed).backend(&backend),
            )
            .unwrap();
        let (seeded, _) = p
            .solve_with_template(
                &template,
                &root,
                &mut SolveOptions::new().seed(&mut seed).backend(&backend),
            )
            .unwrap();
        let (unseeded, _) = p
            .solve_with_template(&template, &root, &mut SolveOptions::new().backend(&backend))
            .unwrap();
        assert_eq!(
            std::mem::discriminant(&seeded),
            std::mem::discriminant(&unseeded)
        );
        assert_eq!(
            std::mem::discriminant(&first),
            std::mem::discriminant(&seeded)
        );
        assert!(matches!(first, Verdict::Safe | Verdict::Unsafe(_)));
    }
}

//! Envelope refinement by region splitting — the "incremental
//! abstraction-refinement" direction the paper sketches as future work in
//! its concluding remarks.
//!
//! The assume-guarantee start region `S̃` is a *single* box (plus difference
//! constraints) around every training-data activation, so the MILP may
//! return counterexamples that live in empty corners of that box: activation
//! patterns no realistic input ever produces. Because the MILP encoding is
//! exact, splitting the box cannot remove such a point from the search — but
//! it can isolate it in a sub-box that contains **no recorded activation at
//! all**, and such sub-boxes can be dropped from the envelope without
//! weakening its coverage of the data.
//!
//! The refinement loop therefore maintains a work list of sub-boxes and, for
//! each one:
//!
//! 1. **prunes** it when it contains no reference activation (the envelope
//!    then simply no longer covers that empty corner; the runtime monitor
//!    must check membership in the refined union instead of the single box);
//! 2. otherwise **verifies** it; `Safe` keeps it, a counterexample close to
//!    a reference activation is reported as genuinely `Unsafe`;
//! 3. otherwise **splits** it along its widest dimension and recurses, until
//!    the split budget is exhausted.
//!
//! The result, when every kept sub-box verifies, is a proof that holds for
//! every activation inside the refined union — which still contains every
//! training activation, so the assume-guarantee contract (monitor the
//! envelope at run time) is unchanged, just with a tighter envelope.

use std::sync::atomic::{AtomicUsize, Ordering};

use dpv_absint::{AbstractDomain, BoxDomain, Interval};
use dpv_lp::{default_backend, MilpSolution, SolveStats, SolverBackend};
use dpv_tensor::Vector;

use crate::{
    CoreError, CounterExample, EncodedProblem, ProblemTemplate, RegionBounds, StartRegion, Verdict,
    VerificationProblem,
};

/// Outcome of a refinement run.
#[derive(Debug, Clone, PartialEq)]
pub enum RefinedVerdict {
    /// Every kept sub-box was proved safe. The proof is conditional on the
    /// runtime monitor checking membership in the *refined* envelope (the
    /// union of kept boxes), exactly as the original assume-guarantee proof
    /// was conditional on the single-box envelope.
    Safe,
    /// A counterexample close to a recorded activation was found — a genuine
    /// (data-supported) violation.
    Unsafe(CounterExample),
    /// The split budget was exhausted before every sub-box could be either
    /// pruned, proved safe, or shown to contain a data-supported violation.
    Inconclusive {
        /// The last counterexample encountered.
        last_counterexample: CounterExample,
        /// Number of sub-boxes proved safe before giving up.
        safe_subregions: usize,
    },
}

impl RefinedVerdict {
    /// Returns `true` for [`RefinedVerdict::Safe`].
    pub fn is_safe(&self) -> bool {
        matches!(self, RefinedVerdict::Safe)
    }
}

/// Statistics and artefacts of a refinement run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RefinementReport {
    /// Number of MILP verification calls.
    pub verification_calls: usize,
    /// Number of region splits performed.
    pub splits: usize,
    /// Number of sub-boxes proved safe (they form the refined envelope
    /// together with any sub-boxes never visited because their parent was
    /// already safe).
    pub safe_subregions: usize,
    /// Number of sub-boxes pruned because they contain no reference
    /// activation.
    pub pruned_subregions: usize,
    /// Counterexamples dismissed because they were far from every reference.
    pub spurious_counterexamples: usize,
    /// Aggregated solver statistics over every MILP call of the run (for
    /// parallel dispatch: summed across workers), so benchmarks can report
    /// search throughput as nodes per second.
    pub solver_stats: SolveStats,
    /// The kept (safe) sub-boxes — the refined envelope.
    pub refined_envelope: Vec<BoxDomain>,
}

impl RefinementReport {
    /// Returns `true` when every reference activation passed to
    /// [`RefinementVerifier::verify`] is covered by the refined envelope.
    /// This is the invariant that keeps the assume-guarantee argument intact
    /// and is re-checked by the property tests.
    pub fn covers(&self, references: &[Vector], tol: f64) -> bool {
        references.iter().all(|r| {
            self.refined_envelope
                .iter()
                .any(|b| b.box_contains(r.as_slice(), tol))
        })
    }
}

/// Configuration of the concurrent refinement work-list.
///
/// The sub-boxes of one refinement generation are independent MILP solves
/// (the backends behind the seam are `Send + Sync`), so they can be
/// dispatched across a scoped thread pool. Verdict selection stays
/// deterministic regardless of scheduling: sub-boxes carry their position in
/// the breadth-first work-list, results are folded back **in index order**,
/// and the lowest-index data-supported counterexample wins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelRefinementConfig {
    /// Number of worker threads solving sub-boxes concurrently. A value of
    /// one (or zero) falls back to the serial loop.
    pub workers: usize,
}

impl ParallelRefinementConfig {
    /// A configuration with the given worker count.
    pub fn new(workers: usize) -> Self {
        Self { workers }
    }
}

impl Default for ParallelRefinementConfig {
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    }
}

/// Envelope-refining verifier on top of a [`VerificationProblem`].
#[derive(Debug, Clone)]
pub struct RefinementVerifier {
    max_splits: usize,
    realizability_tolerance: f64,
    parallel: Option<ParallelRefinementConfig>,
    use_template: bool,
}

impl Default for RefinementVerifier {
    fn default() -> Self {
        Self {
            max_splits: 256,
            realizability_tolerance: 0.05,
            parallel: None,
            use_template: true,
        }
    }
}

impl RefinementVerifier {
    /// Creates a verifier with a budget of at most `max_splits` region splits
    /// and the given L∞ tolerance for accepting a counterexample as
    /// data-supported.
    pub fn new(max_splits: usize, realizability_tolerance: f64) -> Self {
        Self {
            max_splits,
            realizability_tolerance: realizability_tolerance.max(0.0),
            parallel: None,
            use_template: true,
        }
    }

    /// Disables the incremental [`crate::EncodingTemplate`]: every sub-box is
    /// re-encoded from scratch, exactly as before PR 3. Verdicts are
    /// identical either way (the `backend_seam` tests assert it); this
    /// switch exists for that comparison and as the benchmark baseline.
    pub fn without_template(mut self) -> Self {
        self.use_template = false;
        self
    }

    /// Whether sub-boxes are encoded through the incremental template.
    pub fn uses_template(&self) -> bool {
        self.use_template
    }

    /// Dispatches the sub-box work-list across `config.workers` scoped
    /// threads. Verdicts are reproducible regardless of scheduling (see
    /// [`ParallelRefinementConfig`]); reported statistics count only the
    /// sub-boxes folded into the verdict, so they are deterministic too,
    /// even though workers may speculatively solve a few boxes beyond a
    /// terminating counterexample.
    pub fn with_parallelism(mut self, config: ParallelRefinementConfig) -> Self {
        self.parallel = Some(config);
        self
    }

    /// The parallel-dispatch configuration, when one was set.
    pub fn parallelism(&self) -> Option<&ParallelRefinementConfig> {
        self.parallel.as_ref()
    }

    /// The split budget.
    pub fn max_splits(&self) -> usize {
        self.max_splits
    }

    /// The L∞ tolerance under which a counterexample counts as realizable.
    pub fn realizability_tolerance(&self) -> f64 {
        self.realizability_tolerance
    }

    /// Runs the refinement loop with the default solver backend. See
    /// [`RefinementVerifier::verify_with`].
    ///
    /// # Errors
    /// Propagates encoding errors and solver-limit conditions from the
    /// underlying verification.
    pub fn verify(
        &self,
        problem: &VerificationProblem,
        region: &BoxDomain,
        references: &[Vector],
    ) -> Result<(RefinedVerdict, RefinementReport), CoreError> {
        self.verify_with(problem, region, references, &default_backend())
    }

    /// Runs the refinement loop starting from `region` (typically the
    /// envelope's box), with `references` the recorded cut-layer activations
    /// of the training data, solving every sub-region through `backend`.
    ///
    /// # Errors
    /// Propagates encoding errors and solver-limit conditions from the
    /// underlying verification.
    pub fn verify_with(
        &self,
        problem: &VerificationProblem,
        region: &BoxDomain,
        references: &[Vector],
        backend: &dyn SolverBackend,
    ) -> Result<(RefinedVerdict, RefinementReport), CoreError> {
        self.verify_dispatch(problem, region, references, backend, None)
    }

    /// [`RefinementVerifier::verify_with`] through an externally owned
    /// [`ProblemTemplate`] — the cache seam for long-lived processes: a
    /// template fetched from a [`crate::cache::TemplateCache`] is reused
    /// across the whole sweep (and across *runs*) instead of being encoded
    /// per call. Sub-boxes the template's root does not cover fall back to
    /// one-shot encoding per box, so a mismatched template changes cost,
    /// never verdicts.
    ///
    /// # Errors
    /// Propagates encoding errors and solver-limit conditions from the
    /// underlying verification.
    pub fn verify_with_shared_template(
        &self,
        problem: &VerificationProblem,
        region: &BoxDomain,
        references: &[Vector],
        template: &ProblemTemplate,
        backend: &dyn SolverBackend,
    ) -> Result<(RefinedVerdict, RefinementReport), CoreError> {
        self.verify_dispatch(problem, region, references, backend, Some(template))
    }

    fn verify_dispatch(
        &self,
        problem: &VerificationProblem,
        region: &BoxDomain,
        references: &[Vector],
        backend: &dyn SolverBackend,
        external: Option<&ProblemTemplate>,
    ) -> Result<(RefinedVerdict, RefinementReport), CoreError> {
        if let Some(config) = self.parallel {
            if config.workers > 1 {
                return self.verify_parallel(
                    problem,
                    region,
                    references,
                    backend,
                    config.workers,
                    external,
                );
            }
        }
        // The layer skeleton is encoded once for the whole sweep (or adopted
        // from the caller's cache); every sub-box below re-tightens the same
        // scratch problem in place.
        let built = match external {
            Some(_) => None,
            None => self
                .use_template
                .then(|| problem.encoding_template(&StartRegion::Box(region.clone())))
                .transpose()?,
        };
        let template = external.or(built.as_ref());
        let mut scratch: Option<EncodedProblem> = None;
        let mut report = RefinementReport::default();
        let mut queue: Vec<BoxDomain> = vec![region.clone()];

        while let Some(current) = queue.pop() {
            // Prune boxes that cover no recorded activation: the refined
            // envelope does not need them.
            if !references
                .iter()
                .any(|r| current.box_contains(r.as_slice(), 1e-9))
            {
                report.pruned_subregions += 1;
                continue;
            }
            report.verification_calls += 1;
            let (verdict, solution) =
                solve_box(problem, template, &mut scratch, &current, None, backend)?;
            report.solver_stats += solution.stats;
            match verdict {
                Verdict::Safe => {
                    report.safe_subregions += 1;
                    report.refined_envelope.push(current);
                }
                Verdict::Unknown(reason) => {
                    return Err(CoreError::SolverLimit(reason));
                }
                Verdict::Unsafe(counterexample) => {
                    match self.process_counterexample(
                        counterexample,
                        &current,
                        references,
                        &mut report,
                    ) {
                        CounterexampleAction::Terminal(verdict) => return Ok((verdict, report)),
                        CounterexampleAction::Split(left, right) => {
                            queue.push(left);
                            queue.push(right);
                        }
                    }
                }
            }
        }

        // The queue drained: every sub-box was pruned (empty of data) or
        // proved safe, so the refined envelope — which still covers every
        // reference activation — satisfies the property.
        Ok((RefinedVerdict::Safe, report))
    }

    /// Shared counterexample handling of both dispatch modes: a
    /// data-supported counterexample terminates the run as `Unsafe`; a
    /// spurious one splits the box — unless the split budget is exhausted,
    /// which terminates as `Inconclusive`. Keeping this in one place keeps
    /// the *per-counterexample* semantics of the two dispatch modes in
    /// lockstep. Note the modes still traverse the work-list in different
    /// orders (serial is depth-first, parallel is generational
    /// breadth-first), so on budget-limited problems they may exhaust
    /// `max_splits` on different boxes and report different — though each
    /// individually reproducible — outcomes.
    fn process_counterexample(
        &self,
        counterexample: CounterExample,
        current: &BoxDomain,
        references: &[Vector],
        report: &mut RefinementReport,
    ) -> CounterexampleAction {
        let realizable = references
            .iter()
            .any(|r| (r - &counterexample.activation).norm_linf() <= self.realizability_tolerance);
        if realizable {
            return CounterexampleAction::Terminal(RefinedVerdict::Unsafe(counterexample));
        }
        report.spurious_counterexamples += 1;
        if report.splits >= self.max_splits {
            return CounterexampleAction::Terminal(RefinedVerdict::Inconclusive {
                last_counterexample: counterexample,
                safe_subregions: report.safe_subregions,
            });
        }
        let (left, right) = split_box(current);
        report.splits += 1;
        CounterexampleAction::Split(left, right)
    }

    /// The concurrent work-list: one breadth-first generation of sub-boxes
    /// at a time is solved across `workers` scoped threads; results are then
    /// folded back sequentially in work-list order, so the verdict — and in
    /// particular which data-supported counterexample is reported — does not
    /// depend on thread scheduling.
    fn verify_parallel(
        &self,
        problem: &VerificationProblem,
        region: &BoxDomain,
        references: &[Vector],
        backend: &dyn SolverBackend,
        workers: usize,
        external: Option<&ProblemTemplate>,
    ) -> Result<(RefinedVerdict, RefinementReport), CoreError> {
        // One skeleton for the whole sweep (or the caller's cached one),
        // shared read-only across the worker threads; each worker
        // re-tightens its own scratch problem.
        let built = match external {
            Some(_) => None,
            None => self
                .use_template
                .then(|| problem.encoding_template(&StartRegion::Box(region.clone())))
                .transpose()?,
        };
        let template = external.or(built.as_ref());
        let mut report = RefinementReport::default();
        let mut generation: Vec<BoxDomain> = vec![region.clone()];

        while !generation.is_empty() {
            let outcomes =
                solve_generation(problem, template, &generation, references, backend, workers);
            let mut next = Vec::new();
            for (index, outcome) in outcomes.into_iter().enumerate() {
                match outcome? {
                    BoxOutcome::Pruned => report.pruned_subregions += 1,
                    BoxOutcome::Solved { verdict, stats } => {
                        report.verification_calls += 1;
                        report.solver_stats += stats;
                        match verdict {
                            Verdict::Safe => {
                                report.safe_subregions += 1;
                                report.refined_envelope.push(generation[index].clone());
                            }
                            Verdict::Unknown(reason) => {
                                return Err(CoreError::SolverLimit(reason));
                            }
                            Verdict::Unsafe(counterexample) => {
                                // Fold order makes the lowest-index
                                // data-supported counterexample win: boxes
                                // before this one were all pruned, safe, or
                                // spurious.
                                match self.process_counterexample(
                                    counterexample,
                                    &generation[index],
                                    references,
                                    &mut report,
                                ) {
                                    CounterexampleAction::Terminal(verdict) => {
                                        return Ok((verdict, report))
                                    }
                                    CounterexampleAction::Split(left, right) => {
                                        next.push(left);
                                        next.push(right);
                                    }
                                }
                            }
                        }
                    }
                }
            }
            generation = next;
        }

        Ok((RefinedVerdict::Safe, report))
    }
}

/// What a counterexample means for the work-list (see
/// [`RefinementVerifier::process_counterexample`]).
enum CounterexampleAction {
    /// The run ends with this verdict.
    Terminal(RefinedVerdict),
    /// The box was split; both halves join the work-list.
    Split(BoxDomain, BoxDomain),
}

/// Per-sub-box outcome of one parallel generation.
enum BoxOutcome {
    /// The box contains no reference activation and was dropped unsolved.
    Pruned,
    /// The box was verified; `stats` are the solver statistics of the call.
    Solved { verdict: Verdict, stats: SolveStats },
}

/// Solves one sub-box, through the skeleton template when one is available
/// (falling back to one-shot encoding inside
/// [`VerificationProblem::run_solver_with_template`] for uncovered regions).
fn solve_box(
    problem: &VerificationProblem,
    template: Option<&ProblemTemplate>,
    scratch: &mut Option<EncodedProblem>,
    current: &BoxDomain,
    bounds: Option<&RegionBounds>,
    backend: &dyn SolverBackend,
) -> Result<(Verdict, MilpSolution), CoreError> {
    let region = StartRegion::Box(current.clone());
    match template {
        Some(template) => {
            problem.run_solver_with_template(template, &region, bounds, scratch, backend)
        }
        None => problem
            .run_solver(&region, backend)
            .map(|(verdict, _, solution)| (verdict, solution)),
    }
}

/// Solves every box of `generation` across `workers` scoped threads and
/// returns the outcomes indexed like the input (position `i` holds box
/// `i`'s result), so the caller's fold is scheduling-independent.
///
/// Before the workers spawn, the bound propagation for every surviving
/// (non-pruned, template-covered) sibling is done in **one batched SoA
/// sweep** ([`crate::EncodingTemplate::region_bounds_batch`]) — the workers
/// then only apply the precomputed bounds and solve. The batched lanes are
/// bit-identical to scalar propagation, so verdicts are unchanged.
fn solve_generation(
    problem: &VerificationProblem,
    template: Option<&ProblemTemplate>,
    generation: &[BoxDomain],
    references: &[Vector],
    backend: &dyn SolverBackend,
    workers: usize,
) -> Vec<Result<BoxOutcome, CoreError>> {
    let pruned: Vec<bool> = generation
        .iter()
        .map(|current| {
            !references
                .iter()
                .any(|r| current.box_contains(r.as_slice(), 1e-9))
        })
        .collect();
    let bounds = batch_region_bounds(template, generation, &pruned);

    let cursor = AtomicUsize::new(0);
    let workers = workers.min(generation.len()).max(1);
    let collected = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let cursor = &cursor;
                let pruned = &pruned;
                let bounds = &bounds;
                scope.spawn(move |_| {
                    let mut local: Vec<(usize, Result<BoxOutcome, CoreError>)> = Vec::new();
                    let mut scratch: Option<EncodedProblem> = None;
                    loop {
                        let index = cursor.fetch_add(1, Ordering::Relaxed);
                        if index >= generation.len() {
                            break;
                        }
                        let current = &generation[index];
                        let outcome = if pruned[index] {
                            Ok(BoxOutcome::Pruned)
                        } else {
                            solve_box(
                                problem,
                                template,
                                &mut scratch,
                                current,
                                bounds[index].as_ref(),
                                backend,
                            )
                            .map(|(verdict, solution)| {
                                BoxOutcome::Solved {
                                    verdict,
                                    stats: solution.stats,
                                }
                            })
                        };
                        local.push((index, outcome));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|handle| handle.join().expect("refinement worker panicked"))
            .collect::<Vec<_>>()
    })
    .expect("scoped refinement threads");

    let mut outcomes: Vec<Option<Result<BoxOutcome, CoreError>>> =
        (0..generation.len()).map(|_| None).collect();
    for (index, outcome) in collected {
        outcomes[index] = Some(outcome);
    }
    outcomes
        .into_iter()
        .map(|slot| slot.expect("every box receives exactly one outcome"))
        .collect()
}

/// The batched propagate half of one generation: every box that will
/// actually be solved through the template (not pruned, covered by the
/// root) gets its per-stage bounds from one
/// [`crate::EncodingTemplate::region_bounds_batch`] sweep; the rest stay
/// `None` (pruned boxes are never solved, uncovered boxes fall back to
/// one-shot encoding inside `solve_box`).
fn batch_region_bounds(
    template: Option<&ProblemTemplate>,
    generation: &[BoxDomain],
    pruned: &[bool],
) -> Vec<Option<RegionBounds>> {
    let mut slots: Vec<Option<RegionBounds>> = (0..generation.len()).map(|_| None).collect();
    let Some(template) = template else {
        return slots;
    };
    let mut indices = Vec::new();
    let mut boxes = Vec::new();
    for (index, current) in generation.iter().enumerate() {
        if !pruned[index] && template.encoding().supports_box(current) {
            indices.push(index);
            boxes.push(current);
        }
    }
    if let Ok(all) = template.encoding().region_bounds_batch(&boxes) {
        for (index, bounds) in indices.into_iter().zip(all) {
            slots[index] = Some(bounds);
        }
    }
    slots
}

/// Splits a box along its widest dimension at the midpoint. The two halves
/// cover the original box exactly (they share the splitting hyperplane).
/// Public because the refinement loop and the obligation server's sub-box
/// decomposition (`dpv-serve`) must bisect identically for their obligations
/// to dedup against each other.
pub fn split_box(region: &BoxDomain) -> (BoxDomain, BoxDomain) {
    let bounds = region.bounds();
    let widest = bounds
        .iter()
        .enumerate()
        .max_by(|(_, a), (_, b)| a.width().partial_cmp(&b.width()).expect("finite widths"))
        .map(|(i, _)| i)
        .unwrap_or(0);
    let interval = bounds[widest];
    let mid = interval.midpoint();
    let mut left = bounds.to_vec();
    let mut right = bounds.to_vec();
    left[widest] = Interval::new(interval.lo, mid);
    right[widest] = Interval::new(mid, interval.hi);
    (
        BoxDomain::from_intervals(left),
        BoxDomain::from_intervals(right),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Characterizer, CharacterizerConfig, InputProperty, RiskCondition};
    use dpv_nn::{Activation, Dense, Layer, Network, NetworkBuilder};
    use dpv_tensor::Matrix;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A hand-crafted problem where the single-box envelope admits spurious
    /// counterexamples in a data-free corner that refinement can prune.
    ///
    /// * tail output = x0 + x1 (after an identity/ReLU head),
    /// * characterizer always fires,
    /// * realizable activations lie on the diagonal x0 = x1 ≤ 0.7 (maximum
    ///   sum 1.4),
    /// * the bounding box `[0, 1] × [0, 0.7]` reaches sums up to 1.7, so the
    ///   risk "sum ≥ 1.5" has box counterexamples but no data-supported ones.
    fn hand_crafted_problem() -> (VerificationProblem, BoxDomain, Vec<Vector>) {
        let perception = Network::new(
            2,
            vec![
                Layer::Dense(Dense::from_parts(Matrix::identity(2), Vector::zeros(2))),
                Layer::Activation(Activation::ReLU),
                Layer::Dense(Dense::from_parts(
                    Matrix::from_rows(&[vec![1.0, 1.0]]).unwrap(),
                    Vector::zeros(1),
                )),
            ],
        )
        .unwrap();
        let ch_net = Network::new(
            2,
            vec![Layer::Dense(Dense::from_parts(
                Matrix::from_rows(&[vec![0.0, 0.0]]).unwrap(),
                Vector::from_slice(&[1.0]),
            ))],
        )
        .unwrap();
        let characterizer = Characterizer::from_network(
            InputProperty::new("always", "always true"),
            1,
            ch_net,
            1.0,
        )
        .unwrap();
        let risk = RiskCondition::new("large sum").output_ge(0, 1.5);
        let problem = VerificationProblem::new(perception, 1, characterizer, risk).unwrap();
        let region =
            BoxDomain::from_intervals(vec![Interval::new(0.0, 1.0), Interval::new(0.0, 0.7)]);
        let references: Vec<Vector> = (0..30)
            .map(|i| {
                let v = 0.7 * i as f64 / 29.0;
                Vector::from_slice(&[v, v])
            })
            .collect();
        (problem, region, references)
    }

    #[test]
    fn single_box_verification_is_unsafe() {
        let (problem, region, references) = hand_crafted_problem();
        // Budget zero: refinement degenerates to one verification call on the
        // whole box, whose corner counterexample is dismissed as spurious and
        // the run ends inconclusive.
        let verifier = RefinementVerifier::new(0, 0.05);
        let (verdict, report) = verifier.verify(&problem, &region, &references).unwrap();
        assert!(
            matches!(verdict, RefinedVerdict::Inconclusive { .. }),
            "expected Inconclusive, got {verdict:?}"
        );
        assert_eq!(report.verification_calls, 1);
        assert_eq!(report.spurious_counterexamples, 1);
    }

    #[test]
    fn refinement_prunes_the_empty_corner_and_proves_safety() {
        let (problem, region, references) = hand_crafted_problem();
        let verifier = RefinementVerifier::new(2000, 0.05);
        let (verdict, report) = verifier.verify(&problem, &region, &references).unwrap();
        assert!(
            verdict.is_safe(),
            "expected refinement to prove safety, got {verdict:?} ({report:?})"
        );
        assert!(report.splits > 0);
        assert!(report.pruned_subregions > 0);
        // The refined envelope must still cover every recorded activation.
        assert!(report.covers(&references, 1e-9));
    }

    #[test]
    fn data_supported_counterexamples_are_reported() {
        let (problem, region, _) = hand_crafted_problem();
        // Reference activations now live inside the risky corner, so the
        // violation is data-supported and must be reported as Unsafe.
        let references: Vec<Vector> = (0..=10)
            .map(|i| Vector::from_slice(&[0.9 + 0.01 * i as f64, 0.7]))
            .collect();
        let verifier = RefinementVerifier::new(2000, 0.35);
        let (verdict, _) = verifier.verify(&problem, &region, &references).unwrap();
        match verdict {
            RefinedVerdict::Unsafe(ce) => assert!(ce.output[0] >= 1.5 - 1e-6),
            other => panic!("expected Unsafe, got {other:?}"),
        }
    }

    #[test]
    fn boxes_without_data_are_pruned_immediately() {
        let (problem, region, _) = hand_crafted_problem();
        // No reference lies inside the region at all → everything is pruned
        // and the (vacuous) verdict is Safe without a single solver call.
        let references = vec![Vector::from_slice(&[5.0, 5.0])];
        let verifier = RefinementVerifier::new(10, 0.05);
        let (verdict, report) = verifier.verify(&problem, &region, &references).unwrap();
        assert!(verdict.is_safe());
        assert_eq!(report.verification_calls, 0);
        assert_eq!(report.pruned_subregions, 1);
    }

    #[test]
    fn refinement_integrates_with_trained_networks() {
        // Smoke test on a trained problem: refinement must terminate and
        // agree with plain verification on an easily-safe property.
        let mut rng = StdRng::seed_from_u64(3);
        let mut perception = NetworkBuilder::new(3)
            .dense(6, &mut rng)
            .activation(Activation::ReLU)
            .dense(1, &mut rng)
            .build();
        let inputs: Vec<Vector> = (0..150)
            .map(|_| Vector::from_vec((0..3).map(|_| rng.gen_range(0.0..1.0)).collect()))
            .collect();
        let targets: Vec<Vector> = inputs.iter().map(|x| Vector::from_slice(&[x[0]])).collect();
        let data = dpv_nn::Dataset::new(inputs.clone(), targets).unwrap();
        dpv_nn::train(
            &mut perception,
            &data,
            &dpv_nn::TrainConfig {
                epochs: 30,
                ..Default::default()
            },
            dpv_nn::LossKind::Mse,
            &mut rng,
        );
        let examples: Vec<(Vector, bool)> =
            inputs.iter().map(|x| (x.clone(), x[0] > 0.5)).collect();
        let characterizer = Characterizer::train(
            InputProperty::new("x0_large", "x0 > 0.5"),
            &perception,
            1,
            &examples,
            &CharacterizerConfig::small(),
            &mut rng,
        )
        .unwrap();
        let activations: Vec<Vector> = inputs
            .iter()
            .map(|x| perception.activation_at(1, x))
            .collect();
        let region = BoxDomain::from_samples(&activations);
        let risk = RiskCondition::new("very negative").output_le(0, -5.0);
        let problem = VerificationProblem::new(perception, 1, characterizer, risk).unwrap();
        let verifier = RefinementVerifier::default();
        let (verdict, report) = verifier.verify(&problem, &region, &activations).unwrap();
        assert!(report.verification_calls >= 1);
        assert!(verdict.is_safe(), "got {verdict:?}");
        assert!(report.covers(&activations, 1e-9));
    }

    #[test]
    fn parallel_dispatch_agrees_with_the_serial_loop() {
        let (problem, region, references) = hand_crafted_problem();
        let serial = RefinementVerifier::new(2000, 0.05);
        let parallel =
            RefinementVerifier::new(2000, 0.05).with_parallelism(ParallelRefinementConfig::new(4));
        assert_eq!(
            parallel.parallelism(),
            Some(&ParallelRefinementConfig::new(4))
        );
        let (serial_verdict, serial_report) =
            serial.verify(&problem, &region, &references).unwrap();
        let (parallel_verdict, parallel_report) =
            parallel.verify(&problem, &region, &references).unwrap();
        assert!(serial_verdict.is_safe());
        assert!(parallel_verdict.is_safe());
        // Both refined envelopes must cover the data; the exact box partition
        // may differ (DFS vs generational order reach the budget differently).
        assert!(serial_report.covers(&references, 1e-9));
        assert!(parallel_report.covers(&references, 1e-9));
        assert!(parallel_report.verification_calls >= 1);
        assert!(parallel_report.solver_stats.nodes_explored > 0);
        assert!(serial_report.solver_stats.nodes_explored > 0);
    }

    #[test]
    fn parallel_dispatch_reports_data_supported_counterexamples() {
        let (problem, region, _) = hand_crafted_problem();
        let references: Vec<Vector> = (0..=10)
            .map(|i| Vector::from_slice(&[0.9 + 0.01 * i as f64, 0.7]))
            .collect();
        let serial = RefinementVerifier::new(2000, 0.35);
        let parallel =
            RefinementVerifier::new(2000, 0.35).with_parallelism(ParallelRefinementConfig::new(4));
        let (serial_verdict, _) = serial.verify(&problem, &region, &references).unwrap();
        let (parallel_verdict, _) = parallel.verify(&problem, &region, &references).unwrap();
        // The data-supported counterexample lives in the root box, which is
        // the sole member of the first work-list in both dispatch modes, so
        // with a deterministic backend the reported counterexamples are
        // identical here — not merely both unsafe. (Deeper in a refinement,
        // DFS and generational BFS may reach sibling violations in different
        // orders; each mode is individually reproducible.)
        assert_eq!(serial_verdict, parallel_verdict);
        match parallel_verdict {
            RefinedVerdict::Unsafe(ce) => assert!(ce.output[0] >= 1.5 - 1e-6),
            other => panic!("expected Unsafe, got {other:?}"),
        }
    }

    #[test]
    fn parallel_runs_are_reproducible() {
        let (problem, region, references) = hand_crafted_problem();
        let verifier =
            RefinementVerifier::new(2000, 0.05).with_parallelism(ParallelRefinementConfig::new(3));
        let (first_verdict, first_report) =
            verifier.verify(&problem, &region, &references).unwrap();
        let (second_verdict, second_report) =
            verifier.verify(&problem, &region, &references).unwrap();
        assert_eq!(first_verdict, second_verdict);
        assert_eq!(first_report, second_report);
    }

    #[test]
    fn single_worker_parallel_config_uses_the_serial_loop() {
        let (problem, region, references) = hand_crafted_problem();
        let serial = RefinementVerifier::new(2000, 0.05);
        let degenerate =
            RefinementVerifier::new(2000, 0.05).with_parallelism(ParallelRefinementConfig::new(1));
        let (a, ra) = serial.verify(&problem, &region, &references).unwrap();
        let (b, rb) = degenerate.verify(&problem, &region, &references).unwrap();
        assert_eq!(a, b);
        assert_eq!(ra, rb);
    }

    #[test]
    fn serial_loop_accumulates_solver_stats() {
        let (problem, region, references) = hand_crafted_problem();
        let verifier = RefinementVerifier::new(2000, 0.05);
        let (_, report) = verifier.verify(&problem, &region, &references).unwrap();
        assert!(report.solver_stats.nodes_explored >= report.verification_calls);
    }

    #[test]
    fn split_box_partitions_the_region() {
        let region =
            BoxDomain::from_intervals(vec![Interval::new(0.0, 4.0), Interval::new(0.0, 1.0)]);
        let (left, right) = split_box(&region);
        assert_eq!(left.bounds()[0], Interval::new(0.0, 2.0));
        assert_eq!(right.bounds()[0], Interval::new(2.0, 4.0));
        assert_eq!(left.bounds()[1], Interval::new(0.0, 1.0));
    }
}

//! The verification strategies of the paper: layer abstraction (Lemma 1),
//! abstract interpretation from the input domain (Lemma 2) and the
//! assume-guarantee envelope with runtime monitoring.

use std::time::Instant;

use dpv_absint::{AbstractDomain, BoxDomain, Zonotope};
use dpv_lp::{
    default_backend, BasisSnapshot, CancelToken, MilpSolution, MilpStatus, SolverBackend,
};
use dpv_monitor::ActivationEnvelope;
use dpv_nn::Network;
use dpv_tensor::Vector;
use dpv_trace::{TraceEvent, TraceHandle};

use crate::{
    encode_verification, Characterizer, CoreError, EncodedProblem, EncodingTemplate, Fingerprint,
    RegionBounds, RiskCondition, StartRegion,
};

/// Which abstract domain computes the Lemma-2 set from the input domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DomainKind {
    /// Interval (box) propagation.
    Box,
    /// Zonotope propagation (tighter on affine structure).
    Zonotope,
}

/// Configuration of the assume-guarantee strategy.
#[derive(Debug, Clone, PartialEq)]
pub struct AssumeGuarantee {
    /// The envelope `S̃` built from training-data activations.
    pub envelope: ActivationEnvelope,
    /// Whether to use the adjacent-difference constraints of the envelope
    /// (`true`) or only its box part (`false`) — the ablation of
    /// experiment E4.
    pub use_difference_constraints: bool,
}

/// How the start region `S` at the cut layer is chosen.
#[derive(Debug, Clone, PartialEq)]
pub enum VerificationStrategy {
    /// Lemma 1: all of `R^{d_l}`, approximated by the symmetric box
    /// `[-bound, bound]^{d_l}` (the MILP encoding needs finite big-M
    /// constants; `bound` should dominate any reachable activation).
    LayerAbstraction {
        /// Half-width of the surrogate box for `R^{d_l}`.
        bound: f64,
    },
    /// Lemma 2: propagate the network's input domain (the `[0, 1]` pixel
    /// box) through the head with a sound abstract domain.
    AbstractInterpretation {
        /// The abstract domain used for the propagation.
        domain: DomainKind,
    },
    /// Assume-guarantee: the training-data envelope, to be monitored at
    /// run time.
    AssumeGuarantee(AssumeGuarantee),
}

impl VerificationStrategy {
    /// Short label used in reports and benchmark ids.
    pub fn label(&self) -> String {
        match self {
            VerificationStrategy::LayerAbstraction { bound } => {
                format!("lemma1-box(±{bound})")
            }
            VerificationStrategy::AbstractInterpretation { domain } => match domain {
                DomainKind::Box => "lemma2-interval".to_string(),
                DomainKind::Zonotope => "lemma2-zonotope".to_string(),
            },
            VerificationStrategy::AssumeGuarantee(cfg) => {
                if cfg.use_difference_constraints {
                    "assume-guarantee(box+diff)".to_string()
                } else {
                    "assume-guarantee(box)".to_string()
                }
            }
        }
    }

    /// Returns `true` when a `Safe` verdict under this strategy is
    /// unconditional (Lemmas 1 and 2) rather than conditional on the runtime
    /// monitor (assume-guarantee).
    pub fn is_unconditional(&self) -> bool {
        !matches!(self, VerificationStrategy::AssumeGuarantee(_))
    }
}

/// A counterexample at the cut layer: an activation inside the start region
/// whose tail image satisfies the risk condition while the characterizer
/// fires.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterExample {
    /// The offending cut-layer activation `n̂_l`.
    pub activation: Vector,
    /// The network output it produces.
    pub output: Vector,
    /// The characterizer logit at the activation (non-negative by
    /// construction), when a characterizer was part of the problem.
    pub logit: Option<f64>,
}

/// Verdict of a verification run.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// No activation in the start region triggers the risk condition. For
    /// the assume-guarantee strategy this is *conditional* on the runtime
    /// monitor.
    Safe,
    /// A counterexample exists within the start region.
    Unsafe(CounterExample),
    /// The solver gave up (node limit) — neither safety nor a counterexample
    /// was established.
    Unknown(String),
}

impl Verdict {
    /// Returns `true` for [`Verdict::Safe`].
    pub fn is_safe(&self) -> bool {
        matches!(self, Verdict::Safe)
    }

    /// Returns `true` for [`Verdict::Unsafe`].
    pub fn is_unsafe(&self) -> bool {
        matches!(self, Verdict::Unsafe(_))
    }
}

/// The result of one verification run, with enough metadata to reproduce the
/// paper's qualitative comparisons.
#[derive(Debug, Clone, PartialEq)]
pub struct VerificationOutcome {
    /// The verdict.
    pub verdict: Verdict,
    /// Label of the strategy that produced it.
    pub strategy: String,
    /// Name of the solver backend that produced it.
    pub backend: String,
    /// Whether a `Safe` verdict is conditional on runtime monitoring.
    pub conditional: bool,
    /// Number of binary variables in the MILP.
    pub num_binaries: usize,
    /// Number of ReLU phases fixed by the start-region bounds.
    pub stable_relus: usize,
    /// Branch-and-bound nodes explored.
    pub nodes_explored: usize,
    /// Wall-clock solve time in seconds (encoding + MILP).
    pub solve_seconds: f64,
}

impl VerificationOutcome {
    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        let verdict = match &self.verdict {
            Verdict::Safe => {
                if self.conditional {
                    "SAFE (conditional on runtime monitor)".to_string()
                } else {
                    "SAFE".to_string()
                }
            }
            Verdict::Unsafe(_) => "UNSAFE (counterexample found)".to_string(),
            Verdict::Unknown(reason) => format!("UNKNOWN ({reason})"),
        };
        format!(
            "{verdict} | strategy {} | backend {} | {} binaries ({} stable) | {} nodes | {:.3}s",
            self.strategy,
            self.backend,
            self.num_binaries,
            self.stable_relus,
            self.nodes_explored,
            self.solve_seconds
        )
    }
}

/// A [`VerificationProblem`]'s reusable encoding state: the MILP skeleton
/// template plus the concretely-executable tail network (for counterexample
/// validation), both derived once per (problem, root region) pair so a
/// refinement sweep neither re-encodes the skeleton nor re-splits the
/// network per sub-box. Build with
/// [`VerificationProblem::encoding_template`].
#[derive(Debug, Clone)]
pub struct ProblemTemplate {
    encoding: EncodingTemplate,
    tail: Network,
}

impl ProblemTemplate {
    /// The underlying MILP skeleton template.
    pub fn encoding(&self) -> &EncodingTemplate {
        &self.encoding
    }

    /// Content-addressed identity of the underlying encoding template — the
    /// key under which this template is shared in a
    /// [`crate::cache::TemplateCache`] and under which its warm bases pool
    /// in a [`crate::cache::SnapshotPool`].
    pub fn fingerprint(&self) -> Fingerprint {
        self.encoding.fingerprint()
    }
}

/// Per-solve options for [`VerificationProblem::solve_with_template`] — the
/// single template solve entry point that replaced the
/// `solve_with_template_{seeded, cancellable, traced, escalated,
/// escalated_traced}` fan of variants.
///
/// Every lever is optional and independently composable (the delta
/// re-verification path needs seed + cancellation + tracing simultaneously,
/// which no fixed variant offered):
///
/// * [`bounds`](Self::bounds) — precomputed region bounds (one lane of a
///   batched [`crate::EncodingTemplate::region_bounds_batch`] sweep) that
///   skip the propagate half of instantiation.
/// * [`scratch`](Self::scratch) — a caller-owned instantiation slot the
///   skeleton is re-tightened into instead of re-encoded; omit it to pay a
///   fresh instantiation per call.
/// * [`seed`](Self::seed) — a caller-owned warm-start basis, primed before
///   the solve and refreshed with the final basis afterwards (the seam the
///   obligation server's snapshot pool plugs into). Ignored by escalated
///   solves, which run cold by design.
/// * [`cancel`](Self::cancel) — a cooperative [`CancelToken`] polled inside
///   the solver loops; a tripped token can only withhold a verdict
///   ([`Verdict::Unknown`]), never fabricate one.
/// * [`tracer`](Self::tracer) — a [`TraceHandle`] recording the
///   instantiation span and per-node telemetry; strictly observational.
/// * [`escalation`](Self::escalation) — a budget scale for the escalated
///   retry path: both search budgets are raised by the scale for this solve
///   only, the solve runs **cold** (no seed), and the template's stock
///   limits are restored afterwards.
/// * [`backend`](Self::backend) — the solver backend; defaults to
///   [`default_backend`].
#[derive(Default)]
pub struct SolveOptions<'a> {
    bounds: Option<&'a RegionBounds>,
    scratch: Option<&'a mut Option<EncodedProblem>>,
    seed: Option<&'a mut Option<BasisSnapshot>>,
    cancel: Option<&'a CancelToken>,
    tracer: Option<&'a TraceHandle>,
    escalation: Option<usize>,
    backend: Option<&'a dyn SolverBackend>,
}

impl<'a> SolveOptions<'a> {
    /// Options with every lever at its default: fresh instantiation, cold
    /// solve, no cancellation, tracing off, stock budgets, default backend.
    pub fn new() -> Self {
        Self::default()
    }

    /// Applies precomputed region bounds instead of re-propagating them.
    /// Accepts `&RegionBounds` or `Option<&RegionBounds>` (`None` keeps
    /// the default).
    pub fn bounds(mut self, bounds: impl Into<Option<&'a RegionBounds>>) -> Self {
        self.bounds = bounds.into();
        self
    }

    /// Re-tightens the skeleton into `scratch` (allocated on first use,
    /// reused afterwards) instead of instantiating a fresh problem.
    pub fn scratch(mut self, scratch: &'a mut Option<EncodedProblem>) -> Self {
        self.scratch = Some(scratch);
        self
    }

    /// Warm-starts from (and hands the final basis back to) `seed`.
    pub fn seed(mut self, seed: &'a mut Option<BasisSnapshot>) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Polls `cancel` inside the solver loops. Accepts `&CancelToken` or
    /// `Option<&CancelToken>` (`None` keeps the default).
    pub fn cancel(mut self, cancel: impl Into<Option<&'a CancelToken>>) -> Self {
        self.cancel = cancel.into();
        self
    }

    /// Records the instantiation span and per-node telemetry on `tracer`.
    pub fn tracer(mut self, tracer: &'a TraceHandle) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// Escalates the solve: raises both search budgets by `scale` for this
    /// solve only and runs cold (any [`seed`](Self::seed) is ignored —
    /// numerical trouble inherited through a basis is the suspected cause
    /// of the outcome being retried).
    pub fn escalation(mut self, scale: usize) -> Self {
        self.escalation = Some(scale);
        self
    }

    /// Solves through `backend` instead of [`default_backend`].
    pub fn backend(mut self, backend: &'a dyn SolverBackend) -> Self {
        self.backend = Some(backend);
        self
    }
}

/// Raises both branch-and-bound search budgets of `milp` by `scale` for an
/// escalated retry: the node limit multiplicatively, and the simplex pivot
/// budget from its current value (or the size-derived estimate when none is
/// set) multiplicatively. Saturating, so absurd scales clamp instead of
/// wrapping.
fn raise_budgets(milp: &mut dpv_lp::MilpProblem, scale: usize) {
    milp.set_node_limit(milp.node_limit().saturating_mul(scale.max(1)));
    let base = milp
        .lp()
        .iteration_limit()
        .unwrap_or_else(|| milp.lp().estimated_iteration_budget());
    milp.lp_mut()
        .set_iteration_limit(Some(base.saturating_mul(scale.max(1))));
}

/// A complete verification problem: the perception network, the cut layer,
/// the characterizer for φ, and the risk condition ψ.
#[derive(Debug, Clone, PartialEq)]
pub struct VerificationProblem {
    perception: Network,
    cut_layer: usize,
    characterizer: Characterizer,
    risk: RiskCondition,
}

impl VerificationProblem {
    /// Assembles a verification problem.
    ///
    /// # Errors
    /// Returns [`CoreError::Inconsistent`] when the cut layer is out of
    /// range, the characterizer is attached to a different layer, or its
    /// feature dimension does not match the cut-layer width.
    pub fn new(
        perception: Network,
        cut_layer: usize,
        characterizer: Characterizer,
        risk: RiskCondition,
    ) -> Result<Self, CoreError> {
        if cut_layer >= perception.len() {
            return Err(CoreError::Inconsistent(format!(
                "cut layer {cut_layer} out of range for a {}-layer network",
                perception.len()
            )));
        }
        if characterizer.cut_layer() != cut_layer {
            return Err(CoreError::Inconsistent(format!(
                "characterizer is attached at layer {} but the problem cuts at {cut_layer}",
                characterizer.cut_layer()
            )));
        }
        let dim = perception.layer_output_dim(cut_layer);
        if characterizer.feature_dim() != dim {
            return Err(CoreError::Inconsistent(format!(
                "characterizer expects {} features, cut layer has {dim}",
                characterizer.feature_dim()
            )));
        }
        Ok(Self {
            perception,
            cut_layer,
            characterizer,
            risk,
        })
    }

    /// The perception network.
    pub fn perception(&self) -> &Network {
        &self.perception
    }

    /// The cut layer (zero-based).
    pub fn cut_layer(&self) -> usize {
        self.cut_layer
    }

    /// The characterizer for φ.
    pub fn characterizer(&self) -> &Characterizer {
        &self.characterizer
    }

    /// The risk condition ψ.
    pub fn risk(&self) -> &RiskCondition {
        &self.risk
    }

    /// Computes the start region for a strategy.
    ///
    /// # Errors
    /// Returns [`CoreError::Inconsistent`] when an envelope's layer or
    /// dimension does not match the problem.
    pub fn start_region(&self, strategy: &VerificationStrategy) -> Result<StartRegion, CoreError> {
        let dim = self.perception.layer_output_dim(self.cut_layer);
        match strategy {
            VerificationStrategy::LayerAbstraction { bound } => Ok(StartRegion::Box(
                BoxDomain::uniform(dim, -bound.abs(), bound.abs()),
            )),
            VerificationStrategy::AbstractInterpretation { domain } => {
                let (head, _) = self
                    .perception
                    .split_at(self.cut_layer)
                    .map_err(|e| CoreError::Inconsistent(e.to_string()))?;
                let input_dim = self.perception.input_dim();
                let start = match domain {
                    DomainKind::Box => BoxDomain::uniform(input_dim, 0.0, 1.0)
                        .propagate(head.layers())
                        .to_box(),
                    DomainKind::Zonotope => {
                        Zonotope::from_intervals(BoxDomain::uniform(input_dim, 0.0, 1.0).to_box())
                            .propagate(head.layers())
                            .to_box()
                    }
                };
                Ok(StartRegion::Box(BoxDomain::from_intervals(start)))
            }
            VerificationStrategy::AssumeGuarantee(cfg) => {
                if cfg.envelope.layer() != self.cut_layer {
                    return Err(CoreError::Inconsistent(format!(
                        "envelope was built at layer {} but the problem cuts at {}",
                        cfg.envelope.layer(),
                        self.cut_layer
                    )));
                }
                if cfg.envelope.dim() != dim {
                    return Err(CoreError::Inconsistent(format!(
                        "envelope dimension {} does not match cut-layer width {dim}",
                        cfg.envelope.dim()
                    )));
                }
                if cfg.use_difference_constraints {
                    Ok(StartRegion::Octagon(cfg.envelope.octagon().clone()))
                } else {
                    Ok(StartRegion::Box(cfg.envelope.box_only()))
                }
            }
        }
    }

    /// Translates a MILP solve into a [`Verdict`], re-running the tail
    /// concretely for counterexamples so they are self-contained and
    /// numerically honest. Shared by the one-shot and template solve paths.
    fn interpret_solution(
        &self,
        encoded: &EncodedProblem,
        solution: &MilpSolution,
        tail: &Network,
        backend: &dyn SolverBackend,
    ) -> Verdict {
        match solution.status {
            MilpStatus::Infeasible => Verdict::Safe,
            MilpStatus::Optimal => {
                let activation: Vector = encoded
                    .cut_vars
                    .iter()
                    .map(|&v| solution.values[v])
                    .collect();
                let output = tail.forward(&activation);
                let logit = Some(self.characterizer.logit(&activation));
                Verdict::Unsafe(CounterExample {
                    activation,
                    output,
                    logit,
                })
            }
            MilpStatus::NodeLimit => Verdict::Unknown(format!("{} node limit", backend.name())),
            MilpStatus::IterationLimit => Verdict::Unknown(format!(
                "{} simplex iteration limit (numerical trouble)",
                backend.name()
            )),
            MilpStatus::Unbounded => {
                Verdict::Unknown("relaxation unbounded (missing bounds)".to_string())
            }
            // Callers that thread a deadline (the obligation server) key off
            // `solution.status == Cancelled` for their machine-readable
            // failure code; this string is the human-facing rendition.
            MilpStatus::Cancelled => Verdict::Unknown(format!(
                "{} cancelled (deadline or explicit cancellation)",
                backend.name()
            )),
        }
    }

    /// Encodes the problem over `region` and hands the MILP to `backend`,
    /// translating the solver status into a [`Verdict`]. This is the single
    /// solve entry point every strategy (Lemma 1, Lemma 2, assume-guarantee)
    /// and the refinement loop go through.
    pub(crate) fn run_solver(
        &self,
        region: &StartRegion,
        backend: &dyn SolverBackend,
    ) -> Result<(Verdict, EncodedProblem, MilpSolution), CoreError> {
        self.run_solver_cancellable(region, backend, None)
    }

    /// [`VerificationProblem::run_solver`] polling a [`CancelToken`]: a
    /// tripped token surfaces as [`MilpStatus::Cancelled`] →
    /// [`Verdict::Unknown`], never as a wrong verdict.
    pub(crate) fn run_solver_cancellable(
        &self,
        region: &StartRegion,
        backend: &dyn SolverBackend,
        cancel: Option<&CancelToken>,
    ) -> Result<(Verdict, EncodedProblem, MilpSolution), CoreError> {
        let (_, tail) = self
            .perception
            .split_at(self.cut_layer)
            .map_err(|e| CoreError::Inconsistent(e.to_string()))?;
        let encoded = encode_verification(
            tail.layers(),
            Some(self.characterizer.network()),
            &self.risk,
            region,
        )?;
        let solution = backend.solve_cancellable(&encoded.milp, &mut None, cancel);
        let verdict = self.interpret_solution(&encoded, &solution, &tail, backend);
        Ok((verdict, encoded, solution))
    }

    /// Builds a reusable [`ProblemTemplate`] whose MILP skeleton is encoded
    /// once from `root`; [`VerificationProblem::run_solver_with_template`]
    /// and [`VerificationProblem::verify_with_template`] then instantiate it
    /// per sub-region with bound-only edits. Regions not covered by `root`
    /// transparently fall back to one-shot encoding.
    ///
    /// # Errors
    /// Same conditions as [`encode_verification`].
    pub fn encoding_template(&self, root: &StartRegion) -> Result<ProblemTemplate, CoreError> {
        let (_, tail) = self
            .perception
            .split_at(self.cut_layer)
            .map_err(|e| CoreError::Inconsistent(e.to_string()))?;
        let encoding = EncodingTemplate::build(
            tail.layers(),
            Some(self.characterizer.network()),
            &self.risk,
            root,
        )?;
        Ok(ProblemTemplate { encoding, tail })
    }

    /// The canonical [`Fingerprint`] the template built by
    /// [`VerificationProblem::encoding_template`] over `root` *would* carry —
    /// computed without encoding anything, so cache lookups
    /// ([`crate::cache::TemplateCache::get_or_build`]) can probe before
    /// paying for a build.
    ///
    /// # Errors
    /// Returns [`CoreError::Inconsistent`] when the cut layer cannot split
    /// the network.
    pub fn template_fingerprint(&self, root: &StartRegion) -> Result<Fingerprint, CoreError> {
        let (_, tail) = self
            .perception
            .split_at(self.cut_layer)
            .map_err(|e| CoreError::Inconsistent(e.to_string()))?;
        Ok(Fingerprint::of_template(
            tail.layers(),
            Some(self.characterizer.network()),
            &self.risk,
            root,
        ))
    }

    /// Solves the template's **root** obligation directly on the cached
    /// skeleton — instantiating a template at its own root is a semantic
    /// no-op, so this skips the clone-and-retighten entirely. Returns the
    /// verdict, the solution and the skeleton's binary/stable counts.
    pub(crate) fn run_solver_on_template_root(
        &self,
        template: &ProblemTemplate,
        backend: &dyn SolverBackend,
    ) -> (Verdict, MilpSolution, usize, usize) {
        let encoded = template.encoding.root_problem();
        let solution = backend.solve(&encoded.milp);
        let verdict = self.interpret_solution(encoded, &solution, &template.tail, backend);
        (
            verdict,
            solution,
            encoded.num_binaries,
            encoded.stable_relus,
        )
    }

    /// [`VerificationProblem::run_solver`] through a [`ProblemTemplate`]:
    /// the skeleton is re-tightened into `scratch` (allocated on first use,
    /// reused afterwards) instead of re-encoding the whole MILP. Falls back
    /// to one-shot encoding when the template does not support `region`.
    ///
    /// When `bounds` is given (one lane of a batched
    /// [`crate::EncodingTemplate::region_bounds_batch`] propagation), the
    /// propagate half is skipped and the precomputed bounds are applied
    /// directly — the instantiated problem is identical either way.
    pub(crate) fn run_solver_with_template(
        &self,
        template: &ProblemTemplate,
        region: &StartRegion,
        bounds: Option<&RegionBounds>,
        scratch: &mut Option<EncodedProblem>,
        backend: &dyn SolverBackend,
    ) -> Result<(Verdict, MilpSolution), CoreError> {
        self.solve_template_impl(
            template,
            region,
            bounds,
            scratch,
            &mut None,
            backend,
            None,
            &TraceHandle::disabled(),
        )
    }

    /// Solves one obligation (`region` under `template`) with every reuse
    /// and control lever selected through [`SolveOptions`]: the skeleton is
    /// re-tightened into the options' scratch slot instead of re-encoded,
    /// precomputed bounds (one lane of a batched
    /// [`crate::EncodingTemplate::region_bounds_batch`] sweep) skip the
    /// propagate half, a seed primes the backend's warm-start state
    /// ([`SolverBackend::solve_seeded`]) and receives the final basis back —
    /// the cross-request seam the obligation server's snapshot pool plugs
    /// into — a [`CancelToken`] is polled inside the solver loops, a
    /// [`TraceHandle`] records the instantiation span and per-node
    /// telemetry, and an escalation scale turns the call into the cold
    /// budget-raised retry. Falls back to one-shot encoding (seed untouched)
    /// when the template does not support `region`.
    ///
    /// Reuse never changes verdicts, only cost: a stale or foreign seed is
    /// rejected inside the LP layer and the node solves cold. Cancellation
    /// surfaces as [`MilpStatus::Cancelled`] → [`Verdict::Unknown`] — it can
    /// only withhold a verdict, never fabricate one. Tracing is
    /// observational only. An escalated solve raises its budgets for this
    /// call alone and restores the template's stock limits afterwards, so
    /// sibling obligations reusing the scratch see unchanged budgets.
    ///
    /// # Errors
    /// Propagates encoding errors; template-scoped inputs (bounds or scratch
    /// from a different template) yield [`CoreError::Inconsistent`].
    pub fn solve_with_template(
        &self,
        template: &ProblemTemplate,
        region: &StartRegion,
        options: &mut SolveOptions<'_>,
    ) -> Result<(Verdict, MilpSolution), CoreError> {
        let default_be;
        let backend: &dyn SolverBackend = match options.backend {
            Some(backend) => backend,
            None => {
                default_be = default_backend();
                &default_be
            }
        };
        let disabled = TraceHandle::disabled();
        let trace = options.tracer.unwrap_or(&disabled);
        let cancel = options.cancel;
        let mut local_scratch = None;
        let scratch = match options.scratch.as_deref_mut() {
            Some(scratch) => scratch,
            None => &mut local_scratch,
        };
        match options.escalation {
            Some(scale) => self.solve_template_escalated_impl(
                template,
                region,
                options.bounds,
                scratch,
                scale,
                backend,
                cancel,
                trace,
            ),
            None => {
                let mut local_seed = None;
                let seed = match options.seed.as_deref_mut() {
                    Some(seed) => seed,
                    None => &mut local_seed,
                };
                self.solve_template_impl(
                    template,
                    region,
                    options.bounds,
                    scratch,
                    seed,
                    backend,
                    cancel,
                    trace,
                )
            }
        }
    }

    /// [`VerificationProblem::solve_with_template`] with the seed lever
    /// only.
    #[deprecated(
        since = "0.2.0",
        note = "use `solve_with_template` with `SolveOptions::new().seed(..)`"
    )]
    pub fn solve_with_template_seeded(
        &self,
        template: &ProblemTemplate,
        region: &StartRegion,
        bounds: Option<&RegionBounds>,
        scratch: &mut Option<EncodedProblem>,
        seed: &mut Option<BasisSnapshot>,
        backend: &dyn SolverBackend,
    ) -> Result<(Verdict, MilpSolution), CoreError> {
        self.solve_template_impl(
            template,
            region,
            bounds,
            scratch,
            seed,
            backend,
            None,
            &TraceHandle::disabled(),
        )
    }

    /// [`VerificationProblem::solve_with_template`] with the seed and
    /// cancellation levers.
    #[deprecated(
        since = "0.2.0",
        note = "use `solve_with_template` with `SolveOptions::new().seed(..).cancel(..)`"
    )]
    #[allow(clippy::too_many_arguments)]
    pub fn solve_with_template_cancellable(
        &self,
        template: &ProblemTemplate,
        region: &StartRegion,
        bounds: Option<&RegionBounds>,
        scratch: &mut Option<EncodedProblem>,
        seed: &mut Option<BasisSnapshot>,
        backend: &dyn SolverBackend,
        cancel: Option<&CancelToken>,
    ) -> Result<(Verdict, MilpSolution), CoreError> {
        self.solve_template_impl(
            template,
            region,
            bounds,
            scratch,
            seed,
            backend,
            cancel,
            &TraceHandle::disabled(),
        )
    }

    /// [`VerificationProblem::solve_with_template`] with the seed,
    /// cancellation and tracing levers.
    #[deprecated(
        since = "0.2.0",
        note = "use `solve_with_template` with `SolveOptions::new().seed(..).cancel(..).tracer(..)`"
    )]
    #[allow(clippy::too_many_arguments)]
    pub fn solve_with_template_traced(
        &self,
        template: &ProblemTemplate,
        region: &StartRegion,
        bounds: Option<&RegionBounds>,
        scratch: &mut Option<EncodedProblem>,
        seed: &mut Option<BasisSnapshot>,
        backend: &dyn SolverBackend,
        cancel: Option<&CancelToken>,
        trace: &TraceHandle,
    ) -> Result<(Verdict, MilpSolution), CoreError> {
        self.solve_template_impl(
            template, region, bounds, scratch, seed, backend, cancel, trace,
        )
    }

    /// The template solve body: instantiate (or fall back to one-shot
    /// encoding), solve seeded/cancellable/traced, interpret. Reached
    /// exclusively through [`VerificationProblem::solve_with_template`] and
    /// the deprecated fixed-shape shims.
    #[allow(clippy::too_many_arguments)]
    fn solve_template_impl(
        &self,
        template: &ProblemTemplate,
        region: &StartRegion,
        bounds: Option<&RegionBounds>,
        scratch: &mut Option<EncodedProblem>,
        seed: &mut Option<BasisSnapshot>,
        backend: &dyn SolverBackend,
        cancel: Option<&CancelToken>,
        trace: &TraceHandle,
    ) -> Result<(Verdict, MilpSolution), CoreError> {
        if !template.encoding.supports(region) {
            let (verdict, _, solution) = self.run_solver_cancellable(region, backend, cancel)?;
            return Ok((verdict, solution));
        }
        let instantiate_started = trace.now_ns();
        match (scratch.as_mut(), bounds) {
            (Some(existing), Some(bounds)) => template
                .encoding
                .instantiate_into_with(region, bounds, existing)?,
            (Some(existing), None) => template.encoding.instantiate_into(region, existing)?,
            (None, Some(bounds)) => {
                *scratch = Some(template.encoding.instantiate_with(region, bounds)?)
            }
            (None, None) => *scratch = Some(template.encoding.instantiate(region)?),
        }
        if trace.is_enabled() {
            trace.event(TraceEvent::span(
                dpv_trace::EventKind::Instantiate,
                instantiate_started,
                trace.now_ns().saturating_sub(instantiate_started),
                u64::from(bounds.is_some()),
            ));
        }
        let encoded = scratch.as_ref().expect("scratch populated above");
        let solution = backend.solve_traced(&encoded.milp, seed, cancel, trace);
        let verdict = self.interpret_solution(encoded, &solution, &template.tail, backend);
        Ok((verdict, solution))
    }

    /// [`VerificationProblem::solve_with_template`] with the escalation
    /// lever only.
    #[deprecated(
        since = "0.2.0",
        note = "use `solve_with_template` with `SolveOptions::new().escalation(..)`"
    )]
    #[allow(clippy::too_many_arguments)]
    pub fn solve_with_template_escalated(
        &self,
        template: &ProblemTemplate,
        region: &StartRegion,
        bounds: Option<&RegionBounds>,
        scratch: &mut Option<EncodedProblem>,
        budget_scale: usize,
        backend: &dyn SolverBackend,
        cancel: Option<&CancelToken>,
    ) -> Result<(Verdict, MilpSolution), CoreError> {
        self.solve_template_escalated_impl(
            template,
            region,
            bounds,
            scratch,
            budget_scale,
            backend,
            cancel,
            &TraceHandle::disabled(),
        )
    }

    /// [`VerificationProblem::solve_with_template`] with the escalation,
    /// cancellation and tracing levers.
    #[deprecated(
        since = "0.2.0",
        note = "use `solve_with_template` with `SolveOptions::new().escalation(..).tracer(..)`"
    )]
    #[allow(clippy::too_many_arguments)]
    pub fn solve_with_template_escalated_traced(
        &self,
        template: &ProblemTemplate,
        region: &StartRegion,
        bounds: Option<&RegionBounds>,
        scratch: &mut Option<EncodedProblem>,
        budget_scale: usize,
        backend: &dyn SolverBackend,
        cancel: Option<&CancelToken>,
        trace: &TraceHandle,
    ) -> Result<(Verdict, MilpSolution), CoreError> {
        self.solve_template_escalated_impl(
            template,
            region,
            bounds,
            scratch,
            budget_scale,
            backend,
            cancel,
            trace,
        )
    }

    /// The escalated retry for `IterationLimit`/`NodeLimit` outcomes: solves
    /// the obligation again **cold** (no warm-basis seed — numerical trouble
    /// inherited through a basis is the suspected cause) with both search
    /// budgets raised by `budget_scale` (node limit, and the simplex pivot
    /// budget via [`dpv_lp::LinearProgram::estimated_iteration_budget`]).
    /// The raised limits are applied to the instantiated scratch problem for
    /// this solve only and restored afterwards, so later obligations reusing
    /// `scratch` see the stock budgets — retries cannot leak budget into
    /// sibling obligations and break report determinism.
    ///
    /// Because the solve runs against the same template instantiation as the
    /// canonical (unseeded) path, a successful retry returns the bit-identical
    /// verdict that a fault-free solve of the obligation would have produced.
    #[allow(clippy::too_many_arguments)]
    fn solve_template_escalated_impl(
        &self,
        template: &ProblemTemplate,
        region: &StartRegion,
        bounds: Option<&RegionBounds>,
        scratch: &mut Option<EncodedProblem>,
        budget_scale: usize,
        backend: &dyn SolverBackend,
        cancel: Option<&CancelToken>,
        trace: &TraceHandle,
    ) -> Result<(Verdict, MilpSolution), CoreError> {
        if !template.encoding.supports(region) {
            let (_, tail) = self
                .perception
                .split_at(self.cut_layer)
                .map_err(|e| CoreError::Inconsistent(e.to_string()))?;
            let mut encoded = encode_verification(
                tail.layers(),
                Some(self.characterizer.network()),
                &self.risk,
                region,
            )?;
            raise_budgets(&mut encoded.milp, budget_scale);
            let solution = backend.solve_cancellable(&encoded.milp, &mut None, cancel);
            let verdict = self.interpret_solution(&encoded, &solution, &tail, backend);
            return Ok((verdict, solution));
        }
        match (scratch.as_mut(), bounds) {
            (Some(existing), Some(bounds)) => template
                .encoding
                .instantiate_into_with(region, bounds, existing)?,
            (Some(existing), None) => template.encoding.instantiate_into(region, existing)?,
            (None, Some(bounds)) => {
                *scratch = Some(template.encoding.instantiate_with(region, bounds)?)
            }
            (None, None) => *scratch = Some(template.encoding.instantiate(region)?),
        }
        let encoded = scratch.as_mut().expect("scratch populated above");
        let saved_nodes = encoded.milp.node_limit();
        let saved_pivots = encoded.milp.lp().iteration_limit();
        raise_budgets(&mut encoded.milp, budget_scale);
        let solution = backend.solve_traced(&encoded.milp, &mut None, cancel, trace);
        encoded.milp.set_node_limit(saved_nodes);
        encoded.milp.lp_mut().set_iteration_limit(saved_pivots);
        let verdict = self.interpret_solution(encoded, &solution, &template.tail, backend);
        Ok((verdict, solution))
    }

    /// Runs the verification under the given strategy with the default
    /// solver backend.
    ///
    /// # Errors
    /// Propagates encoding errors ([`CoreError::NotPiecewiseLinear`],
    /// [`CoreError::Inconsistent`]).
    pub fn verify(
        &self,
        strategy: &VerificationStrategy,
    ) -> Result<VerificationOutcome, CoreError> {
        self.verify_with(strategy, &default_backend())
    }

    /// Runs the verification under the given strategy, solving through
    /// `backend`.
    ///
    /// # Errors
    /// Propagates encoding errors ([`CoreError::NotPiecewiseLinear`],
    /// [`CoreError::Inconsistent`]).
    pub fn verify_with(
        &self,
        strategy: &VerificationStrategy,
        backend: &dyn SolverBackend,
    ) -> Result<VerificationOutcome, CoreError> {
        let start_time = Instant::now();
        let region = self.start_region(strategy)?;
        let (verdict, encoded, solution) = self.run_solver(&region, backend)?;
        let solve_seconds = start_time.elapsed().as_secs_f64();

        Ok(VerificationOutcome {
            verdict,
            strategy: strategy.label(),
            backend: backend.name().to_string(),
            conditional: !strategy.is_unconditional(),
            num_binaries: encoded.num_binaries,
            stable_relus: encoded.stable_relus,
            nodes_explored: solution.stats.nodes_explored,
            solve_seconds,
        })
    }

    /// Runs the verification under the given strategy through a
    /// [`ProblemTemplate`]: the cached skeleton is instantiated for the
    /// strategy's start region instead of re-encoding the MILP from scratch.
    /// Strategies whose region escapes the template's root (or differs in
    /// kind, e.g. octagon vs. box) transparently fall back to
    /// [`VerificationProblem::verify_with`] — template use never changes
    /// verdicts, only encoding cost.
    ///
    /// # Errors
    /// Propagates encoding errors ([`CoreError::NotPiecewiseLinear`],
    /// [`CoreError::Inconsistent`]).
    pub fn verify_with_template(
        &self,
        strategy: &VerificationStrategy,
        template: &ProblemTemplate,
        backend: &dyn SolverBackend,
    ) -> Result<VerificationOutcome, CoreError> {
        let start_time = Instant::now();
        let region = self.start_region(strategy)?;
        if !template.encoding.supports(&region) {
            return self.verify_with(strategy, backend);
        }
        let mut scratch = None;
        let (verdict, solution) =
            self.run_solver_with_template(template, &region, None, &mut scratch, backend)?;
        let encoded = scratch.expect("supported regions populate the scratch");
        let solve_seconds = start_time.elapsed().as_secs_f64();
        Ok(VerificationOutcome {
            verdict,
            strategy: strategy.label(),
            backend: backend.name().to_string(),
            conditional: !strategy.is_unconditional(),
            num_binaries: encoded.num_binaries,
            stable_relus: encoded.stable_relus,
            nodes_explored: solution.stats.nodes_explored,
            solve_seconds,
        })
    }

    /// Validates a counterexample by executing the tail network concretely:
    /// the activation must lie in the strategy's start region, its output
    /// must satisfy ψ, and the characterizer must fire.
    ///
    /// # Errors
    /// Propagates region-construction errors.
    pub fn confirm_counterexample(
        &self,
        strategy: &VerificationStrategy,
        counterexample: &CounterExample,
        tol: f64,
    ) -> Result<bool, CoreError> {
        let region = self.start_region(strategy)?;
        let (_, tail) = self
            .perception
            .split_at(self.cut_layer)
            .map_err(|e| CoreError::Inconsistent(e.to_string()))?;
        let output = tail.forward(&counterexample.activation);
        // The MILP pins the characterizer logit at the `>= 0` boundary, so
        // the concrete re-execution may land a rounding error below it; the
        // characterizer check must share the caller's tolerance.
        Ok(region.contains(counterexample.activation.as_slice(), tol)
            && self.risk.is_satisfied(&output, tol)
            && self.characterizer.logit(&counterexample.activation) >= -tol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CharacterizerConfig, InputProperty};
    use dpv_nn::{Activation, NetworkBuilder};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A small synthetic "perception" problem whose structure mirrors the
    /// paper's: 4-dimensional inputs, the first input plays the role of
    /// "curvature" and fully determines both the output and the property.
    fn setup(seed: u64) -> (Network, Characterizer, Vec<(Vector, bool)>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut perception = NetworkBuilder::new(4)
            .dense(8, &mut rng)
            .activation(Activation::ReLU)
            .dense(6, &mut rng)
            .activation(Activation::ReLU)
            .dense(1, &mut rng)
            .build();
        // Train the perception net to output 2*x0 - 1 (a signed "steering" signal).
        let inputs: Vec<Vector> = (0..300)
            .map(|_| Vector::from_vec((0..4).map(|_| rng.gen_range(0.0..1.0)).collect()))
            .collect();
        let targets: Vec<Vector> = inputs
            .iter()
            .map(|x| Vector::from_slice(&[2.0 * x[0] - 1.0]))
            .collect();
        let data = dpv_nn::Dataset::new(inputs.clone(), targets).unwrap();
        let config = dpv_nn::TrainConfig {
            epochs: 60,
            learning_rate: 0.01,
            ..Default::default()
        };
        dpv_nn::train(
            &mut perception,
            &data,
            &config,
            dpv_nn::LossKind::Mse,
            &mut rng,
        );

        // Property φ: "x0 is large" (analogue of "road bends right").
        let examples: Vec<(Vector, bool)> =
            inputs.iter().map(|x| (x.clone(), x[0] > 0.7)).collect();
        let characterizer = Characterizer::train(
            InputProperty::new("x0_large", "the first input exceeds 0.7"),
            &perception,
            3,
            &examples,
            &CharacterizerConfig::small(),
            &mut rng,
        )
        .unwrap();
        (perception, characterizer, examples)
    }

    /// Threshold chosen just below what the tail can produce on the
    /// envelope: safety under the envelope is then provable, while the same
    /// threshold stays easily reachable inside a huge Lemma-1 box.
    fn envelope_and_threshold(
        perception: &Network,
        examples: &[(Vector, bool)],
    ) -> (ActivationEnvelope, f64) {
        let inputs: Vec<Vector> = examples.iter().map(|(x, _)| x.clone()).collect();
        let envelope = ActivationEnvelope::from_inputs(perception, 3, &inputs, 0.0).unwrap();
        let (_, tail) = perception.split_at(3).unwrap();
        let out_box = envelope.box_only().propagate(tail.layers());
        let lower = out_box.to_box()[0].lo;
        (envelope, lower - 0.1)
    }

    #[test]
    fn assume_guarantee_proves_consistent_property() {
        let (perception, characterizer, examples) = setup(1);
        let (envelope, threshold) = envelope_and_threshold(&perception, &examples);
        // ψ: "output is more negative than anything the envelope allows" —
        // the analogue of "suggest steering to the far left".
        let risk = RiskCondition::new("strongly negative").output_le(0, threshold);
        let problem = VerificationProblem::new(perception.clone(), 3, characterizer, risk).unwrap();
        let strategy = VerificationStrategy::AssumeGuarantee(AssumeGuarantee {
            envelope,
            use_difference_constraints: true,
        });
        let outcome = problem.verify(&strategy).unwrap();
        assert!(
            outcome.verdict.is_safe(),
            "expected SAFE, got {}",
            outcome.summary()
        );
        assert!(outcome.conditional);
    }

    #[test]
    fn lemma1_box_is_too_coarse_to_prove_the_same_property() {
        let (perception, characterizer, examples) = setup(1);
        let (_, threshold) = envelope_and_threshold(&perception, &examples);
        let risk = RiskCondition::new("strongly negative").output_le(0, threshold);
        let problem = VerificationProblem::new(perception, 3, characterizer, risk).unwrap();
        let strategy = VerificationStrategy::LayerAbstraction { bound: 100.0 };
        let outcome = problem.verify(&strategy).unwrap();
        // With essentially unconstrained activations the risk is reachable, so
        // the conservative strategy cannot prove safety (matches the paper's
        // observation that whole-space bounds are useless for such properties).
        assert!(
            !outcome.verdict.is_safe(),
            "Lemma 1 unexpectedly proved the property: {}",
            outcome.summary()
        );
        assert!(!outcome.conditional);
    }

    #[test]
    fn unsafe_verdicts_come_with_confirmed_counterexamples() {
        let (perception, characterizer, examples) = setup(2);
        // ψ: "output is positive" — this IS reachable when φ holds, so the
        // verifier must return a counterexample.
        let risk = RiskCondition::new("positive output").output_ge(0, 0.2);
        let problem = VerificationProblem::new(perception.clone(), 3, characterizer, risk).unwrap();
        let inputs: Vec<Vector> = examples.iter().map(|(x, _)| x.clone()).collect();
        let envelope = ActivationEnvelope::from_inputs(&perception, 3, &inputs, 0.0).unwrap();
        let strategy = VerificationStrategy::AssumeGuarantee(AssumeGuarantee {
            envelope,
            use_difference_constraints: true,
        });
        let outcome = problem.verify(&strategy).unwrap();
        match &outcome.verdict {
            Verdict::Unsafe(ce) => {
                assert!(problem.confirm_counterexample(&strategy, ce, 1e-4).unwrap());
                assert!(ce.logit.unwrap() >= -1e-6);
            }
            other => panic!("expected UNSAFE, got {other:?}"),
        }
    }

    #[test]
    fn problem_construction_validates_consistency() {
        let (perception, characterizer, _) = setup(3);
        let risk = RiskCondition::new("r").output_le(0, 0.0);
        assert!(VerificationProblem::new(
            perception.clone(),
            99,
            characterizer.clone(),
            risk.clone()
        )
        .is_err());
        // Wrong cut layer relative to the characterizer.
        assert!(VerificationProblem::new(perception, 1, characterizer, risk).is_err());
    }

    #[test]
    fn strategy_labels_are_stable() {
        assert!(VerificationStrategy::LayerAbstraction { bound: 10.0 }
            .label()
            .contains("lemma1"));
        assert!(VerificationStrategy::AbstractInterpretation {
            domain: DomainKind::Box
        }
        .label()
        .contains("interval"));
        assert!(VerificationStrategy::AbstractInterpretation {
            domain: DomainKind::Zonotope
        }
        .label()
        .contains("zonotope"));
    }

    #[test]
    fn envelope_mismatch_is_rejected() {
        let (perception, characterizer, examples) = setup(4);
        let inputs: Vec<Vector> = examples.iter().map(|(x, _)| x.clone()).collect();
        // Envelope built at the wrong layer.
        let envelope = ActivationEnvelope::from_inputs(&perception, 1, &inputs, 0.0).unwrap();
        let risk = RiskCondition::new("r").output_le(0, -0.5);
        let problem = VerificationProblem::new(perception, 3, characterizer, risk).unwrap();
        let strategy = VerificationStrategy::AssumeGuarantee(AssumeGuarantee {
            envelope,
            use_difference_constraints: false,
        });
        assert!(problem.verify(&strategy).is_err());
    }
}

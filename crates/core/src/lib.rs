//! # dpv-core
//!
//! The paper's contribution: safety verification of direct-perception
//! neural networks by
//!
//! 1. **learning an input property characterizer** `h_φ` attached to a
//!    close-to-output layer `l` of the perception network, so the otherwise
//!    unformalisable input condition φ ("the road strongly bends to the
//!    right") becomes a constraint the verifier can use
//!    ([`Characterizer`]);
//! 2. **verifying only the tail** of the network from layer `l` to the
//!    output, over a set `S` of possible layer-`l` activations, via a
//!    reduction to MILP ([`VerificationProblem`], [`encode_verification`]);
//! 3. choosing `S` per one of three strategies ([`VerificationStrategy`]):
//!    the whole space (Lemma 1), a sound abstract-interpretation bound from
//!    the input domain (Lemma 2), or the **assume-guarantee envelope** built
//!    from training-data activations, which must then be monitored at run
//!    time (Section II-B);
//! 4. **statistical reasoning** (Section III, Table I) that quantifies the
//!    residual risk `γ` when the characterizer is imperfect
//!    ([`StatisticalAnalysis`]).
//!
//! The [`Workflow`] type wires everything together end to end — scene
//! generation, perception-network training, characterizer training, envelope
//! construction, verification and the statistical table — and is what the
//! examples and benchmarks drive.
//!
//! ## Example
//!
//! ```no_run
//! use dpv_core::{Workflow, WorkflowConfig};
//!
//! # fn main() -> Result<(), dpv_core::CoreError> {
//! let outcome = Workflow::new(WorkflowConfig::small()).run()?;
//! println!("{}", outcome.report());
//! # Ok(())
//! # }
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod characterizer;
mod encode;
mod error;
mod fingerprint;
mod refine;
mod shard_verify;
mod spec;
mod statistical;
mod verify;
mod workflow;

pub use cache::{CacheStats, SnapshotPool, SnapshotPoolStats, TemplateCache};
pub use characterizer::{Characterizer, CharacterizerConfig};
pub use encode::{
    encode_verification, EncodedProblem, EncodingTemplate, RegionBounds, StartRegion,
};
pub use error::CoreError;
pub use fingerprint::Fingerprint;
pub use refine::{
    split_box, ParallelRefinementConfig, RefinedVerdict, RefinementReport, RefinementVerifier,
};
pub use shard_verify::{ShardObligation, ShardedVerificationConfig, ShardedVerificationReport};
pub use spec::{InputProperty, LinearInequality, OutputOp, RiskCondition};
pub use statistical::{ConfusionTable, StatisticalAnalysis};
pub use verify::{
    AssumeGuarantee, CounterExample, DomainKind, ProblemTemplate, SolveOptions, Verdict,
    VerificationOutcome, VerificationProblem, VerificationStrategy,
};
pub use workflow::{
    ScenarioFamilyResult, ScenarioReport, ViolationDetection, Workflow, WorkflowConfig,
    WorkflowOutcome,
};

//! Canonical structural fingerprints for templates, regions, and cache keys.
//!
//! A [`Fingerprint`] is a 128-bit content hash over the *structure* of a
//! verification object: layer kinds and parameters, risk inequalities,
//! characterizer weights, and region geometry. It replaces the old
//! process-local atomic template counter so that identity is a pure function
//! of content — two templates built from the same `(tail, risk,
//! characterizer, region)` tuple share a fingerprint even across threads,
//! requests, or server restarts, which is what makes cross-run template and
//! basis caches (`crate::cache`, `dpv-serve`) possible.
//!
//! The hash is two independent 64-bit FNV-1a lanes fed with discriminant
//! tags, dimension counts, and the raw IEEE-754 bit patterns of every
//! parameter. Floats are hashed by bit pattern (`f64::to_bits`), so `-0.0`
//! and `0.0` differ and `NaN` payloads are stable. The two lanes use
//! different offset bases and mix a lane index into every word, so a
//! collision requires defeating both simultaneously; with ~10^2 distinct
//! templates alive in a cache the collision probability is negligible
//! (~2^-128 per pair), and the unit tests below pin pairwise distinctness on
//! the bench-model family.

use dpv_absint::{BoxDomain, Interval, OctagonLite};
use dpv_nn::{Layer, Network};

use crate::encode::StartRegion;
use crate::spec::{OutputOp, RiskCondition};

/// 128-bit structural content hash used as the canonical cache key.
///
/// Construct via [`Fingerprint::of_template`] (template identity) or
/// [`Fingerprint::of_region`] / [`Fingerprint::of_box`] (obligation
/// sub-region identity); combine the two for dedup keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint {
    hi: u64,
    lo: u64,
}

impl Fingerprint {
    /// Fingerprint of a template's defining tuple: tail layers, optional
    /// characterizer network, risk condition, and root start region.
    ///
    /// This is the key under which `EncodingTemplate`s are cached and the
    /// guard that scopes `RegionBounds`, scratch problems, and warm
    /// `BasisSnapshot`s to the template they were derived from.
    pub fn of_template(
        tail: &[Layer],
        characterizer: Option<&Network>,
        risk: &RiskCondition,
        root: &StartRegion,
    ) -> Self {
        let mut h = Hasher::new();
        h.tag(0x01);
        h.word(tail.len() as u64);
        for layer in tail {
            hash_layer(&mut h, layer);
        }
        match characterizer {
            None => h.tag(0x02),
            Some(net) => {
                h.tag(0x03);
                h.word(net.layers().len() as u64);
                for layer in net.layers() {
                    hash_layer(&mut h, layer);
                }
            }
        }
        hash_risk(&mut h, risk);
        hash_region(&mut h, root);
        h.finish()
    }

    /// Fingerprint of a start region (box or octagon).
    pub fn of_region(region: &StartRegion) -> Self {
        let mut h = Hasher::new();
        hash_region(&mut h, region);
        h.finish()
    }

    /// Fingerprint of a box sub-region (obligation identity within a
    /// template).
    pub fn of_box(sub: &BoxDomain) -> Self {
        let mut h = Hasher::new();
        h.tag(0x10);
        hash_box(&mut h, sub);
        h.finish()
    }

    /// Renders the fingerprint as 32 lowercase hex digits.
    pub fn to_hex(&self) -> String {
        format!("{:016x}{:016x}", self.hi, self.lo)
    }
}

impl std::fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}{:016x}", self.hi, self.lo)
    }
}

const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
const FNV_OFFSET_HI: u64 = 0xcbf2_9ce4_8422_2325;
// Second lane starts from a different offset (FNV offset xor a golden-ratio
// constant) so the lanes disagree on every input word.
const FNV_OFFSET_LO: u64 = 0xcbf2_9ce4_8422_2325 ^ 0x9e37_79b9_7f4a_7c15;

/// Two-lane FNV-1a accumulator over 64-bit words.
struct Hasher {
    hi: u64,
    lo: u64,
}

impl Hasher {
    fn new() -> Self {
        Self {
            hi: FNV_OFFSET_HI,
            lo: FNV_OFFSET_LO,
        }
    }

    fn word(&mut self, w: u64) {
        for (lane, state) in [(0u64, &mut self.hi), (1u64, &mut self.lo)] {
            let mut s = *state;
            // Mix the lane index into each byte so the lanes are not related
            // by a simple offset.
            for byte in w.to_le_bytes() {
                s ^= u64::from(byte) ^ (lane << 7);
                s = s.wrapping_mul(FNV_PRIME);
            }
            *state = s;
        }
    }

    fn tag(&mut self, t: u8) {
        self.word(0x7461_6700 | u64::from(t));
    }

    fn f64(&mut self, v: f64) {
        self.word(v.to_bits());
    }

    fn floats(&mut self, vs: &[f64]) {
        self.word(vs.len() as u64);
        for &v in vs {
            self.f64(v);
        }
    }

    fn finish(self) -> Fingerprint {
        Fingerprint {
            hi: self.hi,
            lo: self.lo,
        }
    }
}

fn hash_layer(h: &mut Hasher, layer: &Layer) {
    match layer {
        Layer::Dense(d) => {
            h.tag(0x20);
            h.word(d.input_dim() as u64);
            h.word(d.output_dim() as u64);
            h.floats(d.weights().as_slice());
            h.floats(d.bias().as_slice());
        }
        Layer::Activation(a) => {
            use dpv_nn::Activation::*;
            match a {
                Identity => h.tag(0x21),
                ReLU => h.tag(0x22),
                LeakyReLU(slope) => {
                    h.tag(0x23);
                    h.f64(*slope);
                }
                Sigmoid => h.tag(0x24),
                Tanh => h.tag(0x25),
            }
        }
        Layer::BatchNorm(bn) => {
            h.tag(0x26);
            h.word(bn.dim() as u64);
            h.floats(bn.gamma().as_slice());
            h.floats(bn.beta().as_slice());
            h.floats(bn.running_mean().as_slice());
            h.floats(bn.running_var().as_slice());
            h.f64(bn.eps());
        }
        Layer::Conv2d(c) => {
            h.tag(0x27);
            let shape = c.input_shape();
            h.word(shape.channels as u64);
            h.word(shape.height as u64);
            h.word(shape.width as u64);
            h.word(c.kernel() as u64);
            h.word(c.stride() as u64);
            h.floats(c.weights().as_slice());
            h.floats(c.bias().as_slice());
        }
        Layer::MaxPool2d(p) => {
            h.tag(0x28);
            let shape = p.input_shape();
            h.word(shape.channels as u64);
            h.word(shape.height as u64);
            h.word(shape.width as u64);
            h.word(p.pool() as u64);
        }
        Layer::Flatten(f) => {
            h.tag(0x29);
            let shape = f.shape();
            h.word(shape.channels as u64);
            h.word(shape.height as u64);
            h.word(shape.width as u64);
        }
    }
}

fn hash_risk(h: &mut Hasher, risk: &RiskCondition) {
    // The display name is cosmetic and deliberately excluded: two risks with
    // identical inequalities describe the same property.
    h.tag(0x30);
    h.word(risk.inequalities().len() as u64);
    for ineq in risk.inequalities() {
        h.floats(&ineq.coeffs);
        match ineq.op {
            OutputOp::Le => h.tag(0x31),
            OutputOp::Ge => h.tag(0x32),
        }
        h.f64(ineq.rhs);
    }
}

fn hash_box(h: &mut Hasher, domain: &BoxDomain) {
    hash_intervals(h, domain.bounds());
}

fn hash_intervals(h: &mut Hasher, bounds: &[Interval]) {
    h.word(bounds.len() as u64);
    for iv in bounds {
        h.f64(iv.lo);
        h.f64(iv.hi);
    }
}

fn hash_octagon(h: &mut Hasher, oct: &OctagonLite) {
    hash_intervals(h, oct.bounds());
    hash_intervals(h, oct.diffs());
}

fn hash_region(h: &mut Hasher, region: &StartRegion) {
    match region {
        StartRegion::Box(b) => {
            h.tag(0x40);
            hash_box(h, b);
        }
        StartRegion::Octagon(o) => {
            h.tag(0x41);
            hash_octagon(h, o);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::RiskCondition;
    use dpv_absint::AbstractDomain;
    use dpv_nn::{Activation, NetworkBuilder};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bench_tail(seed: u64) -> Vec<Layer> {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = NetworkBuilder::new(4)
            .dense(6, &mut rng)
            .activation(Activation::ReLU)
            .dense(3, &mut rng)
            .build();
        net.layers().to_vec()
    }

    fn bench_characterizer(seed: u64) -> Network {
        let mut rng = StdRng::seed_from_u64(seed);
        NetworkBuilder::new(4)
            .dense(5, &mut rng)
            .activation(Activation::ReLU)
            .dense(1, &mut rng)
            .build()
    }

    fn region(lo: f64, hi: f64) -> StartRegion {
        StartRegion::Box(BoxDomain::uniform(4, lo, hi))
    }

    #[test]
    fn identical_tuples_share_a_fingerprint() {
        let tail = bench_tail(7);
        let ch = bench_characterizer(9);
        let risk = RiskCondition::new("r").output_ge(0, 0.5);
        let a = Fingerprint::of_template(&tail, Some(&ch), &risk, &region(-1.0, 1.0));
        let b = Fingerprint::of_template(&tail, Some(&ch), &risk, &region(-1.0, 1.0));
        assert_eq!(a, b);
    }

    #[test]
    fn distinct_tuples_never_collide_on_bench_models() {
        // Vary each component of (tail, characterizer, risk, region)
        // independently and require pairwise-distinct fingerprints.
        let tails = [bench_tail(7), bench_tail(8)];
        let chars = [
            None,
            Some(bench_characterizer(9)),
            Some(bench_characterizer(10)),
        ];
        let risks = [
            RiskCondition::new("a").output_ge(0, 0.25),
            RiskCondition::new("a").output_ge(0, 5.0),
            RiskCondition::new("a").output_ge(1, 0.25),
        ];
        let regions = [region(-1.0, 1.0), region(-1.0, 1.5), region(-0.5, 1.0)];

        let mut fps = Vec::new();
        for tail in &tails {
            for ch in &chars {
                for risk in &risks {
                    for reg in &regions {
                        fps.push(Fingerprint::of_template(tail, ch.as_ref(), risk, reg));
                    }
                }
            }
        }
        for i in 0..fps.len() {
            for j in (i + 1)..fps.len() {
                assert_ne!(fps[i], fps[j], "collision between tuple {i} and {j}");
            }
        }
    }

    #[test]
    fn region_fingerprints_distinguish_box_from_octagon() {
        let b = BoxDomain::uniform(3, -1.0, 1.0);
        let oct = OctagonLite::from_parts(b.bounds().to_vec(), vec![Interval::new(-2.0, 2.0); 2]);
        let fb = Fingerprint::of_region(&StartRegion::Box(b));
        let fo = Fingerprint::of_region(&StartRegion::Octagon(oct));
        assert_ne!(fb, fo);
    }

    #[test]
    fn sub_box_fingerprints_are_sensitive_to_every_bound() {
        let base = BoxDomain::uniform(3, -1.0, 1.0);
        let fp = Fingerprint::of_box(&base);
        for dim in 0..3 {
            let mut bounds = base.bounds().to_vec();
            bounds[dim] = Interval::new(bounds[dim].lo + 1e-9, bounds[dim].hi);
            let shifted = BoxDomain::from_intervals(bounds);
            assert_ne!(fp, Fingerprint::of_box(&shifted), "dim {dim} lo ignored");
        }
    }

    #[test]
    fn hex_rendering_is_stable() {
        let fp = Fingerprint::of_box(&BoxDomain::uniform(2, 0.0, 1.0));
        assert_eq!(fp.to_hex().len(), 32);
        assert_eq!(fp.to_hex(), format!("{fp}"));
    }
}

//! Reduction of the tail-network verification problem to MILP, and the
//! incremental [`EncodingTemplate`] that amortises it across a refinement
//! sweep.
//!
//! # One-shot encoding vs. template instantiation
//!
//! [`encode_verification`] builds the whole MILP from scratch for one start
//! region. The refinement loop, however, solves the *same* (tail network,
//! risk condition, characterizer) triple over `2^k` sub-boxes of one root
//! region — re-running the full encoding per sub-box rebuilds hundreds of
//! identical equality and big-M rows every time.
//!
//! An [`EncodingTemplate`] is built **once** from the root region: it owns
//! the MILP *skeleton* (variables, dense/batch-norm equality rows, ReLU
//! big-M rows with root-region constants, risk and characterizer rows) plus
//! a per-layer plan of which variables belong to which stage.
//! [`EncodingTemplate::instantiate`] then produces the MILP for any
//! sub-region with **bound-shaped edits only**: it re-tightens the cut-layer
//! variable bounds, re-propagates the sub-box through the cached layers to
//! re-tighten every intermediate bound, pins ReLU phase indicators that the
//! tighter bounds stabilise (`δ ∈ [1,1]` / `[0,0]`), and rewrites the
//! octagon difference-row right-hand sides. Because none of these edits
//! touch constraint coefficients or the objective, consecutive
//! instantiations are also *warm-start compatible* at the LP layer
//! (`dpv_lp::BasisSnapshot` remains valid across them).
//!
//! The instantiated MILP is **verdict-equivalent** to a fresh encoding: the
//! big-M constants frozen at their root-region values are still valid for
//! every sub-region (interval propagation is monotone), so the feasible set
//! projected onto the cut-layer variables is identical — only the LP
//! relaxation may be weaker, which pinning the stabilised indicators mostly
//! recovers. The `backend_seam` tests assert verdict equality against the
//! re-encoding path.

use dpv_absint::{AbstractDomain, BoxBatch, BoxDomain, Interval, OctagonLite};
use dpv_lp::{encode_relu_big_m, ConstraintOp, MilpProblem, VarId};
use dpv_nn::{Activation, Layer, Network};

use crate::fingerprint::Fingerprint;
use crate::{CoreError, OutputOp, RiskCondition};

/// The set `S` of layer-`l` activations from which the verification starts.
#[derive(Debug, Clone, PartialEq)]
pub enum StartRegion {
    /// Independent per-neuron bounds (Lemma 1 with large bounds, Lemma 2
    /// via abstract interpretation, or the box part of an envelope).
    Box(BoxDomain),
    /// Box plus adjacent-neuron difference constraints — the refined
    /// envelope of the paper's Section V.
    Octagon(OctagonLite),
}

impl StartRegion {
    /// The box enclosure of the region (used for big-M bound computation).
    pub fn box_domain(&self) -> BoxDomain {
        match self {
            StartRegion::Box(b) => b.clone(),
            StartRegion::Octagon(o) => o.to_box_domain(),
        }
    }

    /// Dimension of the region.
    pub fn dim(&self) -> usize {
        match self {
            StartRegion::Box(b) => b.dim(),
            StartRegion::Octagon(o) => o.dim(),
        }
    }

    /// Returns `true` when the concrete activation lies inside the region.
    pub fn contains(&self, activation: &[f64], tol: f64) -> bool {
        match self {
            StartRegion::Box(b) => b.box_contains(activation, tol),
            StartRegion::Octagon(o) => o.contains(activation, tol),
        }
    }
}

/// A fully encoded verification instance.
#[derive(Debug, Clone)]
pub struct EncodedProblem {
    /// The MILP: feasible iff an activation in the start region triggers the
    /// risk condition while the characterizer fires.
    pub milp: MilpProblem,
    /// Variables of the cut-layer activation.
    pub cut_vars: Vec<VarId>,
    /// Variables of the network output.
    pub output_vars: Vec<VarId>,
    /// Variable of the characterizer logit (when a characterizer was encoded).
    pub logit_var: Option<VarId>,
    /// Number of binary (ReLU-phase) variables in the encoding that are
    /// actually free (neither structurally absent nor pinned by the bounds).
    pub num_binaries: usize,
    /// Number of ReLU neurons whose phase was fixed by the bounds (no binary
    /// variable needed, or the template pinned the indicator) — the tighter
    /// the start region, the larger this is.
    pub stable_relus: usize,
    /// Identity of the [`EncodingTemplate`] this problem was instantiated
    /// from (`None` for one-shot encodings). [`EncodingTemplate::instantiate_into`]
    /// refuses a scratch carrying a different template's fingerprint: two
    /// templates can share variable/constraint *counts* while differing in
    /// frozen coefficients (e.g. only a risk-row threshold apart), and
    /// re-tightening the wrong skeleton would silently answer the wrong
    /// question. The fingerprint is content-addressed
    /// ([`crate::fingerprint::Fingerprint`]), so scratches *are* portable
    /// between two templates built from identical inputs.
    pub(crate) template_id: Option<Fingerprint>,
}

/// One encoded layer of a template chain: the variables holding the layer's
/// outputs and, for ReLU stages, the phase indicator of each neuron (`None`
/// when the root bounds already fixed the phase, so no binary exists).
#[derive(Debug, Clone)]
struct Stage {
    vars: Vec<VarId>,
    indicators: Option<Vec<Option<VarId>>>,
}

/// Per-chain template plan: the cached layers plus their encoded stages.
#[derive(Debug, Clone)]
struct ChainPlan {
    layers: Vec<Layer>,
    stages: Vec<Stage>,
}

/// Estimated variable/constraint counts of a chain's encoding, used to
/// pre-size the [`MilpProblem`] storage before any row is built.
fn chain_size_estimate(input_dim: usize, layers: &[Layer]) -> (usize, usize) {
    let mut dim = input_dim;
    let mut vars = 0usize;
    let mut rows = 0usize;
    for layer in layers {
        match layer {
            Layer::Dense(d) => {
                dim = d.output_dim();
                vars += dim;
                rows += dim;
            }
            Layer::BatchNorm(bn) => {
                dim = bn.dim();
                vars += dim;
                rows += dim;
            }
            Layer::Activation(Activation::ReLU) => {
                // Worst case: every neuron unstable (1 output + 1 indicator
                // variable, 3 big-M rows).
                vars += 2 * dim;
                rows += 3 * dim;
            }
            _ => {}
        }
    }
    (vars, rows)
}

/// Encodes one ReLU-MLP (a slice of layers) into `milp`, starting from the
/// variables `inputs` whose concrete values range over `input_box`.
/// Returns the output variables and the output box. When `stages` is given,
/// records the per-layer variable plan for an [`EncodingTemplate`].
///
/// Interval propagation ping-pongs between two reused bound buffers instead
/// of allocating a fresh `BoxDomain` per layer.
fn encode_layers(
    milp: &mut MilpProblem,
    inputs: &[VarId],
    input_box: &BoxDomain,
    layers: &[Layer],
    binaries: &mut usize,
    stable: &mut usize,
    mut stages: Option<&mut Vec<Stage>>,
) -> Result<(Vec<VarId>, BoxDomain), CoreError> {
    let mut vars = inputs.to_vec();
    let mut bounds = input_box.clone();
    let mut scratch = BoxDomain::from_intervals(Vec::new());
    for layer in layers {
        let mut stage_indicators: Option<Vec<Option<VarId>>> = None;
        match layer {
            Layer::Dense(d) => {
                if d.input_dim() != vars.len() {
                    return Err(CoreError::Inconsistent(format!(
                        "dense layer expects {} inputs, encoding has {}",
                        d.input_dim(),
                        vars.len()
                    )));
                }
                bounds.apply_layer_into(layer, &mut scratch);
                let mut out_vars = Vec::with_capacity(d.output_dim());
                for j in 0..d.output_dim() {
                    let interval = scratch.bounds()[j];
                    let v = milp.add_variable(interval.lo, interval.hi);
                    // y_j - Σ w_ji x_i = b_j
                    let mut coeffs = vec![(v, 1.0)];
                    for (i, &x) in vars.iter().enumerate() {
                        let w = d.weights()[(j, i)];
                        if w != 0.0 {
                            coeffs.push((x, -w));
                        }
                    }
                    milp.lp_mut()
                        .add_constraint(&coeffs, ConstraintOp::Eq, d.bias()[j]);
                    out_vars.push(v);
                }
                vars = out_vars;
                std::mem::swap(&mut bounds, &mut scratch);
            }
            Layer::BatchNorm(bn) => {
                if bn.dim() != vars.len() {
                    return Err(CoreError::Inconsistent(
                        "batch-norm dimension mismatch in encoding".into(),
                    ));
                }
                let (a, b) = bn.affine_form();
                bounds.apply_layer_into(layer, &mut scratch);
                let mut out_vars = Vec::with_capacity(bn.dim());
                for j in 0..bn.dim() {
                    let interval = scratch.bounds()[j];
                    let v = milp.add_variable(interval.lo, interval.hi);
                    // y_j - a_j x_j = b_j
                    milp.lp_mut().add_constraint(
                        &[(v, 1.0), (vars[j], -a[j])],
                        ConstraintOp::Eq,
                        b[j],
                    );
                    out_vars.push(v);
                }
                vars = out_vars;
                std::mem::swap(&mut bounds, &mut scratch);
            }
            Layer::Activation(Activation::Identity) | Layer::Flatten(_) => {
                // Numerically the identity; keep the same variables.
            }
            Layer::Activation(Activation::ReLU) => {
                let mut out_vars = Vec::with_capacity(vars.len());
                let mut indicators = Vec::with_capacity(vars.len());
                for (j, &x) in vars.iter().enumerate() {
                    let pre = bounds.bounds()[j];
                    let y = milp.add_variable(0.0, pre.hi.max(0.0));
                    let encoding = encode_relu_big_m(milp, x, y, pre.lo, pre.hi);
                    if encoding.indicator.is_some() {
                        *binaries += 1;
                    } else {
                        *stable += 1;
                    }
                    indicators.push(encoding.indicator);
                    out_vars.push(y);
                }
                bounds.apply_layer_into(layer, &mut scratch);
                vars = out_vars;
                stage_indicators = Some(indicators);
                std::mem::swap(&mut bounds, &mut scratch);
            }
            Layer::Activation(other) => {
                return Err(CoreError::NotPiecewiseLinear(format!(
                    "activation {other:?} cannot be encoded exactly; only ReLU/identity tails are supported"
                )));
            }
            Layer::Conv2d(_) | Layer::MaxPool2d(_) => {
                return Err(CoreError::NotPiecewiseLinear(
                    "convolution/pooling layers must stay in the (unverified) head; choose a cut layer after them"
                        .into(),
                ));
            }
        }
        if let Some(stages) = stages.as_deref_mut() {
            stages.push(Stage {
                vars: vars.clone(),
                indicators: stage_indicators,
            });
        }
    }
    Ok((vars, bounds))
}

/// Everything the template records while the skeleton is being encoded.
#[derive(Debug, Clone, Default)]
struct TemplatePlan {
    tail_stages: Vec<Stage>,
    ch_stages: Vec<Stage>,
    /// Per adjacent-neuron difference, the `(>= row, <= row)` constraint
    /// indices of the octagon refinement (empty for box templates).
    diff_rows: Vec<(usize, usize)>,
}

/// Shared construction of the verification MILP, optionally recording a
/// [`TemplatePlan`] for incremental re-instantiation.
fn encode_core(
    tail: &[Layer],
    characterizer: Option<&Network>,
    risk: &RiskCondition,
    region: &StartRegion,
    mut plan: Option<&mut TemplatePlan>,
) -> Result<EncodedProblem, CoreError> {
    let mut milp = MilpProblem::new();
    let box_domain = region.box_domain();
    let dim = region.dim();

    // Pre-size the model from the known layer shapes: one pass of arithmetic
    // instead of repeated mid-encoding re-allocation.
    {
        let (tail_vars, tail_rows) = chain_size_estimate(dim, tail);
        let (ch_vars, ch_rows) = characterizer
            .map(|ch| chain_size_estimate(dim, ch.layers()))
            .unwrap_or((0, 0));
        let diff_rows = match region {
            StartRegion::Octagon(o) => 2 * o.diffs().len(),
            StartRegion::Box(_) => 0,
        };
        let extra_rows = risk.inequalities().len() + usize::from(characterizer.is_some());
        milp.lp_mut().reserve(
            dim + tail_vars + ch_vars,
            tail_rows + ch_rows + diff_rows + extra_rows,
        );
    }

    // Cut-layer activation variables.
    let cut_vars: Vec<VarId> = box_domain
        .bounds()
        .iter()
        .map(|Interval { lo, hi }| milp.add_variable(*lo, *hi))
        .collect();

    // Octagon refinement: lo_i <= x[i+1] - x[i] <= hi_i.
    if let StartRegion::Octagon(oct) = region {
        for (i, diff) in oct.diffs().iter().enumerate() {
            let ge_row = milp.lp().num_constraints();
            milp.lp_mut().add_constraint(
                &[(cut_vars[i + 1], 1.0), (cut_vars[i], -1.0)],
                ConstraintOp::Ge,
                diff.lo,
            );
            milp.lp_mut().add_constraint(
                &[(cut_vars[i + 1], 1.0), (cut_vars[i], -1.0)],
                ConstraintOp::Le,
                diff.hi,
            );
            if let Some(plan) = plan.as_deref_mut() {
                plan.diff_rows.push((ge_row, ge_row + 1));
            }
        }
    }

    let mut num_binaries = 0usize;
    let mut stable_relus = 0usize;

    // Encode the verified tail of the perception network.
    let (output_vars, _) = encode_layers(
        &mut milp,
        &cut_vars,
        &box_domain,
        tail,
        &mut num_binaries,
        &mut stable_relus,
        plan.as_deref_mut().map(|p| &mut p.tail_stages),
    )?;

    // Encode the characterizer and require h_φ = 1 (logit >= 0).
    let logit_var = match characterizer {
        Some(ch) => {
            if ch.input_dim() != dim {
                return Err(CoreError::Inconsistent(format!(
                    "characterizer expects {} features, cut layer has {dim}",
                    ch.input_dim()
                )));
            }
            if ch.output_dim() != 1 {
                return Err(CoreError::Inconsistent(
                    "characterizer must produce a single logit".into(),
                ));
            }
            let (logit_vars, _) = encode_layers(
                &mut milp,
                &cut_vars,
                &box_domain,
                ch.layers(),
                &mut num_binaries,
                &mut stable_relus,
                plan.map(|p| &mut p.ch_stages),
            )?;
            let logit = logit_vars[0];
            milp.lp_mut()
                .add_constraint(&[(logit, 1.0)], ConstraintOp::Ge, 0.0);
            Some(logit)
        }
        None => None,
    };

    // Risk condition ψ over the output variables.
    for inequality in risk.inequalities() {
        if inequality.coeffs.len() > output_vars.len() {
            return Err(CoreError::Inconsistent(format!(
                "risk condition references output {} but the network has only {} outputs",
                inequality.coeffs.len() - 1,
                output_vars.len()
            )));
        }
        let coeffs: Vec<(VarId, f64)> = inequality
            .coeffs
            .iter()
            .enumerate()
            .filter(|(_, c)| **c != 0.0)
            .map(|(i, c)| (output_vars[i], *c))
            .collect();
        let op = match inequality.op {
            OutputOp::Le => ConstraintOp::Le,
            OutputOp::Ge => ConstraintOp::Ge,
        };
        milp.lp_mut().add_constraint(&coeffs, op, inequality.rhs);
    }

    Ok(EncodedProblem {
        milp,
        cut_vars,
        output_vars,
        logit_var,
        num_binaries,
        stable_relus,
        template_id: None,
    })
}

/// Builds the MILP whose feasibility answers the safety question:
///
/// > does there exist an activation `n̂_l` in `region` such that the tail
/// > maps it to an output satisfying `risk`, while the characterizer's logit
/// > is non-negative (`h_φ = 1`)?
///
/// `Infeasible` therefore proves safety relative to `region` (Lemma 1/2 or
/// the assume-guarantee argument, depending on how `region` was obtained).
///
/// # Errors
/// Returns [`CoreError::NotPiecewiseLinear`] when the tail or characterizer
/// contains layers the encoder cannot represent, and
/// [`CoreError::Inconsistent`] on dimension mismatches.
pub fn encode_verification(
    tail: &[Layer],
    characterizer: Option<&Network>,
    risk: &RiskCondition,
    region: &StartRegion,
) -> Result<EncodedProblem, CoreError> {
    encode_core(tail, characterizer, risk, region, None)
}

/// A reusable MILP skeleton for one (tail network, risk condition,
/// characterizer) triple, built once from a **root** start region and
/// instantiated for any sub-region with bound-shaped edits only (see the
/// module docs for the full contract).
#[derive(Debug, Clone)]
pub struct EncodingTemplate {
    skeleton: EncodedProblem,
    tail: ChainPlan,
    characterizer: Option<ChainPlan>,
    diff_rows: Vec<(usize, usize)>,
    root_box: BoxDomain,
    /// `true` when the root region carried octagon difference rows.
    octagonal: bool,
    /// Content-addressed identity stamped onto every instantiation, so
    /// [`EncodingTemplate::instantiate_into`] can reject scratches built by
    /// a structurally *different* template. Also the key under which
    /// templates are shared in [`crate::cache::TemplateCache`].
    fingerprint: Fingerprint,
}

impl EncodingTemplate {
    /// Encodes the skeleton once from `root`. Every later
    /// [`EncodingTemplate::instantiate`] call must use a region contained in
    /// `root` (checked), because the frozen big-M constants are only sound
    /// for subsets of the root box.
    ///
    /// # Errors
    /// Same conditions as [`encode_verification`].
    pub fn build(
        tail: &[Layer],
        characterizer: Option<&Network>,
        risk: &RiskCondition,
        root: &StartRegion,
    ) -> Result<Self, CoreError> {
        let mut plan = TemplatePlan::default();
        let skeleton = encode_core(tail, characterizer, risk, root, Some(&mut plan))?;
        Ok(Self {
            skeleton,
            tail: ChainPlan {
                layers: tail.to_vec(),
                stages: plan.tail_stages,
            },
            characterizer: characterizer.map(|ch| ChainPlan {
                layers: ch.layers().to_vec(),
                stages: plan.ch_stages,
            }),
            diff_rows: plan.diff_rows,
            root_box: root.box_domain(),
            octagonal: matches!(root, StartRegion::Octagon(_)),
            fingerprint: Fingerprint::of_template(tail, characterizer, risk, root),
        })
    }

    /// Content-addressed identity of this template: the canonical
    /// [`Fingerprint`] of its defining `(tail, characterizer, risk, root)`
    /// tuple. Two templates built from identical inputs share a fingerprint.
    pub fn fingerprint(&self) -> Fingerprint {
        self.fingerprint
    }

    /// The box enclosure of the root region the skeleton was built from.
    pub fn root_box(&self) -> &BoxDomain {
        &self.root_box
    }

    /// The skeleton itself — the problem encoded at the root region.
    /// Instantiating the template at its own root only re-derives these
    /// exact bounds, so callers solving the *root* obligation (e.g. one
    /// whole envelope shard) can use this directly and skip the clone.
    pub(crate) fn root_problem(&self) -> &EncodedProblem {
        &self.skeleton
    }

    /// Whether `region` can be instantiated from this template: the region
    /// kind must match the root's (a box template has no difference rows to
    /// re-tighten; an octagon template would silently impose its root
    /// differences on a plain box), the dimensions must agree, and the
    /// region's box must be contained in the root box (the frozen big-M
    /// constants are only valid for subsets). Callers fall back to
    /// [`encode_verification`] when this returns `false`.
    pub fn supports(&self, region: &StartRegion) -> bool {
        match region {
            StartRegion::Box(b) => self.supports_box(b),
            StartRegion::Octagon(o) => {
                self.octagonal
                    && o.diffs().len() == self.diff_rows.len()
                    && o.dim() == self.root_box.dim()
                    && self.box_within_root(&o.to_box_domain())
            }
        }
    }

    /// [`EncodingTemplate::supports`] for a plain box region, without
    /// wrapping it in a [`StartRegion`] (the refinement work-list checks
    /// whole generations of sub-boxes).
    pub fn supports_box(&self, sub: &BoxDomain) -> bool {
        !self.octagonal && sub.dim() == self.root_box.dim() && self.box_within_root(sub)
    }

    /// Containment of `sub` in the root box up to the support tolerance.
    fn box_within_root(&self, sub: &BoxDomain) -> bool {
        let tol = 1e-9;
        sub.bounds()
            .iter()
            .zip(self.root_box.bounds())
            .all(|(sub, root)| sub.lo >= root.lo - tol && sub.hi <= root.hi + tol)
    }

    /// Instantiates the skeleton for `region`: a clone of the cached MILP
    /// with every variable bound re-tightened to the sub-region (cut layer,
    /// intermediate layers, ReLU outputs), stabilised phase indicators
    /// pinned, and difference rows re-aimed. No constraint row is rebuilt.
    ///
    /// # Errors
    /// Returns [`CoreError::Inconsistent`] when
    /// [`EncodingTemplate::supports`] rejects the region.
    pub fn instantiate(&self, region: &StartRegion) -> Result<EncodedProblem, CoreError> {
        let mut scratch = self.skeleton.clone();
        scratch.template_id = Some(self.fingerprint);
        self.retighten(region, &mut scratch)?;
        Ok(scratch)
    }

    /// Re-tightens an [`EncodedProblem`] previously produced by
    /// [`EncodingTemplate::instantiate`] of this template for a new region,
    /// in place — the zero-allocation path the refinement work-list drives
    /// once per sub-box.
    ///
    /// # Errors
    /// Returns [`CoreError::Inconsistent`] when the region is unsupported or
    /// `scratch` does not structurally match this template's skeleton.
    pub fn instantiate_into(
        &self,
        region: &StartRegion,
        scratch: &mut EncodedProblem,
    ) -> Result<(), CoreError> {
        // Identity check, not just a shape check: two templates can share
        // variable/constraint counts while differing in frozen coefficients
        // (e.g. only a risk-row threshold apart), and re-tightening the
        // wrong skeleton would silently answer the wrong question.
        if scratch.template_id != Some(self.fingerprint) {
            return Err(CoreError::Inconsistent(
                "scratch problem does not derive from this template".into(),
            ));
        }
        self.retighten(region, scratch)
    }

    fn retighten(
        &self,
        region: &StartRegion,
        scratch: &mut EncodedProblem,
    ) -> Result<(), CoreError> {
        if !self.supports(region) {
            return Err(CoreError::Inconsistent(
                "region is not covered by the template's root region".into(),
            ));
        }
        let bounds = self.propagate_region(region);
        self.apply_bounds(region, &bounds, scratch);
        Ok(())
    }

    /// The **propagate** half of an instantiation: interval-propagates the
    /// region through every cached chain and returns the per-stage bounds
    /// the **apply** half ([`EncodingTemplate::instantiate_into_with`])
    /// needs. Splitting the two lets a refinement generation batch the
    /// propagation of all sibling sub-boxes in one SoA pass
    /// ([`EncodingTemplate::region_bounds_batch`]).
    ///
    /// # Errors
    /// Returns [`CoreError::Inconsistent`] when
    /// [`EncodingTemplate::supports`] rejects the region.
    pub fn region_bounds(&self, region: &StartRegion) -> Result<RegionBounds, CoreError> {
        if !self.supports(region) {
            return Err(CoreError::Inconsistent(
                "region is not covered by the template's root region".into(),
            ));
        }
        Ok(self.propagate_region(region))
    }

    /// Batched [`EncodingTemplate::region_bounds`] for sibling sub-boxes of
    /// one refinement generation: all boxes are propagated through the
    /// cached tail and characterizer chains in a single structure-of-arrays
    /// sweep ([`BoxBatch`]), whose lanes are bit-identical to the scalar
    /// propagation — entry `i` of the result equals
    /// `region_bounds(&StartRegion::Box(boxes[i]))` exactly.
    ///
    /// # Errors
    /// Returns [`CoreError::Inconsistent`] when any box fails
    /// [`EncodingTemplate::supports_box`] (octagon-rooted templates reject
    /// plain boxes wholesale).
    pub fn region_bounds_batch(
        &self,
        boxes: &[&BoxDomain],
    ) -> Result<Vec<RegionBounds>, CoreError> {
        if boxes.iter().any(|b| !self.supports_box(b)) {
            return Err(CoreError::Inconsistent(
                "region is not covered by the template's root region".into(),
            ));
        }
        if boxes.is_empty() {
            return Ok(Vec::new());
        }
        let batch = BoxBatch::from_boxes(boxes);
        let tail = propagate_chain_batch(&self.tail, &batch);
        let characterizer = self
            .characterizer
            .as_ref()
            .map(|ch| propagate_chain_batch(ch, &batch));
        Ok((0..boxes.len())
            .map(|s| RegionBounds {
                template_id: self.fingerprint,
                tail: tail[s].clone(),
                characterizer: characterizer
                    .as_ref()
                    .map(|ch| ch[s].clone())
                    .unwrap_or_default(),
            })
            .collect())
    }

    /// [`EncodingTemplate::instantiate_into`] with the propagate half
    /// already done: re-tightens `scratch` using precomputed `bounds`
    /// (typically one lane of [`EncodingTemplate::region_bounds_batch`])
    /// instead of re-propagating the region. The resulting problem is
    /// identical to `instantiate_into(region, scratch)`.
    ///
    /// # Errors
    /// Returns [`CoreError::Inconsistent`] when the region is unsupported,
    /// `scratch` derives from a different template, or `bounds` was
    /// computed by a different template.
    pub fn instantiate_into_with(
        &self,
        region: &StartRegion,
        bounds: &RegionBounds,
        scratch: &mut EncodedProblem,
    ) -> Result<(), CoreError> {
        if scratch.template_id != Some(self.fingerprint) {
            return Err(CoreError::Inconsistent(
                "scratch problem does not derive from this template".into(),
            ));
        }
        if bounds.template_id != self.fingerprint {
            return Err(CoreError::Inconsistent(
                "region bounds derive from a different template".into(),
            ));
        }
        if !self.supports(region) {
            return Err(CoreError::Inconsistent(
                "region is not covered by the template's root region".into(),
            ));
        }
        self.apply_bounds(region, bounds, scratch);
        Ok(())
    }

    /// [`EncodingTemplate::instantiate`] with precomputed bounds: clones
    /// the skeleton and applies `bounds`.
    ///
    /// # Errors
    /// Same conditions as [`EncodingTemplate::instantiate_into_with`].
    pub fn instantiate_with(
        &self,
        region: &StartRegion,
        bounds: &RegionBounds,
    ) -> Result<EncodedProblem, CoreError> {
        let mut scratch = self.skeleton.clone();
        scratch.template_id = Some(self.fingerprint);
        self.instantiate_into_with(region, bounds, &mut scratch)?;
        Ok(scratch)
    }

    /// Scalar propagate half (callers have already validated `region`).
    fn propagate_region(&self, region: &StartRegion) -> RegionBounds {
        let owned_box;
        let region_box: &BoxDomain = match region {
            StartRegion::Box(b) => b,
            StartRegion::Octagon(o) => {
                owned_box = o.to_box_domain();
                &owned_box
            }
        };
        RegionBounds {
            template_id: self.fingerprint,
            tail: propagate_chain_scalar(&self.tail, region_box),
            characterizer: self
                .characterizer
                .as_ref()
                .map(|ch| propagate_chain_scalar(ch, region_box))
                .unwrap_or_default(),
        }
    }

    /// Apply half: bound-shaped MILP edits only, consuming per-stage bounds
    /// in the exact order the fused `retighten_chain` used to produce them,
    /// so the resulting problem is identical.
    fn apply_bounds(
        &self,
        region: &StartRegion,
        bounds: &RegionBounds,
        scratch: &mut EncodedProblem,
    ) {
        let owned_box;
        let region_box: &BoxDomain = match region {
            StartRegion::Box(b) => b,
            StartRegion::Octagon(o) => {
                owned_box = o.to_box_domain();
                &owned_box
            }
        };

        // Cut-layer bounds.
        for (&v, interval) in scratch.cut_vars.iter().zip(region_box.bounds()) {
            scratch
                .milp
                .lp_mut()
                .set_bounds(v, interval.lo, interval.hi);
        }

        // Octagon difference rows.
        if let StartRegion::Octagon(o) = region {
            for (&(ge_row, le_row), diff) in self.diff_rows.iter().zip(o.diffs()) {
                scratch.milp.lp_mut().set_constraint_rhs(ge_row, diff.lo);
                scratch.milp.lp_mut().set_constraint_rhs(le_row, diff.hi);
            }
        }

        let mut binaries = 0usize;
        let mut stable = 0usize;
        apply_chain(
            &mut scratch.milp,
            &self.tail,
            &bounds.tail,
            &mut binaries,
            &mut stable,
        );
        if let Some(ch) = &self.characterizer {
            apply_chain(
                &mut scratch.milp,
                ch,
                &bounds.characterizer,
                &mut binaries,
                &mut stable,
            );
        }
        scratch.num_binaries = binaries;
        scratch.stable_relus = stable;
    }
}

/// Precomputed per-stage interval bounds of one region under one template —
/// the output of the propagate half ([`EncodingTemplate::region_bounds`] /
/// [`EncodingTemplate::region_bounds_batch`]) and the input of the apply
/// half ([`EncodingTemplate::instantiate_into_with`]).
///
/// Per stage the stored bounds are what the apply half edits into the MILP:
/// post-affine bounds for dense/batch-norm stages, **pre-activation** bounds
/// for ReLU stages (they determine both the output-variable bounds and the
/// indicator pinning), and nothing for identity/flatten stages. The struct
/// is opaque and stamped with the template's identity so bounds cannot be
/// applied through the wrong skeleton.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionBounds {
    template_id: Fingerprint,
    tail: Vec<Vec<Interval>>,
    characterizer: Vec<Vec<Interval>>,
}

/// Propagate half over one cached chain: walks the layers with the scalar
/// box transformer and records, per stage, the bounds the apply half needs
/// (see [`RegionBounds`]).
fn propagate_chain_scalar(chain: &ChainPlan, region_box: &BoxDomain) -> Vec<Vec<Interval>> {
    let mut stages = Vec::with_capacity(chain.layers.len());
    let mut cur = region_box.clone();
    let mut next = BoxDomain::from_intervals(Vec::new());
    for layer in &chain.layers {
        match layer {
            Layer::Dense(_) | Layer::BatchNorm(_) => {
                cur.apply_layer_into(layer, &mut next);
                std::mem::swap(&mut cur, &mut next);
                stages.push(cur.bounds().to_vec());
            }
            Layer::Activation(Activation::ReLU) => {
                // Record the PRE-activation bounds, then keep propagating.
                stages.push(cur.bounds().to_vec());
                cur.apply_layer_into(layer, &mut next);
                std::mem::swap(&mut cur, &mut next);
            }
            _ => stages.push(Vec::new()),
        }
    }
    stages
}

/// Batched propagate half: one [`BoxBatch`] sweep through the chain,
/// returning the per-stage bounds for every lane (`result[lane][stage]`).
/// Lane `s` is bit-identical to `propagate_chain_scalar` of box `s` — the
/// parity the `BoxBatch` kernels guarantee.
fn propagate_chain_batch(chain: &ChainPlan, start: &BoxBatch) -> Vec<Vec<Vec<Interval>>> {
    let lanes = start.lanes();
    let mut per_lane: Vec<Vec<Vec<Interval>>> = (0..lanes)
        .map(|_| Vec::with_capacity(chain.layers.len()))
        .collect();
    let record = |batch: &BoxBatch, per_lane: &mut Vec<Vec<Vec<Interval>>>| {
        for (s, lane) in per_lane.iter_mut().enumerate() {
            lane.push((0..batch.dim()).map(|d| batch.interval(s, d)).collect());
        }
    };
    let mut cur = start.clone();
    let mut next = BoxBatch::empty();
    for layer in &chain.layers {
        match layer {
            Layer::Dense(_) | Layer::BatchNorm(_) => {
                cur.apply_layer_into(layer, &mut next);
                std::mem::swap(&mut cur, &mut next);
                record(&cur, &mut per_lane);
            }
            Layer::Activation(Activation::ReLU) => {
                record(&cur, &mut per_lane);
                cur.apply_layer_into(layer, &mut next);
                std::mem::swap(&mut cur, &mut next);
            }
            _ => {
                for lane in per_lane.iter_mut() {
                    lane.push(Vec::new());
                }
            }
        }
    }
    per_lane
}

/// Apply half over one cached chain: consumes the recorded per-stage bounds
/// in stage order, re-tightening every stage's variable bounds and pinning
/// ReLU indicators the tighter pre-activation bounds stabilise. Edit order
/// and values match the former fused walk exactly.
fn apply_chain(
    milp: &mut MilpProblem,
    chain: &ChainPlan,
    stage_bounds: &[Vec<Interval>],
    binaries: &mut usize,
    stable: &mut usize,
) {
    for ((layer, stage), bounds) in chain.layers.iter().zip(&chain.stages).zip(stage_bounds) {
        match layer {
            Layer::Dense(_) | Layer::BatchNorm(_) => {
                for (&v, interval) in stage.vars.iter().zip(bounds) {
                    milp.lp_mut().set_bounds(v, interval.lo, interval.hi);
                }
            }
            Layer::Activation(Activation::ReLU) => {
                let indicators = stage
                    .indicators
                    .as_ref()
                    .expect("ReLU stages record their indicators");
                for (j, (&y, indicator)) in stage.vars.iter().zip(indicators).enumerate() {
                    let pre = bounds[j];
                    milp.lp_mut()
                        .set_bounds(y, pre.lo.max(0.0), pre.hi.max(0.0));
                    match indicator {
                        Some(delta) => {
                            if pre.lo >= 0.0 {
                                // Stably active in this sub-region: δ = 1
                                // turns the big-M rows into y = x.
                                milp.lp_mut().set_bounds(*delta, 1.0, 1.0);
                                *stable += 1;
                            } else if pre.hi <= 0.0 {
                                milp.lp_mut().set_bounds(*delta, 0.0, 0.0);
                                *stable += 1;
                            } else {
                                milp.lp_mut().set_bounds(*delta, 0.0, 1.0);
                                *binaries += 1;
                            }
                        }
                        None => *stable += 1,
                    }
                }
            }
            Layer::Activation(Activation::Identity) | Layer::Flatten(_) => {}
            // `EncodingTemplate::build` already rejected anything else.
            _ => unreachable!("non-encodable layer survived template construction"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpv_lp::MilpStatus;
    use dpv_nn::{Activation, Dense, NetworkBuilder};
    use dpv_tensor::{Matrix, Vector};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Tail: identity dense 2→2 with ReLU, so output = relu(x).
    fn identity_relu_tail() -> Vec<Layer> {
        vec![
            Layer::Dense(Dense::from_parts(Matrix::identity(2), Vector::zeros(2))),
            Layer::Activation(Activation::ReLU),
        ]
    }

    #[test]
    fn encoding_matches_concrete_execution() {
        let mut rng = StdRng::seed_from_u64(0);
        let tail_net = NetworkBuilder::new(3)
            .dense(4, &mut rng)
            .activation(Activation::ReLU)
            .dense(2, &mut rng)
            .build();
        let region = StartRegion::Box(BoxDomain::uniform(3, -1.0, 1.0));
        // For several fixed cut activations, the MILP restricted to that point
        // must reproduce the concrete output (checked through feasibility of
        // the risk "output0 >= concrete - eps AND output0 <= concrete + eps").
        for _ in 0..5 {
            let x = Vector::from_vec((0..3).map(|_| rng.gen_range(-1.0..1.0)).collect());
            let y = tail_net.forward(&x);
            let risk = RiskCondition::new("pin output")
                .output_ge(0, y[0] - 1e-6)
                .output_le(0, y[0] + 1e-6);
            let encoded = encode_verification(tail_net.layers(), None, &risk, &region).unwrap();
            let mut milp = encoded.milp.clone();
            for (i, &v) in encoded.cut_vars.iter().enumerate() {
                milp.lp_mut().tighten_bounds(v, x[i], x[i]);
            }
            let solution = milp.solve();
            assert_eq!(
                solution.status,
                MilpStatus::Optimal,
                "expected feasibility at {x}"
            );
        }
    }

    #[test]
    fn infeasible_when_risk_is_outside_reachable_outputs() {
        // Tail is relu(identity): outputs lie in [0, 1] for inputs in [-1, 1].
        let region = StartRegion::Box(BoxDomain::uniform(2, -1.0, 1.0));
        let risk = RiskCondition::new("impossible").output_ge(0, 5.0);
        let encoded = encode_verification(&identity_relu_tail(), None, &risk, &region).unwrap();
        assert_eq!(encoded.milp.solve().status, MilpStatus::Infeasible);
    }

    #[test]
    fn feasible_when_risk_is_reachable() {
        let region = StartRegion::Box(BoxDomain::uniform(2, -1.0, 1.0));
        let risk = RiskCondition::new("reachable").output_ge(0, 0.5);
        let encoded = encode_verification(&identity_relu_tail(), None, &risk, &region).unwrap();
        let solution = encoded.milp.solve();
        assert_eq!(solution.status, MilpStatus::Optimal);
        // The witness respects the region and triggers the risk concretely.
        let cut: Vec<f64> = encoded
            .cut_vars
            .iter()
            .map(|&v| solution.values[v])
            .collect();
        assert!(region.contains(&cut, 1e-6));
        assert!(solution.values[encoded.output_vars[0]] >= 0.5 - 1e-6);
    }

    #[test]
    fn octagon_constraints_can_prove_what_the_box_cannot() {
        // Tail computes y = x1 - x0 (then ReLU). Box region allows y up to 2,
        // but the octagon says x1 - x0 <= 0.1, so y >= 1 is impossible.
        let w = Matrix::from_rows(&[vec![-1.0, 1.0]]).unwrap();
        let tail = vec![
            Layer::Dense(Dense::from_parts(w, Vector::zeros(1))),
            Layer::Activation(Activation::ReLU),
        ];
        let risk = RiskCondition::new("large difference").output_ge(0, 1.0);

        let box_region = StartRegion::Box(BoxDomain::uniform(2, -1.0, 1.0));
        let feasible = encode_verification(&tail, None, &risk, &box_region).unwrap();
        assert_eq!(feasible.milp.solve().status, MilpStatus::Optimal);

        let oct = OctagonLite::from_parts(
            vec![Interval::new(-1.0, 1.0), Interval::new(-1.0, 1.0)],
            vec![Interval::new(-0.1, 0.1)],
        );
        let oct_region = StartRegion::Octagon(oct);
        let infeasible = encode_verification(&tail, None, &risk, &oct_region).unwrap();
        assert_eq!(infeasible.milp.solve().status, MilpStatus::Infeasible);
    }

    #[test]
    fn characterizer_constraint_restricts_the_search() {
        // Characterizer: logit = -x0 (fires only when x0 <= 0).
        // Tail: y = x0 (identity dense). Risk: y >= 0.5.
        // Without the characterizer the risk is reachable; with it, it is not.
        let tail = vec![Layer::Dense(Dense::from_parts(
            Matrix::identity(1),
            Vector::zeros(1),
        ))];
        let ch = dpv_nn::Network::new(
            1,
            vec![Layer::Dense(Dense::from_parts(
                Matrix::from_rows(&[vec![-1.0]]).unwrap(),
                Vector::zeros(1),
            ))],
        )
        .unwrap();
        let region = StartRegion::Box(BoxDomain::uniform(1, -1.0, 1.0));
        let risk = RiskCondition::new("large").output_ge(0, 0.5);

        let without = encode_verification(&tail, None, &risk, &region).unwrap();
        assert_eq!(without.milp.solve().status, MilpStatus::Optimal);

        let with = encode_verification(&tail, Some(&ch), &risk, &region).unwrap();
        assert_eq!(with.milp.solve().status, MilpStatus::Infeasible);
        assert!(with.logit_var.is_some());
    }

    #[test]
    fn tighter_regions_fix_more_relu_phases() {
        let mut rng = StdRng::seed_from_u64(5);
        let tail_net = NetworkBuilder::new(4)
            .dense(8, &mut rng)
            .activation(Activation::ReLU)
            .dense(2, &mut rng)
            .build();
        let risk = RiskCondition::new("anything").output_ge(0, 100.0);
        let loose = StartRegion::Box(BoxDomain::uniform(4, -10.0, 10.0));
        let tight = StartRegion::Box(BoxDomain::uniform(4, 0.4, 0.6));
        let loose_enc = encode_verification(tail_net.layers(), None, &risk, &loose).unwrap();
        let tight_enc = encode_verification(tail_net.layers(), None, &risk, &tight).unwrap();
        assert!(tight_enc.num_binaries <= loose_enc.num_binaries);
        assert!(tight_enc.stable_relus >= loose_enc.stable_relus);
    }

    #[test]
    fn rejects_non_piecewise_linear_tails() {
        let tail = vec![Layer::Activation(Activation::Sigmoid)];
        let region = StartRegion::Box(BoxDomain::uniform(2, 0.0, 1.0));
        let risk = RiskCondition::new("r").output_ge(0, 0.5);
        assert!(matches!(
            encode_verification(&tail, None, &risk, &region),
            Err(CoreError::NotPiecewiseLinear(_))
        ));
    }

    #[test]
    fn rejects_dimension_mismatches() {
        let tail = identity_relu_tail();
        let region = StartRegion::Box(BoxDomain::uniform(3, 0.0, 1.0));
        let risk = RiskCondition::new("r").output_ge(0, 0.5);
        assert!(matches!(
            encode_verification(&tail, None, &risk, &region),
            Err(CoreError::Inconsistent(_))
        ));
        // Risk referencing a non-existent output.
        let region2 = StartRegion::Box(BoxDomain::uniform(2, 0.0, 1.0));
        let bad_risk = RiskCondition::new("r").output_ge(5, 0.5);
        assert!(matches!(
            encode_verification(&identity_relu_tail(), None, &bad_risk, &region2),
            Err(CoreError::Inconsistent(_))
        ));
    }

    #[test]
    fn template_instantiation_matches_fresh_encoding_verdicts() {
        let mut rng = StdRng::seed_from_u64(7);
        let tail_net = NetworkBuilder::new(3)
            .dense(6, &mut rng)
            .activation(Activation::ReLU)
            .dense(1, &mut rng)
            .build();
        let root = StartRegion::Box(BoxDomain::uniform(3, -1.0, 1.0));
        for threshold in [0.2, 1.0, 5.0, 50.0] {
            let risk = RiskCondition::new("large").output_ge(0, threshold);
            let template = EncodingTemplate::build(tail_net.layers(), None, &risk, &root).unwrap();
            for (lo, hi) in [(-1.0, 1.0), (-0.5, 0.25), (0.1, 0.9), (-1.0, -0.6)] {
                let sub = StartRegion::Box(BoxDomain::uniform(3, lo, hi));
                assert!(template.supports(&sub));
                let instantiated = template.instantiate(&sub).unwrap();
                let fresh = encode_verification(tail_net.layers(), None, &risk, &sub).unwrap();
                assert_eq!(
                    instantiated.milp.solve().status,
                    fresh.milp.solve().status,
                    "verdict mismatch at threshold {threshold}, sub-box [{lo}, {hi}]"
                );
                // The phase classification matches the fresh encoding's.
                assert_eq!(instantiated.num_binaries, fresh.num_binaries);
                assert_eq!(
                    instantiated.num_binaries + instantiated.stable_relus,
                    fresh.num_binaries + fresh.stable_relus
                );
            }
        }
    }

    #[test]
    fn instantiate_into_reuses_scratch_exactly() {
        let mut rng = StdRng::seed_from_u64(9);
        let tail_net = NetworkBuilder::new(2)
            .dense(4, &mut rng)
            .activation(Activation::ReLU)
            .dense(1, &mut rng)
            .build();
        let root = StartRegion::Box(BoxDomain::uniform(2, -2.0, 2.0));
        let risk = RiskCondition::new("r").output_ge(0, 0.1);
        let template = EncodingTemplate::build(tail_net.layers(), None, &risk, &root).unwrap();

        let a = StartRegion::Box(BoxDomain::uniform(2, -2.0, 0.0));
        let b = StartRegion::Box(BoxDomain::uniform(2, 0.0, 1.5));
        // Instantiating b into a scratch previously holding a must yield a
        // problem identical to a fresh instantiation of b.
        let mut scratch = template.instantiate(&a).unwrap();
        template.instantiate_into(&b, &mut scratch).unwrap();
        let fresh_b = template.instantiate(&b).unwrap();
        assert_eq!(scratch.milp, fresh_b.milp);
        assert_eq!(scratch.num_binaries, fresh_b.num_binaries);
        assert_eq!(scratch.stable_relus, fresh_b.stable_relus);
    }

    #[test]
    fn instantiate_into_rejects_scratches_from_other_templates() {
        // Two templates over the same tail and root, differing only in the
        // risk threshold: identical variable/constraint *counts*, different
        // frozen row data. Cross-feeding a scratch must error, not silently
        // answer the other template's question.
        let tail = identity_relu_tail();
        let root = StartRegion::Box(BoxDomain::uniform(2, -1.0, 1.0));
        let risk_a = RiskCondition::new("a").output_ge(0, 0.25);
        let risk_b = RiskCondition::new("b").output_ge(0, 5.0);
        let template_a = EncodingTemplate::build(&tail, None, &risk_a, &root).unwrap();
        let template_b = EncodingTemplate::build(&tail, None, &risk_b, &root).unwrap();
        let sub = StartRegion::Box(BoxDomain::uniform(2, -0.5, 0.5));
        let mut scratch_a = template_a.instantiate(&sub).unwrap();
        assert!(matches!(
            template_b.instantiate_into(&sub, &mut scratch_a),
            Err(CoreError::Inconsistent(_))
        ));
        // Same-template reuse still works.
        template_a.instantiate_into(&root, &mut scratch_a).unwrap();
    }

    #[test]
    fn template_rejects_uncovered_and_mismatched_regions() {
        let tail = identity_relu_tail();
        let root = StartRegion::Box(BoxDomain::uniform(2, -1.0, 1.0));
        let risk = RiskCondition::new("r").output_ge(0, 0.5);
        let template = EncodingTemplate::build(&tail, None, &risk, &root).unwrap();
        // Escaping the root box invalidates the frozen big-M constants.
        let outside = StartRegion::Box(BoxDomain::uniform(2, -3.0, 3.0));
        assert!(!template.supports(&outside));
        assert!(template.instantiate(&outside).is_err());
        // Octagon regions need an octagon-rooted template.
        let oct = StartRegion::Octagon(OctagonLite::from_parts(
            vec![Interval::new(-0.5, 0.5), Interval::new(-0.5, 0.5)],
            vec![Interval::new(-0.1, 0.1)],
        ));
        assert!(!template.supports(&oct));
        // Wrong dimension.
        let wrong_dim = StartRegion::Box(BoxDomain::uniform(3, -0.5, 0.5));
        assert!(!template.supports(&wrong_dim));
    }

    #[test]
    fn octagon_template_retightens_difference_rows() {
        // Same fixture as the octagon-vs-box test: y = x1 - x0 after ReLU.
        let w = Matrix::from_rows(&[vec![-1.0, 1.0]]).unwrap();
        let tail = vec![
            Layer::Dense(Dense::from_parts(w, Vector::zeros(1))),
            Layer::Activation(Activation::ReLU),
        ];
        let risk = RiskCondition::new("large difference").output_ge(0, 1.0);
        let loose = OctagonLite::from_parts(
            vec![Interval::new(-1.0, 1.0), Interval::new(-1.0, 1.0)],
            vec![Interval::new(-2.0, 2.0)],
        );
        let template =
            EncodingTemplate::build(&tail, None, &risk, &StartRegion::Octagon(loose.clone()))
                .unwrap();
        // Root differences are vacuous → feasible.
        let at_root = template.instantiate(&StartRegion::Octagon(loose)).unwrap();
        assert_eq!(at_root.milp.solve().status, MilpStatus::Optimal);
        // Tightened differences make the risk unreachable; same skeleton.
        let tight = OctagonLite::from_parts(
            vec![Interval::new(-1.0, 1.0), Interval::new(-1.0, 1.0)],
            vec![Interval::new(-0.1, 0.1)],
        );
        let tightened = template.instantiate(&StartRegion::Octagon(tight)).unwrap();
        assert_eq!(tightened.milp.solve().status, MilpStatus::Infeasible);
    }

    #[test]
    fn batched_region_bounds_match_scalar_propagation_exactly() {
        let mut rng = StdRng::seed_from_u64(21);
        let tail_net = NetworkBuilder::new(3)
            .dense(6, &mut rng)
            .activation(Activation::ReLU)
            .batch_norm()
            .dense(2, &mut rng)
            .build();
        let ch = NetworkBuilder::new(3)
            .dense(4, &mut rng)
            .activation(Activation::ReLU)
            .dense(1, &mut rng)
            .build();
        let risk = RiskCondition::new("r").output_ge(0, 0.3);
        let root = StartRegion::Box(BoxDomain::uniform(3, -1.0, 1.0));
        let template = EncodingTemplate::build(tail_net.layers(), Some(&ch), &risk, &root).unwrap();
        let boxes: Vec<BoxDomain> = [(-1.0, 1.0), (-0.5, 0.25), (0.1, 0.9), (-1.0, -0.6)]
            .iter()
            .map(|&(lo, hi)| BoxDomain::uniform(3, lo, hi))
            .collect();
        let refs: Vec<&BoxDomain> = boxes.iter().collect();
        let batched = template.region_bounds_batch(&refs).unwrap();
        assert_eq!(batched.len(), boxes.len());
        for (b, batched_bounds) in boxes.iter().zip(&batched) {
            let scalar = template
                .region_bounds(&StartRegion::Box(b.clone()))
                .unwrap();
            // Bit-exact: the SoA lanes replicate scalar interval propagation.
            assert_eq!(batched_bounds, &scalar);
        }
        assert!(template.region_bounds_batch(&[]).unwrap().is_empty());
    }

    #[test]
    fn instantiate_with_precomputed_bounds_matches_instantiate() {
        let mut rng = StdRng::seed_from_u64(23);
        let tail_net = NetworkBuilder::new(2)
            .dense(5, &mut rng)
            .activation(Activation::ReLU)
            .dense(1, &mut rng)
            .build();
        let risk = RiskCondition::new("r").output_ge(0, 0.2);
        let root = StartRegion::Box(BoxDomain::uniform(2, -2.0, 2.0));
        let template = EncodingTemplate::build(tail_net.layers(), None, &risk, &root).unwrap();
        let sub = StartRegion::Box(BoxDomain::uniform(2, -0.5, 1.5));
        let bounds = template.region_bounds(&sub).unwrap();
        let via_bounds = template.instantiate_with(&sub, &bounds).unwrap();
        let direct = template.instantiate(&sub).unwrap();
        assert_eq!(via_bounds.milp, direct.milp);
        assert_eq!(via_bounds.num_binaries, direct.num_binaries);
        assert_eq!(via_bounds.stable_relus, direct.stable_relus);
        // The in-place apply path is identical too.
        let other = StartRegion::Box(BoxDomain::uniform(2, 0.0, 2.0));
        let mut scratch = template.instantiate(&other).unwrap();
        template
            .instantiate_into_with(&sub, &bounds, &mut scratch)
            .unwrap();
        assert_eq!(scratch.milp, direct.milp);
    }

    #[test]
    fn region_bounds_are_template_scoped() {
        let tail = identity_relu_tail();
        let root = StartRegion::Box(BoxDomain::uniform(2, -1.0, 1.0));
        let risk_a = RiskCondition::new("a").output_ge(0, 0.25);
        let risk_b = RiskCondition::new("b").output_ge(0, 5.0);
        let template_a = EncodingTemplate::build(&tail, None, &risk_a, &root).unwrap();
        let template_b = EncodingTemplate::build(&tail, None, &risk_b, &root).unwrap();
        let sub = StartRegion::Box(BoxDomain::uniform(2, -0.5, 0.5));
        let bounds_a = template_a.region_bounds(&sub).unwrap();
        let mut scratch_b = template_b.instantiate(&sub).unwrap();
        assert!(matches!(
            template_b.instantiate_into_with(&sub, &bounds_a, &mut scratch_b),
            Err(CoreError::Inconsistent(_))
        ));
        // Uncovered regions are rejected at the propagate half already.
        let outside = StartRegion::Box(BoxDomain::uniform(2, -3.0, 3.0));
        assert!(template_a.region_bounds(&outside).is_err());
        let outside_box = BoxDomain::uniform(2, -3.0, 3.0);
        assert!(template_a.region_bounds_batch(&[&outside_box]).is_err());
    }

    #[test]
    fn template_instantiation_pins_stabilised_indicators() {
        let tail = identity_relu_tail();
        let root = StartRegion::Box(BoxDomain::uniform(2, -1.0, 1.0));
        let risk = RiskCondition::new("r").output_ge(0, 0.25);
        let template = EncodingTemplate::build(&tail, None, &risk, &root).unwrap();
        let root_encoded = template.instantiate(&root).unwrap();
        assert_eq!(root_encoded.num_binaries, 2);
        // A positive sub-box stabilises both ReLUs: no free binary remains
        // even though the skeleton still carries the indicator columns.
        let positive = StartRegion::Box(BoxDomain::uniform(2, 0.25, 0.75));
        let pinned = template.instantiate(&positive).unwrap();
        assert_eq!(pinned.num_binaries, 0);
        assert_eq!(pinned.stable_relus, 2);
        assert_eq!(pinned.milp.solve().status, MilpStatus::Optimal);
        // And a negative one pins them inactive → risk unreachable.
        let negative = StartRegion::Box(BoxDomain::uniform(2, -0.75, -0.25));
        let inactive = template.instantiate(&negative).unwrap();
        assert_eq!(inactive.num_binaries, 0);
        assert_eq!(inactive.milp.solve().status, MilpStatus::Infeasible);
    }
}

//! Reduction of the tail-network verification problem to MILP.

use dpv_absint::{AbstractDomain, BoxDomain, Interval, OctagonLite};
use dpv_lp::{encode_relu_big_m, ConstraintOp, MilpProblem, VarId};
use dpv_nn::{Activation, Layer, Network};

use crate::{CoreError, OutputOp, RiskCondition};

/// The set `S` of layer-`l` activations from which the verification starts.
#[derive(Debug, Clone, PartialEq)]
pub enum StartRegion {
    /// Independent per-neuron bounds (Lemma 1 with large bounds, Lemma 2
    /// via abstract interpretation, or the box part of an envelope).
    Box(BoxDomain),
    /// Box plus adjacent-neuron difference constraints — the refined
    /// envelope of the paper's Section V.
    Octagon(OctagonLite),
}

impl StartRegion {
    /// The box enclosure of the region (used for big-M bound computation).
    pub fn box_domain(&self) -> BoxDomain {
        match self {
            StartRegion::Box(b) => b.clone(),
            StartRegion::Octagon(o) => o.to_box_domain(),
        }
    }

    /// Dimension of the region.
    pub fn dim(&self) -> usize {
        match self {
            StartRegion::Box(b) => b.dim(),
            StartRegion::Octagon(o) => o.dim(),
        }
    }

    /// Returns `true` when the concrete activation lies inside the region.
    pub fn contains(&self, activation: &[f64], tol: f64) -> bool {
        match self {
            StartRegion::Box(b) => b.box_contains(activation, tol),
            StartRegion::Octagon(o) => o.contains(activation, tol),
        }
    }
}

/// A fully encoded verification instance.
#[derive(Debug, Clone)]
pub struct EncodedProblem {
    /// The MILP: feasible iff an activation in the start region triggers the
    /// risk condition while the characterizer fires.
    pub milp: MilpProblem,
    /// Variables of the cut-layer activation.
    pub cut_vars: Vec<VarId>,
    /// Variables of the network output.
    pub output_vars: Vec<VarId>,
    /// Variable of the characterizer logit (when a characterizer was encoded).
    pub logit_var: Option<VarId>,
    /// Number of binary (ReLU-phase) variables in the encoding.
    pub num_binaries: usize,
    /// Number of ReLU neurons whose phase was fixed by the bounds (no binary
    /// variable needed) — the tighter the start region, the larger this is.
    pub stable_relus: usize,
}

/// Encodes one ReLU-MLP (a slice of layers) into `milp`, starting from the
/// variables `inputs` whose concrete values range over `input_box`.
/// Returns the output variables and the output box.
fn encode_layers(
    milp: &mut MilpProblem,
    inputs: &[VarId],
    input_box: &BoxDomain,
    layers: &[Layer],
    binaries: &mut usize,
    stable: &mut usize,
) -> Result<(Vec<VarId>, BoxDomain), CoreError> {
    let mut vars = inputs.to_vec();
    let mut bounds = input_box.clone();
    for layer in layers {
        match layer {
            Layer::Dense(d) => {
                if d.input_dim() != vars.len() {
                    return Err(CoreError::Inconsistent(format!(
                        "dense layer expects {} inputs, encoding has {}",
                        d.input_dim(),
                        vars.len()
                    )));
                }
                let out_box = bounds.apply_layer(layer);
                let mut out_vars = Vec::with_capacity(d.output_dim());
                for j in 0..d.output_dim() {
                    let interval = out_box.bounds()[j];
                    let v = milp.add_variable(interval.lo, interval.hi);
                    // y_j - Σ w_ji x_i = b_j
                    let mut coeffs = vec![(v, 1.0)];
                    for (i, &x) in vars.iter().enumerate() {
                        let w = d.weights()[(j, i)];
                        if w != 0.0 {
                            coeffs.push((x, -w));
                        }
                    }
                    milp.lp_mut()
                        .add_constraint(&coeffs, ConstraintOp::Eq, d.bias()[j]);
                    out_vars.push(v);
                }
                vars = out_vars;
                bounds = out_box;
            }
            Layer::BatchNorm(bn) => {
                if bn.dim() != vars.len() {
                    return Err(CoreError::Inconsistent(
                        "batch-norm dimension mismatch in encoding".into(),
                    ));
                }
                let (a, b) = bn.affine_form();
                let out_box = bounds.apply_layer(layer);
                let mut out_vars = Vec::with_capacity(bn.dim());
                for j in 0..bn.dim() {
                    let interval = out_box.bounds()[j];
                    let v = milp.add_variable(interval.lo, interval.hi);
                    // y_j - a_j x_j = b_j
                    milp.lp_mut().add_constraint(
                        &[(v, 1.0), (vars[j], -a[j])],
                        ConstraintOp::Eq,
                        b[j],
                    );
                    out_vars.push(v);
                }
                vars = out_vars;
                bounds = out_box;
            }
            Layer::Activation(Activation::Identity) | Layer::Flatten(_) => {
                // Numerically the identity; keep the same variables.
            }
            Layer::Activation(Activation::ReLU) => {
                let out_box = bounds.apply_layer(layer);
                let mut out_vars = Vec::with_capacity(vars.len());
                for (j, &x) in vars.iter().enumerate() {
                    let pre = bounds.bounds()[j];
                    let y = milp.add_variable(0.0, pre.hi.max(0.0));
                    let encoding = encode_relu_big_m(milp, x, y, pre.lo, pre.hi);
                    if encoding.indicator.is_some() {
                        *binaries += 1;
                    } else {
                        *stable += 1;
                    }
                    out_vars.push(y);
                }
                vars = out_vars;
                bounds = out_box;
            }
            Layer::Activation(other) => {
                return Err(CoreError::NotPiecewiseLinear(format!(
                    "activation {other:?} cannot be encoded exactly; only ReLU/identity tails are supported"
                )));
            }
            Layer::Conv2d(_) | Layer::MaxPool2d(_) => {
                return Err(CoreError::NotPiecewiseLinear(
                    "convolution/pooling layers must stay in the (unverified) head; choose a cut layer after them"
                        .into(),
                ));
            }
        }
    }
    Ok((vars, bounds))
}

/// Builds the MILP whose feasibility answers the safety question:
///
/// > does there exist an activation `n̂_l` in `region` such that the tail
/// > maps it to an output satisfying `risk`, while the characterizer's logit
/// > is non-negative (`h_φ = 1`)?
///
/// `Infeasible` therefore proves safety relative to `region` (Lemma 1/2 or
/// the assume-guarantee argument, depending on how `region` was obtained).
///
/// # Errors
/// Returns [`CoreError::NotPiecewiseLinear`] when the tail or characterizer
/// contains layers the encoder cannot represent, and
/// [`CoreError::Inconsistent`] on dimension mismatches.
pub fn encode_verification(
    tail: &[Layer],
    characterizer: Option<&Network>,
    risk: &RiskCondition,
    region: &StartRegion,
) -> Result<EncodedProblem, CoreError> {
    let mut milp = MilpProblem::new();
    let box_domain = region.box_domain();
    let dim = region.dim();

    // Cut-layer activation variables.
    let cut_vars: Vec<VarId> = box_domain
        .bounds()
        .iter()
        .map(|Interval { lo, hi }| milp.add_variable(*lo, *hi))
        .collect();

    // Octagon refinement: lo_i <= x[i+1] - x[i] <= hi_i.
    if let StartRegion::Octagon(oct) = region {
        for (i, diff) in oct.diffs().iter().enumerate() {
            milp.lp_mut().add_constraint(
                &[(cut_vars[i + 1], 1.0), (cut_vars[i], -1.0)],
                ConstraintOp::Ge,
                diff.lo,
            );
            milp.lp_mut().add_constraint(
                &[(cut_vars[i + 1], 1.0), (cut_vars[i], -1.0)],
                ConstraintOp::Le,
                diff.hi,
            );
        }
    }

    let mut num_binaries = 0usize;
    let mut stable_relus = 0usize;

    // Encode the verified tail of the perception network.
    let (output_vars, _) = encode_layers(
        &mut milp,
        &cut_vars,
        &box_domain,
        tail,
        &mut num_binaries,
        &mut stable_relus,
    )?;

    // Encode the characterizer and require h_φ = 1 (logit >= 0).
    let logit_var = match characterizer {
        Some(ch) => {
            if ch.input_dim() != dim {
                return Err(CoreError::Inconsistent(format!(
                    "characterizer expects {} features, cut layer has {dim}",
                    ch.input_dim()
                )));
            }
            if ch.output_dim() != 1 {
                return Err(CoreError::Inconsistent(
                    "characterizer must produce a single logit".into(),
                ));
            }
            let (logit_vars, _) = encode_layers(
                &mut milp,
                &cut_vars,
                &box_domain,
                ch.layers(),
                &mut num_binaries,
                &mut stable_relus,
            )?;
            let logit = logit_vars[0];
            milp.lp_mut()
                .add_constraint(&[(logit, 1.0)], ConstraintOp::Ge, 0.0);
            Some(logit)
        }
        None => None,
    };

    // Risk condition ψ over the output variables.
    for inequality in risk.inequalities() {
        if inequality.coeffs.len() > output_vars.len() {
            return Err(CoreError::Inconsistent(format!(
                "risk condition references output {} but the network has only {} outputs",
                inequality.coeffs.len() - 1,
                output_vars.len()
            )));
        }
        let coeffs: Vec<(VarId, f64)> = inequality
            .coeffs
            .iter()
            .enumerate()
            .filter(|(_, c)| **c != 0.0)
            .map(|(i, c)| (output_vars[i], *c))
            .collect();
        let op = match inequality.op {
            OutputOp::Le => ConstraintOp::Le,
            OutputOp::Ge => ConstraintOp::Ge,
        };
        milp.lp_mut().add_constraint(&coeffs, op, inequality.rhs);
    }

    Ok(EncodedProblem {
        milp,
        cut_vars,
        output_vars,
        logit_var,
        num_binaries,
        stable_relus,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpv_lp::MilpStatus;
    use dpv_nn::{Activation, Dense, NetworkBuilder};
    use dpv_tensor::{Matrix, Vector};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Tail: identity dense 2→2 with ReLU, so output = relu(x).
    fn identity_relu_tail() -> Vec<Layer> {
        vec![
            Layer::Dense(Dense::from_parts(Matrix::identity(2), Vector::zeros(2))),
            Layer::Activation(Activation::ReLU),
        ]
    }

    #[test]
    fn encoding_matches_concrete_execution() {
        let mut rng = StdRng::seed_from_u64(0);
        let tail_net = NetworkBuilder::new(3)
            .dense(4, &mut rng)
            .activation(Activation::ReLU)
            .dense(2, &mut rng)
            .build();
        let region = StartRegion::Box(BoxDomain::uniform(3, -1.0, 1.0));
        // For several fixed cut activations, the MILP restricted to that point
        // must reproduce the concrete output (checked through feasibility of
        // the risk "output0 >= concrete - eps AND output0 <= concrete + eps").
        for _ in 0..5 {
            let x = Vector::from_vec((0..3).map(|_| rng.gen_range(-1.0..1.0)).collect());
            let y = tail_net.forward(&x);
            let risk = RiskCondition::new("pin output")
                .output_ge(0, y[0] - 1e-6)
                .output_le(0, y[0] + 1e-6);
            let encoded = encode_verification(tail_net.layers(), None, &risk, &region).unwrap();
            let mut milp = encoded.milp.clone();
            for (i, &v) in encoded.cut_vars.iter().enumerate() {
                milp.lp_mut().tighten_bounds(v, x[i], x[i]);
            }
            let solution = milp.solve();
            assert_eq!(
                solution.status,
                MilpStatus::Optimal,
                "expected feasibility at {x}"
            );
        }
    }

    #[test]
    fn infeasible_when_risk_is_outside_reachable_outputs() {
        // Tail is relu(identity): outputs lie in [0, 1] for inputs in [-1, 1].
        let region = StartRegion::Box(BoxDomain::uniform(2, -1.0, 1.0));
        let risk = RiskCondition::new("impossible").output_ge(0, 5.0);
        let encoded = encode_verification(&identity_relu_tail(), None, &risk, &region).unwrap();
        assert_eq!(encoded.milp.solve().status, MilpStatus::Infeasible);
    }

    #[test]
    fn feasible_when_risk_is_reachable() {
        let region = StartRegion::Box(BoxDomain::uniform(2, -1.0, 1.0));
        let risk = RiskCondition::new("reachable").output_ge(0, 0.5);
        let encoded = encode_verification(&identity_relu_tail(), None, &risk, &region).unwrap();
        let solution = encoded.milp.solve();
        assert_eq!(solution.status, MilpStatus::Optimal);
        // The witness respects the region and triggers the risk concretely.
        let cut: Vec<f64> = encoded
            .cut_vars
            .iter()
            .map(|&v| solution.values[v])
            .collect();
        assert!(region.contains(&cut, 1e-6));
        assert!(solution.values[encoded.output_vars[0]] >= 0.5 - 1e-6);
    }

    #[test]
    fn octagon_constraints_can_prove_what_the_box_cannot() {
        // Tail computes y = x1 - x0 (then ReLU). Box region allows y up to 2,
        // but the octagon says x1 - x0 <= 0.1, so y >= 1 is impossible.
        let w = Matrix::from_rows(&[vec![-1.0, 1.0]]).unwrap();
        let tail = vec![
            Layer::Dense(Dense::from_parts(w, Vector::zeros(1))),
            Layer::Activation(Activation::ReLU),
        ];
        let risk = RiskCondition::new("large difference").output_ge(0, 1.0);

        let box_region = StartRegion::Box(BoxDomain::uniform(2, -1.0, 1.0));
        let feasible = encode_verification(&tail, None, &risk, &box_region).unwrap();
        assert_eq!(feasible.milp.solve().status, MilpStatus::Optimal);

        let oct = OctagonLite::from_parts(
            vec![Interval::new(-1.0, 1.0), Interval::new(-1.0, 1.0)],
            vec![Interval::new(-0.1, 0.1)],
        );
        let oct_region = StartRegion::Octagon(oct);
        let infeasible = encode_verification(&tail, None, &risk, &oct_region).unwrap();
        assert_eq!(infeasible.milp.solve().status, MilpStatus::Infeasible);
    }

    #[test]
    fn characterizer_constraint_restricts_the_search() {
        // Characterizer: logit = -x0 (fires only when x0 <= 0).
        // Tail: y = x0 (identity dense). Risk: y >= 0.5.
        // Without the characterizer the risk is reachable; with it, it is not.
        let tail = vec![Layer::Dense(Dense::from_parts(
            Matrix::identity(1),
            Vector::zeros(1),
        ))];
        let ch = dpv_nn::Network::new(
            1,
            vec![Layer::Dense(Dense::from_parts(
                Matrix::from_rows(&[vec![-1.0]]).unwrap(),
                Vector::zeros(1),
            ))],
        )
        .unwrap();
        let region = StartRegion::Box(BoxDomain::uniform(1, -1.0, 1.0));
        let risk = RiskCondition::new("large").output_ge(0, 0.5);

        let without = encode_verification(&tail, None, &risk, &region).unwrap();
        assert_eq!(without.milp.solve().status, MilpStatus::Optimal);

        let with = encode_verification(&tail, Some(&ch), &risk, &region).unwrap();
        assert_eq!(with.milp.solve().status, MilpStatus::Infeasible);
        assert!(with.logit_var.is_some());
    }

    #[test]
    fn tighter_regions_fix_more_relu_phases() {
        let mut rng = StdRng::seed_from_u64(5);
        let tail_net = NetworkBuilder::new(4)
            .dense(8, &mut rng)
            .activation(Activation::ReLU)
            .dense(2, &mut rng)
            .build();
        let risk = RiskCondition::new("anything").output_ge(0, 100.0);
        let loose = StartRegion::Box(BoxDomain::uniform(4, -10.0, 10.0));
        let tight = StartRegion::Box(BoxDomain::uniform(4, 0.4, 0.6));
        let loose_enc = encode_verification(tail_net.layers(), None, &risk, &loose).unwrap();
        let tight_enc = encode_verification(tail_net.layers(), None, &risk, &tight).unwrap();
        assert!(tight_enc.num_binaries <= loose_enc.num_binaries);
        assert!(tight_enc.stable_relus >= loose_enc.stable_relus);
    }

    #[test]
    fn rejects_non_piecewise_linear_tails() {
        let tail = vec![Layer::Activation(Activation::Sigmoid)];
        let region = StartRegion::Box(BoxDomain::uniform(2, 0.0, 1.0));
        let risk = RiskCondition::new("r").output_ge(0, 0.5);
        assert!(matches!(
            encode_verification(&tail, None, &risk, &region),
            Err(CoreError::NotPiecewiseLinear(_))
        ));
    }

    #[test]
    fn rejects_dimension_mismatches() {
        let tail = identity_relu_tail();
        let region = StartRegion::Box(BoxDomain::uniform(3, 0.0, 1.0));
        let risk = RiskCondition::new("r").output_ge(0, 0.5);
        assert!(matches!(
            encode_verification(&tail, None, &risk, &region),
            Err(CoreError::Inconsistent(_))
        ));
        // Risk referencing a non-existent output.
        let region2 = StartRegion::Box(BoxDomain::uniform(2, 0.0, 1.0));
        let bad_risk = RiskCondition::new("r").output_ge(5, 0.5);
        assert!(matches!(
            encode_verification(&identity_relu_tail(), None, &bad_risk, &region2),
            Err(CoreError::Inconsistent(_))
        ));
    }
}

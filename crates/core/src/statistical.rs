//! Statistical reasoning (Section III, Table I): what remains of the safety
//! claim when the characterizer is imperfect.

use dpv_nn::Network;
use dpv_tensor::Vector;

use crate::{Characterizer, CoreError, RiskCondition};

/// The four joint probabilities of Table I, estimated from labelled data:
///
/// |                         | `in ∈ In_φ` | `in ∉ In_φ`      |
/// |-------------------------|-------------|------------------|
/// | `h_φ(f^(l)(in)) = 1`    | α           | β                |
/// | `h_φ(f^(l)(in)) = 0`    | γ           | 1 − α − β − γ    |
///
/// γ is the probability mass the safety proof silently ignores: inputs that
/// satisfy φ but whose characterizer decision is 0, so they were never part
/// of the verified region. The paper's conclusion is that the safety claim
/// then only holds with probability `1 − γ`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfusionTable {
    /// P(φ holds ∧ characterizer fires).
    pub alpha: f64,
    /// P(φ does not hold ∧ characterizer fires).
    pub beta: f64,
    /// P(φ holds ∧ characterizer does not fire).
    pub gamma: f64,
    /// P(φ does not hold ∧ characterizer does not fire).
    pub delta: f64,
    /// Number of examples the estimate is based on.
    pub samples: usize,
}

impl ConfusionTable {
    /// The statistical guarantee `1 − γ` attached to a conditional proof.
    pub fn guarantee(&self) -> f64 {
        1.0 - self.gamma
    }

    /// Characterizer accuracy `α + δ`.
    pub fn accuracy(&self) -> f64 {
        self.alpha + self.delta
    }

    /// Renders the table in the layout of the paper's Table I.
    pub fn render(&self) -> String {
        format!(
            "                     | in ∈ In_φ | in ∉ In_φ\n\
             h(f^l(in)) = 1      | {:9.4} | {:9.4}\n\
             h(f^l(in)) = 0      | {:9.4} | {:9.4}\n\
             (n = {}, accuracy = {:.4}, statistical guarantee 1-γ = {:.4})",
            self.alpha,
            self.beta,
            self.gamma,
            self.delta,
            self.samples,
            self.accuracy(),
            self.guarantee()
        )
    }
}

/// Estimates Table I and the derived guarantees for one characterizer on a
/// labelled validation set.
#[derive(Debug, Clone, PartialEq)]
pub struct StatisticalAnalysis {
    table: ConfusionTable,
    unsafe_misses: usize,
}

impl StatisticalAnalysis {
    /// Estimates the confusion probabilities of `characterizer` over
    /// `examples` (raw inputs with ground-truth φ labels), featurised through
    /// `perception`.
    ///
    /// `risk` is used for the footnote-4 side condition: among the γ-mass
    /// examples (φ holds, characterizer silent), it counts how many *actually
    /// violate* ψ on the concrete network — those are real, statistically
    /// unaccounted-for hazards rather than benign misses.
    ///
    /// # Errors
    /// Returns [`CoreError::Data`] when `examples` is empty.
    pub fn estimate(
        perception: &Network,
        characterizer: &Characterizer,
        risk: &RiskCondition,
        examples: &[(Vector, bool)],
    ) -> Result<Self, CoreError> {
        if examples.is_empty() {
            return Err(CoreError::Data(
                "statistical analysis needs at least one labelled example".into(),
            ));
        }
        let mut counts = [0usize; 4]; // alpha, beta, gamma, delta
        let mut unsafe_misses = 0usize;
        for (image, in_phi) in examples {
            let fires = characterizer.decide_input(perception, image);
            let idx = match (*in_phi, fires) {
                (true, true) => 0,
                (false, true) => 1,
                (true, false) => 2,
                (false, false) => 3,
            };
            counts[idx] += 1;
            if *in_phi && !fires {
                let output = perception.forward(image);
                if risk.is_satisfied(&output, 0.0) {
                    unsafe_misses += 1;
                }
            }
        }
        let n = examples.len() as f64;
        let table = ConfusionTable {
            alpha: counts[0] as f64 / n,
            beta: counts[1] as f64 / n,
            gamma: counts[2] as f64 / n,
            delta: counts[3] as f64 / n,
            samples: examples.len(),
        };
        Ok(Self {
            table,
            unsafe_misses,
        })
    }

    /// The estimated Table I.
    pub fn table(&self) -> &ConfusionTable {
        &self.table
    }

    /// The `1 − γ` guarantee.
    pub fn guarantee(&self) -> f64 {
        self.table.guarantee()
    }

    /// Number of γ-mass examples that concretely violate ψ (footnote 4: the
    /// conditional claim is only meaningful when this is zero on the data
    /// used to train the characterizer).
    pub fn unsafe_misses(&self) -> usize {
        self.unsafe_misses
    }

    /// Returns `true` when the footnote-4 side condition holds on this data:
    /// every example missed by the characterizer is nevertheless safe.
    pub fn missed_examples_are_safe(&self) -> bool {
        self.unsafe_misses == 0
    }

    /// Hoeffding upper confidence bound on the true γ at confidence level
    /// `1 − delta`: with probability at least `1 − delta` over the sampling
    /// of the validation set, the true miss probability satisfies
    /// `γ ≤ γ̂ + sqrt(ln(1/delta) / (2 n))`.
    ///
    /// The paper states the `1 − γ` guarantee in terms of the (unknown) true
    /// γ; this bound turns the finite-sample estimate `γ̂` into a defensible
    /// claim.
    ///
    /// # Panics
    /// Panics when `delta` is not in `(0, 1)`.
    pub fn gamma_upper_bound(&self, delta: f64) -> f64 {
        assert!(
            delta > 0.0 && delta < 1.0,
            "confidence delta must be in (0, 1)"
        );
        let n = self.table.samples.max(1) as f64;
        let slack = ((1.0 / delta).ln() / (2.0 * n)).sqrt();
        (self.table.gamma + slack).min(1.0)
    }

    /// Lower confidence bound on the `1 − γ` guarantee at level `1 − delta`
    /// (the conservative number to quote alongside a conditional proof).
    ///
    /// # Panics
    /// Panics when `delta` is not in `(0, 1)`.
    pub fn guarantee_lower_bound(&self, delta: f64) -> f64 {
        1.0 - self.gamma_upper_bound(delta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CharacterizerConfig, InputProperty};
    use dpv_nn::{Activation, NetworkBuilder};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn perception(seed: u64) -> Network {
        let mut rng = StdRng::seed_from_u64(seed);
        NetworkBuilder::new(3)
            .dense(6, &mut rng)
            .activation(Activation::ReLU)
            .dense(1, &mut rng)
            .build()
    }

    fn examples(n: usize, seed: u64) -> Vec<(Vector, bool)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let x: Vec<f64> = (0..3).map(|_| rng.gen_range(0.0..1.0)).collect();
                let label = x[0] > 0.5;
                (Vector::from_vec(x), label)
            })
            .collect()
    }

    fn trained_characterizer(net: &Network, seed: u64) -> Characterizer {
        let mut rng = StdRng::seed_from_u64(seed);
        Characterizer::train(
            InputProperty::new("x0_large", "x0 > 0.5"),
            net,
            1,
            &examples(200, seed + 1),
            &CharacterizerConfig::small(),
            &mut rng,
        )
        .unwrap()
    }

    #[test]
    fn probabilities_sum_to_one() {
        let net = perception(0);
        let ch = trained_characterizer(&net, 1);
        let risk = RiskCondition::new("r").output_ge(0, 1e6);
        let analysis = StatisticalAnalysis::estimate(&net, &ch, &risk, &examples(300, 9)).unwrap();
        let t = analysis.table();
        let total = t.alpha + t.beta + t.gamma + t.delta;
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(t.samples, 300);
        assert!(t.guarantee() >= 0.0 && t.guarantee() <= 1.0);
    }

    #[test]
    fn good_characterizer_has_small_gamma() {
        let net = perception(2);
        let ch = trained_characterizer(&net, 3);
        let risk = RiskCondition::new("r").output_ge(0, 1e6);
        let analysis = StatisticalAnalysis::estimate(&net, &ch, &risk, &examples(400, 10)).unwrap();
        assert!(
            analysis.table().gamma < 0.2,
            "gamma unexpectedly large: {}",
            analysis.table().gamma
        );
        assert!(analysis.guarantee() > 0.8);
        assert!(analysis.table().accuracy() > 0.7);
    }

    #[test]
    fn impossible_risk_means_no_unsafe_misses() {
        let net = perception(4);
        let ch = trained_characterizer(&net, 5);
        // ψ that no output can satisfy → every miss is benign.
        let risk = RiskCondition::new("impossible").output_ge(0, 1e9);
        let analysis = StatisticalAnalysis::estimate(&net, &ch, &risk, &examples(200, 11)).unwrap();
        assert_eq!(analysis.unsafe_misses(), 0);
        assert!(analysis.missed_examples_are_safe());
    }

    #[test]
    fn trivial_risk_counts_all_misses_as_unsafe() {
        let net = perception(6);
        let ch = trained_characterizer(&net, 7);
        // ψ that every output satisfies (empty conjunction is always true).
        let risk = RiskCondition::new("always");
        let analysis = StatisticalAnalysis::estimate(&net, &ch, &risk, &examples(200, 12)).unwrap();
        let expected = (analysis.table().gamma * analysis.table().samples as f64).round() as usize;
        assert_eq!(analysis.unsafe_misses(), expected);
    }

    #[test]
    fn empty_example_list_is_rejected() {
        let net = perception(8);
        let ch = trained_characterizer(&net, 9);
        let risk = RiskCondition::new("r");
        assert!(StatisticalAnalysis::estimate(&net, &ch, &risk, &[]).is_err());
    }

    #[test]
    fn hoeffding_bound_shrinks_with_sample_size() {
        let net = perception(0);
        let ch = trained_characterizer(&net, 1);
        let risk = RiskCondition::new("r").output_ge(0, 1e6);
        let small = StatisticalAnalysis::estimate(&net, &ch, &risk, &examples(50, 21)).unwrap();
        let large = StatisticalAnalysis::estimate(&net, &ch, &risk, &examples(800, 21)).unwrap();
        let small_slack = small.gamma_upper_bound(0.05) - small.table().gamma;
        let large_slack = large.gamma_upper_bound(0.05) - large.table().gamma;
        assert!(large_slack < small_slack);
        assert!(small.gamma_upper_bound(0.05) <= 1.0);
        assert!(small.guarantee_lower_bound(0.05) <= small.guarantee());
        // Tighter confidence requirement → larger slack.
        assert!(small.gamma_upper_bound(0.001) >= small.gamma_upper_bound(0.1));
    }

    #[test]
    #[should_panic(expected = "confidence delta")]
    fn hoeffding_bound_validates_delta() {
        let net = perception(3);
        let ch = trained_characterizer(&net, 4);
        let risk = RiskCondition::new("r");
        let analysis = StatisticalAnalysis::estimate(&net, &ch, &risk, &examples(20, 22)).unwrap();
        let _ = analysis.gamma_upper_bound(1.5);
    }

    #[test]
    fn render_contains_all_cells() {
        let table = ConfusionTable {
            alpha: 0.4,
            beta: 0.05,
            gamma: 0.1,
            delta: 0.45,
            samples: 100,
        };
        let rendered = table.render();
        assert!(rendered.contains("0.4000"));
        assert!(rendered.contains("0.0500"));
        assert!(rendered.contains("0.1000"));
        assert!(rendered.contains("0.4500"));
        assert!((table.guarantee() - 0.9).abs() < 1e-12);
    }
}

//! Specifications: input properties φ and output risk conditions ψ.

use serde::{Deserialize, Serialize};
use std::fmt;

use dpv_tensor::Vector;

/// An input property φ — a predicate over input images that cannot be
/// written as pixel constraints and is therefore characterised by a learned
/// classifier ([`crate::Characterizer`]).
///
/// The struct itself only carries the name and prose description; the
/// semantics live in the labelled examples used to train the characterizer
/// (produced by an oracle — in this workspace, the scene generator's hidden
/// parameters; in the paper, a human expert).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct InputProperty {
    name: String,
    description: String,
}

impl InputProperty {
    /// Creates a property with a short name and a prose description.
    pub fn new(name: impl Into<String>, description: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            description: description.into(),
        }
    }

    /// Short identifier (used in reports and benchmark labels).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Prose description of the property.
    pub fn description(&self) -> &str {
        &self.description
    }
}

impl fmt::Display for InputProperty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.name, self.description)
    }
}

/// Direction of a linear inequality over the network output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OutputOp {
    /// `Σ coeff_i · out_i ≤ rhs`
    Le,
    /// `Σ coeff_i · out_i ≥ rhs`
    Ge,
}

/// One linear inequality over the network output vector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearInequality {
    /// Dense coefficients over the output dimensions.
    pub coeffs: Vec<f64>,
    /// Direction of the inequality.
    pub op: OutputOp,
    /// Right-hand side.
    pub rhs: f64,
}

impl LinearInequality {
    /// Evaluates the inequality on a concrete output vector.
    ///
    /// # Panics
    /// Panics when `output.len() != self.coeffs.len()`.
    pub fn is_satisfied(&self, output: &Vector, tol: f64) -> bool {
        assert_eq!(output.len(), self.coeffs.len(), "output dimension mismatch");
        let lhs: f64 = self
            .coeffs
            .iter()
            .zip(output.iter())
            .map(|(c, v)| c * v)
            .sum();
        match self.op {
            OutputOp::Le => lhs <= self.rhs + tol,
            OutputOp::Ge => lhs >= self.rhs - tol,
        }
    }
}

/// A risk condition ψ: a conjunction of linear inequalities over the network
/// output describing the *undesired* behaviour (Definition 1 of the paper).
/// The network is safe under (φ, ψ) when no input satisfying φ produces an
/// output satisfying ψ.
///
/// ```
/// use dpv_core::RiskCondition;
/// use dpv_tensor::Vector;
/// // "the network suggests steering hard left": waypoint offset <= -0.5.
/// let psi = RiskCondition::new("steer hard left").output_le(0, -0.5);
/// assert!(psi.is_satisfied(&Vector::from_slice(&[-0.7, 0.0]), 0.0));
/// assert!(!psi.is_satisfied(&Vector::from_slice(&[0.2, 0.0]), 0.0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RiskCondition {
    name: String,
    inequalities: Vec<LinearInequality>,
}

impl RiskCondition {
    /// Creates an empty (always-true) risk condition with a name; add
    /// inequalities with the builder methods.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            inequalities: Vec::new(),
        }
    }

    /// Name of the risk condition.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The conjunction of inequalities.
    pub fn inequalities(&self) -> &[LinearInequality] {
        &self.inequalities
    }

    /// Adds the constraint `out[index] ≤ bound`.
    pub fn output_le(mut self, index: usize, bound: f64) -> Self {
        self.inequalities.push(LinearInequality {
            coeffs: indicator(index),
            op: OutputOp::Le,
            rhs: bound,
        });
        self
    }

    /// Adds the constraint `out[index] ≥ bound`.
    pub fn output_ge(mut self, index: usize, bound: f64) -> Self {
        self.inequalities.push(LinearInequality {
            coeffs: indicator(index),
            op: OutputOp::Ge,
            rhs: bound,
        });
        self
    }

    /// Adds a general linear constraint `Σ coeffs·out  op  rhs`.
    pub fn linear(mut self, coeffs: Vec<f64>, op: OutputOp, rhs: f64) -> Self {
        self.inequalities.push(LinearInequality { coeffs, op, rhs });
        self
    }

    /// Number of output dimensions referenced (the longest coefficient list).
    pub fn output_dim(&self) -> usize {
        self.inequalities
            .iter()
            .map(|i| i.coeffs.len())
            .max()
            .unwrap_or(0)
    }

    /// Evaluates the conjunction on a concrete output vector. Each
    /// inequality's coefficient list is padded with zeros to the output
    /// length before evaluation.
    pub fn is_satisfied(&self, output: &Vector, tol: f64) -> bool {
        self.inequalities.iter().all(|ineq| {
            let mut coeffs = ineq.coeffs.clone();
            coeffs.resize(output.len(), 0.0);
            LinearInequality {
                coeffs,
                op: ineq.op,
                rhs: ineq.rhs,
            }
            .is_satisfied(output, tol)
        })
    }
}

fn indicator(index: usize) -> Vec<f64> {
    let mut coeffs = vec![0.0; index + 1];
    coeffs[index] = 1.0;
    coeffs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn input_property_accessors() {
        let p = InputProperty::new("bends_right", "the road strongly bends to the right");
        assert_eq!(p.name(), "bends_right");
        assert!(p.description().contains("bends"));
        assert!(p.to_string().contains("bends_right"));
    }

    #[test]
    fn single_output_bounds() {
        let psi = RiskCondition::new("hard left").output_le(0, -0.5);
        assert_eq!(psi.name(), "hard left");
        assert_eq!(psi.inequalities().len(), 1);
        assert!(psi.is_satisfied(&Vector::from_slice(&[-0.6, 0.3]), 0.0));
        assert!(!psi.is_satisfied(&Vector::from_slice(&[-0.4, 0.3]), 0.0));
    }

    #[test]
    fn conjunction_requires_all_inequalities() {
        // "steering straight": |offset| <= 0.1 encoded as two inequalities.
        let psi = RiskCondition::new("straight")
            .output_le(0, 0.1)
            .output_ge(0, -0.1);
        assert!(psi.is_satisfied(&Vector::from_slice(&[0.05, 0.9]), 0.0));
        assert!(!psi.is_satisfied(&Vector::from_slice(&[0.2, 0.9]), 0.0));
        assert!(!psi.is_satisfied(&Vector::from_slice(&[-0.2, 0.9]), 0.0));
    }

    #[test]
    fn general_linear_constraints() {
        // out0 - out1 >= 0.5
        let psi = RiskCondition::new("divergent").linear(vec![1.0, -1.0], OutputOp::Ge, 0.5);
        assert!(psi.is_satisfied(&Vector::from_slice(&[1.0, 0.3]), 0.0));
        assert!(!psi.is_satisfied(&Vector::from_slice(&[0.5, 0.3]), 0.0));
        assert_eq!(psi.output_dim(), 2);
    }

    #[test]
    fn empty_condition_is_always_satisfied() {
        let psi = RiskCondition::new("trivial");
        assert!(psi.is_satisfied(&Vector::from_slice(&[1.0]), 0.0));
        assert_eq!(psi.output_dim(), 0);
    }

    #[test]
    fn coefficients_are_padded_to_output_length() {
        let psi = RiskCondition::new("first output").output_ge(0, 0.5);
        assert!(psi.is_satisfied(&Vector::from_slice(&[0.6, -3.0, 7.0]), 0.0));
    }
}

//! Input property characterizers: learned predicates over close-to-output
//! activations.

use rand::Rng;

use dpv_nn::{
    binary_accuracy, labels_to_dataset, train, Activation, Dataset, LossKind, Network,
    NetworkBuilder, OptimizerKind, TrainConfig,
};
use dpv_tensor::Vector;

use crate::{CoreError, InputProperty};

/// Hyper-parameters for training a characterizer.
#[derive(Debug, Clone, PartialEq)]
pub struct CharacterizerConfig {
    /// Hidden-layer widths of the characterizer MLP (attached to the cut
    /// layer's activation vector; the output is a single logit).
    pub hidden: Vec<usize>,
    /// Number of training epochs.
    pub epochs: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// Mini-batch size.
    pub batch_size: usize,
}

impl Default for CharacterizerConfig {
    fn default() -> Self {
        Self {
            hidden: vec![16],
            epochs: 120,
            learning_rate: 0.01,
            batch_size: 16,
        }
    }
}

impl CharacterizerConfig {
    /// A small configuration for tests and examples.
    pub fn small() -> Self {
        Self {
            hidden: vec![8],
            epochs: 80,
            ..Self::default()
        }
    }
}

/// A trained input property characterizer `h_φ`.
///
/// The characterizer is a small MLP whose input is the perception network's
/// activation at the cut layer `l` and whose single output is a logit: the
/// paper's `h_φ(f^(l)(in)) = 1` corresponds to `logit ≥ 0`. Because the
/// logit threshold is linear and the MLP is ReLU-only, the characterizer is
/// exactly representable in the MILP encoding.
#[derive(Debug, Clone, PartialEq)]
pub struct Characterizer {
    property: InputProperty,
    cut_layer: usize,
    network: Network,
    training_accuracy: f64,
}

impl Characterizer {
    /// Trains a characterizer for `property` on `examples` of raw inputs
    /// (images) with oracle labels, attaching it to `perception`'s activation
    /// after `cut_layer` (zero-based).
    ///
    /// # Errors
    /// Returns [`CoreError::Inconsistent`] when `cut_layer` is out of range
    /// and [`CoreError::Data`] when the example list is empty or has
    /// inconsistent dimensions.
    pub fn train<R: Rng + ?Sized>(
        property: InputProperty,
        perception: &Network,
        cut_layer: usize,
        examples: &[(Vector, bool)],
        config: &CharacterizerConfig,
        rng: &mut R,
    ) -> Result<Self, CoreError> {
        if cut_layer >= perception.len() {
            return Err(CoreError::Inconsistent(format!(
                "cut layer {cut_layer} out of range (network has {} layers)",
                perception.len()
            )));
        }
        if examples.is_empty() {
            return Err(CoreError::Data("no characterizer training examples".into()));
        }
        // Featurise every raw input through the perception head.
        let featurised: Vec<(Vector, bool)> = examples
            .iter()
            .map(|(image, label)| (perception.activation_at(cut_layer, image), *label))
            .collect();
        let dataset = labels_to_dataset(featurised)?;
        let feature_dim = dataset.input_dim();

        let mut builder = NetworkBuilder::new(feature_dim);
        for width in &config.hidden {
            builder = builder.dense(*width, rng).activation(Activation::ReLU);
        }
        let mut network = builder.dense(1, rng).build();

        let train_config = TrainConfig {
            epochs: config.epochs,
            learning_rate: config.learning_rate,
            batch_size: config.batch_size,
            optimizer: OptimizerKind::Adam {
                beta1: 0.9,
                beta2: 0.999,
                eps: 1e-8,
            },
            shuffle: true,
            verbose: false,
        };
        train(
            &mut network,
            &dataset,
            &train_config,
            LossKind::BceWithLogits,
            rng,
        );
        let training_accuracy = binary_accuracy(&network, &dataset);

        Ok(Self {
            property,
            cut_layer,
            network,
            training_accuracy,
        })
    }

    /// Builds a characterizer from an already-trained network (e.g. loaded
    /// from disk).
    ///
    /// # Errors
    /// Returns [`CoreError::Inconsistent`] when the network does not end in a
    /// single logit.
    pub fn from_network(
        property: InputProperty,
        cut_layer: usize,
        network: Network,
        training_accuracy: f64,
    ) -> Result<Self, CoreError> {
        if network.output_dim() != 1 {
            return Err(CoreError::Inconsistent(format!(
                "characterizer must output a single logit, got {}",
                network.output_dim()
            )));
        }
        Ok(Self {
            property,
            cut_layer,
            network,
            training_accuracy,
        })
    }

    /// The property this characterizer decides.
    pub fn property(&self) -> &InputProperty {
        &self.property
    }

    /// The cut layer (zero-based) it is attached to.
    pub fn cut_layer(&self) -> usize {
        self.cut_layer
    }

    /// The underlying classifier network (activation at cut layer → logit).
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Accuracy reached on the training examples (the paper's "perfect
    /// training" assumption corresponds to this being 1.0).
    pub fn training_accuracy(&self) -> f64 {
        self.training_accuracy
    }

    /// Dimension of the activation vector the characterizer consumes.
    pub fn feature_dim(&self) -> usize {
        self.network.input_dim()
    }

    /// Raw logit for a cut-layer activation vector.
    pub fn logit(&self, activation: &Vector) -> f64 {
        self.network.forward(activation)[0]
    }

    /// Decision `h_φ(activation)`: `true` iff the logit is non-negative.
    pub fn decide_activation(&self, activation: &Vector) -> bool {
        self.logit(activation) >= 0.0
    }

    /// Decision for a raw input image, featurised through `perception`.
    pub fn decide_input(&self, perception: &Network, image: &Vector) -> bool {
        self.decide_activation(&perception.activation_at(self.cut_layer, image))
    }

    /// Accuracy over labelled raw inputs.
    pub fn accuracy(&self, perception: &Network, examples: &[(Vector, bool)]) -> f64 {
        if examples.is_empty() {
            return 1.0;
        }
        let correct = examples
            .iter()
            .filter(|(image, label)| self.decide_input(perception, image) == *label)
            .count();
        correct as f64 / examples.len() as f64
    }

    /// The featurised dataset for additional evaluation (e.g. the
    /// statistical analysis), mapping each raw example through the
    /// perception head.
    ///
    /// # Errors
    /// Returns [`CoreError::Data`] when `examples` is empty.
    pub fn featurise(
        &self,
        perception: &Network,
        examples: &[(Vector, bool)],
    ) -> Result<Dataset, CoreError> {
        let featurised: Vec<(Vector, bool)> = examples
            .iter()
            .map(|(image, label)| (perception.activation_at(self.cut_layer, image), *label))
            .collect();
        Ok(labels_to_dataset(featurised)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A perception stub: 2-pixel "images", one hidden layer; the first
    /// feature is informative for the property "pixel0 > pixel1".
    fn perception(seed: u64) -> Network {
        let mut rng = StdRng::seed_from_u64(seed);
        NetworkBuilder::new(2)
            .dense(6, &mut rng)
            .activation(Activation::ReLU)
            .dense(2, &mut rng)
            .build()
    }

    fn examples(n: usize, seed: u64) -> Vec<(Vector, bool)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let a: f64 = rng.gen_range(0.0..1.0);
                let b: f64 = rng.gen_range(0.0..1.0);
                (Vector::from_slice(&[a, b]), a > b)
            })
            .collect()
    }

    #[test]
    fn trains_to_high_accuracy_on_learnable_property() {
        let net = perception(0);
        let mut rng = StdRng::seed_from_u64(1);
        let ch = Characterizer::train(
            InputProperty::new("first_larger", "pixel0 exceeds pixel1"),
            &net,
            1,
            &examples(200, 2),
            &CharacterizerConfig::small(),
            &mut rng,
        )
        .unwrap();
        assert!(
            ch.training_accuracy() > 0.85,
            "accuracy {}",
            ch.training_accuracy()
        );
        let held_out = examples(100, 3);
        assert!(ch.accuracy(&net, &held_out) > 0.8);
        assert_eq!(ch.cut_layer(), 1);
        assert_eq!(ch.feature_dim(), 6);
    }

    #[test]
    fn rejects_bad_cut_layer_and_empty_data() {
        let net = perception(4);
        let mut rng = StdRng::seed_from_u64(5);
        let property = InputProperty::new("p", "d");
        assert!(matches!(
            Characterizer::train(
                property.clone(),
                &net,
                9,
                &examples(10, 6),
                &CharacterizerConfig::small(),
                &mut rng
            ),
            Err(CoreError::Inconsistent(_))
        ));
        assert!(matches!(
            Characterizer::train(
                property,
                &net,
                1,
                &[],
                &CharacterizerConfig::small(),
                &mut rng
            ),
            Err(CoreError::Data(_))
        ));
    }

    #[test]
    fn decision_matches_logit_sign() {
        let net = perception(7);
        let mut rng = StdRng::seed_from_u64(8);
        let ch = Characterizer::train(
            InputProperty::new("p", "d"),
            &net,
            1,
            &examples(100, 9),
            &CharacterizerConfig::small(),
            &mut rng,
        )
        .unwrap();
        let act = net.activation_at(1, &Vector::from_slice(&[0.9, 0.1]));
        assert_eq!(ch.decide_activation(&act), ch.logit(&act) >= 0.0);
    }

    #[test]
    fn from_network_validates_output_dim() {
        let mut rng = StdRng::seed_from_u64(10);
        let two_outputs = NetworkBuilder::new(3).dense(2, &mut rng).build();
        assert!(
            Characterizer::from_network(InputProperty::new("p", "d"), 0, two_outputs, 1.0).is_err()
        );
        let one_output = NetworkBuilder::new(3).dense(1, &mut rng).build();
        let ch =
            Characterizer::from_network(InputProperty::new("p", "d"), 0, one_output, 0.9).unwrap();
        assert_eq!(ch.training_accuracy(), 0.9);
    }

    #[test]
    fn featurise_produces_cut_layer_features() {
        let net = perception(11);
        let mut rng = StdRng::seed_from_u64(12);
        let ch = Characterizer::train(
            InputProperty::new("p", "d"),
            &net,
            1,
            &examples(50, 13),
            &CharacterizerConfig::small(),
            &mut rng,
        )
        .unwrap();
        let data = ch.featurise(&net, &examples(10, 14)).unwrap();
        assert_eq!(data.len(), 10);
        assert_eq!(data.input_dim(), 6);
        assert_eq!(data.target_dim(), 1);
    }
}
